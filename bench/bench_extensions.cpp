// Extension protocols at scale: BFS spanning tree, coloring, maximal
// matching, leader election — convergence cost from full random corruption
// vs problem size, under the random central daemon.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "engine/simulator.hpp"
#include "protocols/aggregation.hpp"
#include "protocols/coloring.hpp"
#include "protocols/distributed_reset.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/spanning_tree.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

void measure(benchmark::State& state, const Design& d, double n) {
  RandomDaemon daemon(3);
  Rng rng(11);
  double steps = 0, rounds = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 20'000'000;
    const auto r = converge(d, d.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    rounds += static_cast<double>(r.rounds);
    runs += 1;
  }
  state.counters["N"] = n;
  state.counters["steps/run"] = steps / runs;
  state.counters["rounds/run"] = rounds / runs;
}

void BM_SpanningTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  const auto g = UndirectedGraph::random_connected(n, 2 * n, rng);
  const auto st = make_spanning_tree(g, 0);
  measure(state, st.design, n);
}

void BM_Coloring(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(9);
  const auto g = UndirectedGraph::random_connected(n, 2 * n, rng);
  const auto cd = make_coloring(g);
  measure(state, cd.design, n);
}

void BM_Matching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(13);
  const auto g = UndirectedGraph::random_connected(n, 2 * n, rng);
  const auto md = make_matching(g);
  measure(state, md.design, n);
}

void BM_LeaderElection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto le = make_leader_election(n);
  measure(state, le.design, n);
}

void BM_DistributedReset(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(17);
  const auto tree = RootedTree::random(n, rng);
  const auto dr = make_distributed_reset(tree, 8, true);
  measure(state, dr.design, n);
}

void BM_IndependentSet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(19);
  const auto g = UndirectedGraph::random_connected(n, 2 * n, rng);
  const auto is = make_independent_set(g);
  measure(state, is.design, n);
}

void BM_Aggregation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(23);
  const auto tree = RootedTree::random(n, rng);
  const auto ad = make_aggregation(tree, 15);
  measure(state, ad.design, n);
}

}  // namespace

BENCHMARK(BM_SpanningTree)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Coloring)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Matching)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_LeaderElection)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_DistributedReset)->Arg(15)->Arg(63)->Arg(255);
BENCHMARK(BM_IndependentSet)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_Aggregation)->Arg(15)->Arg(63)->Arg(255);

NONMASK_BENCHMARK_MAIN("bench_extensions");
