// E8 — fairness and the daemon (Section 8).
//
// The paper remarks its derived programs converge even without fairness.
// This bench pits every daemon — including the unfair first-enabled and
// the greedy adversarial daemon — against the diffusing computation and
// the Dijkstra ring, measuring steps to converge from random corruption.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <memory>

#include "engine/simulator.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

enum DaemonKind {
  kRandom = 0,
  kRoundRobin,
  kFirstEnabled,
  kAdversarial,
  kDistributed,
  kSynchronous,
  kWeaklyFair,
};

DaemonPtr make_daemon(DaemonKind kind, const Invariant& inv) {
  switch (kind) {
    case kRandom: return std::make_unique<RandomDaemon>(1);
    case kRoundRobin: return std::make_unique<RoundRobinDaemon>();
    case kFirstEnabled: return std::make_unique<FirstEnabledDaemon>();
    case kAdversarial: return std::make_unique<AdversarialDaemon>(inv, 2);
    case kDistributed: return std::make_unique<DistributedDaemon>(0.5, 3);
    case kSynchronous: return std::make_unique<SynchronousDaemon>();
    case kWeaklyFair:
      return std::make_unique<WeaklyFairDaemon>(
          std::make_unique<RandomDaemon>(4), 32);
  }
  return std::make_unique<RandomDaemon>(1);
}

const char* daemon_name(DaemonKind kind) {
  switch (kind) {
    case kRandom: return "random";
    case kRoundRobin: return "round-robin";
    case kFirstEnabled: return "first-enabled(unfair)";
    case kAdversarial: return "adversarial(unfair)";
    case kDistributed: return "distributed";
    case kSynchronous: return "synchronous";
    case kWeaklyFair: return "weakly-fair";
  }
  return "?";
}

void measure(benchmark::State& state, const Design& d, DaemonKind kind) {
  auto daemon = make_daemon(kind, d.invariant);
  Rng rng(17);
  double steps = 0, moves = 0, runs = 0, converged = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 2'000'000;
    const auto r = converge(d, d.program.random_state(rng), *daemon, opts);
    steps += static_cast<double>(r.steps);
    moves += static_cast<double>(r.moves);
    converged += r.converged ? 1 : 0;
    runs += 1;
  }
  state.SetLabel(daemon_name(kind));
  state.counters["steps/run"] = steps / runs;
  state.counters["moves/run"] = moves / runs;
  state.counters["converged%"] = 100.0 * converged / runs;
}

void BM_DiffusingUnderDaemon(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(63, 2), true);
  measure(state, dd.design, static_cast<DaemonKind>(state.range(0)));
}

void BM_DijkstraUnderDaemon(benchmark::State& state) {
  const auto tr = make_dijkstra_ring(64, 65);
  measure(state, tr.design, static_cast<DaemonKind>(state.range(0)));
}

}  // namespace

BENCHMARK(BM_DiffusingUnderDaemon)->DenseRange(0, 6, 1);
BENCHMARK(BM_DijkstraUnderDaemon)->DenseRange(0, 6, 1);

NONMASK_BENCHMARK_MAIN("bench_daemons");
