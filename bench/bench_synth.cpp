// Synthesis pipeline cost: full CEGIS runs on the acceptance protocols
// (grammar enumeration + local pruning + seed replay + falsification +
// exact checking + certification), the seed-replay probe in isolation, and
// the pruning-heavy chain workload where most combinations die before the
// exact checker. (Infrastructure scaling, not a paper claim — the paper
// derives these programs by hand.)
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "checker/convergence_check.hpp"
#include "checker/falsify.hpp"
#include "checker/state_space.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"
#include "synth/synthesize.hpp"

using namespace nonmask;

namespace {

void report_counters(benchmark::State& state,
                     const synth::SynthesisResult& result,
                     std::uint64_t runs) {
  state.counters["evaluated"] =
      static_cast<double>(result.stats.evaluated);
  state.counters["seed_pruned"] =
      static_cast<double>(result.stats.pruned_by_seed);
  state.counters["falsified"] = static_cast<double>(result.stats.falsified);
  state.counters["exact_checks"] =
      static_cast<double>(result.stats.exact_checks);
  state.counters["evals/s"] = benchmark::Counter(
      static_cast<double>(result.stats.evaluated * runs),
      benchmark::Counter::kIsRate);
}

void BM_SynthesizeDiffusing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto candidate =
      make_diffusing(RootedTree::balanced(n, 2), false).design.candidate();
  synth::SynthesisResult result;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    result = synth::synthesize(candidate);
    benchmark::DoNotOptimize(result.success);
    ++runs;
  }
  report_counters(state, result, runs);
}

void BM_SynthesizeTokenRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto candidate =
      make_token_ring_bounded(n, 3, false).design.candidate();
  synth::SynthesisResult result;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    result = synth::synthesize(candidate);
    benchmark::DoNotOptimize(result.success);
    ++runs;
  }
  report_counters(state, result, runs);
}

void BM_SynthesizeColoring(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto candidate =
      make_coloring(UndirectedGraph::cycle(n)).design.candidate();
  synth::SynthesisResult result;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    result = synth::synthesize(candidate);
    benchmark::DoNotOptimize(result.success);
    ++runs;
  }
  report_counters(state, result, runs);
}

/// The chain candidate from tests/synth_test.cpp: the first three
/// combinations livelock, so this measures the falsify + seed-replay path
/// rather than the happy path.
CandidateTriple make_chain_candidate() {
  CandidateTriple t;
  t.program = Program("chain");
  const VarId a = t.program.add_variable({"a", 0, 3});
  const VarId b = t.program.add_variable({"b", 0, 3});
  const VarId c = t.program.add_variable({"c", 0, 3});
  t.invariant.add({"a=b",
                   [a, b](const State& s) { return s.get(a) == s.get(b); },
                   {a, b}});
  t.invariant.add({"b=c",
                   [b, c](const State& s) { return s.get(b) == s.get(c); },
                   {b, c}});
  t.invariant.add({"c=0", [c](const State& s) { return s.get(c) == 0; }, {c}});
  return t;
}

void BM_CegisPruningPath(benchmark::State& state) {
  const auto candidate = make_chain_candidate();
  synth::SynthesisOptions opts;
  opts.batch = static_cast<std::size_t>(state.range(0));
  synth::SynthesisResult result;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    result = synth::synthesize(candidate, opts);
    benchmark::DoNotOptimize(result.success);
    ++runs;
  }
  report_counters(state, result, runs);
}

void BM_SeedProbe(benchmark::State& state) {
  // Probe throughput from inside the kWriteXBoth livelock region — the
  // per-seed cost every surviving combination pays during replay.
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth);
  const StateSpace space(d.program);
  const auto exact = check_convergence(space, d.S(), d.T());
  const State start = exact.cycle->front();
  std::uint64_t probes = 0;
  for (auto _ : state) {
    const auto r = probe_violation_from(d, start);
    benchmark::DoNotOptimize(r.violated);
    ++probes;
  }
  state.counters["probes/s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_SynthesizeDiffusing)->Arg(3)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SynthesizeTokenRing)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SynthesizeColoring)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CegisPruningPath)->Arg(1)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SeedProbe);

NONMASK_BENCHMARK_MAIN("bench_synth");
