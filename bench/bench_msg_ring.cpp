// E10 — the message-passing token ring refinement under channel faults.
//
// Series regenerated:
//   * convergence steps vs ring size (fair daemon — the refinement needs
//     fairness, see tests/msg_test.cpp);
//   * convergence steps and S-occupancy vs message-loss probability;
//   * corruption vs loss: which fault class hurts more.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "engine/simulator.hpp"
#include "msg/mp_diffusing.hpp"
#include "msg/mp_token_ring.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

void BM_ConvergeVsSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto mp = make_mp_token_ring(n, 2 * n + 1);
  RoundRobinDaemon daemon;
  Rng rng(5);
  double steps = 0, runs = 0, converged = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 5'000'000;
    const auto r =
        converge(mp.design, mp.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    converged += r.converged ? 1 : 0;
    runs += 1;
  }
  state.counters["N"] = n;
  state.counters["steps/run"] = steps / runs;
  state.counters["converged%"] = 100.0 * converged / runs;
}

void fault_race(benchmark::State& state, bool use_corruption) {
  const int n = 16;
  const double p = static_cast<double>(state.range(0)) / 1000.0;
  const auto mp = make_mp_token_ring(n, 2 * n + 1);
  const Design& d = mp.design;
  RoundRobinDaemon daemon;
  Simulator sim(d.program, daemon);
  Rng fault_rng(23);
  const auto S = d.S();
  double hits = 0, samples = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 40'000;
    opts.perturb = [&](std::size_t step, State& s) {
      if (fault_rng.chance(p)) {
        const auto& pool =
            use_corruption ? mp.corruption_faults : mp.loss_faults;
        const auto& fa = d.program.action(
            pool[fault_rng.below(pool.size())]);
        if (fa.enabled(s)) fa.execute(s);
      }
      if (step % 16 == 0) {
        samples += 1;
        if (S(s)) hits += 1;
      }
    };
    const auto r = sim.run(d.program.initial_state(), opts);
    benchmark::DoNotOptimize(r.steps);
  }
  state.counters["fault-p"] = p;
  state.counters["S-occupancy%"] = 100.0 * hits / samples;
}

void BM_LossRace(benchmark::State& state) { fault_race(state, false); }
void BM_CorruptionRace(benchmark::State& state) { fault_race(state, true); }

// The low-atomicity diffusing refinement: convergence cost vs tree size,
// compared against the shared-memory wave (see bench_diffusing).
void BM_MpDiffusingConverge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng tree_rng(7);
  const auto tree = RootedTree::random(n, tree_rng);
  const auto md = make_mp_diffusing(tree);
  RandomDaemon daemon(11);
  Rng rng(13);
  double steps = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 10'000'000;
    const auto r =
        converge(md.design, md.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    runs += 1;
  }
  state.counters["N"] = n;
  state.counters["steps/run"] = steps / runs;
}

}  // namespace

BENCHMARK(BM_ConvergeVsSize)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_LossRace)->Arg(0)->Arg(10)->Arg(50)->Arg(200)->Arg(500);
BENCHMARK(BM_CorruptionRace)->Arg(0)->Arg(10)->Arg(50)->Arg(200)->Arg(500);
BENCHMARK(BM_MpDiffusingConverge)->Arg(15)->Arg(63)->Arg(255);

NONMASK_BENCHMARK_MAIN("bench_msg_ring");
