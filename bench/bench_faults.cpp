// E9 — time-to-repair vs fault severity (Section 3's fault-as-action view).
//
// Series regenerated:
//   * repair steps vs fraction of corrupted variables (diffusing, ring);
//   * repair steps vs number of corrupted processes;
//   * convergence under a sustained Bernoulli fault rate — repair wins the
//     race for low rates, loses for high ones (converged% drops).
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <memory>

#include "engine/simulator.hpp"
#include "faults/fault.hpp"
#include "faults/injector.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

// Corrupt a fraction p of variables of an S state, then measure repair.
void repair_after_fraction(benchmark::State& state, const Design& d,
                           State good) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  CorruptFraction model(p);
  RandomDaemon daemon(3);
  Rng rng(9);
  double steps = 0, runs = 0;
  for (auto _ : state) {
    State start = good;
    model.strike(d.program, start, rng);
    RunOptions opts;
    opts.max_steps = 10'000'000;
    const auto r = converge(d, start, daemon, opts);
    steps += static_cast<double>(r.steps);
    runs += 1;
  }
  state.counters["corrupt%"] = 100.0 * p;
  state.counters["repair-steps"] = steps / runs;
}

void BM_DiffusingRepairVsFraction(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(127, 2), true);
  repair_after_fraction(state, dd.design,
                        dd.design.program.initial_state());
}

void BM_RingRepairVsFraction(benchmark::State& state) {
  const auto tr = make_dijkstra_ring(128, 129);
  repair_after_fraction(state, tr.design, tr.design.program.initial_state());
}

void BM_DiffusingRepairVsProcesses(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(127, 2), true);
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  CorruptKProcesses model(k);
  RandomDaemon daemon(5);
  Rng rng(13);
  double steps = 0, runs = 0;
  for (auto _ : state) {
    State start = dd.design.program.initial_state();
    model.strike(dd.design.program, start, rng);
    RunOptions opts;
    opts.max_steps = 10'000'000;
    const auto r = converge(dd.design, start, daemon, opts);
    steps += static_cast<double>(r.steps);
    runs += 1;
  }
  state.counters["processes"] = static_cast<double>(k);
  state.counters["repair-steps"] = steps / runs;
}

// Sustained fault rate: one variable corrupted with probability p per step,
// forever; can the protocol hold S a majority of the time?
void BM_DiffusingUnderSustainedFaults(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(63, 2), true);
  const Design& d = dd.design;
  const double p = static_cast<double>(state.range(0)) / 10'000.0;
  RandomDaemon daemon(7);
  Simulator sim(d.program, daemon);
  const auto S = d.S();
  double in_s = 0, total = 0;
  for (auto _ : state) {
    auto inj = FaultInjector::bernoulli(
        std::make_shared<CorruptKVariables>(1), p, SIZE_MAX, 21);
    RunOptions opts;
    opts.max_steps = 20'000;
    opts.perturb = inj.hook(d.program);
    opts.stop_when = {};  // run the full window
    State s = d.program.initial_state();
    // Sample S occupancy along the run.
    std::size_t hits = 0, samples = 0;
    opts.perturb = [&](std::size_t step, State& st) {
      inj(step, d.program, st);
      if (step % 10 == 0) {
        ++samples;
        if (S(st)) ++hits;
      }
    };
    const auto r = sim.run(s, opts);
    benchmark::DoNotOptimize(r.steps);
    in_s += static_cast<double>(hits);
    total += static_cast<double>(samples);
  }
  state.counters["fault-rate"] = p;
  state.counters["S-occupancy%"] = 100.0 * in_s / total;
}

}  // namespace

BENCHMARK(BM_DiffusingRepairVsFraction)
    ->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100);
BENCHMARK(BM_RingRepairVsFraction)
    ->Arg(1)->Arg(5)->Arg(10)->Arg(25)->Arg(50)->Arg(100);
BENCHMARK(BM_DiffusingRepairVsProcesses)->Arg(1)->Arg(2)->Arg(4)->Arg(16);
BENCHMARK(BM_DiffusingUnderSustainedFaults)
    ->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

NONMASK_BENCHMARK_MAIN("bench_faults");
