// Store subsystem throughput: packed interning into the sharded concurrent
// set, frontier-engine reachability, and end-to-end store-backend
// convergence checking as the ring grows. Counters carry the numbers the
// scaling claims rest on — states/sec, peak RSS, and shard occupancy
// balance — and CI uploads the --benchmark_out JSON (BENCH_store.json).
//
// The 10^8-state acceptance run is not a benchmark (it takes minutes, not
// milliseconds); EXPERIMENTS.md E13 holds that recipe. Sizes here are
// chosen to finish in seconds while still crossing slab, grow, and
// multi-level-frontier boundaries.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "bench_report.hpp"

#include "checker/state_space.hpp"
#include "obs/rss.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "store/concurrent_set.hpp"
#include "store/facade.hpp"
#include "store/frontier.hpp"
#include "store/packed.hpp"

using namespace nonmask;
using obs::peak_rss_mb;

namespace {

/// max/mean occupancy across shards — 1.0 is a perfectly balanced hash.
double shard_imbalance(const store::ConcurrentPackedSet& set) {
  const auto stats = set.shard_stats();
  std::uint64_t total = 0, peak = 0;
  for (const auto& s : stats) {
    total += s.size;
    peak = std::max(peak, s.size);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(peak) * stats.size() /
         static_cast<double>(total);
}

store::StoreConfig store_config(unsigned threads) {
  store::StoreConfig cfg;
  cfg.backend = store::StoreBackend::kStore;
  cfg.threads = threads;
  return cfg;
}

// Interning throughput: every state of the ring packed and inserted from
// `threads` workers splitting the code range.
void BM_ConcurrentSetInsert(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const auto tr = make_dijkstra_ring(6, 8);  // 8^6 = 262'144 states
  const StateSpace space(tr.design.program);
  const store::PackedLayout layout(tr.design.program);

  std::uint64_t inserted = 0;
  for (auto _ : state) {
    store::ConcurrentPackedSet set(layout, /*shard_bits=*/6, /*seed=*/1,
                                   space.size());
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        // First-touch shard affinity: worker t materializes its contiguous
        // shard range so those pages fault in on its NUMA node.
        const unsigned shards = set.shard_count();
        for (unsigned i = shards * t / threads;
             i < shards * (t + 1) / threads; ++i) {
          set.touch(i);
        }
        const std::uint64_t lo = space.size() * t / threads;
        const std::uint64_t hi = space.size() * (t + 1) / threads;
        std::vector<std::uint64_t> words(layout.words());
        State s(space.program().num_variables());
        for (std::uint64_t code = lo; code < hi; ++code) {
          space.decode_into(code, s);
          layout.pack(s, words.data());
          set.insert(words.data());
        }
      });
    }
    for (auto& w : workers) w.join();
    inserted += set.size();
    state.counters["shard_imbalance"] = shard_imbalance(set);
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(inserted), benchmark::Counter::kIsRate);
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

// Frontier-engine BFS over the full reachable set of the diffusing tree.
void BM_FrontierReachable(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), true);
  const StateSpace space(dd.design.program);
  const auto actions = non_fault_actions(dd.design.program);
  const auto S = dd.design.S();

  std::uint64_t expanded = 0;
  for (auto _ : state) {
    store::FrontierEngine engine(space, store_config(0));
    const StateSet reach = engine.reachable(S, actions);
    benchmark::DoNotOptimize(reach.size());
    expanded += engine.stats().expanded;
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(expanded), benchmark::Counter::kIsRate);
  state.counters["space"] = static_cast<double>(space.size());
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

// End-to-end convergence check through the store backend; states/s counts
// every code swept (flags pass + DFS region).
void BM_StoreConvergence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_dijkstra_ring(n, n + 1);
  const StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  const auto T = tr.design.T();
  const auto cfg = store_config(0);

  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto report = store::check_convergence_via(cfg, space, S, T);
    benchmark::DoNotOptimize(report.verdict);
    states += space.size();
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["space"] = static_cast<double>(space.size());
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

// The same check through the legacy dense backend, for the side-by-side
// states/sec column in BENCH_store.json.
void BM_DenseConvergence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_dijkstra_ring(n, n + 1);
  const StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  const auto T = tr.design.T();
  store::StoreConfig cfg;
  cfg.backend = store::StoreBackend::kLegacyDense;

  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto report = store::check_convergence_via(cfg, space, S, T);
    benchmark::DoNotOptimize(report.verdict);
    states += space.size();
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["space"] = static_cast<double>(space.size());
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

// Weakly-fair (Tarjan/SCC) convergence through the store-native compact
// bookkeeping.
void BM_StoreFairConvergence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_dijkstra_ring(n, n + 1);
  const StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  const auto T = tr.design.T();
  const auto cfg = store_config(0);

  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto report =
        store::check_convergence_weakly_fair_via(cfg, space, S, T);
    benchmark::DoNotOptimize(report.verdict);
    states += space.size();
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["space"] = static_cast<double>(space.size());
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

// The same weakly-fair check through the legacy dense Tarjan arrays.
void BM_DenseFairConvergence(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_dijkstra_ring(n, n + 1);
  const StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  const auto T = tr.design.T();
  store::StoreConfig cfg;
  cfg.backend = store::StoreBackend::kLegacyDense;

  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto report =
        store::check_convergence_weakly_fair_via(cfg, space, S, T);
    benchmark::DoNotOptimize(report.verdict);
    states += space.size();
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["space"] = static_cast<double>(space.size());
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

}  // namespace

BENCHMARK(BM_ConcurrentSetInsert)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FrontierReachable)->Arg(5)->Arg(9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreConvergence)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseConvergence)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StoreFairConvergence)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseFairConvergence)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

NONMASK_BENCHMARK_MAIN("bench_store");
