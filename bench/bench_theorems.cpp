// E7 (cost side) — what mechanical theorem validation costs.
//
// Series regenerated:
//   * Theorem 1 validation time vs number of constraints (diffusing trees),
//     sampled obligations;
//   * exhaustive vs sampled obligation discharge on a fixed design;
//   * Theorem 3 validation on the layered token ring and coloring;
//   * constraint-graph inference time vs action count.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "cgraph/theorems.hpp"
#include "checker/state_space.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"

using namespace nonmask;

namespace {

void BM_Theorem1Sampled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), false);
  ValidationOptions opts;
  opts.samples = 500;
  const auto cg = infer_constraint_graph(dd.design.program);
  double obligations = 0;
  for (auto _ : state) {
    const auto report = validate_theorem1(dd.design, cg.graph, opts);
    benchmark::DoNotOptimize(report.applies);
    obligations = static_cast<double>(report.obligations.size());
  }
  state.counters["N"] = n;
  state.counters["constraints"] = static_cast<double>(dd.design.invariant.size());
  state.counters["obligations"] = obligations;
}

void BM_Theorem1Exhaustive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), false);
  StateSpace space(dd.design.program);
  ValidationOptions opts;
  opts.space = &space;
  const auto cg = infer_constraint_graph(dd.design.program);
  for (auto _ : state) {
    const auto report = validate_theorem1(dd.design, cg.graph, opts);
    benchmark::DoNotOptimize(report.applies);
  }
  state.counters["N"] = n;
  state.counters["states"] = static_cast<double>(space.size());
}

void BM_Theorem3TokenRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_token_ring_bounded(n, 3, false);
  StateSpace space(tr.design.program);
  ValidationOptions opts;
  opts.space = &space;
  for (auto _ : state) {
    const auto report = validate_theorem3(tr.design, tr.layers, opts);
    benchmark::DoNotOptimize(report.applies);
  }
  state.counters["N"] = n;
}

void BM_Theorem3Coloring(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto cd = make_coloring(UndirectedGraph::random_connected(n, n, rng));
  ValidationOptions opts;
  opts.samples = 1000;
  for (auto _ : state) {
    const auto report = validate_theorem3(cd.design, cd.layers, opts);
    benchmark::DoNotOptimize(report.applies);
  }
  state.counters["N"] = n;
  state.counters["layers"] = static_cast<double>(cd.layers.size());
}

void BM_GraphInference(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), false);
  for (auto _ : state) {
    const auto cg = infer_constraint_graph(dd.design.program);
    benchmark::DoNotOptimize(cg.ok);
  }
  state.counters["actions"] =
      static_cast<double>(dd.design.program.num_actions());
}

}  // namespace

BENCHMARK(BM_Theorem1Sampled)->Arg(7)->Arg(15)->Arg(31)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Theorem1Exhaustive)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Theorem3TokenRing)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Theorem3Coloring)->Arg(8)->Arg(16);
BENCHMARK(BM_GraphInference)->Arg(15)->Arg(127)->Arg(1023);

NONMASK_BENCHMARK_MAIN("bench_theorems");
