// E5 — stabilizing token rings (Section 7.1).
//
// Series regenerated:
//   * Dijkstra mod-K ring: convergence steps from random corruption vs N
//     (K = N + 1), and the stabilization boundary in K for small N via the
//     exact checker (stabilizes iff K large enough; K <= N - 2 livelocks);
//   * token circulation throughput (steps per full ring revolution) in S;
//   * the paper's bounded design: worst-case steps-to-S via the checker.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

void BM_DijkstraConverge(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_dijkstra_ring(n, n + 1);
  RandomDaemon daemon(3);
  Rng rng(11);
  double steps = 0, rounds = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 50'000'000;
    const auto r =
        converge(tr.design, tr.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    rounds += static_cast<double>(r.rounds);
    runs += 1;
  }
  state.counters["N"] = n;
  state.counters["steps/run"] = steps / runs;
  state.counters["rounds/run"] = rounds / runs;
}

// Stabilization boundary: exact verdict per (N, K). Reported as counter
// stabilizes = 0/1; the series shows the K >= N cutoff shape.
void BM_KBoundary(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int K = static_cast<int>(state.range(1));
  const auto tr = make_dijkstra_ring(n, K);
  double verdict = 0;
  for (auto _ : state) {
    StateSpace space(tr.design.program);
    const auto report =
        check_convergence(space, tr.design.S(), tr.design.T());
    verdict = report.verdict == ConvergenceVerdict::kConverges ? 1 : 0;
    benchmark::DoNotOptimize(report.region_states);
  }
  state.counters["N"] = n;
  state.counters["K"] = K;
  state.counters["stabilizes"] = verdict;
}

// Token circulation throughput in S: moves per full revolution.
void BM_Circulation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_dijkstra_ring(n, n + 1);
  RoundRobinDaemon daemon;
  Simulator sim(tr.design.program, daemon);
  State s = tr.design.program.initial_state();
  RunOptions opts;
  opts.max_steps = 1;
  double steps = 0, revolutions = 0;
  for (auto _ : state) {
    // One revolution: privilege returns to node 0.
    bool left_zero = false;
    while (true) {
      s = sim.run(s, opts).final_state;
      steps += 1;
      const int at = tr.first_privileged(s);
      if (at != 0) left_zero = true;
      if (left_zero && at == 0) break;
    }
    revolutions += 1;
  }
  state.counters["N"] = n;
  state.counters["steps/revolution"] = steps / revolutions;
}

// The paper's bounded design: exact worst-case convergence distance.
void BM_BoundedWorstCase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Value x_max = static_cast<Value>(state.range(1));
  const auto tr = make_token_ring_bounded(n, x_max, true);
  for (auto _ : state) {
    StateSpace space(tr.design.program);
    const auto report =
        check_convergence(space, tr.design.S(), tr.design.T());
    state.counters["worst-steps"] =
        static_cast<double>(report.max_steps_to_S);
    state.counters["states"] = static_cast<double>(space.size());
    benchmark::DoNotOptimize(report.verdict);
  }
  state.counters["N"] = n;
  state.counters["x_max"] = x_max;
}

// Dijkstra's constant-state solutions: simulated convergence vs n, and
// exact worst-case distance on small n (compare with the K-state ring).
void BM_SmallRingConverge(benchmark::State& state) {
  const bool four = state.range(0) == 4;
  const int n = static_cast<int>(state.range(1));
  const auto sr =
      four ? make_dijkstra_four_state(n) : make_dijkstra_three_state(n);
  RandomDaemon daemon(9);
  Rng rng(13);
  double steps = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 20'000'000;
    const auto r =
        converge(sr.design, sr.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    runs += 1;
  }
  state.SetLabel(four ? "four-state" : "three-state");
  state.counters["N"] = n;
  state.counters["steps/run"] = steps / runs;
}

void BM_SmallRingWorstCase(benchmark::State& state) {
  const bool four = state.range(0) == 4;
  const int n = static_cast<int>(state.range(1));
  const auto sr =
      four ? make_dijkstra_four_state(n) : make_dijkstra_three_state(n);
  for (auto _ : state) {
    StateSpace space(sr.design.program);
    const auto report =
        check_convergence(space, sr.design.S(), sr.design.T());
    state.counters["worst-steps"] =
        static_cast<double>(report.max_steps_to_S);
    benchmark::DoNotOptimize(report.verdict);
  }
  state.SetLabel(four ? "four-state" : "three-state");
  state.counters["N"] = n;
}

}  // namespace

BENCHMARK(BM_DijkstraConverge)->Arg(8)->Arg(32)->Arg(128)->Arg(512);
BENCHMARK(BM_SmallRingConverge)
    ->ArgsProduct({{3, 4}, {8, 32, 128}});
BENCHMARK(BM_SmallRingWorstCase)
    ->ArgsProduct({{3, 4}, {4, 6, 8}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KBoundary)
    ->ArgsProduct({{4, 5}, {2, 3, 4, 5, 6}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Circulation)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_BoundedWorstCase)
    ->ArgsProduct({{3, 4}, {3, 5}})
    ->Unit(benchmark::kMillisecond);

NONMASK_BENCHMARK_MAIN("bench_token_ring");
