// Ablations over the design choices DESIGN.md calls out:
//   A1: combined vs separated action forms (Sections 5.1/7.1's "these two
//       actions can then be combined") — same convergence, fewer actions;
//   A2: distributed-daemon firing probability — more simultaneity, fewer
//       selections, same moves order;
//   A3: weak-fairness patience — how much forcing costs;
//   A4: per-step price of the engine's optional contract checking.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <memory>

#include "engine/simulator.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

void BM_CombinedVsSeparated(benchmark::State& state) {
  const bool combined = state.range(0) == 1;
  const auto dd = make_diffusing(RootedTree::balanced(63, 2), combined);
  RandomDaemon daemon(3);
  Rng rng(7);
  double steps = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 5'000'000;
    const auto r =
        converge(dd.design, dd.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    runs += 1;
  }
  state.SetLabel(combined ? "combined" : "separated");
  state.counters["actions"] =
      static_cast<double>(dd.design.program.num_actions());
  state.counters["steps/run"] = steps / runs;
}

void BM_DistributedFiringProbability(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  const auto dd = make_diffusing(RootedTree::balanced(63, 2), true);
  DistributedDaemon daemon(p, 5);
  Rng rng(9);
  double steps = 0, moves = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 5'000'000;
    const auto r =
        converge(dd.design, dd.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    moves += static_cast<double>(r.moves);
    runs += 1;
  }
  state.counters["p-fire"] = p;
  state.counters["selections/run"] = steps / runs;
  state.counters["moves/run"] = moves / runs;
}

void BM_WeakFairnessPatience(benchmark::State& state) {
  const std::size_t patience = static_cast<std::size_t>(state.range(0));
  const auto tr = make_dijkstra_ring(32, 33);
  WeaklyFairDaemon daemon(std::make_unique<RandomDaemon>(3), patience);
  Rng rng(11);
  double steps = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 5'000'000;
    const auto r =
        converge(tr.design, tr.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    runs += 1;
  }
  state.counters["patience"] = static_cast<double>(patience);
  state.counters["steps/run"] = steps / runs;
}

void BM_ContractCheckingOverhead(benchmark::State& state) {
  const bool check = state.range(0) == 1;
  const auto dd = make_diffusing(RootedTree::balanced(31, 2), true);
  RandomDaemon daemon(13);
  Rng rng(15);
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 5'000'000;
    opts.check_contracts = check;
    const auto r =
        converge(dd.design, dd.design.program.random_state(rng), daemon, opts);
    benchmark::DoNotOptimize(r.steps);
  }
  state.SetLabel(check ? "checked" : "unchecked");
}

}  // namespace

BENCHMARK(BM_CombinedVsSeparated)->Arg(0)->Arg(1);
BENCHMARK(BM_DistributedFiringProbability)
    ->Arg(10)->Arg(25)->Arg(50)->Arg(75)->Arg(100);
BENCHMARK(BM_WeakFairnessPatience)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ContractCheckingOverhead)->Arg(0)->Arg(1);

NONMASK_BENCHMARK_MAIN("bench_ablation");
