// Resilience subsystem benchmarks.
//
// Series regenerated:
//   * adversary search cost vs corruption budget k (exhaustive greedy on
//     Dijkstra's ring — dominated by the lazy longest-path evaluation);
//   * hill-climb search cost vs restart count (simulation-bound);
//   * checkpoint journal render + parse round-trip throughput;
//   * campaign overhead of the watchdog policy vs the bare runner.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include <sstream>

#include "parallel/campaign.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "resilience/adversary.hpp"
#include "resilience/journal.hpp"

using namespace nonmask;

namespace {

void BM_AdversaryExhaustive(benchmark::State& state) {
  const auto tr = make_dijkstra_ring(5, 6);
  AdversaryOptions opts;
  opts.budget_k = static_cast<std::size_t>(state.range(0));
  std::uint64_t worst = 0, evals = 0;
  for (auto _ : state) {
    const AdversaryResult r = find_worst_placement(tr.design, opts);
    worst = r.worst_case_steps;
    evals = r.evaluations;
    benchmark::DoNotOptimize(r);
  }
  state.counters["worst-steps"] = static_cast<double>(worst);
  state.counters["evals"] = static_cast<double>(evals);
}
BENCHMARK(BM_AdversaryExhaustive)->Arg(1)->Arg(2)->Arg(3);

void BM_AdversaryHillClimb(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(7, 2), true);
  AdversaryOptions opts;
  opts.budget_k = 3;
  opts.force_hill_climb = true;
  opts.restarts = static_cast<std::size_t>(state.range(0));
  opts.iterations = 16;
  std::uint64_t worst = 0;
  for (auto _ : state) {
    const AdversaryResult r = find_worst_placement(dd.design, opts);
    worst = r.worst_case_steps;
    benchmark::DoNotOptimize(r);
  }
  state.counters["worst-steps"] = static_cast<double>(worst);
}
BENCHMARK(BM_AdversaryHillClimb)->Arg(2)->Arg(4)->Arg(8);

void BM_JournalRoundTrip(benchmark::State& state) {
  TrialRecord record;
  record.trial = 123;
  record.seeds = {0xdeadbeefULL, 0xfeedfaceULL};
  record.outcome.converged = true;
  record.outcome.steps = 4567;
  record.outcome.rounds = 89;
  record.outcome.moves = 4000;
  for (auto _ : state) {
    const std::string line = to_jsonl("bench-design", record);
    const auto parsed = parse_trial_jsonl(line);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_JournalRoundTrip);

void BM_CampaignWithPolicy(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(15, 2), true);
  ConvergenceExperiment config;
  config.trials = 32;
  config.seed = 7;
  const bool with_policy = state.range(0) != 0;
  for (auto _ : state) {
    CampaignOptions opts;
    opts.threads = 4;
    if (with_policy) {
      opts.policy.deadline = std::chrono::seconds(30);
      opts.policy.max_retries = 2;
    }
    const auto results = run_campaign(dd.design, config, opts);
    benchmark::DoNotOptimize(results);
  }
  state.counters["policy"] = with_policy ? 1 : 0;
}
BENCHMARK(BM_CampaignWithPolicy)->Arg(0)->Arg(1);

}  // namespace

NONMASK_BENCHMARK_MAIN("bench_resilience");
