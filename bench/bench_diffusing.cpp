// E3/E4 — stabilizing diffusing computation (Section 5.1).
//
// Series regenerated:
//   * convergence cost (steps, asynchronous rounds) from fully random
//     corruption, vs N, for chain / star / balanced-binary / random trees —
//     rounds track tree height (chain linear, star constant-ish);
//   * the fault-free wave period in S (one full red+green sweep), vs N.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "engine/simulator.hpp"
#include "protocols/diffusing.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

enum Shape { kChain = 0, kStar = 1, kBinary = 2, kRandomTree = 3 };

RootedTree make_shape(Shape shape, int n, Rng& rng) {
  switch (shape) {
    case kChain: return RootedTree::chain(n);
    case kStar: return RootedTree::star(n);
    case kBinary: return RootedTree::balanced(n, 2);
    case kRandomTree: return RootedTree::random(n, rng);
  }
  return RootedTree::chain(n);
}

const char* shape_name(Shape shape) {
  switch (shape) {
    case kChain: return "chain";
    case kStar: return "star";
    case kBinary: return "binary";
    case kRandomTree: return "random";
  }
  return "?";
}

void BM_Converge(benchmark::State& state) {
  const auto shape = static_cast<Shape>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng tree_rng(1234);
  const auto tree = make_shape(shape, n, tree_rng);
  const auto dd = make_diffusing(tree, true);
  RandomDaemon daemon(99);
  Rng rng(5);
  double steps = 0, rounds = 0, runs = 0;
  for (auto _ : state) {
    RunOptions opts;
    opts.max_steps = 10'000'000;
    const auto r =
        converge(dd.design, dd.design.program.random_state(rng), daemon, opts);
    steps += static_cast<double>(r.steps);
    rounds += static_cast<double>(r.rounds);
    runs += 1;
  }
  state.SetLabel(shape_name(shape));
  state.counters["N"] = n;
  state.counters["height"] = tree.height();
  state.counters["steps/run"] = steps / runs;
  state.counters["rounds/run"] = rounds / runs;
}

// Fault-free wave period: steps for the root to complete one full
// initiate -> ... -> reflect cycle, in S, under round-robin.
void BM_WavePeriod(benchmark::State& state) {
  const auto shape = static_cast<Shape>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  Rng tree_rng(1234);
  const auto tree = make_shape(shape, n, tree_rng);
  const auto dd = make_diffusing(tree, true);
  RoundRobinDaemon daemon;
  Simulator sim(dd.design.program, daemon);
  const VarId root_color = dd.color[static_cast<std::size_t>(tree.root())];

  double steps = 0, waves = 0;
  State s = dd.design.program.initial_state();
  RunOptions opts;
  opts.max_steps = 1;
  for (auto _ : state) {
    // One wave: root goes red, then green again.
    bool went_red = false;
    while (true) {
      s = sim.run(s, opts).final_state;
      steps += 1;
      const bool red = s.get(root_color) == kRed;
      if (red) went_red = true;
      if (went_red && !red) break;
    }
    waves += 1;
  }
  state.SetLabel(shape_name(shape));
  state.counters["N"] = n;
  // Every node fires exactly one propagate and one reflect per wave (plus
  // the root's initiate replacing its propagate): 2N steps regardless of
  // shape. Depth shows up in *rounds*, not steps — see BM_Converge.
  state.counters["steps/wave"] = steps / waves;
  state.counters["2N"] = 2.0 * n;
  state.counters["height"] = tree.height();
}

}  // namespace

BENCHMARK(BM_Converge)
    ->ArgsProduct({{kChain, kStar, kBinary, kRandomTree},
                   {15, 63, 255, 1023}});
BENCHMARK(BM_WavePeriod)
    ->ArgsProduct({{kChain, kStar, kBinary}, {15, 63, 255}});

NONMASK_BENCHMARK_MAIN("bench_diffusing");
