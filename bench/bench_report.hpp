// Shared main() for the bench binaries: the standard google-benchmark
// driver plus a machine-readable run-report sidecar. When the environment
// variable NONMASK_REPORT_OUT names a path, the process writes a RunReport
// JSON there on exit (tool name, timestamp, wall time, and the metrics
// snapshot — populated when NONMASK_METRICS=1 enables collection), so a
// benchmark trajectory can carry a self-describing telemetry document next
// to google-benchmark's own --benchmark_out file.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/report.hpp"

#define NONMASK_BENCHMARK_MAIN(tool)                                       \
  int main(int argc, char** argv) {                                        \
    if (const char* env = std::getenv("NONMASK_METRICS");                  \
        env != nullptr && env[0] == '1') {                                 \
      ::nonmask::obs::Metrics::set_enabled(true);                          \
    }                                                                      \
    ::benchmark::Initialize(&argc, argv);                                  \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;    \
    ::benchmark::RunSpecifiedBenchmarks();                                 \
    ::benchmark::Shutdown();                                               \
    ::nonmask::obs::write_env_report(tool);                                \
    return 0;                                                              \
  }                                                                       \
  static_assert(true, "require a trailing semicolon")
