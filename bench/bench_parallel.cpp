// Serial-vs-N-thread throughput of the parallel subsystem: sharded closure
// and convergence sweeps on the token-ring and diffusing designs, and
// campaign trial throughput. The thread count is the benchmark argument,
// so `--benchmark_filter=Sweep` prints a direct scaling table.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "checker/state_space.hpp"
#include "engine/experiment.hpp"
#include "parallel/campaign.hpp"
#include "parallel/sweep.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"

using namespace nonmask;

namespace {

SweepOptions sweep_opts(std::int64_t threads) {
  SweepOptions opts;
  opts.threads = static_cast<unsigned>(threads);
  return opts;
}

void BM_SweepClosureTokenRing(benchmark::State& state) {
  const auto tr = make_dijkstra_ring(7, 8);  // 8^7 = 2M states
  StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto report = check_closed_parallel(space, S, sweep_opts(state.range(0)));
    benchmark::DoNotOptimize(report.closed);
    states += space.size();
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_SweepClosureDiffusing(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(10, 2), true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto report = check_closed_parallel(space, S, sweep_opts(state.range(0)));
    benchmark::DoNotOptimize(report.closed);
    states += space.size();
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_SweepConvergenceTokenRing(benchmark::State& state) {
  const auto tr = make_dijkstra_ring(6, 6);  // 6^6 = 46656 states
  StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  const auto T = tr.design.T();
  std::uint64_t transitions = 0;
  for (auto _ : state) {
    const auto report =
        check_convergence_parallel(space, S, T, sweep_opts(state.range(0)));
    benchmark::DoNotOptimize(report.verdict);
    transitions += report.transitions;
  }
  state.counters["transitions/s"] = benchmark::Counter(
      static_cast<double>(transitions), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_SweepFaultSpanDiffusing(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(9, 2), true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  for (auto _ : state) {
    const auto span =
        compute_fault_span_parallel(space, S, {}, {}, sweep_opts(state.range(0)));
    benchmark::DoNotOptimize(span.size());
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_CampaignTokenRing(benchmark::State& state) {
  const auto tr = make_dijkstra_ring(24, 25);
  ConvergenceExperiment config;
  config.trials = 64;
  config.seed = 1;
  config.max_steps = 2'000'000;
  CampaignOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  std::uint64_t trials = 0;
  for (auto _ : state) {
    const auto results = run_campaign(tr.design, config, opts);
    benchmark::DoNotOptimize(results.aggregate.converged_fraction);
    benchmark::DoNotOptimize(results.aggregate.steps.stddev);
    trials += config.trials;
  }
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(trials), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

void BM_CampaignDiffusing(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(31, 2), true);
  ConvergenceExperiment config;
  config.trials = 64;
  config.seed = 1;
  config.max_steps = 2'000'000;
  CampaignOptions opts;
  opts.threads = static_cast<unsigned>(state.range(0));
  std::uint64_t trials = 0;
  for (auto _ : state) {
    const auto results = run_campaign(dd.design, config, opts);
    benchmark::DoNotOptimize(results.aggregate.converged_fraction);
    trials += config.trials;
  }
  state.counters["trials/s"] = benchmark::Counter(
      static_cast<double>(trials), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_SweepClosureTokenRing)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepClosureDiffusing)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepConvergenceTokenRing)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepFaultSpanDiffusing)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignTokenRing)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CampaignDiffusing)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

NONMASK_BENCHMARK_MAIN("bench_parallel");
