// Checker throughput: explicit-state enumeration rates for closure and
// convergence checking, and the weakly-fair SCC analysis, as the state
// space grows. (Infrastructure scaling, not a paper claim.)
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "checker/falsify.hpp"
#include "checker/synchronous.hpp"
#include "checker/variant.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/running_example.hpp"
#include "protocols/token_ring.hpp"

using namespace nonmask;

namespace {

void BM_ClosureThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  std::uint64_t states = 0;
  for (auto _ : state) {
    const auto report = check_closed(space, S);
    benchmark::DoNotOptimize(report.closed);
    states += space.size();
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states), benchmark::Counter::kIsRate);
  state.counters["space"] = static_cast<double>(space.size());
}

void BM_ConvergenceThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  const auto T = dd.design.T();
  std::uint64_t transitions = 0;
  for (auto _ : state) {
    const auto report = check_convergence(space, S, T);
    benchmark::DoNotOptimize(report.verdict);
    transitions += report.transitions;
  }
  state.counters["transitions/s"] = benchmark::Counter(
      static_cast<double>(transitions), benchmark::Counter::kIsRate);
  state.counters["space"] = static_cast<double>(space.size());
}

void BM_WeaklyFairThroughput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto tr = make_dijkstra_ring(n, n);
  StateSpace space(tr.design.program);
  const auto S = tr.design.S();
  const auto T = tr.design.T();
  for (auto _ : state) {
    const auto report = check_convergence_weakly_fair(space, S, T);
    benchmark::DoNotOptimize(report.verdict);
  }
  state.counters["space"] = static_cast<double>(space.size());
}

void BM_VariantExtraction(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  for (auto _ : state) {
    const auto variant = compute_variant(space, S);
    benchmark::DoNotOptimize(variant.has_value());
  }
  state.counters["space"] = static_cast<double>(space.size());
}

// Synchronous-daemon checking: a deterministic function on states, so
// worst cases come out much smaller and checking much faster than the
// interleaved analysis.
void BM_SynchronousCheck(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto dd = make_diffusing(RootedTree::balanced(n, 2), true);
  StateSpace space(dd.design.program);
  const auto S = dd.design.S();
  const auto T = dd.design.T();
  for (auto _ : state) {
    const auto report = check_convergence_synchronous(space, S, T);
    state.counters["worst-sync-steps"] =
        static_cast<double>(report.max_steps_to_S);
    benchmark::DoNotOptimize(report.converges);
  }
  state.counters["space"] = static_cast<double>(space.size());
}

// Monte-Carlo falsification throughput at a domain size no exhaustive
// checker can touch, against the known-livelocking running example.
void BM_Falsify(benchmark::State& state) {
  const Design d = make_running_example(RunningExampleVariant::kWriteXBoth, 0,
                                        (1 << 16));
  FalsifyOptions opts;
  opts.walks = 50;
  opts.make_start = [](const Program& p, Rng& rng) {
    State s = p.random_state(rng);
    s.set(p.find_variable("z"), s.get(p.find_variable("y")));
    return s;
  };
  double found = 0, runs = 0;
  for (auto _ : state) {
    opts.seed = static_cast<std::uint64_t>(runs) + 1;
    const auto result = falsify_convergence(d, opts);
    found += result.violated ? 1 : 0;
    runs += 1;
    benchmark::DoNotOptimize(result.steps_taken);
  }
  state.counters["found%"] = 100.0 * found / runs;
}

void BM_EncodeDecode(benchmark::State& state) {
  const auto dd = make_diffusing(RootedTree::balanced(10, 2), true);
  StateSpace space(dd.design.program);
  State s(dd.design.program.num_variables());
  std::uint64_t code = 0;
  for (auto _ : state) {
    space.decode_into(code % space.size(), s);
    benchmark::DoNotOptimize(space.encode(s));
    ++code;
  }
}

}  // namespace

BENCHMARK(BM_ClosureThroughput)->Arg(5)->Arg(7)->Arg(9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ConvergenceThroughput)->Arg(5)->Arg(7)->Arg(9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WeaklyFairThroughput)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VariantExtraction)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SynchronousCheck)->Arg(5)->Arg(7)->Arg(9)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Falsify)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EncodeDecode);

NONMASK_BENCHMARK_MAIN("bench_checker");
