// E2 — the Section 4/6 running example {x != y, x <= z}.
//
// Regenerates the paper's qualitative claims as numbers:
//   * kWriteYZ (out-tree, Theorem 1): converges; worst case <= 2 steps.
//   * kWriteXBoth (shared target, no order): livelocks — steps hit the cap.
//   * kDecreaseX (Theorem 2 order): converges; steps bounded by the domain.
// Also times the exact checker on each variant.
#include <benchmark/benchmark.h>

#include "bench_report.hpp"

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "protocols/running_example.hpp"
#include "sched/daemons.hpp"

using namespace nonmask;

namespace {

void run_variant(benchmark::State& state, RunningExampleVariant variant) {
  const Value hi = static_cast<Value>(state.range(0));
  const Design d = make_running_example(variant, 0, hi);
  RandomDaemon daemon(42);
  Rng rng(7);
  double total_steps = 0, runs = 0, converged = 0;
  for (auto _ : state) {
    State start = d.program.random_state(rng);
    RunOptions opts;
    opts.max_steps = 1000;
    const auto r = converge(d, start, daemon, opts);
    total_steps += static_cast<double>(r.steps);
    converged += r.converged ? 1 : 0;
    runs += 1;
    benchmark::DoNotOptimize(r.final_state);
  }
  state.counters["steps/run"] = total_steps / runs;
  state.counters["converged%"] = 100.0 * converged / runs;
}

void BM_WriteYZ(benchmark::State& state) {
  run_variant(state, RunningExampleVariant::kWriteYZ);
}
void BM_WriteXBoth(benchmark::State& state) {
  run_variant(state, RunningExampleVariant::kWriteXBoth);
}
void BM_DecreaseX(benchmark::State& state) {
  run_variant(state, RunningExampleVariant::kDecreaseX);
}

void BM_ExactCheck(benchmark::State& state) {
  const auto variant = static_cast<RunningExampleVariant>(state.range(0));
  const Design d = make_running_example(variant, 0, 15);
  for (auto _ : state) {
    StateSpace space(d.program);
    const auto report = check_convergence(space, d.S(), d.T());
    benchmark::DoNotOptimize(report.verdict);
    state.counters["region"] = static_cast<double>(report.region_states);
    state.counters["converges"] =
        report.verdict == ConvergenceVerdict::kConverges ? 1 : 0;
  }
}

}  // namespace

BENCHMARK(BM_WriteYZ)->Arg(7)->Arg(63);
BENCHMARK(BM_WriteXBoth)->Arg(7)->Arg(63);
BENCHMARK(BM_DecreaseX)->Arg(7)->Arg(63);
BENCHMARK(BM_ExactCheck)->DenseRange(0, 2, 1);

NONMASK_BENCHMARK_MAIN("bench_running_example");
