#include "checker/fault_span.hpp"

#include <deque>

#include "checker/convergence_check.hpp"
#include "core/candidate.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"

namespace nonmask {

PredicateFn StateSet::as_predicate() const {
  auto members = std::make_shared<std::vector<std::uint8_t>>(members_);
  const StateSpace* space = space_;
  return [members, space](const State& s) {
    return (*members)[space->encode(s)] != 0;
  };
}

namespace detail {

void expand_reachable(const StateSpace& space,
                      const std::vector<std::size_t>& actions,
                      const FaultSpanOptions& opts, std::uint64_t code,
                      State& scratch, std::vector<std::uint64_t>& out) {
  const Program& p = space.program();
  out.clear();
  space.decode_into(code, scratch);
  for (std::size_t idx : actions) {
    const Action& a = p.action(idx);
    const bool fire =
        a.kind() == ActionKind::kFault && !opts.respect_fault_guards
            ? true
            : a.enabled(scratch);
    if (!fire) continue;
    out.push_back(space.encode(a.apply(scratch)));
  }
}

}  // namespace detail

StateSet compute_reachable(const StateSpace& space, const PredicateFn& start,
                           const std::vector<std::size_t>& actions,
                           const FaultSpanOptions& opts) {
  obs::Span span("checker.reach");
  const Program& p = space.program();
  StateSet set(space);
  const std::uint64_t cap =
      opts.max_states == 0 ? space.size() : opts.max_states;
  obs::ProgressMeter meter("reach", cap);

  std::deque<std::uint64_t> frontier;
  State s(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (start(s)) {
      set.insert_code(code);
      frontier.push_back(code);
    }
  }

  std::vector<std::uint64_t> succs;
  std::uint64_t expanded = 0;
  while (!frontier.empty() && set.size() < cap) {
    const std::uint64_t code = frontier.front();
    frontier.pop_front();
    detail::expand_reachable(space, actions, opts, code, s, succs);
    for (std::uint64_t succ : succs) {
      if (!set.contains_code(succ)) {
        set.insert_code(succ);
        frontier.push_back(succ);
      }
    }
    if (((++expanded) & 0x3FF) == 0) {  // batch the progress bookkeeping
      meter.aux("frontier", frontier.size());
      meter.add(set.size() - meter.done());
    }
  }
  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("checker.reach.expanded").add(expanded);
    registry.counter("checker.reach.states").add(set.size());
  }
  return set;
}

StateSet compute_fault_span(const StateSpace& space, const PredicateFn& S,
                            const std::vector<std::size_t>& fault_actions,
                            const FaultSpanOptions& opts) {
  std::vector<std::size_t> actions = non_fault_actions(space.program());
  actions.insert(actions.end(), fault_actions.begin(), fault_actions.end());
  return compute_reachable(space, S, actions, opts);
}

FaultClassReport verify_against_fault_class(
    const StateSpace& space, const Design& design,
    const std::vector<std::size_t>& fault_actions, bool weakly_fair) {
  FaultClassReport report;
  const PredicateFn S = design.S();
  const PredicateFn T = design.fault_span;
  const auto span = compute_fault_span(space, S, fault_actions);
  report.induced_span_size = span.size();

  report.span_within_declared_T = true;
  State s(space.program().num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    if (!span.contains_code(code)) continue;
    space.decode_into(code, s);
    if (!T(s)) {
      report.span_within_declared_T = false;
      break;
    }
  }

  const PredicateFn span_pred = span.as_predicate();
  const auto conv = weakly_fair
                        ? check_convergence_weakly_fair(space, S, span_pred)
                        : check_convergence(space, S, span_pred);
  report.converges_from_span =
      conv.verdict == ConvergenceVerdict::kConverges;
  return report;
}

}  // namespace nonmask
