// Closure checking (the first requirement of T-tolerance, Section 3):
// a state predicate R is closed in p iff every action of p preserves R.
// Checked exhaustively over the explicit state space.
#pragma once

#include <optional>
#include <vector>

#include "checker/state_space.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"

namespace nonmask {

struct ClosureViolation {
  State state;              ///< R holds here, action enabled
  std::size_t action;       ///< index of the offending action
  State successor;          ///< R fails here
};

struct ClosureReport {
  bool closed = false;
  std::optional<ClosureViolation> violation;
  std::uint64_t states_checked = 0;
  std::uint64_t transitions_checked = 0;
};

/// Check that `predicate` is closed under the given actions (indices into
/// p.actions()). Exhaustive over the full state space.
ClosureReport check_closed(const StateSpace& space, const PredicateFn& predicate,
                           const std::vector<std::size_t>& actions);

/// Check closure under all non-fault actions of the program.
ClosureReport check_closed(const StateSpace& space,
                           const PredicateFn& predicate);

namespace detail {

/// One contiguous slice [begin, end) of the closure scan, stopping at the
/// first violation inside the slice with counts exactly as the serial scan
/// leaves them at that point. The serial check and the parallel sweep
/// (parallel/sweep.hpp) are both concatenations of slices, so their
/// reports agree bit-for-bit.
ClosureReport scan_closure_range(const StateSpace& space,
                                 const PredicateFn& predicate,
                                 const std::vector<std::size_t>& actions,
                                 std::uint64_t begin, std::uint64_t end,
                                 State& scratch);

/// Bump the checker.closure.* counters from a finished report (shared by
/// the serial check and the parallel sweep's reduction).
void record_closure_metrics(const ClosureReport& report);

}  // namespace detail

}  // namespace nonmask
