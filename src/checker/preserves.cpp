#include "checker/preserves.hpp"

#include "util/rng.hpp"

namespace nonmask {

namespace {

bool check_one(const Action& action, const PredicateFn& predicate,
               const PredicateFn& context, const State& s,
               PreservesReport& report) {
  if (context && !context(s)) return true;
  if (!predicate(s) || !action.enabled(s)) return true;
  ++report.checked;
  if (!predicate(action.apply(s))) {
    report.preserves = false;
    report.counterexample = s;
    return false;
  }
  return true;
}

}  // namespace

PreservesReport check_preserves(const Program& program, const Action& action,
                                const PredicateFn& predicate,
                                const PreservesOptions& opts) {
  PreservesReport report;
  report.preserves = true;
  if (opts.space != nullptr) {
    report.exhaustive = true;
    State s(program.num_variables());
    for (std::uint64_t code = 0; code < opts.space->size(); ++code) {
      opts.space->decode_into(code, s);
      if (!check_one(action, predicate, opts.context, s, report)) {
        return report;
      }
    }
    return report;
  }
  Rng rng(opts.seed);
  for (std::uint64_t i = 0; i < opts.samples; ++i) {
    const State s = program.random_state(rng);
    if (!check_one(action, predicate, opts.context, s, report)) {
      return report;
    }
  }
  return report;
}

}  // namespace nonmask
