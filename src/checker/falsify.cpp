#include "checker/falsify.hpp"

#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace nonmask {

FalsifyResult falsify_convergence(const Design& design,
                                  const FalsifyOptions& opts) {
  const Program& p = design.program;
  const PredicateFn S = design.S();
  const PredicateFn T = design.T();
  FalsifyResult result;
  Rng rng(opts.seed);

  for (std::uint64_t walk = 0; walk < opts.walks; ++walk) {
    ++result.walks_run;
    State s = opts.make_start ? opts.make_start(p, rng) : p.random_state(rng);
    if (!T(s)) continue;  // computations start inside the fault-span

    // Visited states since the last S-state, in visit order, for cycle
    // extraction. Keyed by hash; collisions resolved by comparing states.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
    std::vector<State> path;

    for (std::uint64_t step = 0; step < opts.max_walk_length; ++step) {
      ++result.steps_taken;
      if (S(s)) break;  // this walk converged; try another

      // Revisit check: a repeated ¬S state closes a cycle outside S.
      const std::uint64_t h = s.hash();
      auto it = index.find(h);
      if (it != index.end()) {
        for (std::size_t pos : it->second) {
          if (path[pos] == s) {
            result.violated = true;
            result.cycle.emplace(path.begin() + static_cast<long>(pos),
                                 path.end());
            return result;
          }
        }
      }
      index[h].push_back(path.size());
      path.push_back(s);

      const auto enabled = p.enabled_actions(s);
      if (enabled.empty()) {
        result.violated = true;
        result.deadlock = s;
        return result;
      }

      // Pick the next action: adversarially biased or uniform.
      std::size_t choice = enabled[rng.below(enabled.size())];
      if (rng.chance(opts.adversarial_bias) &&
          design.invariant.size() != 0) {
        std::size_t best_score = 0;
        for (std::size_t idx : enabled) {
          const std::size_t score =
              design.invariant.violation_count(p.action(idx).apply(s));
          if (score >= best_score) {
            best_score = score;
            choice = idx;
          }
        }
      }
      s = p.action(choice).apply(s);
    }
  }
  return result;
}

FalsifyResult probe_violation_from(const Design& design, const State& start,
                                   const ProbeOptions& opts) {
  const Program& p = design.program;
  const PredicateFn S = design.S();
  const PredicateFn T = design.T();
  FalsifyResult result;
  if (!T(start) || S(start)) return result;
  result.walks_run = 1;

  // Iterative DFS with explicit three-color marking: a gray (on-stack)
  // revisit is a back edge, i.e. a ¬S cycle.
  enum class Color { kGray, kBlack };
  std::unordered_map<std::uint64_t, std::vector<std::pair<State, Color>>>
      seen;
  auto find = [&seen](const State& s) -> Color* {
    auto it = seen.find(s.hash());
    if (it == seen.end()) return nullptr;
    for (auto& [state, color] : it->second) {
      if (state == s) return &color;
    }
    return nullptr;
  };

  struct Frame {
    State state;
    std::vector<std::size_t> enabled;
    std::size_t next = 0;
  };
  std::vector<Frame> stack;
  std::uint64_t visited = 0;

  auto push = [&](State s) -> bool {
    if (++visited > opts.max_states) return false;
    seen[s.hash()].emplace_back(s, Color::kGray);
    auto enabled = p.enabled_actions(s);
    if (enabled.empty()) {
      result.violated = true;
      result.deadlock = std::move(s);
      return false;
    }
    stack.push_back(Frame{std::move(s), std::move(enabled)});
    return true;
  };

  if (!push(start)) return result;
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next == top.enabled.size()) {
      *find(top.state) = Color::kBlack;
      stack.pop_back();
      continue;
    }
    ++result.steps_taken;
    State succ = p.action(top.enabled[top.next++]).apply(top.state);
    if (S(succ)) continue;  // converging branch; nothing to report here
    if (Color* color = find(succ)) {
      if (*color == Color::kGray) {
        // Extract the cycle: the stack suffix from succ's frame down.
        std::vector<State> cycle;
        std::size_t at = stack.size();
        while (at > 0 && !(stack[at - 1].state == succ)) --at;
        for (std::size_t i = at == 0 ? 0 : at - 1; i < stack.size(); ++i) {
          cycle.push_back(stack[i].state);
        }
        result.violated = true;
        result.cycle = std::move(cycle);
        return result;
      }
      continue;  // black: already explored, no violation beneath it
    }
    if (!push(std::move(succ))) return result;
  }
  return result;
}

}  // namespace nonmask
