#include "checker/falsify.hpp"

#include <utility>
#include <vector>

#include "store/concurrent_set.hpp"
#include "store/packed.hpp"
#include "util/rng.hpp"

namespace nonmask {

namespace {

/// Fixed hash seed for the falsification dedup sets: probes must be
/// reproducible run to run, so the seed is not derived from the walk RNG.
constexpr std::uint64_t kProbeHashSeed = 0x9e3779b97f4a7c15ULL;

}  // namespace

FalsifyResult falsify_convergence(const Design& design,
                                  const FalsifyOptions& opts) {
  const Program& p = design.program;
  const PredicateFn S = design.S();
  const PredicateFn T = design.T();
  FalsifyResult result;
  Rng rng(opts.seed);

  // Visited-state dedup runs through the packed store: states intern into
  // bit-packed records (a few words instead of a full State each), and the
  // single-shard set hands back dense ids 0, 1, ... in insertion order, so
  // the path position of a state is just a sidecar vector indexed by id.
  store::PackedLayout layout(p);
  std::vector<std::uint64_t> words(layout.words());

  for (std::uint64_t walk = 0; walk < opts.walks; ++walk) {
    ++result.walks_run;
    State s = opts.make_start ? opts.make_start(p, rng) : p.random_state(rng);
    if (!T(s)) continue;  // computations start inside the fault-span

    // Visited states of this walk, in visit order, for cycle extraction.
    store::ConcurrentPackedSet index(layout, /*shard_bits=*/0, kProbeHashSeed);
    std::vector<std::size_t> pos_by_id;
    std::vector<State> path;

    for (std::uint64_t step = 0; step < opts.max_walk_length; ++step) {
      ++result.steps_taken;
      if (S(s)) break;  // this walk converged; try another

      // Revisit check: a repeated ¬S state closes a cycle outside S.
      layout.pack(s, words.data());
      const auto [id, fresh] = index.insert(words.data());
      if (!fresh) {
        const std::size_t pos = pos_by_id[static_cast<std::size_t>(id)];
        result.violated = true;
        result.cycle.emplace(path.begin() + static_cast<long>(pos),
                             path.end());
        return result;
      }
      pos_by_id.push_back(path.size());
      path.push_back(s);

      const auto enabled = p.enabled_actions(s);
      if (enabled.empty()) {
        result.violated = true;
        result.deadlock = s;
        return result;
      }

      // Pick the next action: adversarially biased or uniform.
      std::size_t choice = enabled[rng.below(enabled.size())];
      if (rng.chance(opts.adversarial_bias) &&
          design.invariant.size() != 0) {
        std::size_t best_score = 0;
        for (std::size_t idx : enabled) {
          const std::size_t score =
              design.invariant.violation_count(p.action(idx).apply(s));
          if (score >= best_score) {
            best_score = score;
            choice = idx;
          }
        }
      }
      s = p.action(choice).apply(s);
    }
  }
  return result;
}

FalsifyResult probe_violation_from(const Design& design, const State& start,
                                   const ProbeOptions& opts) {
  const Program& p = design.program;
  const PredicateFn S = design.S();
  const PredicateFn T = design.T();
  FalsifyResult result;
  if (!T(start) || S(start)) return result;
  result.walks_run = 1;

  // Iterative DFS with three-color marking: a gray (on-stack) revisit is a
  // back edge, i.e. a ¬S cycle. Visited states intern into the packed
  // store (single shard -> dense ids), with the colors in a one-byte
  // sidecar indexed by id — the probe's footprint per visited state is the
  // packed record + 1 byte instead of a stored State.
  constexpr std::uint8_t kGray = 1;
  constexpr std::uint8_t kBlack = 2;
  store::PackedLayout layout(p);
  store::ConcurrentPackedSet seen(layout, /*shard_bits=*/0, kProbeHashSeed);
  std::vector<std::uint8_t> color;  // by dense id; 0 = never seen
  std::vector<std::uint64_t> words(layout.words());

  struct Frame {
    State state;
    std::vector<std::size_t> enabled;
    std::size_t next = 0;
    std::uint64_t id = 0;  ///< dense id in `seen`, for the pop-time marking
  };
  std::vector<Frame> stack;
  std::uint64_t visited = 0;

  auto push = [&](State s) -> bool {
    if (++visited > opts.max_states) return false;
    layout.pack(s, words.data());
    const std::uint64_t id = seen.insert(words.data()).first;
    if (color.size() <= id) color.resize(static_cast<std::size_t>(id) + 1, 0);
    color[static_cast<std::size_t>(id)] = kGray;
    auto enabled = p.enabled_actions(s);
    if (enabled.empty()) {
      result.violated = true;
      result.deadlock = std::move(s);
      return false;
    }
    stack.push_back(Frame{std::move(s), std::move(enabled), 0, id});
    return true;
  };

  if (!push(start)) return result;
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next == top.enabled.size()) {
      color[static_cast<std::size_t>(top.id)] = kBlack;
      stack.pop_back();
      continue;
    }
    ++result.steps_taken;
    State succ = p.action(top.enabled[top.next++]).apply(top.state);
    if (S(succ)) continue;  // converging branch; nothing to report here
    layout.pack(succ, words.data());
    if (const auto id = seen.find(words.data())) {
      if (color[static_cast<std::size_t>(*id)] == kGray) {
        // Extract the cycle: the stack suffix from succ's frame down.
        std::vector<State> cycle;
        std::size_t at = stack.size();
        while (at > 0 && !(stack[at - 1].state == succ)) --at;
        for (std::size_t i = at == 0 ? 0 : at - 1; i < stack.size(); ++i) {
          cycle.push_back(stack[i].state);
        }
        result.violated = true;
        result.cycle = std::move(cycle);
        return result;
      }
      continue;  // black: already explored, no violation beneath it
    }
    if (!push(std::move(succ))) return result;
  }
  return result;
}

}  // namespace nonmask
