#include "checker/falsify.hpp"

#include <unordered_map>

#include "util/rng.hpp"

namespace nonmask {

FalsifyResult falsify_convergence(const Design& design,
                                  const FalsifyOptions& opts) {
  const Program& p = design.program;
  const PredicateFn S = design.S();
  const PredicateFn T = design.T();
  FalsifyResult result;
  Rng rng(opts.seed);

  for (std::uint64_t walk = 0; walk < opts.walks; ++walk) {
    ++result.walks_run;
    State s = opts.make_start ? opts.make_start(p, rng) : p.random_state(rng);
    if (!T(s)) continue;  // computations start inside the fault-span

    // Visited states since the last S-state, in visit order, for cycle
    // extraction. Keyed by hash; collisions resolved by comparing states.
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> index;
    std::vector<State> path;

    for (std::uint64_t step = 0; step < opts.max_walk_length; ++step) {
      ++result.steps_taken;
      if (S(s)) break;  // this walk converged; try another

      // Revisit check: a repeated ¬S state closes a cycle outside S.
      const std::uint64_t h = s.hash();
      auto it = index.find(h);
      if (it != index.end()) {
        for (std::size_t pos : it->second) {
          if (path[pos] == s) {
            result.violated = true;
            result.cycle.emplace(path.begin() + static_cast<long>(pos),
                                 path.end());
            return result;
          }
        }
      }
      index[h].push_back(path.size());
      path.push_back(s);

      const auto enabled = p.enabled_actions(s);
      if (enabled.empty()) {
        result.violated = true;
        result.deadlock = s;
        return result;
      }

      // Pick the next action: adversarially biased or uniform.
      std::size_t choice = enabled[rng.below(enabled.size())];
      if (rng.chance(opts.adversarial_bias) &&
          design.invariant.size() != 0) {
        std::size_t best_score = 0;
        for (std::size_t idx : enabled) {
          const std::size_t score =
              design.invariant.violation_count(p.action(idx).apply(s));
          if (score >= best_score) {
            best_score = score;
            choice = idx;
          }
        }
      }
      s = p.action(choice).apply(s);
    }
  }
  return result;
}

}  // namespace nonmask
