#include "checker/convergence_check.hpp"

#include <algorithm>

#include "checker/closure_check.hpp"
#include "checker/convergence_core.hpp"
#include "checker/scc_core.hpp"
#include "core/candidate.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"

namespace nonmask {

const char* to_string(ConvergenceVerdict v) noexcept {
  switch (v) {
    case ConvergenceVerdict::kConverges: return "converges";
    case ConvergenceVerdict::kViolated: return "violated";
    case ConvergenceVerdict::kUnknown: return "unknown";
  }
  return "?";
}

ProgramSuccessors::ProgramSuccessors(const StateSpace& space,
                                     std::vector<std::size_t> actions)
    : space_(&space),
      actions_(std::move(actions)),
      scratch_(space.program().num_variables()) {}

void ProgramSuccessors::successors(std::uint64_t code,
                                   std::vector<std::uint64_t>& out) {
  const Program& p = space_->program();
  out.clear();
  space_->decode_into(code, scratch_);
  for (std::size_t idx : actions_) {
    const Action& a = p.action(idx);
    if (!a.enabled(scratch_)) continue;
    out.push_back(space_->encode(a.apply(scratch_)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

namespace detail {

std::vector<std::uint8_t> evaluate_flags(const StateSpace& space,
                                         const PredicateFn& S,
                                         const PredicateFn& T,
                                         ConvergenceReport& report) {
  obs::Span span("checker.flags");
  obs::ProgressMeter meter("flags", space.size());
  const Program& p = space.program();
  std::vector<std::uint8_t> flags(space.size(), 0);
  State s(p.num_variables());
  constexpr std::uint64_t kSlice = 1 << 18;
  for (std::uint64_t lo = 0; lo < space.size(); lo += kSlice) {
    const std::uint64_t hi = std::min(space.size(), lo + kSlice);
    for (std::uint64_t code = lo; code < hi; ++code) {
      space.decode_into(code, s);
      std::uint8_t f = 0;
      const bool in_T = T(s);
      if (in_T) f |= kFlagT;
      if (S(s)) {
        f |= kFlagS;
        if (in_T) ++report.states_in_S;
      }
      if (in_T) ++report.states_in_T;
      flags[code] = f;
    }
    meter.add(hi - lo);
  }
  return flags;
}

void record_convergence_metrics(const ConvergenceReport& report) {
  if (!obs::Metrics::enabled()) return;
  auto& registry = obs::Registry::instance();
  registry.counter("checker.convergence.checks").add(1);
  registry.counter("checker.convergence.region_states")
      .add(report.region_states);
  registry.counter("checker.convergence.transitions").add(report.transitions);
}

/// Legacy dense bookkeeping: one vector slot per code over the full range.
/// This is the memory layout that caps the legacy backend at ~32M states;
/// the store backend instantiates the same core over packed arrays.
struct DenseDfsBookkeeping {
  explicit DenseDfsBookkeeping(std::uint64_t size)
      : color_(size, 0), dist_(size, 0), stack_pos_(size, -1) {}

  std::uint8_t color(std::uint64_t code) const { return color_[code]; }
  void set_color(std::uint64_t code, std::uint8_t c) { color_[code] = c; }
  std::uint32_t dist(std::uint64_t code) const { return dist_[code]; }
  void set_dist(std::uint64_t code, std::uint32_t d) { dist_[code] = d; }
  std::int64_t stack_pos(std::uint64_t code) const {
    return stack_pos_[code];
  }
  void set_stack_pos(std::uint64_t code, std::int64_t pos) {
    stack_pos_[code] = pos;
  }

  std::vector<std::uint8_t> color_;
  std::vector<std::uint32_t> dist_;
  std::vector<std::int64_t> stack_pos_;
};

ConvergenceReport check_convergence_core(const StateSpace& space,
                                         const std::vector<std::uint8_t>& flags,
                                         SuccessorSource& succ,
                                         ConvergenceReport report) {
  DenseDfsBookkeeping bk(space.size());
  return check_convergence_core_impl(space, flags, succ, std::move(report),
                                     bk);
}

ConvergenceReport check_convergence_weakly_fair_core(
    const StateSpace& space, const std::vector<std::uint8_t>& flags,
    SuccessorSource& succ, const std::vector<std::size_t>& actions,
    ConvergenceReport report) {
  DenseTarjanBookkeeping bk(space.size());
  return check_convergence_weakly_fair_core_impl(space, flags, succ, actions,
                                                 std::move(report), bk);
}

}  // namespace detail

ConvergenceReport check_convergence(const StateSpace& space,
                                    const PredicateFn& S,
                                    const PredicateFn& T) {
  ConvergenceReport report;
  const auto flags = detail::evaluate_flags(space, S, T, report);
  ProgramSuccessors succ(space, non_fault_actions(space.program()));
  return detail::check_convergence_core(space, flags, succ,
                                        std::move(report));
}

ConvergenceReport check_convergence_weakly_fair(const StateSpace& space,
                                                const PredicateFn& S,
                                                const PredicateFn& T) {
  ConvergenceReport report;
  const auto flags = detail::evaluate_flags(space, S, T, report);
  const auto actions = non_fault_actions(space.program());
  ProgramSuccessors succ(space, actions);
  return detail::check_convergence_weakly_fair_core(space, flags, succ,
                                                    actions,
                                                    std::move(report));
}

ToleranceReport verify_tolerance(const StateSpace& space,
                                 const Design& design) {
  ToleranceReport report;
  report.S_closed = check_closed(space, design.S()).closed;
  report.T_closed = check_closed(space, design.T()).closed;
  report.convergence = check_convergence(space, design.S(), design.T());
  return report;
}

const char* to_string(ToleranceClass c) noexcept {
  switch (c) {
    case ToleranceClass::kMasking: return "masking";
    case ToleranceClass::kNonmasking: return "nonmasking";
    case ToleranceClass::kNotTolerant: return "not tolerant";
  }
  return "?";
}

ToleranceClass classify_tolerance(const StateSpace& space,
                                  const Design& design) {
  const auto report = verify_tolerance(space, design);
  if (!report.tolerant()) return ToleranceClass::kNotTolerant;
  // S = T?
  const auto S = design.S();
  const auto T = design.T();
  State s(space.program().num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (S(s) != T(s)) return ToleranceClass::kNonmasking;
  }
  return ToleranceClass::kMasking;
}

}  // namespace nonmask
