#include "checker/containment.hpp"

#include <algorithm>
#include <utility>

#include "checker/fault_span.hpp"
#include "obs/json.hpp"
#include "store/frontier.hpp"

namespace nonmask {

namespace {

/// Deterministic fault-free fixpoint: repeatedly fire the lowest-index
/// enabled closure/convergence action. The radius is a worst case over
/// *adversary* choices; the daemon tie-break merely pins one reproducible
/// fixpoint to measure deviation against.
State run_to_fixpoint(const Program& program, const State& legitimate,
                      std::size_t max_steps, std::size_t& steps_out,
                      bool& reached_out) {
  State s = legitimate;
  reached_out = false;
  std::size_t steps = 0;
  for (; steps < max_steps; ++steps) {
    std::size_t chosen = program.num_actions();
    for (std::size_t i = 0; i < program.num_actions(); ++i) {
      const Action& a = program.action(i);
      if (a.kind() != ActionKind::kClosure &&
          a.kind() != ActionKind::kConvergence) {
        continue;
      }
      if (a.enabled(s)) {
        chosen = i;
        break;
      }
    }
    if (chosen == program.num_actions()) {
      reached_out = true;
      break;
    }
    program.action(chosen).execute(s);
  }
  steps_out = steps;
  return s;
}

}  // namespace

ContainmentReport measure_containment(const Program& program,
                                      const std::vector<int>& byzantine,
                                      const State& legitimate,
                                      const ContainmentOptions& opts) {
  ContainmentReport rep;
  rep.byzantine = byzantine;
  std::sort(rep.byzantine.begin(), rep.byzantine.end());

  const State fix =
      run_to_fixpoint(program, legitimate, opts.fixpoint_max_steps,
                      rep.fixpoint_steps, rep.fixpoint_reached);

  const Program composed = compose_byzantine(program, byzantine);
  StateSpace space(composed, opts.state_budget);
  const std::vector<std::size_t> actions = non_fault_actions(composed);

  const UndirectedGraph comm = communication_graph(program);
  rep.process_distance = distances_from(comm, rep.byzantine);
  const int num_procs = comm.size();
  rep.process_dirty.assign(static_cast<std::size_t>(num_procs), 0);

  const auto is_byz = [&rep](int p) {
    return std::binary_search(rep.byzantine.begin(), rep.byzantine.end(), p);
  };
  for (int p = 0; p < num_procs; ++p) {
    const int d = rep.process_distance[static_cast<std::size_t>(p)];
    if (!is_byz(p) && d > rep.horizon) rep.horizon = d;
  }

  // Variables excluded from dirty accounting: the adversary's own (they
  // deviate by construction) and shared variables with no owning process
  // (no topology distance to attribute the deviation to).
  std::vector<std::uint8_t> excluded(program.num_variables(), 0);
  for (VarId v : byzantine_variables(program, rep.byzantine)) {
    excluded[v.index()] = 1;
  }
  for (std::uint32_t i = 0; i < program.num_variables(); ++i) {
    if (program.variable(VarId(i)).process == VariableSpec::kNoProcess) {
      excluded[i] = 1;
    }
  }

  // Level-synchronous BFS from the fixpoint over the composed system.
  // Expansion fans out per frontier item through the engine's shared
  // queue; visited marking happens serially in item order and the dirty
  // union is monotone, so the report is identical at any thread count.
  store::FrontierEngine engine(opts.config);
  const unsigned workers = engine.threads();
  std::vector<State> scratch(workers, space.decode(0));
  std::vector<std::uint8_t> visited(space.size(), 0);
  const FaultSpanOptions fs_opts;

  std::vector<std::uint64_t> frontier{space.encode(fix)};
  visited[frontier[0]] = 1;
  rep.reachable_states = 1;

  std::vector<std::vector<std::uint64_t>> succ;
  while (!frontier.empty()) {
    succ.assign(frontier.size(), {});
    engine.for_items(0, frontier.size(),
                     [&](std::uint64_t i, unsigned worker) {
                       detail::expand_reachable(space, actions, fs_opts,
                                                frontier[i], scratch[worker],
                                                succ[i]);
                     });
    std::vector<std::uint64_t> next;
    for (const auto& batch : succ) {
      for (std::uint64_t code : batch) {
        if (visited[code] != 0) continue;
        visited[code] = 1;
        next.push_back(code);
      }
    }
    if (next.empty()) break;
    ++rep.levels;
    rep.reachable_states += next.size();

    std::vector<std::vector<std::uint8_t>> worker_dirty(
        workers, std::vector<std::uint8_t>(static_cast<std::size_t>(num_procs),
                                           0));
    engine.for_items(0, next.size(), [&](std::uint64_t i, unsigned worker) {
      State& s = scratch[worker];
      space.decode_into(next[i], s);
      for (std::uint32_t v = 0; v < program.num_variables(); ++v) {
        if (excluded[v] != 0) continue;
        if (s.get(VarId(v)) == fix.get(VarId(v))) continue;
        const int p = program.variable(VarId(v)).process;
        worker_dirty[worker][static_cast<std::size_t>(p)] = 1;
      }
    });
    bool grew = false;
    for (int p = 0; p < num_procs; ++p) {
      const auto idx = static_cast<std::size_t>(p);
      for (unsigned w = 0; w < workers; ++w) {
        if (worker_dirty[w][idx] != 0 && rep.process_dirty[idx] == 0) {
          rep.process_dirty[idx] = 1;
          grew = true;
        }
      }
    }
    if (grew) rep.time_to_containment = rep.levels;
    frontier = std::move(next);
  }

  for (int p = 0; p < num_procs; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    if (rep.process_dirty[idx] == 0) continue;
    const int d = rep.process_distance[idx];
    // A dirty process the comm graph says is unreachable means the
    // attribution model is too coarse for this program; report the
    // pessimal radius rather than understating containment.
    rep.radius = std::max(rep.radius, d < 0 ? rep.horizon : d);
  }
  rep.contained = rep.radius < rep.horizon;
  return rep;
}

std::string containment_to_json(const Program& program,
                                const ContainmentReport& report) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("protocol");
  w.value(program.name());
  w.key("byzantine");
  w.begin_array();
  for (int p : report.byzantine) w.value(p);
  w.end_array();
  w.key("radius");
  w.value(report.radius);
  w.key("horizon");
  w.value(report.horizon);
  w.key("contained");
  w.value(report.contained);
  w.key("fixpoint_reached");
  w.value(report.fixpoint_reached);
  w.key("fixpoint_steps");
  w.value(static_cast<std::uint64_t>(report.fixpoint_steps));
  w.key("reachable_states");
  w.value(report.reachable_states);
  w.key("levels");
  w.value(report.levels);
  w.key("time_to_containment");
  w.value(report.time_to_containment);
  w.key("processes");
  w.begin_array();
  for (std::size_t p = 0; p < report.process_dirty.size(); ++p) {
    w.begin_object();
    w.key("id");
    w.value(static_cast<int>(p));
    w.key("distance");
    w.value(report.process_distance[p]);
    w.key("dirty");
    w.value(report.process_dirty[p] != 0);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

}  // namespace nonmask
