// Convergence checking (the second requirement of T-tolerance, Section 3):
// every computation of p starting at a state where T holds reaches a state
// where S holds.
//
// Without fairness, convergence holds iff the transition graph restricted
// to the states reachable from T while ¬S holds (a) contains no cycle and
// (b) contains no terminal ¬S state (a maximal computation may halt there).
// This check is *exact* for the arbitrary (unfair) central daemon, which
// also covers the paper's Section 8 remark that its derived programs need
// no fairness.
//
// With weak fairness some cycles are benign. We implement the standard
// sound escape analysis: a non-trivial SCC of the ¬S region is
// fair-escapable when some action is enabled at every state of the SCC and
// all of its transitions exit the SCC — an infinite fair computation cannot
// stay inside. If every non-trivial SCC is fair-escapable, weakly fair
// convergence holds; otherwise the verdict is "unknown" (the condition is
// sufficient, not necessary).
#pragma once

#include <optional>
#include <vector>

#include "checker/state_space.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"

namespace nonmask {

enum class ConvergenceVerdict {
  kConverges,  ///< every computation from T reaches S
  kViolated,   ///< counterexample found (cycle or ¬S deadlock)
  kUnknown,    ///< fair analysis inconclusive
};

const char* to_string(ConvergenceVerdict v) noexcept;

struct ConvergenceReport {
  ConvergenceVerdict verdict = ConvergenceVerdict::kUnknown;
  std::uint64_t states_in_T = 0;
  std::uint64_t states_in_S = 0;      ///< states where both S and T hold
  std::uint64_t region_states = 0;    ///< explored ¬S states
  std::uint64_t transitions = 0;      ///< explored transitions

  /// Counterexample: a cycle of states outside S (unfair daemon can loop).
  std::optional<std::vector<State>> cycle;
  /// Counterexample: a ¬S state where no action is enabled.
  std::optional<State> deadlock;

  /// Worst-case number of steps to reach S from any T state (longest path
  /// through the ¬S region). Valid when verdict == kConverges for the
  /// unfair check.
  std::uint64_t max_steps_to_S = 0;
};

/// Exact convergence check for the arbitrary (unfair) daemon.
ConvergenceReport check_convergence(const StateSpace& space,
                                    const PredicateFn& S, const PredicateFn& T);

/// Sound convergence check under weak fairness (SCC escape analysis).
/// Returns kConverges, kViolated (¬S deadlock — fairness cannot help), or
/// kUnknown.
ConvergenceReport check_convergence_weakly_fair(const StateSpace& space,
                                                const PredicateFn& S,
                                                const PredicateFn& T);

/// Convenience: full T-tolerance verification of a design — closure of S
/// and T plus (unfair) convergence. Returns a human-readable summary; sets
/// *ok.
struct ToleranceReport {
  bool S_closed = false;
  bool T_closed = false;
  ConvergenceReport convergence;
  bool tolerant() const noexcept {
    return S_closed && T_closed &&
           convergence.verdict == ConvergenceVerdict::kConverges;
  }
};

struct Design;  // from core/candidate.hpp
ToleranceReport verify_tolerance(const StateSpace& space, const Design& design);

/// The paper's Section 3 classification: p T-tolerant for S is *masking*
/// when S = T and *nonmasking* otherwise.
enum class ToleranceClass {
  kMasking,     ///< S = T: faults never expose a non-S state
  kNonmasking,  ///< S ⊊ T: the input-output relation is violated temporarily
  kNotTolerant, ///< closure or convergence fails
};

const char* to_string(ToleranceClass c) noexcept;

/// Verify tolerance and classify it (exhaustive comparison of S and T).
ToleranceClass classify_tolerance(const StateSpace& space,
                                  const Design& design);

/// Successor provider for the convergence analyses: fills `out` with the
/// sorted distinct successor codes of `code` under the non-fault actions.
/// An empty result means no action is enabled (deadlock). Implementations:
/// ProgramSuccessors (on-the-fly, serial) and the parallel sweep's
/// precomputed adjacency (parallel/sweep.hpp).
class SuccessorSource {
 public:
  virtual ~SuccessorSource() = default;
  virtual void successors(std::uint64_t code,
                          std::vector<std::uint64_t>& out) = 0;
};

/// On-the-fly SuccessorSource: decode, fire every enabled action, encode.
/// Holds a scratch state, so one instance serves one thread.
class ProgramSuccessors final : public SuccessorSource {
 public:
  ProgramSuccessors(const StateSpace& space, std::vector<std::size_t> actions);
  void successors(std::uint64_t code,
                  std::vector<std::uint64_t>& out) override;

 private:
  const StateSpace* space_;
  std::vector<std::size_t> actions_;
  State scratch_;
};

namespace detail {

inline constexpr std::uint8_t kFlagS = 1;  ///< state satisfies S
inline constexpr std::uint8_t kFlagT = 2;  ///< state satisfies T

/// Pass 1 of both convergence checks: the S/T flag byte per code plus the
/// states_in_S / states_in_T counts filled into `report`. The parallel
/// sweep produces the identical array with sharded evaluation.
std::vector<std::uint8_t> evaluate_flags(const StateSpace& space,
                                         const PredicateFn& S,
                                         const PredicateFn& T,
                                         ConvergenceReport& report);

/// Pass 2 of the unfair check: cycle/deadlock DFS over the ¬S region
/// reachable from T∧¬S, consuming successors from `succ`. `report` carries
/// the pass-1 counts and is completed in place.
ConvergenceReport check_convergence_core(const StateSpace& space,
                                         const std::vector<std::uint8_t>& flags,
                                         SuccessorSource& succ,
                                         ConvergenceReport report);

/// Pass 2 of the weakly fair check: Tarjan SCC construction consuming
/// `succ`, then the serial fair-escape analysis over `actions`.
ConvergenceReport check_convergence_weakly_fair_core(
    const StateSpace& space, const std::vector<std::uint8_t>& flags,
    SuccessorSource& succ, const std::vector<std::size_t>& actions,
    ConvergenceReport report);

/// Bump the checker.convergence.* counters from a finished report (called
/// by both cores, so the serial checks and the parallel sweeps share it).
void record_convergence_metrics(const ConvergenceReport& report);

}  // namespace detail

}  // namespace nonmask
