// The cycle/deadlock DFS at the heart of the unfair convergence check,
// factored as a template over its per-state bookkeeping so one traversal
// serves two memory layouts:
//
//   - the legacy dense path (convergence_check.cpp): byte color, u32 dist,
//     i64 stack-position vectors sized by the full code range;
//   - the store path (store/store_check.cpp): 2-bit colors, narrow
//     distance arrays, and a sparse map for the on-stack positions — the
//     layout that lifts exhaustive checking from ~32M to 10^8+ states.
//
// Both instantiate the *same* statements in the same order, which is the
// backbone of the store backend's byte-identical-reports contract: given a
// SuccessorSource yielding identical sorted successor lists, every count,
// verdict, distance, and counterexample below is a pure function of the
// traversal, not of the bookkeeping representation.
//
// Bookkeeping requirements (all codes pre-initialized to "unvisited"):
//   std::uint8_t color(code)            0 = unvisited, 1 = on stack, 2 = done
//   void set_color(code, std::uint8_t)
//   std::uint32_t dist(code)            longest known path to S (init 0)
//   void set_dist(code, std::uint32_t)  may throw to reject a distance that
//                                       exceeds the layout's width
//   std::int64_t stack_pos(code)        position within the DFS path, -1 off
//   void set_stack_pos(code, std::int64_t)
#pragma once

#include <algorithm>
#include <vector>

#include "checker/convergence_check.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"

namespace nonmask::detail {

template <class Flags, class Bookkeeping>
ConvergenceReport check_convergence_core_impl(const StateSpace& space,
                                              const Flags& flags,
                                              SuccessorSource& succ,
                                              ConvergenceReport report,
                                              Bookkeeping& bk) {
  obs::Span dfs_span("checker.dfs");
  obs::ProgressMeter meter("convergence-dfs");

  struct DfsFrame {
    std::uint64_t code;
    std::vector<std::uint64_t> succs;
    std::size_t next = 0;
  };
  std::vector<DfsFrame> frames;
  std::vector<std::uint64_t> path;

  for (std::uint64_t start = 0; start < space.size(); ++start) {
    if ((flags[start] & kFlagT) == 0) continue;  // computations start in T
    if ((flags[start] & kFlagS) != 0) continue;  // already in S
    if (bk.color(start) != 0) continue;

    frames.clear();
    path.clear();

    auto push_node = [&](std::uint64_t code) -> bool {
      DfsFrame frame;
      frame.code = code;
      succ.successors(code, frame.succs);
      report.transitions += frame.succs.size();
      ++report.region_states;
      meter.add(1);
      if (frame.succs.empty()) {  // no action enabled
        report.verdict = ConvergenceVerdict::kViolated;
        report.deadlock = space.decode(code);
        return false;
      }
      bk.set_color(code, 1);
      bk.set_stack_pos(code, static_cast<std::int64_t>(path.size()));
      path.push_back(code);
      frames.push_back(std::move(frame));
      return true;
    };

    if (!push_node(start)) {
      record_convergence_metrics(report);
      return report;
    }

    while (!frames.empty()) {
      DfsFrame& frame = frames.back();
      if (frame.next < frame.succs.size()) {
        const std::uint64_t next = frame.succs[frame.next++];
        if ((flags[next] & kFlagS) != 0) {
          bk.set_dist(frame.code, std::max(bk.dist(frame.code), 1u));
          continue;
        }
        if (bk.color(next) == 0) {
          if (!push_node(next)) {
            record_convergence_metrics(report);
            return report;
          }
        } else if (bk.color(next) == 1) {
          // Cycle: extract path[stack_pos[next] ..] as the counterexample.
          std::vector<State> cycle;
          for (std::size_t i =
                   static_cast<std::size_t>(bk.stack_pos(next));
               i < path.size(); ++i) {
            cycle.push_back(space.decode(path[i]));
          }
          report.verdict = ConvergenceVerdict::kViolated;
          report.cycle = std::move(cycle);
          record_convergence_metrics(report);
          return report;
        } else {
          bk.set_dist(frame.code,
                      std::max(bk.dist(frame.code), bk.dist(next) + 1));
        }
      } else {
        bk.set_color(frame.code, 2);
        bk.set_stack_pos(frame.code, -1);
        path.pop_back();
        const std::uint32_t d = bk.dist(frame.code);
        report.max_steps_to_S =
            std::max<std::uint64_t>(report.max_steps_to_S, d);
        const std::uint64_t done = frame.code;
        frames.pop_back();
        if (!frames.empty()) {
          bk.set_dist(frames.back().code,
                      std::max(bk.dist(frames.back().code), bk.dist(done) + 1));
        }
      }
    }
  }

  report.verdict = ConvergenceVerdict::kConverges;
  record_convergence_metrics(report);
  return report;
}

}  // namespace nonmask::detail
