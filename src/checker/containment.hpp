// Containment analysis for Byzantine fault models.
//
// With transient faults the whole question is *whether* the program
// converges; with permanent Byzantine processes it cannot (the adversary
// re-corrupts forever), so the right question becomes *how far* the damage
// spreads. Following Dubois–Masuzawa–Tixeuil, the **containment radius** of
// a protocol under a Byzantine placement is the maximum topology distance
// from a Byzantine node at which any correct process's variable can differ
// from its fault-free fixpoint value, over the entire region reachable while
// the adversary acts. A protocol *contains* the placement when that radius
// is strictly below the topology horizon (some correct process provably
// keeps its fixpoint values no matter what the adversary does); the
// spanning-tree protocol contains leaf/deep placements with a radius of the
// min+1 shape, while token rings do not contain at all (the corrupted token
// circulates).
//
// The analysis is exhaustive and store-native: the composed
// program∪adversary transition system (checker/restricted.hpp) is explored
// by a level-synchronous BFS from the fault-free fixpoint, with per-level
// expansion fanned out through the FrontierEngine's shared queue. Dirty
// accounting is a monotone union, so the result is byte-identical at any
// thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/restricted.hpp"
#include "checker/state_space.hpp"
#include "core/program.hpp"
#include "store/config.hpp"

namespace nonmask {

struct ContainmentOptions {
  store::StoreConfig config;  ///< backend + thread count for the level BFS
  /// State-space budget for the composed system; StateSpaceTooLarge past it
  /// (adversarial placement search falls back to simulation scoring there).
  std::uint64_t state_budget = StateSpace::kDefaultBudget;
  /// Cap on deterministic fixpoint iteration steps.
  std::size_t fixpoint_max_steps = 1u << 20;
};

struct ContainmentReport {
  std::vector<int> byzantine;  ///< the adversarial placement measured

  /// Max distance of a *dirty* correct process from the Byzantine set
  /// (0 = damage never leaves the Byzantine nodes).
  int radius = 0;
  /// Max finite distance of any correct process from the Byzantine set —
  /// the worst the radius could be.
  int horizon = 0;
  /// radius < horizon: some correct process keeps its fixpoint values no
  /// matter what the adversary does.
  bool contained = false;

  bool fixpoint_reached = false;  ///< fault-free iteration quiesced in budget
  std::size_t fixpoint_steps = 0;

  std::uint64_t reachable_states = 0;  ///< size of the adversarial region
  std::uint64_t levels = 0;            ///< BFS depth of the region
  /// Last BFS level at which a new process turned dirty: after this many
  /// composed steps the damage footprint has stopped growing.
  std::uint64_t time_to_containment = 0;

  std::vector<int> process_distance;      ///< hops from Byzantine set; -1 =
                                          ///< unreachable in the comm graph
  std::vector<std::uint8_t> process_dirty;  ///< 1 = some owned variable
                                            ///< deviates somewhere in region
};

/// Measure the containment radius of `program` under Byzantine `byzantine`:
///  1. run the program fault-free from `legitimate` to its deterministic
///     fixpoint (lowest-index enabled action — the worst case is over
///     adversary choices, not daemon choices);
///  2. explore everything reachable from that fixpoint under the composed
///     program∪adversary system (compose_byzantine);
///  3. report how far from the Byzantine set any variable ever deviates.
/// Throws StateSpaceTooLarge when the composed space exceeds the budget and
/// std::invalid_argument for bad placements (via compose_byzantine).
ContainmentReport measure_containment(const Program& program,
                                      const std::vector<int>& byzantine,
                                      const State& legitimate,
                                      const ContainmentOptions& opts = {});

/// The report as a JSON object (one line, no trailing newline) — the
/// containment-report artifact CI uploads, and the payload RunReport and
/// the dashboard ingest.
std::string containment_to_json(const Program& program,
                                const ContainmentReport& report);

}  // namespace nonmask
