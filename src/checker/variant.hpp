// Variant functions.
//
// Section 8: the standard proof of progress exhibits a variant function
// into a well-founded order that never increases and eventually decreases
// until S holds. When the ¬S region of the transition graph is acyclic, the
// *longest path to S* is the canonical such function; we extract it
// explicitly so tests can assert that the paper's constraint-graph ranks
// really do bound convergence.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "checker/state_space.hpp"
#include "core/predicate.hpp"

namespace nonmask {

class VariantFunction {
 public:
  VariantFunction(const StateSpace& space, std::vector<std::uint32_t> dist)
      : space_(&space), dist_(std::move(dist)) {}

  /// Value at a state: 0 on S states, otherwise the longest number of steps
  /// an (unfair) computation can take before reaching S.
  std::uint32_t operator()(const State& s) const {
    return dist_[space_->encode(s)];
  }

  std::uint32_t max_value() const noexcept;

  const std::vector<std::uint32_t>& raw() const noexcept { return dist_; }

 private:
  const StateSpace* space_;
  std::vector<std::uint32_t> dist_;
};

/// Compute the longest-path-to-S variant over the whole space (all ¬S
/// states, not only those reachable from T). Returns nullopt when the ¬S
/// region contains a cycle or a ¬S deadlock (no variant function exists for
/// the unfair daemon).
std::optional<VariantFunction> compute_variant(const StateSpace& space,
                                               const PredicateFn& S);

}  // namespace nonmask
