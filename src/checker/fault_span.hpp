// Fault-span computation (Section 3).
//
// The paper designs T by hand and checks it is closed under program *and*
// fault actions. This module computes the canonical choice mechanically:
// the set of states reachable from S under the program together with a
// given fault class is the *smallest* valid fault-span containing S. The
// result is an explicit state set usable as a predicate, so designers can
//   (1) discover what T their fault class actually induces,
//   (2) verify a hand-written T contains it, and
//   (3) run convergence checking against the induced T.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "checker/state_space.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"

namespace nonmask {

/// An explicit set of states over a StateSpace, exposed as a predicate.
class StateSet {
 public:
  explicit StateSet(const StateSpace& space)
      : space_(&space), members_(space.size(), 0) {}

  bool contains(const State& s) const {
    return members_[space_->encode(s)] != 0;
  }
  bool contains_code(std::uint64_t code) const { return members_[code] != 0; }
  void insert_code(std::uint64_t code) {
    if (members_[code] == 0) {
      members_[code] = 1;
      ++count_;
    }
  }
  std::uint64_t size() const noexcept { return count_; }
  const StateSpace& space() const noexcept { return *space_; }

  /// View this set as a predicate. The StateSet must outlive the result,
  /// so the predicate holds a shared copy of the membership vector.
  PredicateFn as_predicate() const;

 private:
  const StateSpace* space_;
  std::vector<std::uint8_t> members_;
  std::uint64_t count_ = 0;
};

struct FaultSpanOptions {
  /// Fire fault actions regardless of their guards? The paper models
  /// faults as guarded actions; by default guards are respected.
  bool respect_fault_guards = true;
  /// Additional cap on explored states (0 = the space's own size).
  std::uint64_t max_states = 0;
};

/// BFS closure of `start` under the given actions (typically: all non-fault
/// program actions plus the fault class under study).
StateSet compute_reachable(const StateSpace& space, const PredicateFn& start,
                           const std::vector<std::size_t>& actions,
                           const FaultSpanOptions& opts = {});

/// The induced fault-span: states reachable from S under program actions
/// plus the given fault actions.
StateSet compute_fault_span(const StateSpace& space, const PredicateFn& S,
                            const std::vector<std::size_t>& fault_actions,
                            const FaultSpanOptions& opts = {});

struct Design;  // core/candidate.hpp

/// End-to-end verification of a design against a concrete fault class:
/// compute the induced span reach(S), check it is contained in the
/// declared T, and check convergence from it. This is the Section 3
/// definition instantiated with the *smallest* valid fault-span.
struct FaultClassReport {
  std::uint64_t induced_span_size = 0;
  bool span_within_declared_T = false;
  bool converges_from_span = false;
  bool tolerant() const noexcept {
    return span_within_declared_T && converges_from_span;
  }
};

FaultClassReport verify_against_fault_class(
    const StateSpace& space, const Design& design,
    const std::vector<std::size_t>& fault_actions,
    bool weakly_fair = false);

namespace detail {

/// Successor codes of `code` under `actions` with the fault-guard policy of
/// `opts`, in action order (not deduplicated) — the exact expansion order
/// of the serial BFS. The parallel sweep expands frontier nodes with the
/// same helper and merges in node order, so the resulting sets (including
/// `max_states`-capped ones) are identical.
void expand_reachable(const StateSpace& space,
                      const std::vector<std::size_t>& actions,
                      const FaultSpanOptions& opts, std::uint64_t code,
                      State& scratch, std::vector<std::uint64_t>& out);

}  // namespace detail

}  // namespace nonmask
