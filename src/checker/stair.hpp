// Convergence stairs (Section 7, third possibility; Gouda & Multari).
//
// When the constraint graph over all of T is cyclic, convergence may still
// be provable in stages: a closed predicate R with S ⊆ R ⊆ T such that
// every computation from T reaches R, and every computation from R reaches
// S. This module checks an arbitrary-height stair T = R0 ⊇ R1 ⊇ ... ⊇ Rk=S
// exactly: each step predicate must be closed, and each stage must
// converge.
#pragma once

#include <string>
#include <vector>

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/predicate.hpp"

namespace nonmask {

struct StairStepReport {
  std::string name;
  bool closed = false;
  ConvergenceReport convergence;  ///< from the previous step into this one
};

struct StairReport {
  bool valid = false;         ///< all steps closed, all stages converge
  std::string failure;        ///< first failing step (empty when valid)
  std::vector<StairStepReport> steps;
  /// Sum of the per-stage worst cases: an upper bound on total steps to S.
  std::uint64_t total_worst_case = 0;
};

/// Check the stair T ⊇ steps[0] ⊇ steps[1] ⊇ ... (the last step plays the
/// role of S). Also verifies the subset chain (each step implies the
/// previous) and that T itself is closed.
StairReport check_stair(const StateSpace& space, const PredicateFn& T,
                        const std::vector<StatePredicate>& steps);

}  // namespace nonmask
