// The weakly-fair convergence check's Tarjan/SCC pass, factored as a
// template over its per-state bookkeeping — the same split that
// convergence_core.hpp gives the unfair DFS:
//
//   - the legacy dense path (convergence_check.cpp): int32 index/lowlink,
//     byte on-stack marks, and an int32 component array, all sized by the
//     full code range (~13 bytes/state);
//   - the store path (store/store_check.cpp): a stamped u32 visit-index
//     array over the codes, slab-grown u32 lowlinks indexed by dense visit
//     id, 1-bit on-stack marks, and sorted member snapshots for the
//     nontrivial SCCs instead of a full component array.
//
// Both instantiate the same traversal and analysis statements in the same
// order, so every count, verdict, and counterexample is a pure function of
// the traversal — the byte-identical-reports contract of store/facade.hpp.
//
// Bookkeeping requirements (all codes pre-initialized to "unvisited"):
//   bool visited(code)
//   std::uint32_t index(code) / void set_index(code, v)    Tarjan visit order
//   std::uint32_t lowlink(code) / void set_lowlink(code, v)
//   bool on_stack(code) / void set_on_stack(code, bool)
//   void mark_component(code, comp)      every popped state, every SCC
//   void seal_component(comp, members)   nontrivial SCCs only, pop order
//   bool in_component(code, comp)        comp is always a sealed component
#pragma once

#include <algorithm>
#include <vector>

#include "checker/convergence_check.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"

namespace nonmask::detail {

/// Legacy dense Tarjan bookkeeping: one array slot per code over the full
/// range. This is the memory layout that keeps the legacy backend at ~32M
/// states; the store backend instantiates the same core over packed and
/// visit-ordered arrays.
struct DenseTarjanBookkeeping {
  static constexpr std::int32_t kUnvisited = -1;

  explicit DenseTarjanBookkeeping(std::uint64_t size)
      : index_(size, kUnvisited),
        lowlink_(size, 0),
        on_stack_(size, 0),
        component_(size, -1) {}

  bool visited(std::uint64_t code) const { return index_[code] != kUnvisited; }
  std::uint32_t index(std::uint64_t code) const {
    return static_cast<std::uint32_t>(index_[code]);
  }
  void set_index(std::uint64_t code, std::uint32_t v) {
    index_[code] = static_cast<std::int32_t>(v);
  }
  std::uint32_t lowlink(std::uint64_t code) const {
    return static_cast<std::uint32_t>(lowlink_[code]);
  }
  void set_lowlink(std::uint64_t code, std::uint32_t v) {
    lowlink_[code] = static_cast<std::int32_t>(v);
  }
  bool on_stack(std::uint64_t code) const { return on_stack_[code] != 0; }
  void set_on_stack(std::uint64_t code, bool b) {
    on_stack_[code] = b ? 1 : 0;
  }
  void mark_component(std::uint64_t code, std::int32_t comp) {
    component_[code] = comp;
  }
  void seal_component(std::int32_t, const std::vector<std::uint64_t>&) {}
  bool in_component(std::uint64_t code, std::int32_t comp) const {
    return component_[code] == comp;
  }

  std::vector<std::int32_t> index_;
  std::vector<std::int32_t> lowlink_;
  std::vector<std::uint8_t> on_stack_;
  std::vector<std::int32_t> component_;
};

/// Iterative Tarjan over the implicit ¬S region reachable from T ∧ ¬S,
/// then the fair-escape analysis of every nontrivial SCC (Section 8's
/// weakly-fair daemon): a nontrivial SCC is harmless when some action is
/// enabled at every SCC state and each of its firings exits the SCC; a
/// closed SCC (every enabled action stays inside) is an exact violation
/// with the SCC as the cycle counterexample.
template <class Flags, class Bookkeeping>
ConvergenceReport check_convergence_weakly_fair_core_impl(
    const StateSpace& space, const Flags& flags, SuccessorSource& succ,
    const std::vector<std::size_t>& actions, ConvergenceReport report,
    Bookkeeping& bk) {
  obs::Span scc_span("checker.scc");
  obs::ProgressMeter meter("convergence-scc");
  const Program& p = space.program();

  struct TarjanFrame {
    std::uint64_t code;
    std::vector<std::uint64_t> succs;
    std::size_t next = 0;
  };
  std::vector<std::uint64_t> tarjan_stack;
  std::uint32_t next_index = 0;
  std::int32_t num_components = 0;
  struct NontrivialScc {
    std::int32_t id;
    std::vector<std::uint64_t> members;  ///< pop order (= the cycle order)
  };
  std::vector<NontrivialScc> nontrivial;

  State scratch(p.num_variables());
  std::vector<TarjanFrame> frames;

  auto in_region = [&](std::uint64_t code) {
    return (flags[code] & kFlagS) == 0;
  };

  for (std::uint64_t start = 0; start < space.size(); ++start) {
    if ((flags[start] & kFlagT) == 0 || !in_region(start)) continue;
    if (bk.visited(start)) continue;

    frames.clear();
    auto push_node = [&](std::uint64_t code) -> bool {
      TarjanFrame frame;
      frame.code = code;
      succ.successors(code, frame.succs);
      report.transitions += frame.succs.size();
      ++report.region_states;
      meter.add(1);
      if (frame.succs.empty()) {  // no action enabled
        report.verdict = ConvergenceVerdict::kViolated;
        report.deadlock = space.decode(code);
        return false;
      }
      bk.set_index(code, next_index);
      bk.set_lowlink(code, next_index);
      ++next_index;
      tarjan_stack.push_back(code);
      bk.set_on_stack(code, true);
      frames.push_back(std::move(frame));
      return true;
    };

    if (!push_node(start)) {
      record_convergence_metrics(report);
      return report;
    }

    while (!frames.empty()) {
      TarjanFrame& frame = frames.back();
      if (frame.next < frame.succs.size()) {
        const std::uint64_t next = frame.succs[frame.next++];
        if (!in_region(next)) continue;  // exits to S
        if (!bk.visited(next)) {
          if (!push_node(next)) {
            record_convergence_metrics(report);
            return report;
          }
        } else if (bk.on_stack(next)) {
          bk.set_lowlink(frame.code,
                         std::min(bk.lowlink(frame.code), bk.index(next)));
        }
      } else {
        const std::uint64_t v = frame.code;
        if (bk.lowlink(v) == bk.index(v)) {
          std::vector<std::uint64_t> scc;
          while (true) {
            const std::uint64_t w = tarjan_stack.back();
            tarjan_stack.pop_back();
            bk.set_on_stack(w, false);
            bk.mark_component(w, num_components);
            scc.push_back(w);
            if (w == v) break;
          }
          // Member lists are kept only for SCCs that can host an infinite
          // computation: size > 1, or a singleton with a self-loop (v among
          // its own sorted-distinct successors).
          const bool has_internal_transition =
              scc.size() > 1 ||
              std::binary_search(frame.succs.begin(), frame.succs.end(), v);
          if (has_internal_transition) {
            bk.seal_component(num_components, scc);
            nontrivial.push_back({num_components, std::move(scc)});
          }
          ++num_components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          bk.set_lowlink(
              frames.back().code,
              std::min(bk.lowlink(frames.back().code), bk.lowlink(v)));
        }
      }
    }
  }

  // Analyze each nontrivial SCC of the region, in pop order.
  meter.aux("sccs", static_cast<std::uint64_t>(num_components));
  if (obs::Metrics::enabled()) {
    obs::Registry::instance()
        .counter("checker.scc.components")
        .add(static_cast<std::uint64_t>(num_components));
  }
  bool all_escape = true;
  for (const NontrivialScc& entry : nontrivial) {
    const std::vector<std::uint64_t>& scc = entry.members;

    // Fair-escape: some action enabled at every SCC state whose firing
    // always exits the SCC.
    bool escapable = false;
    for (std::size_t idx : actions) {
      const Action& a = p.action(idx);
      bool candidate = true;
      for (std::uint64_t code : scc) {
        space.decode_into(code, scratch);
        if (!a.enabled(scratch)) {
          candidate = false;
          break;
        }
        const std::uint64_t next = space.encode(a.apply(scratch));
        if (in_region(next) && bk.in_component(next, entry.id)) {
          candidate = false;
          break;
        }
      }
      if (candidate) {
        escapable = true;
        break;
      }
    }

    if (!escapable) {
      // Exact violation when every enabled action at every SCC state stays
      // inside the SCC: even fair computations can loop forever.
      bool closed_scc = true;
      for (std::uint64_t code : scc) {
        space.decode_into(code, scratch);
        for (std::size_t idx : actions) {
          const Action& a = p.action(idx);
          if (!a.enabled(scratch)) continue;
          const std::uint64_t next = space.encode(a.apply(scratch));
          if (!in_region(next) || !bk.in_component(next, entry.id)) {
            closed_scc = false;
            break;
          }
        }
        if (!closed_scc) break;
      }
      if (closed_scc) {
        std::vector<State> cycle;
        for (std::uint64_t code : scc) cycle.push_back(space.decode(code));
        report.verdict = ConvergenceVerdict::kViolated;
        report.cycle = std::move(cycle);
        record_convergence_metrics(report);
        return report;
      }
      all_escape = false;
    }
  }

  report.verdict = all_escape ? ConvergenceVerdict::kConverges
                              : ConvergenceVerdict::kUnknown;
  record_convergence_metrics(report);
  return report;
}

}  // namespace nonmask::detail
