// Restricted fault models: composing a program with adversaries it cannot
// out-converge.
//
// The paper proves nonmasking tolerance only for *transient* faults — a
// finite burst of state perturbation after which convergence actions run
// unopposed. Two restricted models break that assumption:
//
//  * Byzantine processes (Dubois–Masuzawa–Tixeuil): a fixed set of processes
//    is permanently adversarial. Their program actions are dropped (an
//    adversary need not follow the protocol) and every variable they own may
//    be rewritten to any domain value at any time, interleaved with correct
//    processes' steps.
//  * Unchangeable environment actions (Roohitavaf–Kulkarni): guarded
//    transitions the program can neither schedule away nor revert. They are
//    declared as ActionKind::kEnvironment and must not write any variable a
//    closure or convergence action writes.
//
// Both reduce to the same mechanism: build a *composed* Program whose
// non-fault action set is "correct-process program actions ∪ adversarial /
// environment actions", then run the ordinary store-native passes (closure,
// convergence, fault-span) over it. No checker or store code changes: the
// composed transition system is just a Program.
#pragma once

#include <vector>

#include "core/program.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {

/// Which restricted fault model a composed system encodes.
enum class FaultRegime {
  kTransient,    ///< the paper's model: perturb once, then converge
  kByzantine,    ///< fixed adversarial processes, re-corrupted forever
  kEnvironment,  ///< unchangeable environment actions in the program
};

const char* to_string(FaultRegime regime) noexcept;

/// Validate the unchangeable-environment contract: no variable written by a
/// kEnvironment action may be written by any closure or convergence action
/// (otherwise the program could revert the environment, contradicting
/// "unchangeable"). Throws std::invalid_argument naming the offending
/// variable/actions. Programs without environment actions pass trivially.
void validate_environment(const Program& program);

/// Variables owned by any process in `byzantine` (ascending VarId order).
std::vector<VarId> byzantine_variables(const Program& program,
                                       const std::vector<int>& byzantine);

/// Compose `program` with a Byzantine adversary occupying `byzantine`
/// processes:
///  * closure/convergence actions of Byzantine processes are dropped;
///  * for every variable owned by a Byzantine process and every value in its
///    domain, a kEnvironment action "byz.<var>:=v" (guard: current value
///    differs) is added, so daemons and checkers interleave arbitrary
///    re-corruption with every correct step;
///  * declared environment and fault actions pass through unchanged.
/// The result is an ordinary Program: run the store-native passes on it to
/// check the composed program∪adversary transition system. Throws
/// std::invalid_argument if a Byzantine process id has no variables and no
/// actions (likely a typo'd id).
Program compose_byzantine(const Program& program,
                          const std::vector<int>& byzantine);

/// Communication graph over process ids 0..P-1: an edge {p, q} iff some
/// non-fault action of process p reads or writes a variable owned by q (or
/// vice versa). Process-less actions and shared variables (kNoProcess) do
/// not induce edges. P is 1 + the max process id over variables and actions.
UndirectedGraph communication_graph(const Program& program);

/// BFS hop distances from the node set `sources` in `g`; -1 = unreachable.
/// Sources themselves are at distance 0.
std::vector<int> distances_from(const UndirectedGraph& g,
                                const std::vector<int>& sources);

}  // namespace nonmask
