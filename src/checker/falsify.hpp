// Monte-Carlo convergence falsification for large state spaces.
//
// The exhaustive checker is exact but bounded (~tens of millions of
// states). Beyond that, random walks still yield *sound* violation
// certificates: if a walk from a T-state revisits a state without having
// passed through S, the walk contains a cycle lying entirely outside S —
// an unfair daemon can traverse it forever, so convergence is violated.
// Similarly, reaching a ¬S state with no enabled action certifies a
// deadlock violation. Finding nothing proves nothing (the method is a
// falsifier, not a verifier) — that is exactly the exhaustive checker's
// complement.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/candidate.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"
#include "util/rng.hpp"

namespace nonmask {

struct FalsifyOptions {
  std::uint64_t walks = 200;
  std::uint64_t max_walk_length = 10'000;
  std::uint64_t seed = 0xfa15ULL;
  /// Fraction of steps where the walk greedily maximizes constraint
  /// violations (adversarial bias); the rest are uniform.
  double adversarial_bias = 0.5;
  /// Start-state generator (e.g. "apply this fault class to an S state");
  /// defaults to uniformly random in-domain states. States outside T are
  /// skipped.
  std::function<State(const Program&, Rng&)> make_start;
};

struct FalsifyResult {
  bool violated = false;
  /// A cycle of ¬S states (first == last omitted), when found.
  std::optional<std::vector<State>> cycle;
  /// A ¬S state with no enabled action, when found.
  std::optional<State> deadlock;
  std::uint64_t walks_run = 0;
  std::uint64_t steps_taken = 0;
};

/// Hunt for convergence violations of `design` (from random T-states).
FalsifyResult falsify_convergence(const Design& design,
                                  const FalsifyOptions& opts = {});

struct ProbeOptions {
  /// Give up after visiting this many distinct ¬S states.
  std::uint64_t max_states = 4'096;
};

/// Sound bounded counterexample probe from one start state: exhaustive DFS
/// over the ¬S states reachable from `start` without passing through S. A
/// back edge closes a cycle lying entirely outside S (an unfair daemon can
/// loop forever); a ¬S state with no enabled action is a deadlock. Either
/// finding certifies a convergence violation — provided `start` satisfies
/// T ∧ ¬S, which the probe checks and otherwise reports nothing. Exceeding
/// `max_states` reports nothing (the probe is a falsifier, like the random
/// walks above, but deterministic and complete within its budget — the
/// synthesizer replays prior counterexample states through it to discard
/// broken candidates without touching the exhaustive checker).
FalsifyResult probe_violation_from(const Design& design, const State& start,
                                   const ProbeOptions& opts = {});

}  // namespace nonmask
