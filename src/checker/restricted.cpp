#include "checker/restricted.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

namespace nonmask {

const char* to_string(FaultRegime regime) noexcept {
  switch (regime) {
    case FaultRegime::kTransient: return "transient";
    case FaultRegime::kByzantine: return "byzantine";
    case FaultRegime::kEnvironment: return "environment";
  }
  return "unknown";
}

void validate_environment(const Program& program) {
  std::set<VarId> env_writes;
  for (const auto& a : program.actions()) {
    if (a.kind() != ActionKind::kEnvironment) continue;
    env_writes.insert(a.writes().begin(), a.writes().end());
  }
  if (env_writes.empty()) return;
  for (const auto& a : program.actions()) {
    if (a.kind() != ActionKind::kClosure &&
        a.kind() != ActionKind::kConvergence) {
      continue;
    }
    for (VarId w : a.writes()) {
      if (env_writes.count(w) != 0) {
        throw std::invalid_argument(
            "unchangeable-environment contract violated: program action '" +
            a.name() + "' writes environment-owned variable '" +
            program.variable(w).name + "'");
      }
    }
  }
}

std::vector<VarId> byzantine_variables(const Program& program,
                                       const std::vector<int>& byzantine) {
  std::vector<VarId> out;
  for (std::uint32_t i = 0; i < program.num_variables(); ++i) {
    const VarId id(i);
    const int p = program.variable(id).process;
    if (p == VariableSpec::kNoProcess) continue;
    if (std::find(byzantine.begin(), byzantine.end(), p) != byzantine.end()) {
      out.push_back(id);
    }
  }
  return out;
}

Program compose_byzantine(const Program& program,
                          const std::vector<int>& byzantine) {
  for (int p : byzantine) {
    bool known = false;
    for (const auto& v : program.variables()) {
      if (v.process == p) { known = true; break; }
    }
    for (const auto& a : program.actions()) {
      if (a.process() == p) { known = true; break; }
    }
    if (!known) {
      throw std::invalid_argument("compose_byzantine: process " +
                                  std::to_string(p) +
                                  " owns no variables and no actions");
    }
  }

  Program composed(program.name() + "+byz");
  for (const auto& v : program.variables()) composed.add_variable(v);

  const auto is_byz = [&byzantine](int p) {
    return std::find(byzantine.begin(), byzantine.end(), p) != byzantine.end();
  };
  // A Byzantine process does not follow the protocol: its program actions
  // are dropped and replaced by arbitrary writes below. Fault actions and
  // declared environment actions pass through — they model forces outside
  // any process.
  for (const auto& a : program.actions()) {
    if ((a.kind() == ActionKind::kClosure ||
         a.kind() == ActionKind::kConvergence) &&
        is_byz(a.process())) {
      continue;
    }
    composed.add_action(a);
  }

  for (VarId v : byzantine_variables(program, byzantine)) {
    const VariableSpec& spec = program.variable(v);
    for (Value val = spec.lo; val <= spec.hi; ++val) {
      composed.add_action(Action(
          "byz." + spec.name + ":=" + std::to_string(val),
          ActionKind::kEnvironment,
          [v, val](const State& s) { return s.get(v) != val; },
          [v, val](State& s) { s.set(v, val); }, {v}, {v}, spec.process));
    }
  }
  return composed;
}

namespace {

int num_processes(const Program& program) {
  int max_p = -1;
  for (const auto& v : program.variables()) max_p = std::max(max_p, v.process);
  for (const auto& a : program.actions()) max_p = std::max(max_p, a.process());
  return max_p + 1;
}

}  // namespace

UndirectedGraph communication_graph(const Program& program) {
  const int n = num_processes(program);
  UndirectedGraph g(n);
  std::set<std::pair<int, int>> seen;
  const auto connect = [&](int p, int q) {
    if (p == q || p < 0 || q < 0) return;
    const auto e = std::minmax(p, q);
    if (seen.insert({e.first, e.second}).second) {
      g.add_edge(e.first, e.second);
    }
  };
  for (const auto& a : program.actions()) {
    if (a.kind() == ActionKind::kFault) continue;
    const int p = a.process();
    if (p < 0) continue;
    for (VarId v : a.reads()) connect(p, program.variable(v).process);
    for (VarId v : a.writes()) connect(p, program.variable(v).process);
  }
  return g;
}

std::vector<int> distances_from(const UndirectedGraph& g,
                                const std::vector<int>& sources) {
  std::vector<int> dist(static_cast<std::size_t>(g.size()), -1);
  std::deque<int> frontier;
  for (int s : sources) {
    if (s < 0 || s >= g.size()) continue;
    if (dist[static_cast<std::size_t>(s)] == 0) continue;
    dist[static_cast<std::size_t>(s)] = 0;
    frontier.push_back(s);
  }
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop_front();
    for (int v : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] != -1) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      frontier.push_back(v);
    }
  }
  return dist;
}

}  // namespace nonmask
