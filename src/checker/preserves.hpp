// "Action a preserves predicate R" (Section 2): starting from any state
// where a is enabled and R holds, executing a yields a state where R holds.
//
// This is the workhorse of the theorem validators (Sections 5-7): each
// antecedent of Theorems 1-3 is a set of preserves-obligations. Obligations
// are discharged exhaustively when a StateSpace is supplied and by seeded
// random sampling otherwise; reports record which mode ran.
#pragma once

#include <cstdint>
#include <optional>

#include "checker/state_space.hpp"
#include "core/action.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"

namespace nonmask {

struct PreservesOptions {
  /// When non-null, check every state exhaustively; otherwise sample.
  const StateSpace* space = nullptr;
  /// Number of random states when sampling.
  std::uint64_t samples = 100'000;
  std::uint64_t seed = 0x5eedULL;
  /// Additional hypothesis: only states where context holds are considered
  /// (e.g. Theorem 3's "whenever all constraints in lower layers hold").
  PredicateFn context;
};

struct PreservesReport {
  bool preserves = false;
  bool exhaustive = false;     ///< true when the full space was enumerated
  std::uint64_t checked = 0;   ///< states satisfying the hypothesis
  std::optional<State> counterexample;
};

/// Check that `action` preserves `predicate` in `program`, under the
/// optional context hypothesis.
PreservesReport check_preserves(const Program& program, const Action& action,
                                const PredicateFn& predicate,
                                const PreservesOptions& opts = {});

}  // namespace nonmask
