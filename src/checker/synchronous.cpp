#include "checker/synchronous.hpp"

#include <algorithm>
#include <unordered_map>

namespace nonmask {

namespace {

/// The synchronous successor: every process fires its lowest-indexed
/// enabled action; all reads see the pre-state; declared writes merge.
/// Returns false when nothing is enabled.
bool synchronous_step(const Program& p, const State& s, State& out) {
  std::unordered_map<int, std::size_t> per_process;
  std::vector<std::size_t> chosen;
  for (std::size_t i = 0; i < p.num_actions(); ++i) {
    const Action& a = p.action(i);
    if (a.kind() == ActionKind::kFault || !a.enabled(s)) continue;
    if (a.process() < 0) {
      chosen.push_back(i);
    } else if (per_process.find(a.process()) == per_process.end()) {
      per_process.emplace(a.process(), i);
    }
  }
  for (const auto& [proc, idx] : per_process) {
    (void)proc;
    chosen.push_back(idx);
  }
  if (chosen.empty()) return false;
  out = s;
  for (std::size_t idx : chosen) {
    const Action& a = p.action(idx);
    State local = a.apply(s);
    for (VarId w : a.writes()) out.set(w, local.get(w));
  }
  return true;
}

}  // namespace

SynchronousReport check_convergence_synchronous(const StateSpace& space,
                                                const PredicateFn& S,
                                                const PredicateFn& T) {
  const Program& p = space.program();
  SynchronousReport report;

  // status: 0 unknown, 1 on current trajectory, 2 proven convergent.
  std::vector<std::uint8_t> status(space.size(), 0);
  std::vector<std::uint32_t> dist(space.size(), 0);
  State s(p.num_variables());
  State next(p.num_variables());

  for (std::uint64_t start = 0; start < space.size(); ++start) {
    space.decode_into(start, s);
    if (!T(s) || S(s)) continue;
    if (status[start] == 2) continue;

    // Follow the unique trajectory until S, a known-convergent state, a
    // deadlock, or a revisit (cycle).
    std::vector<std::uint64_t> trajectory;
    std::uint64_t code = start;
    while (true) {
      if (status[code] == 1) {
        // Cycle within the current trajectory.
        auto at = std::find(trajectory.begin(), trajectory.end(), code);
        std::vector<State> cycle;
        for (auto it = at; it != trajectory.end(); ++it) {
          cycle.push_back(space.decode(*it));
        }
        report.cycle = std::move(cycle);
        return report;
      }
      if (status[code] == 2) break;  // joins a convergent trajectory
      space.decode_into(code, s);
      if (S(s)) {
        dist[code] = 0;
        status[code] = 2;
        break;
      }
      if (!synchronous_step(p, s, next)) {
        report.deadlock = s;
        return report;
      }
      status[code] = 1;
      trajectory.push_back(code);
      code = space.encode(next);
    }

    // Unwind: distances increase walking back from the convergence point.
    std::uint32_t d = dist[code];
    for (auto it = trajectory.rbegin(); it != trajectory.rend(); ++it) {
      ++d;
      dist[*it] = d;
      status[*it] = 2;
      report.max_steps_to_S =
          std::max<std::uint64_t>(report.max_steps_to_S, d);
    }
  }
  report.converges = true;
  return report;
}

}  // namespace nonmask
