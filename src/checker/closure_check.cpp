#include "checker/closure_check.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"

namespace nonmask {

namespace detail {

ClosureReport scan_closure_range(const StateSpace& space,
                                 const PredicateFn& predicate,
                                 const std::vector<std::size_t>& actions,
                                 std::uint64_t begin, std::uint64_t end,
                                 State& scratch) {
  const Program& p = space.program();
  ClosureReport report;
  for (std::uint64_t code = begin; code < end; ++code) {
    space.decode_into(code, scratch);
    if (!predicate(scratch)) continue;
    ++report.states_checked;
    for (std::size_t idx : actions) {
      const Action& a = p.action(idx);
      if (!a.enabled(scratch)) continue;
      ++report.transitions_checked;
      State next = a.apply(scratch);
      if (!predicate(next)) {
        report.closed = false;
        report.violation = ClosureViolation{scratch, idx, std::move(next)};
        return report;
      }
    }
  }
  report.closed = true;
  return report;
}

void record_closure_metrics(const ClosureReport& report) {
  if (!obs::Metrics::enabled()) return;
  auto& registry = obs::Registry::instance();
  registry.counter("checker.closure.checks").add(1);
  registry.counter("checker.closure.states").add(report.states_checked);
  registry.counter("checker.closure.transitions")
      .add(report.transitions_checked);
}

}  // namespace detail

ClosureReport check_closed(const StateSpace& space,
                           const PredicateFn& predicate,
                           const std::vector<std::size_t>& actions) {
  obs::Span span("checker.closure");
  obs::ProgressMeter meter("closure", space.size());
  State scratch(space.program().num_variables());

  // The serial scan is the in-order concatenation of slices (the same
  // property the parallel sweep's reduction relies on), so slicing here for
  // progress ticks changes nothing observable.
  constexpr std::uint64_t kSlice = 1 << 18;
  ClosureReport report;
  report.closed = true;
  for (std::uint64_t lo = 0; lo < space.size() && report.closed;
       lo += kSlice) {
    const std::uint64_t hi = std::min(space.size(), lo + kSlice);
    ClosureReport slice = detail::scan_closure_range(space, predicate,
                                                     actions, lo, hi, scratch);
    report.states_checked += slice.states_checked;
    report.transitions_checked += slice.transitions_checked;
    if (!slice.closed) {
      report.closed = false;
      report.violation = std::move(slice.violation);
    }
    meter.add(hi - lo);
  }
  detail::record_closure_metrics(report);
  return report;
}

ClosureReport check_closed(const StateSpace& space,
                           const PredicateFn& predicate) {
  return check_closed(space, predicate,
                      non_fault_actions(space.program()));
}

}  // namespace nonmask
