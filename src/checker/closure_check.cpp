#include "checker/closure_check.hpp"

namespace nonmask {

namespace detail {

ClosureReport scan_closure_range(const StateSpace& space,
                                 const PredicateFn& predicate,
                                 const std::vector<std::size_t>& actions,
                                 std::uint64_t begin, std::uint64_t end,
                                 State& scratch) {
  const Program& p = space.program();
  ClosureReport report;
  for (std::uint64_t code = begin; code < end; ++code) {
    space.decode_into(code, scratch);
    if (!predicate(scratch)) continue;
    ++report.states_checked;
    for (std::size_t idx : actions) {
      const Action& a = p.action(idx);
      if (!a.enabled(scratch)) continue;
      ++report.transitions_checked;
      State next = a.apply(scratch);
      if (!predicate(next)) {
        report.closed = false;
        report.violation = ClosureViolation{scratch, idx, std::move(next)};
        return report;
      }
    }
  }
  report.closed = true;
  return report;
}

}  // namespace detail

ClosureReport check_closed(const StateSpace& space,
                           const PredicateFn& predicate,
                           const std::vector<std::size_t>& actions) {
  State scratch(space.program().num_variables());
  return detail::scan_closure_range(space, predicate, actions, 0,
                                    space.size(), scratch);
}

ClosureReport check_closed(const StateSpace& space,
                           const PredicateFn& predicate) {
  return check_closed(space, predicate,
                      non_fault_actions(space.program()));
}

}  // namespace nonmask
