#include "checker/closure_check.hpp"

namespace nonmask {

ClosureReport check_closed(const StateSpace& space,
                           const PredicateFn& predicate,
                           const std::vector<std::size_t>& actions) {
  const Program& p = space.program();
  ClosureReport report;
  State s(p.num_variables());
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, s);
    if (!predicate(s)) continue;
    ++report.states_checked;
    for (std::size_t idx : actions) {
      const Action& a = p.action(idx);
      if (!a.enabled(s)) continue;
      ++report.transitions_checked;
      State next = a.apply(s);
      if (!predicate(next)) {
        report.closed = false;
        report.violation = ClosureViolation{s, idx, std::move(next)};
        return report;
      }
    }
  }
  report.closed = true;
  return report;
}

ClosureReport check_closed(const StateSpace& space,
                           const PredicateFn& predicate) {
  const Program& p = space.program();
  std::vector<std::size_t> actions;
  for (std::size_t i = 0; i < p.num_actions(); ++i) {
    if (p.action(i).kind() != ActionKind::kFault) actions.push_back(i);
  }
  return check_closed(space, predicate, actions);
}

}  // namespace nonmask
