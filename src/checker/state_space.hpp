// Explicit state spaces.
//
// Every variable has a finite interval domain, so the state space is a
// mixed-radix product: each state has a unique integer code in
// [0, prod(domain sizes)). The checker modules iterate codes, decode to
// states, and index per-state bookkeeping arrays by code.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/program.hpp"
#include "core/state.hpp"

namespace nonmask {

class StateSpaceTooLarge : public std::runtime_error {
 public:
  explicit StateSpaceTooLarge(std::uint64_t requested, std::uint64_t budget)
      : std::runtime_error("state space of " + std::to_string(requested) +
                           " states exceeds budget of " +
                           std::to_string(budget)),
        requested_(requested),
        budget_(budget) {}
  std::uint64_t requested() const noexcept { return requested_; }
  std::uint64_t budget() const noexcept { return budget_; }

 private:
  std::uint64_t requested_;
  std::uint64_t budget_;
};

class StateSpace {
 public:
  /// Default budget: 32M states (~raw bookkeeping arrays of 32-256 MB).
  static constexpr std::uint64_t kDefaultBudget = 32'000'000;

  explicit StateSpace(const Program& program,
                      std::uint64_t budget = kDefaultBudget);

  const Program& program() const noexcept { return *program_; }
  std::uint64_t size() const noexcept { return size_; }

  /// Decode a code in [0, size()) to a state.
  State decode(std::uint64_t code) const;
  /// Decode into an existing state (avoids allocation in hot loops).
  void decode_into(std::uint64_t code, State& s) const;
  /// Encode a state (must be in-domain) to its code.
  std::uint64_t encode(const State& s) const;

 private:
  const Program* program_;
  std::uint64_t size_ = 1;
  std::vector<std::uint64_t> stride_;  // per-variable mixed-radix stride
};

/// True iff `program`'s full state space fits within `budget` states.
bool fits_in_budget(const Program& program,
                    std::uint64_t budget = StateSpace::kDefaultBudget);

/// Indices of `program`'s non-fault actions, in program order — the action
/// set every checker module iterates.
std::vector<std::size_t> non_fault_actions(const Program& program);

}  // namespace nonmask
