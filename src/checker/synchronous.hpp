// Exact convergence checking under the synchronous daemon.
//
// Synchronous execution fires, at every step, the lowest-indexed enabled
// action of every process simultaneously (read-from-old-state, merged
// writes — the engine's SynchronousDaemon semantics). The system is then a
// *function* on states, so convergence is decidable by following each
// state's unique trajectory with cycle detection — far cheaper than the
// interleaving analysis, and a genuinely different question: protocols
// proven stabilizing under the central daemon may livelock synchronously
// (symmetry is never broken) and vice versa.
#pragma once

#include <optional>
#include <vector>

#include "checker/state_space.hpp"
#include "core/predicate.hpp"

namespace nonmask {

struct SynchronousReport {
  bool converges = false;
  /// A synchronous livelock: the cycle of states an execution settles in.
  std::optional<std::vector<State>> cycle;
  /// A ¬S state with no enabled action.
  std::optional<State> deadlock;
  /// Worst number of synchronous steps to reach S (when converging).
  std::uint64_t max_steps_to_S = 0;
};

SynchronousReport check_convergence_synchronous(const StateSpace& space,
                                                const PredicateFn& S,
                                                const PredicateFn& T);

}  // namespace nonmask
