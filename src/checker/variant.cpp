#include "checker/variant.hpp"

#include <algorithm>

#include "checker/convergence_check.hpp"

namespace nonmask {

std::uint32_t VariantFunction::max_value() const noexcept {
  std::uint32_t best = 0;
  for (std::uint32_t d : dist_) best = std::max(best, d);
  return best;
}

std::optional<VariantFunction> compute_variant(const StateSpace& space,
                                               const PredicateFn& S) {
  // compute over the whole space: T = true.
  ConvergenceReport report =
      check_convergence(space, S, true_predicate());
  if (report.verdict != ConvergenceVerdict::kConverges) return std::nullopt;

  // Re-run the DP to materialize distances: iterate states in decreasing
  // longest-distance order is implicit in the DFS; simplest correct
  // approach is a memoized post-order identical to check_convergence, so we
  // recompute here with an explicit stack.
  const Program& p = space.program();
  std::vector<std::size_t> actions;
  for (std::size_t i = 0; i < p.num_actions(); ++i) {
    if (p.action(i).kind() != ActionKind::kFault) actions.push_back(i);
  }

  std::vector<std::uint32_t> dist(space.size(), 0);
  std::vector<std::uint8_t> color(space.size(), 0);  // 0 new, 1 open, 2 done
  State scratch(p.num_variables());

  struct Frame {
    std::uint64_t code;
    std::vector<std::uint64_t> succs;
    std::size_t next = 0;
  };
  std::vector<Frame> frames;

  std::vector<std::uint8_t> in_S(space.size(), 0);
  for (std::uint64_t code = 0; code < space.size(); ++code) {
    space.decode_into(code, scratch);
    in_S[code] = S(scratch) ? 1 : 0;
  }

  auto expand = [&](std::uint64_t code, std::vector<std::uint64_t>& out) {
    out.clear();
    space.decode_into(code, scratch);
    for (std::size_t idx : actions) {
      const Action& a = p.action(idx);
      if (a.enabled(scratch)) out.push_back(space.encode(a.apply(scratch)));
    }
  };

  for (std::uint64_t start = 0; start < space.size(); ++start) {
    if (in_S[start] != 0 || color[start] != 0) continue;
    Frame f;
    f.code = start;
    expand(start, f.succs);
    color[start] = 1;
    frames.push_back(std::move(f));
    while (!frames.empty()) {
      Frame& top = frames.back();
      if (top.next < top.succs.size()) {
        const std::uint64_t succ = top.succs[top.next++];
        if (in_S[succ] != 0) {
          dist[top.code] = std::max(dist[top.code], 1u);
          continue;
        }
        if (color[succ] == 0) {
          Frame g;
          g.code = succ;
          expand(succ, g.succs);
          color[succ] = 1;
          frames.push_back(std::move(g));
        } else {
          // color == 2 (no cycles: verdict was kConverges)
          dist[top.code] = std::max(dist[top.code], dist[succ] + 1);
        }
      } else {
        color[top.code] = 2;
        const std::uint64_t done = top.code;
        frames.pop_back();
        if (!frames.empty()) {
          dist[frames.back().code] =
              std::max(dist[frames.back().code], dist[done] + 1);
        }
      }
    }
  }
  return VariantFunction(space, std::move(dist));
}

}  // namespace nonmask
