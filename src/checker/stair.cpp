#include "checker/stair.hpp"

#include "checker/closure_check.hpp"

namespace nonmask {

StairReport check_stair(const StateSpace& space, const PredicateFn& T,
                        const std::vector<StatePredicate>& steps) {
  StairReport report;
  if (steps.empty()) {
    report.failure = "stair has no steps";
    return report;
  }

  // Subset chain: step[i] implies step[i-1] (and step[0] implies T).
  {
    State s(space.program().num_variables());
    for (std::uint64_t code = 0; code < space.size(); ++code) {
      space.decode_into(code, s);
      if (steps[0].fn(s) && !T(s)) {
        report.failure = "step '" + steps[0].name + "' is not inside T";
        return report;
      }
      for (std::size_t i = 1; i < steps.size(); ++i) {
        if (steps[i].fn(s) && !steps[i - 1].fn(s)) {
          report.failure = "step '" + steps[i].name +
                           "' is not inside step '" + steps[i - 1].name + "'";
          return report;
        }
      }
    }
  }

  if (!check_closed(space, T).closed) {
    report.failure = "T is not closed";
    return report;
  }

  PredicateFn from = T;
  for (const auto& step : steps) {
    StairStepReport sr;
    sr.name = step.name;
    sr.closed = check_closed(space, step.fn).closed;
    if (!sr.closed) {
      report.failure = "step '" + step.name + "' is not closed";
      report.steps.push_back(std::move(sr));
      return report;
    }
    sr.convergence = check_convergence(space, step.fn, from);
    if (sr.convergence.verdict != ConvergenceVerdict::kConverges) {
      report.failure = "stage into '" + step.name + "' does not converge";
      report.steps.push_back(std::move(sr));
      return report;
    }
    report.total_worst_case += sr.convergence.max_steps_to_S;
    from = step.fn;
    report.steps.push_back(std::move(sr));
  }
  report.valid = true;
  return report;
}

}  // namespace nonmask
