#include "checker/state_space.hpp"

namespace nonmask {

StateSpace::StateSpace(const Program& program, std::uint64_t budget)
    : program_(&program) {
  const auto count = program.state_count();
  if (!count || *count > budget) {
    throw StateSpaceTooLarge(count.value_or(~std::uint64_t{0}), budget);
  }
  size_ = *count;
  stride_.resize(program.num_variables());
  std::uint64_t stride = 1;
  for (std::uint32_t i = 0; i < program.num_variables(); ++i) {
    stride_[i] = stride;
    stride *= program.variable(VarId(i)).domain_size();
  }
}

State StateSpace::decode(std::uint64_t code) const {
  State s(program_->num_variables());
  decode_into(code, s);
  return s;
}

void StateSpace::decode_into(std::uint64_t code, State& s) const {
  for (std::uint32_t i = 0; i < program_->num_variables(); ++i) {
    const auto& spec = program_->variable(VarId(i));
    const std::uint64_t digit = (code / stride_[i]) % spec.domain_size();
    // Widen before offsetting: lo + digit can exceed int32 range midway
    // even though the final value is in [lo, hi].
    s.set(VarId(i), static_cast<Value>(static_cast<std::int64_t>(spec.lo) +
                                       static_cast<std::int64_t>(digit)));
  }
}

std::uint64_t StateSpace::encode(const State& s) const {
  std::uint64_t code = 0;
  for (std::uint32_t i = 0; i < program_->num_variables(); ++i) {
    const auto& spec = program_->variable(VarId(i));
    // value - lo in 64-bit: the 32-bit difference overflows for domains
    // spanning more than half the Value range (e.g. [INT32_MIN, INT32_MAX]).
    code += stride_[i] *
            static_cast<std::uint64_t>(
                static_cast<std::int64_t>(s.get(VarId(i))) -
                static_cast<std::int64_t>(spec.lo));
  }
  return code;
}

bool fits_in_budget(const Program& program, std::uint64_t budget) {
  const auto count = program.state_count();
  return count && *count <= budget;
}

std::vector<std::size_t> non_fault_actions(const Program& program) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < program.num_actions(); ++i) {
    if (program.action(i).kind() != ActionKind::kFault) out.push_back(i);
  }
  return out;
}

}  // namespace nonmask
