// The spec DSL's expression language.
//
// Guards, assignments, constraints, fault spans, and invariants in a spec
// document are strings in a small C-like expression language, parsed by a
// hand-rolled precedence-climbing parser and compiled against a program's
// variables. Two evaluation layers share one AST:
//
//  * index time — parameters (`n`, user params), comprehension binders
//    (`j`, `k`, ...), and topology accessors (next/prev/parent/deg/nbr/
//    root) fold to compile-time integers while a parameterized spec is
//    expanded over its topology. Any subexpression referencing no program
//    variable constant-folds, so `j == root() ? 0 : dist[j]` picks its
//    branch statically per process.
//  * state time — what remains compiles to a closure over core::State,
//    with the referenced VarIds collected in first-occurrence order (the
//    derived read set of actions and the support of constraints).
//
// Grammar (precedence low to high):
//   ternary := or ('?' ternary ':' ternary)?
//   or      := and ('||' and)*
//   and     := cmp ('&&' cmp)*
//   cmp     := add (('=='|'!='|'<'|'<='|'>'|'>=') add)?
//   add     := mul (('+'|'-') mul)*
//   mul     := unary (('*'|'/'|'%') unary)*
//   unary   := ('!'|'-')* primary
//   primary := INT | IDENT | IDENT '[' ternary ']'
//            | IDENT '(' args ')' | '(' ternary ')'
//   args    := '' | ternary (',' ternary)*
//            | IDENT ':' ternary ',' ternary     -- comprehension
//
// Booleans are ints (0 = false); comparisons yield 0/1. `/` and `%` by
// zero evaluate to 0 (total semantics, documented in docs/SPEC.md).
// Identifiers may contain '.' after the first character, so fully expanded
// specs can reference per-process instances like `x.3` or `env.noise`
// directly. Comprehensions — `all|any|sum|count|min|max|first|mex(k : SET,
// BODY)` over `procs()`, `range(a,b)`, `nbrs(j)`, `lower_nbrs(j)`,
// `children(j)` — are unrolled at expansion time over the topology.
#pragma once

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/program.hpp"
#include "core/state.hpp"
#include "core/variable.hpp"

namespace nonmask::spec {

class ExprError : public std::runtime_error {
 public:
  explicit ExprError(const std::string& message)
      : std::runtime_error(message) {}
};

struct ExprNode;
using ExprPtr = std::shared_ptr<const ExprNode>;

struct ExprNode {
  enum class Kind {
    kLit,
    kIdent,
    kSubscript,      // name[args[0]]
    kCall,           // name(args...)
    kUnary,          // name is "!" or "-", args[0]
    kBinary,         // name is the operator, args[0], args[1]
    kTernary,        // args[0] ? args[1] : args[2]
    kComprehension,  // name(binder : args[0], args[1])
  };
  Kind kind = Kind::kLit;
  long long lit = 0;
  std::string name;
  std::string binder;
  std::vector<ExprPtr> args;
};

/// Parse one expression; the whole string must be consumed. Throws
/// ExprError with a character position on malformed input.
ExprPtr parse_expr(const std::string& text);

/// The expansion-time view of a spec's topology. Built by the compiler
/// from the spec's `topology` object over the graphlib generators; an
/// expanded (emitter-produced) spec has none and uses no index functions.
struct Topology {
  enum class Kind { kNone, kRing, kTree, kGraph };
  Kind kind = Kind::kNone;
  int n = 0;
  int root = 0;
  std::vector<int> parent;                 // trees
  std::vector<std::vector<int>> children;  // trees
  std::vector<std::vector<int>> nbrs;      // trees, graphs, rings
};

struct CompileEnv {
  /// Spec params plus "n" (process count) when a topology is present.
  const std::unordered_map<std::string, long long>* params = nullptr;
  /// Comprehension / expansion binders currently in scope.
  std::unordered_map<std::string, long long> binders;
  const Topology* topo = nullptr;
  /// Program under construction: full variable names resolve here.
  const Program* program = nullptr;
  /// Per-process variable families: `x[3]` resolves through this map.
  const std::unordered_map<std::string, std::vector<VarId>>* families =
      nullptr;
};

/// A compiled state expression: either a constant or a closure, plus the
/// VarIds it reads in first-occurrence order (deduplicated).
struct CompiledExpr {
  bool is_const = false;
  Value value = 0;
  std::function<Value(const State&)> fn;
  std::vector<VarId> reads;

  Value eval(const State& s) const { return is_const ? value : fn(s); }
};

/// Compile against `env`; throws ExprError on unknown names, non-constant
/// subscripts, or misuse of index functions.
CompiledExpr compile_expr(const ExprPtr& node, const CompileEnv& env);

/// Compile and require a compile-time constant (domain bounds, `where`
/// clauses, constraint ids). Throws ExprError when state-dependent.
long long eval_index_expr(const ExprPtr& node, const CompileEnv& env);

/// Convenience: parse + eval_index_expr.
long long eval_index_expr(const std::string& text, const CompileEnv& env);

}  // namespace nonmask::spec
