#include "spec/expr.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <utility>

namespace nonmask::spec {

namespace {

// --- lexer ----------------------------------------------------------------

struct Token {
  enum class Kind { kInt, kIdent, kOp, kEnd };
  Kind kind = Kind::kEnd;
  long long value = 0;
  std::string text;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { next(); }

  const Token& peek() const noexcept { return current_; }

  Token take() {
    Token t = current_;
    next();
    return t;
  }

  /// Snapshot/restore for finite lookahead (comprehension detection).
  struct Snapshot {
    std::size_t pos;
    Token current;
  };
  Snapshot save() const { return {pos_, current_}; }
  void restore(const Snapshot& snap) {
    pos_ = snap.pos;
    current_ = snap.current;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ExprError(message + " at position " +
                    std::to_string(current_.pos) + " in expression \"" +
                    text_ + "\"");
  }

 private:
  void next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    current_.pos = pos_;
    if (pos_ >= text_.size()) {
      current_.kind = Token::Kind::kEnd;
      return;
    }
    const char c = text_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      long long value = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        const long long digit = text_[pos_] - '0';
        // Specs arrive over the network: a hostile digit string must be a
        // parse error, not signed-overflow UB.
        if (value > (std::numeric_limits<long long>::max() - digit) / 10) {
          throw ExprError("integer literal overflows at position " +
                          std::to_string(current_.pos) + " in expression \"" +
                          text_ + "\"");
        }
        value = value * 10 + digit;
        ++pos_;
      }
      current_.kind = Token::Kind::kInt;
      current_.value = value;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size()) {
        const char i = text_[pos_];
        if (std::isalnum(static_cast<unsigned char>(i)) || i == '_' ||
            i == '.') {
          ++pos_;
        } else {
          break;
        }
      }
      current_.kind = Token::Kind::kIdent;
      current_.text = text_.substr(start, pos_ - start);
      return;
    }
    // Two-character operators first.
    static const char* kTwo[] = {"==", "!=", "<=", ">=", "&&", "||"};
    for (const char* op : kTwo) {
      if (text_.compare(pos_, 2, op) == 0) {
        current_.kind = Token::Kind::kOp;
        current_.text = op;
        pos_ += 2;
        return;
      }
    }
    static const std::string kOne = "+-*/%()[],?:<>!";
    if (kOne.find(c) != std::string::npos) {
      current_.kind = Token::Kind::kOp;
      current_.text = std::string(1, c);
      ++pos_;
      return;
    }
    throw ExprError(std::string("unexpected character '") + c +
                    "' at position " + std::to_string(pos_) +
                    " in expression \"" + text_ + "\"");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  Token current_;
};

bool is_op(const Token& t, const char* op) {
  return t.kind == Token::Kind::kOp && t.text == op;
}

// --- parser ---------------------------------------------------------------

class ExprParser {
 public:
  explicit ExprParser(const std::string& text) : lex_(text) {}

  ExprPtr parse() {
    ExprPtr e = ternary();
    if (lex_.peek().kind != Token::Kind::kEnd) {
      lex_.fail("trailing tokens");
    }
    return e;
  }

 private:
  static ExprPtr node(ExprNode n) {
    return std::make_shared<const ExprNode>(std::move(n));
  }

  void expect_op(const char* op) {
    if (!is_op(lex_.peek(), op)) {
      lex_.fail(std::string("expected '") + op + "'");
    }
    lex_.take();
  }

  ExprPtr ternary() {
    ExprPtr cond = logical_or();
    if (!is_op(lex_.peek(), "?")) return cond;
    lex_.take();
    ExprPtr then = ternary();
    expect_op(":");
    ExprPtr otherwise = ternary();
    ExprNode n;
    n.kind = ExprNode::Kind::kTernary;
    n.args = {std::move(cond), std::move(then), std::move(otherwise)};
    return node(std::move(n));
  }

  ExprPtr binary_chain(ExprPtr (ExprParser::*sub)(),
                       std::initializer_list<const char*> ops) {
    ExprPtr lhs = (this->*sub)();
    while (true) {
      const Token& t = lex_.peek();
      bool matched = false;
      for (const char* op : ops) {
        if (is_op(t, op)) {
          lex_.take();
          ExprNode n;
          n.kind = ExprNode::Kind::kBinary;
          n.name = op;
          n.args = {std::move(lhs), (this->*sub)()};
          lhs = node(std::move(n));
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  ExprPtr logical_or() {
    return binary_chain(&ExprParser::logical_and, {"||"});
  }
  ExprPtr logical_and() {
    return binary_chain(&ExprParser::comparison, {"&&"});
  }

  ExprPtr comparison() {
    ExprPtr lhs = additive();
    static const char* kCmps[] = {"==", "!=", "<=", ">=", "<", ">"};
    for (const char* op : kCmps) {
      if (is_op(lex_.peek(), op)) {
        lex_.take();
        ExprNode n;
        n.kind = ExprNode::Kind::kBinary;
        n.name = op;
        n.args = {std::move(lhs), additive()};
        return node(std::move(n));
      }
    }
    return lhs;
  }

  ExprPtr additive() {
    return binary_chain(&ExprParser::multiplicative, {"+", "-"});
  }
  ExprPtr multiplicative() {
    return binary_chain(&ExprParser::unary, {"*", "/", "%"});
  }

  ExprPtr unary() {
    if (is_op(lex_.peek(), "!") || is_op(lex_.peek(), "-")) {
      const Token t = lex_.take();
      ExprNode n;
      n.kind = ExprNode::Kind::kUnary;
      n.name = t.text;
      n.args = {unary()};
      return node(std::move(n));
    }
    return primary();
  }

  ExprPtr primary() {
    const Token& t = lex_.peek();
    if (t.kind == Token::Kind::kInt) {
      const Token taken = lex_.take();
      ExprNode n;
      n.kind = ExprNode::Kind::kLit;
      n.lit = taken.value;
      return node(std::move(n));
    }
    if (is_op(t, "(")) {
      lex_.take();
      ExprPtr inner = ternary();
      expect_op(")");
      return inner;
    }
    if (t.kind != Token::Kind::kIdent) {
      lex_.fail("expected expression");
    }
    const Token name = lex_.take();
    if (is_op(lex_.peek(), "[")) {
      lex_.take();
      ExprPtr index = ternary();
      expect_op("]");
      ExprNode n;
      n.kind = ExprNode::Kind::kSubscript;
      n.name = name.text;
      n.args = {std::move(index)};
      return node(std::move(n));
    }
    if (is_op(lex_.peek(), "(")) {
      lex_.take();
      // A call, or a comprehension `fn(binder : set, body)`: look ahead
      // for `IDENT ':'` and rewind when it is an ordinary argument.
      if (lex_.peek().kind == Token::Kind::kIdent) {
        const Lexer::Snapshot snap = lex_.save();
        const Token maybe_binder = lex_.take();
        if (is_op(lex_.peek(), ":")) {
          lex_.take();
          ExprPtr set = ternary();
          expect_op(",");
          ExprPtr body = ternary();
          expect_op(")");
          ExprNode n;
          n.kind = ExprNode::Kind::kComprehension;
          n.name = name.text;
          n.binder = maybe_binder.text;
          n.args = {std::move(set), std::move(body)};
          return node(std::move(n));
        }
        lex_.restore(snap);
      }
      if (is_op(lex_.peek(), ")")) {
        lex_.take();
        ExprNode n;
        n.kind = ExprNode::Kind::kCall;
        n.name = name.text;
        return node(std::move(n));
      }
      return finish_call(name.text, ternary());
    }
    ExprNode n;
    n.kind = ExprNode::Kind::kIdent;
    n.name = name.text;
    return node(std::move(n));
  }

  ExprPtr finish_call(const std::string& name, ExprPtr first) {
    ExprNode n;
    n.kind = ExprNode::Kind::kCall;
    n.name = name;
    n.args.push_back(std::move(first));
    while (is_op(lex_.peek(), ",")) {
      lex_.take();
      n.args.push_back(ternary());
    }
    expect_op(")");
    return node(std::move(n));
  }

  Lexer lex_;
};

// --- compiler -------------------------------------------------------------

CompiledExpr make_const(long long v) {
  CompiledExpr c;
  c.is_const = true;
  c.value = static_cast<Value>(v);
  return c;
}

void merge_reads(std::vector<VarId>& into, const std::vector<VarId>& from) {
  for (VarId id : from) {
    if (std::find(into.begin(), into.end(), id) == into.end()) {
      into.push_back(id);
    }
  }
}

CompiledExpr make_var_read(VarId id) {
  CompiledExpr c;
  c.fn = [id](const State& s) { return s.get(id); };
  c.reads = {id};
  return c;
}

long long apply_binary(const std::string& op, long long a, long long b) {
  if (op == "+") return a + b;
  if (op == "-") return a - b;
  if (op == "*") return a * b;
  if (op == "/") return b == 0 ? 0 : a / b;
  if (op == "%") return b == 0 ? 0 : a % b;
  if (op == "==") return a == b ? 1 : 0;
  if (op == "!=") return a != b ? 1 : 0;
  if (op == "<") return a < b ? 1 : 0;
  if (op == "<=") return a <= b ? 1 : 0;
  if (op == ">") return a > b ? 1 : 0;
  if (op == ">=") return a >= b ? 1 : 0;
  if (op == "&&") return (a != 0 && b != 0) ? 1 : 0;
  if (op == "||") return (a != 0 || b != 0) ? 1 : 0;
  throw ExprError("unknown operator '" + op + "'");
}

const Topology& require_topo(const CompileEnv& env, const char* fn) {
  if (env.topo == nullptr || env.topo->kind == Topology::Kind::kNone) {
    throw ExprError(std::string(fn) +
                    " requires a spec topology (none declared)");
  }
  return *env.topo;
}

int check_node(const Topology& topo, long long j, const char* fn) {
  if (j < 0 || j >= topo.n) {
    throw ExprError(std::string(fn) + "(" + std::to_string(j) +
                    "): process index out of range [0, " +
                    std::to_string(topo.n) + ")");
  }
  return static_cast<int>(j);
}

std::vector<long long> eval_set(const ExprPtr& set, const CompileEnv& env) {
  if (set->kind != ExprNode::Kind::kCall) {
    throw ExprError("comprehension set must be procs()/range(a,b)/nbrs(j)/"
                    "lower_nbrs(j)/children(j)");
  }
  std::vector<long long> out;
  if (set->name == "procs") {
    const Topology& topo = require_topo(env, "procs");
    for (int j = 0; j < topo.n; ++j) out.push_back(j);
    return out;
  }
  if (set->name == "range") {
    if (set->args.size() != 2) throw ExprError("range(a, b) takes 2 args");
    const long long a = eval_index_expr(set->args[0], env);
    const long long b = eval_index_expr(set->args[1], env);
    for (long long v = a; v < b; ++v) out.push_back(v);
    return out;
  }
  if (set->name == "nbrs" || set->name == "lower_nbrs" ||
      set->name == "children") {
    if (set->args.size() != 1) {
      throw ExprError(set->name + "(j) takes 1 arg");
    }
    const Topology& topo = require_topo(env, set->name.c_str());
    const int j = check_node(topo, eval_index_expr(set->args[0], env),
                             set->name.c_str());
    if (set->name == "children") {
      if (topo.kind != Topology::Kind::kTree) {
        throw ExprError("children(j) requires a tree topology");
      }
      for (int c : topo.children[static_cast<std::size_t>(j)]) {
        out.push_back(c);
      }
      return out;
    }
    for (int k : topo.nbrs[static_cast<std::size_t>(j)]) {
      if (set->name == "lower_nbrs" && k >= j) continue;
      out.push_back(k);
    }
    return out;
  }
  throw ExprError("unknown comprehension set '" + set->name + "'");
}

CompiledExpr compile_comprehension(const ExprNode& node,
                                   const CompileEnv& env) {
  const std::vector<long long> values = eval_set(node.args[0], env);
  std::vector<CompiledExpr> bodies;
  bodies.reserve(values.size());
  CompileEnv inner = env;
  for (long long v : values) {
    inner.binders[node.binder] = v;
    bodies.push_back(compile_expr(node.args[1], inner));
  }

  const std::string& kind = node.name;
  auto fold = [&](Value init, auto&& combine,
                  auto&& early) -> CompiledExpr {
    // Constant-fold what we can; keep the rest for runtime.
    std::vector<CompiledExpr> dynamic;
    long long acc = init;
    for (const CompiledExpr& b : bodies) {
      if (b.is_const) {
        acc = combine(acc, b.value);
        if (early(acc)) return make_const(acc);
      } else {
        dynamic.push_back(b);
      }
    }
    if (dynamic.empty()) return make_const(acc);
    CompiledExpr c;
    for (const CompiledExpr& b : dynamic) merge_reads(c.reads, b.reads);
    c.fn = [acc, dynamic = std::move(dynamic), combine,
            early](const State& s) {
      long long r = acc;
      for (const CompiledExpr& b : dynamic) {
        r = combine(r, b.eval(s));
        if (early(r)) break;
      }
      return static_cast<Value>(r);
    };
    return c;
  };

  if (kind == "all") {
    return fold(
        1, [](long long a, long long b) { return (a != 0 && b != 0) ? 1 : 0; },
        [](long long a) { return a == 0; });
  }
  if (kind == "any") {
    return fold(
        0, [](long long a, long long b) { return (a != 0 || b != 0) ? 1 : 0; },
        [](long long a) { return a != 0; });
  }
  if (kind == "sum") {
    return fold(0, [](long long a, long long b) { return a + b; },
                [](long long) { return false; });
  }
  if (kind == "count") {
    return fold(0,
                [](long long a, long long b) { return a + (b != 0 ? 1 : 0); },
                [](long long) { return false; });
  }
  if (kind == "min" || kind == "max") {
    if (bodies.empty()) {
      throw ExprError(kind + " comprehension over an empty set");
    }
    const bool is_min = kind == "min";
    CompiledExpr c;
    bool all_const = true;
    for (const CompiledExpr& b : bodies) {
      all_const = all_const && b.is_const;
      merge_reads(c.reads, b.reads);
    }
    if (all_const) {
      long long acc = bodies[0].value;
      for (const CompiledExpr& b : bodies) {
        acc = is_min ? std::min<long long>(acc, b.value)
                     : std::max<long long>(acc, b.value);
      }
      return make_const(acc);
    }
    c.fn = [bodies = std::move(bodies), is_min](const State& s) {
      Value acc = bodies[0].eval(s);
      for (std::size_t i = 1; i < bodies.size(); ++i) {
        const Value v = bodies[i].eval(s);
        acc = is_min ? std::min(acc, v) : std::max(acc, v);
      }
      return acc;
    };
    return c;
  }
  if (kind == "first") {
    // Value of the binder at the first element whose body holds; -1 when
    // none does.
    CompiledExpr c;
    for (const CompiledExpr& b : bodies) merge_reads(c.reads, b.reads);
    c.fn = [values, bodies = std::move(bodies)](const State& s) -> Value {
      for (std::size_t i = 0; i < bodies.size(); ++i) {
        if (bodies[i].eval(s) != 0) return static_cast<Value>(values[i]);
      }
      return -1;
    };
    return c;
  }
  if (kind == "mex") {
    // Smallest value >= 0 different from every element's body value.
    CompiledExpr c;
    for (const CompiledExpr& b : bodies) merge_reads(c.reads, b.reads);
    c.fn = [bodies = std::move(bodies)](const State& s) -> Value {
      std::vector<Value> used;
      used.reserve(bodies.size());
      for (const CompiledExpr& b : bodies) used.push_back(b.eval(s));
      for (Value v = 0;; ++v) {
        if (std::find(used.begin(), used.end(), v) == used.end()) return v;
      }
    };
    return c;
  }
  throw ExprError("unknown comprehension '" + kind + "'");
}

CompiledExpr compile_call(const ExprNode& node, const CompileEnv& env) {
  const std::string& fn = node.name;
  // Index-time topology accessors: all arguments must fold.
  if (fn == "next" || fn == "prev" || fn == "parent" || fn == "deg" ||
      fn == "degree" || fn == "root" || fn == "nbr" || fn == "backidx" ||
      fn == "nproc") {
    const Topology& topo = require_topo(env, fn.c_str());
    if (fn == "root") {
      if (topo.kind != Topology::Kind::kTree) {
        throw ExprError("root() requires a tree topology");
      }
      return make_const(topo.root);
    }
    if (fn == "nproc") return make_const(topo.n);
    if (node.args.empty()) throw ExprError(fn + " requires arguments");
    const long long j0 = eval_index_expr(node.args[0], env);
    const int j = check_node(topo, j0, fn.c_str());
    if (fn == "next" || fn == "prev") {
      if (topo.kind != Topology::Kind::kRing) {
        throw ExprError(fn + "(j) requires a ring topology");
      }
      return make_const(fn == "next" ? (j + 1) % topo.n
                                     : (j - 1 + topo.n) % topo.n);
    }
    if (fn == "parent") {
      if (topo.kind != Topology::Kind::kTree) {
        throw ExprError("parent(j) requires a tree topology");
      }
      return make_const(topo.parent[static_cast<std::size_t>(j)]);
    }
    if (fn == "deg" || fn == "degree") {
      return make_const(
          static_cast<long long>(topo.nbrs[static_cast<std::size_t>(j)].size()));
    }
    // nbr(j, i) / backidx(j, i)
    if (node.args.size() != 2) throw ExprError(fn + "(j, i) takes 2 args");
    const long long i = eval_index_expr(node.args[1], env);
    const auto& adj = topo.nbrs[static_cast<std::size_t>(j)];
    if (i < 0 || i >= static_cast<long long>(adj.size())) {
      throw ExprError(fn + "(" + std::to_string(j) + ", " + std::to_string(i) +
                      "): adjacency index out of range");
    }
    const int k = adj[static_cast<std::size_t>(i)];
    if (fn == "nbr") return make_const(k);
    // backidx: position of j in k's adjacency list.
    const auto& back = topo.nbrs[static_cast<std::size_t>(k)];
    const auto it = std::find(back.begin(), back.end(), j);
    if (it == back.end()) {
      throw ExprError("backidx: topology adjacency is not symmetric");
    }
    return make_const(static_cast<long long>(it - back.begin()));
  }

  // State-level n-ary functions.
  if (fn == "min" || fn == "max" || fn == "mex") {
    if (node.args.empty()) throw ExprError(fn + "() requires arguments");
    std::vector<CompiledExpr> args;
    args.reserve(node.args.size());
    bool all_const = true;
    for (const ExprPtr& a : node.args) {
      args.push_back(compile_expr(a, env));
      all_const = all_const && args.back().is_const;
    }
    if (all_const) {
      if (fn == "mex") {
        std::vector<Value> used;
        for (const CompiledExpr& a : args) used.push_back(a.value);
        Value v = 0;
        while (std::find(used.begin(), used.end(), v) != used.end()) ++v;
        return make_const(v);
      }
      long long acc = args[0].value;
      for (const CompiledExpr& a : args) {
        acc = fn == "min" ? std::min<long long>(acc, a.value)
                          : std::max<long long>(acc, a.value);
      }
      return make_const(acc);
    }
    CompiledExpr c;
    for (const CompiledExpr& a : args) merge_reads(c.reads, a.reads);
    if (fn == "mex") {
      c.fn = [args = std::move(args)](const State& s) -> Value {
        std::vector<Value> used;
        used.reserve(args.size());
        for (const CompiledExpr& a : args) used.push_back(a.eval(s));
        for (Value v = 0;; ++v) {
          if (std::find(used.begin(), used.end(), v) == used.end()) return v;
        }
      };
    } else {
      const bool is_min = fn == "min";
      c.fn = [args = std::move(args), is_min](const State& s) {
        Value acc = args[0].eval(s);
        for (std::size_t i = 1; i < args.size(); ++i) {
          const Value v = args[i].eval(s);
          acc = is_min ? std::min(acc, v) : std::max(acc, v);
        }
        return acc;
      };
    }
    return c;
  }
  throw ExprError("unknown function '" + fn + "'");
}

}  // namespace

ExprPtr parse_expr(const std::string& text) {
  return ExprParser(text).parse();
}

CompiledExpr compile_expr(const ExprPtr& node, const CompileEnv& env) {
  if (node == nullptr) throw ExprError("null expression");
  switch (node->kind) {
    case ExprNode::Kind::kLit:
      return make_const(node->lit);

    case ExprNode::Kind::kIdent: {
      const std::string& name = node->name;
      const auto binder = env.binders.find(name);
      if (binder != env.binders.end()) return make_const(binder->second);
      if (env.params != nullptr) {
        const auto param = env.params->find(name);
        if (param != env.params->end()) return make_const(param->second);
      }
      if (env.program != nullptr) {
        const VarId id = env.program->find_variable(name);
        if (id.valid()) return make_var_read(id);
      }
      if (env.families != nullptr && env.families->count(name) > 0) {
        throw ExprError("'" + name +
                        "' is a per-process variable family; subscript it "
                        "(e.g. " +
                        name + "[j])");
      }
      throw ExprError("unknown identifier '" + name + "'");
    }

    case ExprNode::Kind::kSubscript: {
      if (env.families == nullptr) {
        throw ExprError("no variable families in scope for '" + node->name +
                        "[...]'");
      }
      const auto family = env.families->find(node->name);
      if (family == env.families->end()) {
        throw ExprError("unknown variable family '" + node->name + "'");
      }
      const long long index = eval_index_expr(node->args[0], env);
      if (index < 0 ||
          index >= static_cast<long long>(family->second.size())) {
        throw ExprError("'" + node->name + "[" + std::to_string(index) +
                        "]': index out of range [0, " +
                        std::to_string(family->second.size()) + ")");
      }
      return make_var_read(family->second[static_cast<std::size_t>(index)]);
    }

    case ExprNode::Kind::kCall:
      return compile_call(*node, env);

    case ExprNode::Kind::kComprehension:
      return compile_comprehension(*node, env);

    case ExprNode::Kind::kUnary: {
      CompiledExpr a = compile_expr(node->args[0], env);
      const bool is_not = node->name == "!";
      if (a.is_const) {
        return make_const(is_not ? (a.value == 0 ? 1 : 0) : -a.value);
      }
      CompiledExpr c;
      c.reads = a.reads;
      c.fn = [a = std::move(a), is_not](const State& s) -> Value {
        const Value v = a.eval(s);
        return is_not ? (v == 0 ? 1 : 0) : static_cast<Value>(-v);
      };
      return c;
    }

    case ExprNode::Kind::kBinary: {
      CompiledExpr a = compile_expr(node->args[0], env);
      // Short-circuit folding before compiling the right-hand side would
      // skip its name resolution; compile both so typos always surface.
      CompiledExpr b = compile_expr(node->args[1], env);
      const std::string op = node->name;
      if (a.is_const && b.is_const) {
        return make_const(apply_binary(op, a.value, b.value));
      }
      if (op == "&&" && ((a.is_const && a.value == 0) ||
                         (b.is_const && b.value == 0))) {
        return make_const(0);
      }
      if (op == "||" && ((a.is_const && a.value != 0) ||
                         (b.is_const && b.value != 0))) {
        return make_const(1);
      }
      CompiledExpr c;
      c.reads = a.reads;
      merge_reads(c.reads, b.reads);
      c.fn = [a = std::move(a), b = std::move(b), op](const State& s) {
        return static_cast<Value>(apply_binary(op, a.eval(s), b.eval(s)));
      };
      return c;
    }

    case ExprNode::Kind::kTernary: {
      CompiledExpr cond = compile_expr(node->args[0], env);
      if (cond.is_const) {
        // Index-time branch selection: only the taken branch is compiled,
        // so per-process expansions can guard topology accessors (e.g.
        // `j == root() ? 0 : dist[parent(j)]`).
        return compile_expr(cond.value != 0 ? node->args[1] : node->args[2],
                            env);
      }
      CompiledExpr then = compile_expr(node->args[1], env);
      CompiledExpr otherwise = compile_expr(node->args[2], env);
      CompiledExpr c;
      c.reads = cond.reads;
      merge_reads(c.reads, then.reads);
      merge_reads(c.reads, otherwise.reads);
      c.fn = [cond = std::move(cond), then = std::move(then),
              otherwise = std::move(otherwise)](const State& s) {
        return cond.eval(s) != 0 ? then.eval(s) : otherwise.eval(s);
      };
      return c;
    }
  }
  throw ExprError("corrupt expression node");
}

long long eval_index_expr(const ExprPtr& node, const CompileEnv& env) {
  const CompiledExpr c = compile_expr(node, env);
  if (!c.is_const) {
    throw ExprError(
        "expression must be a compile-time constant here (it reads program "
        "variables)");
  }
  return c.value;
}

long long eval_index_expr(const std::string& text, const CompileEnv& env) {
  return eval_index_expr(parse_expr(text), env);
}

}  // namespace nonmask::spec
