// Spec job execution: run one compiled spec's job request and package the
// result as a RunReport document.
//
// Every report opens with a "spec" provenance section (spec name, schema
// version, FNV-1a content hash of the raw document) so any artifact can be
// traced back to the exact spec text that produced it. Campaign reports
// then mirror examples/parallel_campaign.cpp section for section — trials,
// seed, store_backend, state_budget, backend_fallback_reason, campaign —
// so a spec-driven campaign diffs byte-identically (modulo tool /
// started_at / wall_ms / metrics / spec) against the hand-coded CLI path;
// CI relies on this.
#pragma once

#include <iosfwd>
#include <string>

#include "spec/compile.hpp"

namespace nonmask::spec {

struct JobOptions {
  /// Campaign checkpoint journal (JSONL, flushed per trial); empty = none.
  std::string checkpoint;
  /// Replay the journal's valid prefix instead of re-running those trials.
  bool resume = false;
  /// Optional per-trial JSONL sink (campaign jobs).
  std::ostream* jsonl = nullptr;
};

struct JobResult {
  /// The full RunReport JSON document.
  std::string report_json;
  /// Job-level verdict: tolerant / not falsified / contained / synthesized
  /// / certified, per job type.
  bool ok = false;
  /// One-line human summary, e.g. "convergence: converges (512 states)".
  std::string summary;
};

/// Run the compiled spec's job (the "job" member; a missing job runs a
/// default exhaustive check). Throws SpecError for unrunnable requests
/// (e.g. a containment job without a Byzantine placement).
JobResult run_spec_job(const CompiledSpec& spec, const JobOptions& opts = {});

}  // namespace nonmask::spec
