// The JSON spec document model and its schema validator.
//
// A spec is one JSON object describing a design the way Section 3 of the
// paper states it — variables with finite domains, guarded-command actions
// split into closure/convergence/environment/fault kinds, the invariant's
// constraint decomposition, the fault-span T, an optional explicit S — plus
// a parameterized topology over the graphlib generators, a composable
// fault schedule, Byzantine placements, and the job request to run
// (check / falsify / campaign / containment / synthesize / certify).
//
// parse_spec validates the document field by field and reports
// line/field-precise errors: `$.actions[2].guard: expected string
// (line 14)`. It performs *structural* validation only; name resolution
// and expression typing happen in compile_spec (src/spec/compile.hpp),
// which still points back at the offending field.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/variable.hpp"

namespace nonmask::spec {

class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& path, const std::string& message, int line)
      : std::runtime_error(line > 0 ? path + ": " + message + " (line " +
                                          std::to_string(line) + ")"
                                    : path + ": " + message),
        path_(path),
        line_(line) {}
  const std::string& path() const noexcept { return path_; }
  int line() const noexcept { return line_; }

 private:
  std::string path_;
  int line_;
};

/// Current schema identifier; specs must declare it verbatim.
inline constexpr const char* kSchemaVersion = "nonmask-spec/1";

struct TopologyDecl {
  std::string kind;  // ring | chain | star | balanced | path | cycle |
                     // complete | grid | random-tree | random-connected
  long long n = 0;
  long long arity = 2;
  long long rows = 0, cols = 0;
  long long extra = 0;
  std::uint64_t seed = 1;
  int line = 0;
};

struct VariableDecl {
  std::string name;
  bool per_process = false;
  std::string min, max;  // index expressions (binder `j` for per-process)
  long long process = VariableSpec::kNoProcess;  // explicit owner (globals)
  int line = 0;
};

struct ConstraintDecl {
  std::string name;  // may contain "{j}" for per-process expansion
  bool per_process = false;
  std::string where;  // index expression; empty = always
  std::string expr;   // state expression
  std::vector<std::string> support;  // optional explicit support refs
  std::string group;                 // interleaved expansion group
  int line = 0;
};

struct ActionDecl {
  std::string name;  // may contain "{j}"
  std::string kind;  // closure | convergence | environment | fault
  bool per_process = false;
  std::string where;
  std::string guard;  // empty = true
  std::vector<std::pair<std::string, std::string>> assigns;  // lhs, rhs
  std::string constraint;  // index expr -> constraint id (convergence)
  std::string process;     // index expr; default: j (per) / -1
  std::vector<std::string> reads;  // optional explicit read-set refs
  std::string group;
  int line = 0;
};

struct FaultDecl {
  std::string schedule;  // at | burst | sustained | persistent
  std::size_t step = 0, start = 0, count = 1, period = 1;
  std::string model;  // corrupt-k-variables | corrupt-k-processes |
                      // corrupt-fraction | targeted | byzantine
  std::size_t k = 1;
  double fraction = 0.1;
  std::vector<std::string> targets;  // variable refs (targeted)
  std::vector<Value> values;         // values    (targeted)
  std::vector<int> processes;        // byzantine placement
  std::string policy = "random";     // byzantine: random | extremes
  int line = 0;
};

struct JobDecl {
  std::string type = "check";  // check | falsify | campaign | containment |
                               // synthesize | certify
  unsigned threads = 1;
  std::string backend;  // "" = dense | "store"
  std::uint64_t state_budget = 0;  // 0 = library default
  bool weakly_fair = false;

  // campaign
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::size_t max_steps = 1'000'000;
  std::string daemon = "random";  // random | round-robin | first-enabled
  long long deadline_ms = 0;
  std::size_t retries = 0;
  long long backoff_ms = 100;

  // falsify
  std::uint64_t walks = 200;
  std::uint64_t walk_length = 10'000;

  // containment
  std::vector<int> byzantine;

  // synthesize
  std::uint64_t max_candidates = 50'000;

  int line = 0;
};

struct SpecDoc {
  std::string text;  // the raw document (provenance hashing)
  std::string schema;
  std::string name;
  std::vector<std::pair<std::string, long long>> params;  // document order
  bool has_topology = false;
  TopologyDecl topology;
  bool interleave_processes = false;
  std::vector<VariableDecl> variables;
  std::vector<ConstraintDecl> constraints;
  std::vector<ActionDecl> actions;
  std::string fault_span;  // state expression; empty = true
  std::string s_override;  // state expression; empty = constraints /\ T
  bool stabilizing = true;
  std::vector<FaultDecl> faults;
  std::uint64_t fault_seed = 1;
  bool has_job = false;
  JobDecl job;
};

/// Parse + structurally validate one spec document. Throws SpecError (bad
/// schema/fields) or util::JsonParseError (malformed JSON).
SpecDoc parse_spec(const std::string& text);

/// FNV-1a 64-bit content hash (spec provenance blocks).
std::uint64_t fnv1a64(std::string_view text);

/// The hash as 16 lowercase hex digits.
std::string fnv1a64_hex(std::string_view text);

}  // namespace nonmask::spec
