#include "spec/emit.hpp"

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "graphlib/topology.hpp"
#include "spec/spec.hpp"

// Each emitter mirrors one hand-coded factory in src/protocols/
// declaration-for-declaration; the fixed instance parameters here must
// match the registry's make() calls (src/spec/registry.cpp). The
// round-trip tests enforce both.

namespace nonmask::spec {

namespace {

using util::jarr;
using util::jbool;
using util::jint;
using util::jobj;
using util::jstr;
using util::JsonValue;

std::string nm(const char* base, int j) {
  return std::string(base) + "." + std::to_string(j);
}

std::string num(long long v) { return std::to_string(v); }

JsonValue make_var(const std::string& name, long long lo, long long hi,
                   int process = -1) {
  JsonValue v = jobj();
  v.add("name", jstr(name)).add("min", jint(lo)).add("max", jint(hi));
  if (process >= 0) v.add("process", jint(process));
  return v;
}

JsonValue make_con(const std::string& name, const std::string& expr,
                   const std::vector<std::string>& support) {
  JsonValue c = jobj();
  c.add("name", jstr(name)).add("expr", jstr(expr));
  JsonValue s = jarr();
  for (const auto& ref : support) s.push(jstr(ref));
  c.add("support", std::move(s));
  return c;
}

JsonValue make_act(
    const std::string& name, const char* kind, const std::string& guard,
    const std::vector<std::pair<std::string, std::string>>& assigns,
    const std::vector<std::string>& reads, int constraint = -1,
    int process = -1) {
  JsonValue a = jobj();
  a.add("name", jstr(name)).add("kind", jstr(kind));
  if (!guard.empty()) a.add("guard", jstr(guard));
  JsonValue assign = jobj();
  for (const auto& [lhs, rhs] : assigns) assign.add(lhs, jstr(rhs));
  a.add("assign", std::move(assign));
  if (constraint >= 0) a.add("constraint", jint(constraint));
  if (process >= 0) a.add("process", jint(process));
  JsonValue r = jarr();
  for (const auto& ref : reads) r.push(jstr(ref));
  a.add("reads", std::move(r));
  return a;
}

JsonValue make_doc(const std::string& name) {
  JsonValue d = jobj();
  d.add("schema", jstr(kSchemaVersion)).add("name", jstr(name));
  return d;
}

std::string conjoin(const std::vector<std::string>& terms,
                    const char* glue = " && ") {
  std::string out;
  for (const auto& t : terms) {
    if (!out.empty()) out += glue;
    out += t;
  }
  return out;
}

// --- running example (Section 3's x/y/z system) ---------------------------

JsonValue emit_running_example(const std::string& variant) {
  const long long lo = 0, hi = 7;
  JsonValue d = make_doc("running-example-" + variant);
  JsonValue vars = jarr();
  vars.push(make_var("x", lo - 1, hi));
  vars.push(make_var("y", lo, hi));
  vars.push(make_var("z", lo, hi));
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  cons.push(make_con("x != y", "x != y", {"x", "y"}));
  cons.push(make_con("x <= z", "x <= z", {"x", "z"}));
  d.add("constraints", std::move(cons));

  JsonValue acts = jarr();
  if (variant == "write-y-z") {
    acts.push(make_act("fix-neq: y := (x == lo ? hi : lo)", "convergence",
                       "x == y",
                       {{"y", "x == " + num(lo) + " ? " + num(hi) + " : " +
                                  num(lo)}},
                       {"x", "y"}, 0));
    acts.push(make_act("fix-leq: z := x", "convergence", "x > z",
                       {{"z", "x"}}, {"x", "z"}, 1));
  } else if (variant == "write-x-both") {
    acts.push(make_act("fix-neq: x := x + 1 (wrap)", "convergence", "x == y",
                       {{"x", "x < " + num(hi) + " ? x + 1 : " + num(lo - 1)}},
                       {"x", "y"}, 0));
    acts.push(make_act("fix-leq: x := z", "convergence", "x > z",
                       {{"x", "z"}}, {"x", "z"}, 1));
  } else {  // decrease-x
    acts.push(make_act("fix-neq: x := x - 1", "convergence", "x == y",
                       {{"x", "x - 1"}}, {"x", "y"}, 0));
    acts.push(make_act("fix-leq: x := z", "convergence", "x > z",
                       {{"x", "z"}}, {"x", "z"}, 1));
  }
  d.add("actions", std::move(acts));
  return d;
}

// --- bounded token ring (Section 7.1) --------------------------------------

JsonValue emit_token_ring(bool combined) {
  const int n = 4;       // nodes 0..N, N = 3
  const long long x_max = 3;
  const int N = n - 1;
  JsonValue d = make_doc(combined ? "token-ring" : "token-ring-layered");

  JsonValue vars = jarr();
  for (int j = 0; j <= N; ++j) {
    vars.push(make_var(nm("x", j), 0, x_max, j));
  }
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  for (int j = 0; j < N; ++j) {
    cons.push(make_con(nm("x", j) + " >= " + nm("x", j + 1),
                       nm("x", j) + " >= " + nm("x", j + 1),
                       {nm("x", j), nm("x", j + 1)}));
    cons.push(make_con(nm("x", j) + " = " + nm("x", j + 1),
                       nm("x", j) + " == " + nm("x", j + 1),
                       {nm("x", j), nm("x", j + 1)}));
  }
  d.add("constraints", std::move(cons));

  JsonValue acts = jarr();
  acts.push(make_act(
      "increment@0", "closure",
      "x.0 == " + nm("x", N) + " && x.0 < " + num(x_max),
      {{"x.0", "x.0 + 1"}}, {"x.0", nm("x", N)}, -1, 0));
  for (int j = 0; j < N; ++j) {
    const std::string xj = nm("x", j), xj1 = nm("x", j + 1);
    const std::string at = "@" + std::to_string(j + 1);
    if (combined) {
      acts.push(make_act("copy" + at, "convergence", xj + " != " + xj1,
                         {{xj1, xj}}, {xj, xj1}, 2 * j + 1, j + 1));
    } else {
      acts.push(make_act("raise" + at, "convergence", xj + " < " + xj1,
                         {{xj1, xj}}, {xj, xj1}, 2 * j, j + 1));
      acts.push(make_act("level" + at, "convergence", xj + " > " + xj1,
                         {{xj1, xj}}, {xj, xj1}, 2 * j + 1, j + 1));
    }
  }
  d.add("actions", std::move(acts));

  std::vector<std::string> terms;
  for (int j = 0; j + 1 <= N; ++j) {
    terms.push_back(nm("x", j) + " >= " + nm("x", j + 1));
  }
  terms.push_back("(x.0 == " + nm("x", N) + " || x.0 == " + nm("x", N) +
                  " + 1)");
  d.add("s_override", jstr(conjoin(terms)));
  return d;
}

// --- Dijkstra K-state ring -------------------------------------------------

JsonValue emit_dijkstra_ring() {
  const int n = 5;
  const long long K = 5;
  JsonValue d = make_doc("dijkstra-k-state-ring");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) vars.push(make_var(nm("x", j), 0, K - 1, j));
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  for (int j = 1; j < n; ++j) {
    cons.push(make_con(nm("x", j) + " = " + nm("x", j - 1),
                       nm("x", j) + " == " + nm("x", j - 1),
                       {nm("x", j), nm("x", j - 1)}));
  }
  d.add("constraints", std::move(cons));

  JsonValue acts = jarr();
  acts.push(make_act("advance@0", "closure", "x.0 == " + nm("x", n - 1),
                     {{"x.0", "(x.0 + 1) % " + num(K)}},
                     {"x.0", nm("x", n - 1)}, -1, 0));
  for (int j = 1; j < n; ++j) {
    acts.push(make_act("adopt@" + std::to_string(j), "closure",
                       nm("x", j) + " != " + nm("x", j - 1),
                       {{nm("x", j), nm("x", j - 1)}},
                       {nm("x", j), nm("x", j - 1)}, -1, j));
  }
  d.add("actions", std::move(acts));

  std::vector<std::string> terms;
  terms.push_back("(x.0 == " + nm("x", n - 1) + " ? 1 : 0)");
  for (int j = 1; j < n; ++j) {
    terms.push_back("(" + nm("x", j) + " != " + nm("x", j - 1) + " ? 1 : 0)");
  }
  d.add("s_override", jstr(conjoin(terms, " + ") + " == 1"));
  return d;
}

// --- Dijkstra three-state ring ---------------------------------------------

JsonValue emit_dijkstra_three_state() {
  const int n = 4;
  JsonValue d = make_doc("dijkstra-three-state");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) vars.push(make_var(nm("s", j), 0, 2, j));
  d.add("variables", std::move(vars));

  auto inc3 = [](const std::string& v) { return "(" + v + " + 1) % 3"; };
  std::vector<std::string> priv;  // per-machine privilege indicators
  priv.push_back(inc3("s.0") + " == s.1");

  JsonValue acts = jarr();
  acts.push(make_act("bottom", "closure", priv[0],
                     {{"s.0", "(s.0 + 2) % 3"}}, {"s.0", "s.1"}, -1, 0));
  for (int i = 1; i + 1 < n; ++i) {
    const std::string si = nm("s", i), sl = nm("s", i - 1),
                      sr = nm("s", i + 1);
    const std::string g =
        inc3(si) + " == " + sl + " || " + inc3(si) + " == " + sr;
    priv.push_back(g);
    acts.push(make_act("normal@" + std::to_string(i), "closure", g,
                       {{si, inc3(si)}}, {si, sl, sr}, -1, i));
  }
  {
    const std::string st = nm("s", n - 1), sl = nm("s", n - 2);
    const std::string g =
        sl + " == s.0 && " + inc3(sl) + " != " + st;
    priv.push_back(g);
    acts.push(make_act("top", "closure", g, {{st, inc3(sl)}},
                       {st, sl, "s.0"}, -1, n - 1));
  }
  d.add("actions", std::move(acts));

  std::vector<std::string> terms;
  for (const auto& p : priv) terms.push_back("(" + p + " ? 1 : 0)");
  d.add("s_override", jstr(conjoin(terms, " + ") + " == 1"));
  return d;
}

// --- Dijkstra four-state array ---------------------------------------------

JsonValue emit_dijkstra_four_state() {
  const int n = 4;
  JsonValue d = make_doc("dijkstra-four-state");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) vars.push(make_var(nm("x", j), 0, 1, j));
  for (int j = 0; j < n; ++j) {
    const long long lo = j == 0 ? 1 : 0;
    const long long hi = j == n - 1 ? 0 : 1;
    vars.push(make_var(nm("up", j), lo, hi, j));
  }
  d.add("variables", std::move(vars));

  std::vector<std::string> priv;
  priv.push_back("x.0 == x.1 && up.1 == 0");

  JsonValue acts = jarr();
  acts.push(make_act("bottom", "closure", priv[0], {{"x.0", "1 - x.0"}},
                     {"x.0", "x.1", "up.1"}, -1, 0));
  for (int i = 1; i + 1 < n; ++i) {
    const std::string xi = nm("x", i), xl = nm("x", i - 1),
                      xr = nm("x", i + 1), ui = nm("up", i),
                      ur = nm("up", i + 1);
    const std::string recv = xi + " != " + xl;
    const std::string pass =
        xi + " == " + xr + " && " + ui + " == 1 && " + ur + " == 0";
    priv.push_back(recv + " || (" + pass + ")");
    acts.push(make_act("recv@" + std::to_string(i), "closure", recv,
                       {{xi, xl}, {ui, "1"}}, {xi, xl}, -1, i));
    acts.push(make_act("pass-down@" + std::to_string(i), "closure", pass,
                       {{ui, "0"}}, {xi, xr, ui, ur}, -1, i));
  }
  {
    const std::string xt = nm("x", n - 1), xl = nm("x", n - 2);
    priv.push_back(xt + " != " + xl);
    acts.push(make_act("top", "closure", xt + " != " + xl, {{xt, xl}},
                       {xt, xl}, -1, n - 1));
  }
  d.add("actions", std::move(acts));

  std::vector<std::string> terms;
  for (const auto& p : priv) terms.push_back("(" + p + " ? 1 : 0)");
  d.add("s_override", jstr(conjoin(terms, " + ") + " == 1"));
  return d;
}

// --- BFS spanning tree (2x3 grid, root 0) ----------------------------------

JsonValue emit_spanning_tree(bool with_environment) {
  const UndirectedGraph g = UndirectedGraph::grid(2, 3);
  const int n = g.size();
  const int root = 0;
  const long long cap = n - 1;
  JsonValue d = make_doc(with_environment ? "bfs-spanning-tree+env"
                                          : "bfs-spanning-tree");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) vars.push(make_var(nm("dist", j), 0, cap, j));
  if (with_environment) vars.push(make_var("env.noise", 0, 1));
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  JsonValue acts = jarr();
  int cid = 0;
  for (int j = 0; j < n; ++j) {
    if (j == root) {
      cons.push(make_con(nm("dist", j) + " = 0", nm("dist", j) + " == 0",
                         {nm("dist", j)}));
      acts.push(make_act("pin-root@" + std::to_string(j), "convergence",
                         nm("dist", j) + " != 0", {{nm("dist", j), "0"}},
                         {nm("dist", j)}, cid++, j));
      continue;
    }
    // capped_min_plus_one: min(min(nbr dists, cap) + 1, cap).
    std::string inner = "min(";
    std::vector<std::string> support, reads;
    for (int k : g.neighbors(j)) {
      inner += nm("dist", k) + ", ";
      support.push_back(nm("dist", k));
      reads.push_back(nm("dist", k));
    }
    inner += num(cap) + ")";
    const std::string rhs = "min(" + inner + " + 1, " + num(cap) + ")";
    support.push_back(nm("dist", j));
    reads.push_back(nm("dist", j));
    cons.push(make_con(nm("dist", j) + " = min(nbr)+1",
                       nm("dist", j) + " == " + rhs, support));
    acts.push(make_act("recompute@" + std::to_string(j), "convergence",
                       nm("dist", j) + " != " + rhs, {{nm("dist", j), rhs}},
                       reads, cid++, j));
  }
  if (with_environment) {
    acts.push(make_act("env.toggle-noise", "environment", "",
                       {{"env.noise", "env.noise == 0 ? 1 : 0"}},
                       {"env.noise"}));
  }
  d.add("constraints", std::move(cons));
  d.add("actions", std::move(acts));
  return d;
}

// --- diffusing computation (balanced binary tree, 7 nodes) -----------------

JsonValue emit_diffusing(bool combined) {
  const RootedTree tree = RootedTree::balanced(7, 2);
  const int n = tree.size();
  JsonValue d = make_doc(combined ? "diffusing-computation"
                                  : "diffusing-computation-separated");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) {
    vars.push(make_var(nm("c", j), 0, 1, j));   // kGreen..kRed
    vars.push(make_var(nm("sn", j), 0, 1, j));
  }
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  std::vector<int> constraint_of(static_cast<std::size_t>(n), -1);
  int cid = 0;
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    constraint_of[static_cast<std::size_t>(j)] = cid++;
    cons.push(make_con(
        nm("R", j),
        "(" + nm("c", j) + " == " + nm("c", p) + " && " + nm("sn", j) +
            " == " + nm("sn", p) + ") || (" + nm("c", j) + " == 0 && " +
            nm("c", p) + " == 1)",
        {nm("c", j), nm("c", p), nm("sn", j), nm("sn", p)}));
  }
  d.add("constraints", std::move(cons));

  JsonValue acts = jarr();
  {
    const int r = tree.root();
    acts.push(make_act(
        "initiate@" + std::to_string(r), "closure", nm("c", r) + " == 0",
        {{nm("c", r), "1"}, {nm("sn", r), "1 - " + nm("sn", r)}},
        {nm("c", r), nm("sn", r)}, -1, r));
  }
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const std::string cj = nm("c", j), cp = nm("c", p), snj = nm("sn", j),
                      snp = nm("sn", p);
    const std::vector<std::pair<std::string, std::string>> copy_parent = {
        {cj, cp}, {snj, snp}};
    const std::vector<std::string> reads = {cj, cp, snj, snp};
    const std::string R = "(" + cj + " == " + cp + " && " + snj + " == " +
                          snp + ") || (" + cj + " == 0 && " + cp + " == 1)";
    if (combined) {
      acts.push(make_act("propagate-or-correct@" + std::to_string(j),
                         "convergence",
                         snj + " != " + snp + " || (" + cj + " == 1 && " +
                             cp + " == 0)",
                         copy_parent, reads,
                         constraint_of[static_cast<std::size_t>(j)], j));
    } else {
      acts.push(make_act("propagate@" + std::to_string(j), "closure",
                         cj + " == 0 && " + cp + " == 1 && " + snj + " != " +
                             snp,
                         copy_parent, reads, -1, j));
      acts.push(make_act("correct@" + std::to_string(j), "convergence",
                         "!(" + R + ")", copy_parent, reads,
                         constraint_of[static_cast<std::size_t>(j)], j));
    }
  }
  for (int j = 0; j < n; ++j) {
    std::vector<std::string> terms = {nm("c", j) + " == 1"};
    std::vector<std::string> reads = {nm("c", j), nm("sn", j)};
    for (int k : tree.children(j)) {
      terms.push_back(nm("c", k) + " == 0");
      terms.push_back(nm("sn", k) + " == " + nm("sn", j));
      reads.push_back(nm("c", k));
      reads.push_back(nm("sn", k));
    }
    acts.push(make_act("reflect@" + std::to_string(j), "closure",
                       conjoin(terms), {{nm("c", j), "0"}}, reads, -1, j));
  }
  d.add("actions", std::move(acts));
  return d;
}

// --- stabilizing coloring (5-cycle) ----------------------------------------

JsonValue emit_coloring() {
  const UndirectedGraph g = UndirectedGraph::cycle(5);
  const int n = g.size();
  const long long palette_max = g.max_degree();
  JsonValue d = make_doc("stabilizing-coloring");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) {
    vars.push(make_var(nm("color", j), 0, palette_max, j));
  }
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  JsonValue acts = jarr();
  int cid = 0;
  for (int j = 0; j < n; ++j) {
    std::vector<int> lower, all_nbrs;
    for (int k : g.neighbors(j)) {
      all_nbrs.push_back(k);
      if (k < j) lower.push_back(k);
    }
    if (lower.empty()) continue;

    std::vector<std::string> ok_terms, bad_terms, support;
    for (int k : lower) {
      ok_terms.push_back(nm("color", k) + " != " + nm("color", j));
      bad_terms.push_back(nm("color", k) + " == " + nm("color", j));
      support.push_back(nm("color", k));
    }
    support.push_back(nm("color", j));
    cons.push(make_con("no-conflict-below@" + std::to_string(j),
                       conjoin(ok_terms), support));

    std::string mex = "mex(";
    std::vector<std::string> reads;
    for (std::size_t i = 0; i < all_nbrs.size(); ++i) {
      if (i > 0) mex += ", ";
      mex += nm("color", all_nbrs[i]);
      reads.push_back(nm("color", all_nbrs[i]));
    }
    mex += ")";
    reads.push_back(nm("color", j));
    acts.push(make_act("recolor@" + std::to_string(j), "convergence",
                       conjoin(bad_terms, " || "), {{nm("color", j), mex}},
                       reads, cid++, j));
  }
  d.add("constraints", std::move(cons));
  d.add("actions", std::move(acts));
  return d;
}

// --- Hsu-Huang maximal matching (4-path) -----------------------------------

JsonValue emit_matching() {
  const UndirectedGraph g = UndirectedGraph::path(4);
  const int n = g.size();
  JsonValue d = make_doc("hsu-huang-matching");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) {
    vars.push(make_var(nm("p", j), -1, g.degree(j) - 1, j));
  }
  d.add("variables", std::move(vars));

  // back_index[j][i]: position of j in the adjacency list of nbr i of j.
  auto back_index = [&](int j, std::size_t i) {
    const int k = g.neighbors(j)[i];
    const auto& kn = g.neighbors(k);
    for (std::size_t t = 0; t < kn.size(); ++t) {
      if (kn[t] == j) return static_cast<int>(t);
    }
    return -1;
  };

  JsonValue acts = jarr();
  for (int j = 0; j < n; ++j) {
    const auto& nbrs = g.neighbors(j);
    const std::string pj = nm("p", j);
    std::vector<std::string> reads = {pj};
    for (int k : nbrs) reads.push_back(nm("p", k));

    // "some neighbor points at me" and its first adjacency index.
    std::vector<std::string> suitor_terms;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      suitor_terms.push_back(nm("p", nbrs[i]) + " == " +
                             num(back_index(j, i)));
    }
    const std::string has_suitor = conjoin(suitor_terms, " || ");
    std::string first_suitor = "-1";
    for (std::size_t i = nbrs.size(); i-- > 0;) {
      first_suitor = "(" + suitor_terms[i] + " ? " + num(i) + " : " +
                     first_suitor + ")";
    }
    // "some neighbor is null" and its first adjacency index.
    std::vector<std::string> null_terms;
    for (int k : nbrs) null_terms.push_back(nm("p", k) + " < 0");
    const std::string has_null = conjoin(null_terms, " || ");
    std::string first_null = "-1";
    for (std::size_t i = nbrs.size(); i-- > 0;) {
      first_null = "(" + null_terms[i] + " ? " + num(i) + " : " + first_null +
                   ")";
    }
    acts.push(make_act("accept@" + std::to_string(j), "closure",
                       pj + " < 0 && (" + has_suitor + ")",
                       {{pj, first_suitor}}, reads, -1, j));
    acts.push(make_act("propose@" + std::to_string(j), "closure",
                       pj + " < 0 && !(" + has_suitor + ") && (" + has_null +
                           ")",
                       {{pj, first_null}}, reads, -1, j));
    // retract: I point at k but k points at a third node.
    std::string stale = "0";
    for (std::size_t i = nbrs.size(); i-- > 0;) {
      const std::string pk = nm("p", nbrs[i]);
      stale = "(" + pj + " == " + num(i) + " ? (" + pk + " >= 0 && " + pk +
              " != " + num(back_index(j, i)) + ") : " + stale + ")";
    }
    acts.push(make_act("retract@" + std::to_string(j), "closure", stale,
                       {{pj, "-1"}}, reads, -1, j));
  }
  d.add("actions", std::move(acts));

  // S: the pointers form a maximal matching.
  std::vector<std::string> terms;
  for (int j = 0; j < n; ++j) {
    const auto& nbrs = g.neighbors(j);
    std::string pointed_back = "0";
    for (std::size_t i = nbrs.size(); i-- > 0;) {
      pointed_back = "(" + nm("p", j) + " == " + num(i) + " ? " +
                     nm("p", nbrs[i]) + " == " + num(back_index(j, i)) +
                     " : " + pointed_back + ")";
    }
    terms.push_back("(" + nm("p", j) + " < 0 || " + pointed_back + ")");
  }
  for (const auto& [u, v] : g.edges()) {
    terms.push_back("!(" + nm("p", u) + " < 0 && " + nm("p", v) + " < 0)");
  }
  d.add("s_override", jstr(conjoin(terms)));
  return d;
}

// --- ring leader election (5 nodes) ----------------------------------------

JsonValue emit_leader_election() {
  const int n = 5;
  JsonValue d = make_doc("ring-leader-election");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) vars.push(make_var(nm("ldr", j), 0, n - 1, j));
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  JsonValue acts = jarr();
  cons.push(make_con("ldr.0 = 0", "ldr.0 == 0", {"ldr.0"}));
  acts.push(make_act("claim@0", "convergence", "ldr.0 != 0",
                     {{"ldr.0", "0"}}, {"ldr.0"}, 0, 0));
  for (int j = 1; j < n; ++j) {
    const std::string lj = nm("ldr", j), lp = nm("ldr", j - 1);
    const std::string rhs = "min(" + num(j) + ", " + lp + ")";
    cons.push(make_con(lj + " = min(id, " + lp + ")", lj + " == " + rhs,
                       {lj, lp}));
    acts.push(make_act("adopt@" + std::to_string(j), "convergence",
                       lj + " != " + rhs, {{lj, rhs}}, {lj, lp}, j, j));
  }
  d.add("constraints", std::move(cons));
  d.add("actions", std::move(acts));
  return d;
}

// --- atomic action (Section 6) ---------------------------------------------

JsonValue emit_atomic_action() {
  const int n = 3;
  const long long work_modulus = 4;
  JsonValue d = make_doc("atomic-action");

  JsonValue vars = jarr();
  vars.push(make_var("d", 0, 1));
  vars.push(make_var("work", 0, work_modulus - 1));
  for (int j = 0; j < n; ++j) vars.push(make_var(nm("f", j), 0, 2, j));
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  JsonValue acts = jarr();
  for (int j = 0; j < n; ++j) {
    const std::string fj = nm("f", j);
    cons.push(make_con(fj + " = d", fj + " == d", {fj, "d"}));
    acts.push(make_act("apply@" + std::to_string(j), "convergence",
                       fj + " != d && " + fj + " != 2", {{fj, "d"}},
                       {fj, "d"}, j, j));
    acts.push(make_act("flip@" + std::to_string(j), "fault", "",
                       {{fj, fj + " != 2 ? 1 - " + fj + " : " + fj}}, {fj},
                       -1, j));
  }
  {
    std::vector<std::string> terms, reads;
    for (int j = 0; j < n; ++j) {
      terms.push_back(nm("f", j) + " == d");
      reads.push_back(nm("f", j));
    }
    reads.push_back("d");
    reads.push_back("work");
    acts.push(make_act("work", "closure", conjoin(terms),
                       {{"work", "(work + 1) % " + num(work_modulus)}},
                       reads));
  }
  d.add("constraints", std::move(cons));
  d.add("actions", std::move(acts));

  std::vector<std::string> span;
  for (int j = 0; j < n; ++j) span.push_back(nm("f", j) + " != 2");
  d.add("fault_span", jstr(conjoin(span)));
  d.add("stabilizing", jbool(false));
  return d;
}

// --- distributed reset (3-chain) -------------------------------------------

JsonValue emit_distributed_reset() {
  const RootedTree tree = RootedTree::chain(3);
  const int n = tree.size();
  const long long app_values = 3;
  JsonValue d = make_doc("distributed-reset");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) {
    vars.push(make_var(nm("c", j), 0, 1, j));
    vars.push(make_var(nm("sn", j), 0, 1, j));
    vars.push(make_var(nm("app", j), 0, app_values - 1, j));
  }
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  std::vector<int> constraint_of(static_cast<std::size_t>(n), -1);
  int cid = 0;
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    constraint_of[static_cast<std::size_t>(j)] = cid++;
    cons.push(make_con(
        nm("R", j),
        "(" + nm("c", j) + " == " + nm("c", p) + " && " + nm("sn", j) +
            " == " + nm("sn", p) + ") || (" + nm("c", j) + " == 0 && " +
            nm("c", p) + " == 1)",
        {nm("c", j), nm("c", p), nm("sn", j), nm("sn", p)}));
  }
  d.add("constraints", std::move(cons));

  JsonValue acts = jarr();
  for (int j = 0; j < n; ++j) {
    acts.push(make_act(
        "work@" + std::to_string(j), "closure", nm("c", j) + " == 0",
        {{nm("app", j), "(" + nm("app", j) + " + 1) % " + num(app_values)}},
        {nm("c", j), nm("app", j)}, -1, j));
  }
  {
    const int r = tree.root();
    acts.push(make_act("initiate-reset@" + std::to_string(r), "closure",
                       nm("c", r) + " == 0",
                       {{nm("c", r), "1"},
                        {nm("sn", r), "1 - " + nm("sn", r)},
                        {nm("app", r), "0"}},
                       {nm("c", r), nm("sn", r), nm("app", r)}, -1, r));
  }
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const std::string cj = nm("c", j), cp = nm("c", p), snj = nm("sn", j),
                      snp = nm("sn", p), aj = nm("app", j);
    const std::vector<std::pair<std::string, std::string>> copy_and_reset = {
        {cj, cp}, {snj, snp}, {aj, cp + " == 1 ? 0 : " + aj}};
    const std::vector<std::string> reads = {cj, cp, snj, snp};
    acts.push(make_act("propagate-or-correct@" + std::to_string(j),
                       "convergence",
                       snj + " != " + snp + " || (" + cj + " == 1 && " + cp +
                           " == 0)",
                       copy_and_reset, reads,
                       constraint_of[static_cast<std::size_t>(j)], j));
  }
  for (int j = 0; j < n; ++j) {
    std::vector<std::string> terms = {nm("c", j) + " == 1"};
    std::vector<std::string> reads = {nm("c", j), nm("sn", j)};
    for (int k : tree.children(j)) {
      terms.push_back(nm("c", k) + " == 0");
      terms.push_back(nm("sn", k) + " == " + nm("sn", j));
      reads.push_back(nm("c", k));
      reads.push_back(nm("sn", k));
    }
    acts.push(make_act("complete@" + std::to_string(j), "closure",
                       conjoin(terms), {{nm("c", j), "0"}}, reads, -1, j));
  }
  d.add("actions", std::move(acts));
  return d;
}

// --- tree aggregation (4-chain) --------------------------------------------

JsonValue emit_aggregation() {
  const RootedTree tree = RootedTree::chain(4);
  const int n = tree.size();
  const long long max_value = 2;
  JsonValue d = make_doc("tree-aggregation");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) {
    vars.push(make_var(nm("in", j), 0, max_value, j));
    vars.push(make_var(nm("agg", j), 0, max_value, j));
  }
  d.add("variables", std::move(vars));

  JsonValue cons = jarr();
  JsonValue acts = jarr();
  for (int j = 0; j < n; ++j) {
    std::string rhs = nm("in", j);
    // The builder DSL reports read sets sorted by VarId: in.j (2j) before
    // agg.j (2j+1) before the children's agg.k (k > j).
    std::vector<std::string> support = {nm("in", j), nm("agg", j)};
    for (int k : tree.children(j)) {
      rhs = "max(" + rhs + ", " + nm("agg", k) + ")";
      support.push_back(nm("agg", k));
    }
    cons.push(make_con(nm("agg", j) + " = max(subtree)",
                       nm("agg", j) + " == " + rhs, support));
    acts.push(make_act("recompute@" + std::to_string(j), "convergence",
                       nm("agg", j) + " != " + rhs, {{nm("agg", j), rhs}},
                       support, j, j));
  }
  d.add("constraints", std::move(cons));
  d.add("actions", std::move(acts));
  return d;
}

// --- maximal independent set (5-cycle) -------------------------------------

JsonValue emit_independent_set() {
  const UndirectedGraph g = UndirectedGraph::cycle(5);
  const int n = g.size();
  JsonValue d = make_doc("maximal-independent-set");

  JsonValue vars = jarr();
  for (int j = 0; j < n; ++j) vars.push(make_var(nm("in", j), 0, 1, j));
  d.add("variables", std::move(vars));

  JsonValue acts = jarr();
  for (int j = 0; j < n; ++j) {
    std::vector<int> lower;
    std::vector<std::string> join_terms = {nm("in", j) + " == 0"};
    std::vector<std::string> reads;
    for (int k : g.neighbors(j)) {
      join_terms.push_back(nm("in", k) + " == 0");
      reads.push_back(nm("in", k));
      if (k < j) lower.push_back(k);
    }
    reads.push_back(nm("in", j));
    acts.push(make_act("join@" + std::to_string(j), "closure",
                       conjoin(join_terms), {{nm("in", j), "1"}}, reads, -1,
                       j));
    if (!lower.empty()) {
      std::vector<std::string> leave_terms;
      for (int k : lower) leave_terms.push_back(nm("in", k) + " == 1");
      acts.push(make_act("leave@" + std::to_string(j), "closure",
                         nm("in", j) + " == 1 && (" +
                             conjoin(leave_terms, " || ") + ")",
                         {{nm("in", j), "0"}}, reads, -1, j));
    }
  }
  d.add("actions", std::move(acts));

  std::vector<std::string> terms;
  for (const auto& [u, v] : g.edges()) {
    terms.push_back("!(" + nm("in", u) + " == 1 && " + nm("in", v) +
                    " == 1)");
  }
  for (int j = 0; j < n; ++j) {
    std::vector<std::string> cover = {nm("in", j) + " == 1"};
    for (int k : g.neighbors(j)) cover.push_back(nm("in", k) + " == 1");
    terms.push_back("(" + conjoin(cover, " || ") + ")");
  }
  d.add("s_override", jstr(conjoin(terms)));
  return d;
}

// --- triple modular redundancy ---------------------------------------------

JsonValue emit_tmr(bool masking) {
  const long long value_max = 2, reference = 1;
  JsonValue d = make_doc(masking ? "tmr-masking" : "tmr-nonmasking");

  JsonValue vars = jarr();
  for (int k = 0; k < 3; ++k) vars.push(make_var(nm("r", k), 0, value_max, k));
  vars.push(make_var("out", 0, value_max));
  d.add("variables", std::move(vars));

  const std::string maj =
      "(r.0 == r.1 || r.0 == r.2 ? r.0 : (r.1 == r.2 ? r.1 : -1))";
  const std::string healthy = "(r.0 == " + num(reference) +
                              " ? 1 : 0) + (r.1 == " + num(reference) +
                              " ? 1 : 0) + (r.2 == " + num(reference) +
                              " ? 1 : 0) >= 2";
  const std::string repaired = "r.0 == " + num(reference) + " && r.1 == " +
                               num(reference) + " && r.2 == " +
                               num(reference);

  JsonValue cons = jarr();
  JsonValue acts = jarr();
  for (int k = 0; k < 3; ++k) {
    const std::string rk = nm("r", k);
    cons.push(make_con(rk + " = majority",
                       maj + " < 0 || " + rk + " == " + maj,
                       {"r.0", "r.1", "r.2"}));
    acts.push(make_act("repair@" + std::to_string(k), "convergence",
                       maj + " >= 0 && " + rk + " != " + maj, {{rk, maj}},
                       {"r.0", "r.1", "r.2"}, k, k));
  }
  cons.push(make_con("out = majority", maj + " < 0 || out == " + maj,
                     {"r.0", "r.1", "r.2", "out"}));
  acts.push(make_act("vote", "convergence",
                     maj + " >= 0 && out != " + maj, {{"out", maj}},
                     {"r.0", "r.1", "r.2", "out"}, 3));
  for (int k = 0; k < 3; ++k) {
    const std::string rk = nm("r", k);
    const std::string guard =
        masking ? "(" + repaired + ") && out == " + num(reference)
                : "(" + repaired + ")";
    acts.push(make_act("corrupt-r" + std::to_string(k), "fault", guard,
                       {{rk, num((reference + 1) % (value_max + 1))}},
                       {"r.0", "r.1", "r.2", "out", rk}, -1, k));
  }
  if (!masking) {
    acts.push(make_act("corrupt-out", "fault", healthy,
                       {{"out", "out == " + num(reference) + " ? " +
                                    num((reference + 1) % (value_max + 1)) +
                                    " : " + num(reference)}},
                       {"r.0", "r.1", "r.2", "out"}));
  }
  d.add("constraints", std::move(cons));
  d.add("actions", std::move(acts));

  const std::string s_pred =
      "(" + healthy + ") && out == " + num(reference);
  d.add("s_override", jstr(s_pred));
  d.add("fault_span", jstr(masking ? s_pred : "(" + healthy + ")"));
  d.add("stabilizing", jbool(false));
  return d;
}

}  // namespace

std::string emit_builtin_spec(const std::string& name) {
  JsonValue d;
  if (name == "running-example-decrease-x") {
    d = emit_running_example("decrease-x");
  } else if (name == "running-example-write-y-z") {
    d = emit_running_example("write-y-z");
  } else if (name == "running-example-write-x-both") {
    d = emit_running_example("write-x-both");
  } else if (name == "token-ring") {
    d = emit_token_ring(true);
  } else if (name == "token-ring-layered") {
    d = emit_token_ring(false);
  } else if (name == "dijkstra-k-state-ring") {
    d = emit_dijkstra_ring();
  } else if (name == "dijkstra-three-state") {
    d = emit_dijkstra_three_state();
  } else if (name == "dijkstra-four-state") {
    d = emit_dijkstra_four_state();
  } else if (name == "bfs-spanning-tree") {
    d = emit_spanning_tree(false);
  } else if (name == "bfs-spanning-tree+env") {
    d = emit_spanning_tree(true);
  } else if (name == "diffusing-computation") {
    d = emit_diffusing(true);
  } else if (name == "diffusing-computation-separated") {
    d = emit_diffusing(false);
  } else if (name == "stabilizing-coloring") {
    d = emit_coloring();
  } else if (name == "hsu-huang-matching") {
    d = emit_matching();
  } else if (name == "ring-leader-election") {
    d = emit_leader_election();
  } else if (name == "atomic-action") {
    d = emit_atomic_action();
  } else if (name == "distributed-reset") {
    d = emit_distributed_reset();
  } else if (name == "tree-aggregation") {
    d = emit_aggregation();
  } else if (name == "maximal-independent-set") {
    d = emit_independent_set();
  } else if (name == "tmr-masking") {
    d = emit_tmr(true);
  } else if (name == "tmr-nonmasking") {
    d = emit_tmr(false);
  } else {
    throw std::invalid_argument("emit_builtin_spec: unknown protocol '" +
                                name + "'");
  }
  return util::dump_json(d);
}

}  // namespace nonmask::spec
