#include "spec/registry.hpp"

#include "graphlib/topology.hpp"
#include "protocols/aggregation.hpp"
#include "protocols/atomic_action.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/distributed_reset.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/running_example.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/tmr.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"

// The instance parameters here are the canonical ones the emitters
// (src/spec/emit.cpp) bake into their documents — change either side and
// the round-trip tests fail on the first report diff.

namespace nonmask::spec {

namespace {

const std::vector<RegistryEntry>& entries() {
  static const std::vector<RegistryEntry> kEntries = {
      {"running-example-decrease-x",
       "Sections 3/6 running example, x := x - 1 repair (linearly ordered)",
       [] {
         return make_running_example(RunningExampleVariant::kDecreaseX);
       }},
      {"running-example-write-y-z",
       "Section 4 running example, out-tree repair writing y and z",
       [] { return make_running_example(RunningExampleVariant::kWriteYZ); }},
      {"running-example-write-x-both",
       "Section 6 running example, both repairs write x (livelocks)",
       [] {
         return make_running_example(RunningExampleVariant::kWriteXBoth);
       }},
      {"token-ring",
       "Section 7.1 bounded token ring, 4 nodes, combined copy actions",
       [] { return make_token_ring_bounded(4, 3, true).design; }},
      {"token-ring-layered",
       "Section 7.1 bounded token ring, 4 nodes, Theorem-3 layered form",
       [] { return make_token_ring_bounded(4, 3, false).design; }},
      {"dijkstra-k-state-ring", "Dijkstra K-state token ring, n = 5, K = 5",
       [] { return make_dijkstra_ring(5, 5).design; }},
      {"dijkstra-three-state", "Dijkstra three-state machines, n = 4",
       [] { return make_dijkstra_three_state(4).design; }},
      {"dijkstra-four-state", "Dijkstra four-state machines, n = 4",
       [] { return make_dijkstra_four_state(4).design; }},
      {"bfs-spanning-tree", "BFS spanning tree on a 2x3 grid, root 0",
       [] {
         return make_spanning_tree(UndirectedGraph::grid(2, 3), 0).design;
       }},
      {"bfs-spanning-tree+env",
       "BFS spanning tree on a 2x3 grid with an environment noise bit",
       [] {
         return make_spanning_tree_with_environment(
                    UndirectedGraph::grid(2, 3), 0)
             .design;
       }},
      {"diffusing-computation",
       "Diffusing computation on a 7-node balanced binary tree",
       [] { return make_diffusing(RootedTree::balanced(7, 2), true).design; }},
      {"diffusing-computation-separated",
       "Diffusing computation, separated propagate/correct actions",
       [] {
         return make_diffusing(RootedTree::balanced(7, 2), false).design;
       }},
      {"stabilizing-coloring", "Greedy mex coloring of a 5-cycle",
       [] { return make_coloring(UndirectedGraph::cycle(5)).design; }},
      {"hsu-huang-matching", "Hsu-Huang maximal matching on a 4-path",
       [] { return make_matching(UndirectedGraph::path(4)).design; }},
      {"ring-leader-election", "Minimum-id leader election, 5 nodes",
       [] { return make_leader_election(5).design; }},
      {"atomic-action", "Section 6 atomic action, 3 participants",
       [] { return make_atomic_action(3, 4).design; }},
      {"distributed-reset", "Distributed reset on a 3-chain",
       [] {
         return make_distributed_reset(RootedTree::chain(3), 3, true).design;
       }},
      {"tree-aggregation", "Max aggregation over a 4-chain",
       [] { return make_aggregation(RootedTree::chain(4), 2).design; }},
      {"maximal-independent-set", "Maximal independent set on a 5-cycle",
       [] { return make_independent_set(UndirectedGraph::cycle(5)).design; }},
      {"tmr-masking", "Triple modular redundancy, masking fault placement",
       [] { return make_tmr(true, 2, 1).design; }},
      {"tmr-nonmasking",
       "Triple modular redundancy, nonmasking fault placement",
       [] { return make_tmr(false, 2, 1).design; }},
  };
  return kEntries;
}

}  // namespace

const std::vector<RegistryEntry>& registry() { return entries(); }

const RegistryEntry* find_protocol(const std::string& name) {
  for (const auto& e : entries()) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

}  // namespace nonmask::spec
