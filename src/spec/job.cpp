#include "spec/job.hpp"

#include <chrono>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "checker/containment.hpp"
#include "checker/falsify.hpp"
#include "checker/state_space.hpp"
#include "obs/report.hpp"
#include "parallel/campaign.hpp"
#include "resilience/adversary.hpp"
#include "sched/daemons.hpp"
#include "spec/spec.hpp"
#include "store/facade.hpp"
#include "synth/certify_design.hpp"
#include "synth/synthesize.hpp"
#include "util/json.hpp"

namespace nonmask::spec {

namespace {

store::StoreConfig store_config(const JobDecl& job) {
  store::StoreConfig config;
  if (job.backend == "store") config.backend = store::StoreBackend::kStore;
  if (job.state_budget > 0) config.budget = job.state_budget;
  config.threads = job.threads;
  return config;
}

std::string provenance_json(const CompiledSpec& spec) {
  return "{\"name\":" + util::json_quote(spec.spec_name) +
         ",\"schema\":" + util::json_quote(spec.schema) +
         ",\"content_hash\":" + util::json_quote(spec.content_hash) + "}";
}

/// Common preamble: provenance first, then the backend the job ran under.
void add_backend(obs::RunReport& report, const store::StoreConfig& config) {
  report.add_text("store_backend", store::to_string(config.backend));
  report.add_number("state_budget", config.budget);
}

JobResult finish(obs::RunReport& report, bool ok, std::string summary) {
  JobResult result;
  result.report_json = report.to_json();
  result.ok = ok;
  result.summary = std::move(summary);
  return result;
}

JobResult run_check(const CompiledSpec& spec, const JobDecl& job) {
  const Design& design = spec.design;
  const store::StoreConfig config = store_config(job);
  const StateSpace space(design.program, config.budget);

  obs::RunReport report("spec_check", design.name);
  report.add("spec", provenance_json(spec));
  add_backend(report, config);
  const auto fallback = store::backend_fallback_reason(config, space);
  report.add_text("backend_fallback_reason", fallback ? *fallback : "");

  const PredicateFn S = design.S();
  const PredicateFn T = design.fault_span;
  const ClosureReport closure_S = store::check_closed_via(config, space, S);
  const ClosureReport closure_T = store::check_closed_via(config, space, T);
  const ConvergenceReport convergence =
      job.weakly_fair
          ? store::check_convergence_weakly_fair_via(config, space, S, T)
          : store::check_convergence_via(config, space, S, T);

  report.add("closure_S", obs::to_json(closure_S));
  report.add("closure_T", obs::to_json(closure_T));
  report.add("convergence", obs::to_json(convergence));

  const bool ok = closure_S.closed && closure_T.closed &&
                  convergence.verdict == ConvergenceVerdict::kConverges;
  std::ostringstream summary;
  summary << "check: S " << (closure_S.closed ? "closed" : "NOT closed")
          << ", T " << (closure_T.closed ? "closed" : "NOT closed")
          << ", convergence " << to_string(convergence.verdict) << " ("
          << convergence.states_in_T << " states in T)";
  return finish(report, ok, summary.str());
}

JobResult run_falsify(const CompiledSpec& spec, const JobDecl& job) {
  const Design& design = spec.design;
  FalsifyOptions opts;
  opts.walks = job.walks;
  opts.max_walk_length = job.walk_length;
  opts.seed = job.seed;
  const FalsifyResult result = falsify_convergence(design, opts);

  obs::RunReport report("spec_falsify", design.name);
  report.add("spec", provenance_json(spec));
  report.add_number("walks", job.walks);
  report.add_number("walk_length", job.walk_length);
  report.add_number("seed", job.seed);
  {
    util::JsonValue f = util::jobj();
    f.add("violated", util::jbool(result.violated));
    f.add("walks_run", util::jint(static_cast<std::int64_t>(result.walks_run)));
    f.add("steps_taken",
          util::jint(static_cast<std::int64_t>(result.steps_taken)));
    f.add("cycle_length",
          util::jint(result.cycle ? static_cast<std::int64_t>(
                                        result.cycle->size())
                                  : 0));
    f.add("deadlock", util::jbool(result.deadlock.has_value()));
    std::string json = util::dump_json(f);
    while (!json.empty() && (json.back() == '\n')) json.pop_back();
    report.add("falsify", json);
  }

  std::ostringstream summary;
  summary << "falsify: " << (result.violated ? "VIOLATED" : "no violation")
          << " after " << result.walks_run << " walks, "
          << result.steps_taken << " steps";
  return finish(report, !result.violated, summary.str());
}

JobResult run_campaign_job(const CompiledSpec& spec, const JobDecl& job,
                           const JobOptions& jopts) {
  const Design& design = spec.design;

  ConvergenceExperiment config;
  config.trials = job.trials;
  config.seed = job.seed;
  config.max_steps = job.max_steps;
  if (job.daemon == "round-robin") {
    config.make_daemon = [](std::uint64_t) {
      return DaemonPtr(new RoundRobinDaemon());
    };
  } else if (job.daemon == "first-enabled") {
    config.make_daemon = [](std::uint64_t) {
      return DaemonPtr(new FirstEnabledDaemon());
    };
  }
  if (!spec.schedule.strikes().empty() ||
      !spec.schedule.persistent_actors().empty()) {
    // The hook borrows the program it is bound to; campaigns hand it the
    // design's own program, which outlives the run.
    const FaultSchedule schedule = spec.schedule;
    const std::uint64_t fault_seed = spec.fault_seed;
    config.make_perturb = [schedule, fault_seed](const Program& p) {
      return schedule.hook(p, fault_seed);
    };
  }

  CampaignOptions opts;
  opts.threads = job.threads;
  opts.checkpoint = jopts.checkpoint;
  opts.resume = jopts.resume;
  opts.jsonl = jopts.jsonl;
  if (job.deadline_ms > 0) {
    opts.policy.deadline = std::chrono::milliseconds(job.deadline_ms);
  }
  opts.policy.max_retries = job.retries;
  opts.policy.backoff = std::chrono::milliseconds(job.backoff_ms);
  opts.store = store_config(job);

  const CampaignResults results = run_campaign(design, config, opts);

  // Section for section the shape examples/parallel_campaign.cpp writes,
  // with the provenance block in front: CI diffs the two documents after
  // deleting tool/started_at/wall_ms/metrics/spec.
  obs::RunReport report("spec_campaign", design.name);
  report.add("spec", provenance_json(spec));
  report.add_number("trials", std::uint64_t{config.trials});
  report.add_number("seed", config.seed);
  report.add_text("store_backend", store::to_string(opts.store.backend));
  report.add_number("state_budget", opts.store.budget);
  report.add_text("backend_fallback_reason", "");
  report.add("campaign", obs::to_json(results.aggregate));

  const bool ok = results.failed == 0 && results.timed_out == 0;
  std::ostringstream summary;
  summary << "campaign: " << config.trials << " trials, "
          << results.aggregate.steps.count << " converged";
  if (results.resumed_trials > 0) {
    summary << ", " << results.resumed_trials << " resumed";
  }
  if (results.timed_out > 0 || results.failed > 0) {
    summary << ", " << results.timed_out << " timed out, " << results.failed
            << " failed";
  }
  return finish(report, ok, summary.str());
}

JobResult run_containment(const CompiledSpec& spec, const JobDecl& job) {
  const Design& design = spec.design;
  const std::vector<int>& placement = job.byzantine;
  if (placement.empty()) {
    throw SpecError("$.job.byzantine",
                    "containment job requires a Byzantine placement",
                    job.line);
  }

  AdversaryOptions leg_opts;
  leg_opts.seed = job.seed;
  const State legitimate = legitimate_state(design, leg_opts);

  ContainmentOptions copts;
  copts.config = store_config(job);
  if (job.state_budget > 0) copts.state_budget = job.state_budget;
  const ContainmentReport rep =
      measure_containment(design.program, placement, legitimate, copts);

  obs::RunReport report("spec_containment", design.name);
  report.add("spec", provenance_json(spec));
  add_backend(report, copts.config);
  report.add("containment", containment_to_json(design.program, rep));

  std::ostringstream summary;
  summary << "containment: radius " << rep.radius
          << (rep.contained ? " < horizon " : " reaches horizon ")
          << rep.horizon << " -> "
          << (rep.contained ? "CONTAINED" : "not contained") << " ("
          << rep.reachable_states << " composed states)";
  return finish(report, rep.contained, summary.str());
}

JobResult run_synthesize(const CompiledSpec& spec, const JobDecl& job) {
  const Design& design = spec.design;

  // The synthesizer takes the candidate triple: the program *without* its
  // convergence actions (those are what it is asked to produce).
  CandidateTriple candidate;
  candidate.program = Program(design.program.name());
  for (const auto& v : design.program.variables()) {
    candidate.program.add_variable(v);
  }
  std::size_t stripped = 0;
  for (const auto& a : design.program.actions()) {
    if (a.kind() == ActionKind::kConvergence) {
      ++stripped;
      continue;
    }
    candidate.program.add_action(a);
  }
  candidate.invariant = design.invariant;
  candidate.fault_span = design.fault_span;
  candidate.S_override = design.S_override;

  synth::SynthesisOptions opts;
  opts.seed = job.seed;
  opts.max_candidates = job.max_candidates;
  opts.threads = job.threads;
  opts.store = store_config(job);
  opts.state_budget = opts.store.budget;
  const synth::SynthesisResult result = synth::synthesize(candidate, opts);

  obs::RunReport report("spec_synthesize", design.name);
  report.add("spec", provenance_json(spec));
  add_backend(report, opts.store);
  report.add_number("stripped_convergence_actions", std::uint64_t{stripped});
  {
    util::JsonValue s = util::jobj();
    s.add("success", util::jbool(result.success));
    if (!result.success) s.add("failure", util::jstr(result.failure));
    util::JsonValue actions = util::jarr();
    for (const auto& desc : result.winner_descriptions) {
      actions.push(util::jstr(desc));
    }
    s.add("winner_actions", std::move(actions));
    s.add("evaluated",
          util::jint(static_cast<std::int64_t>(result.stats.evaluated)));
    s.add("certification",
          util::jstr(synth::to_string(result.certification.method)));
    std::string json = util::dump_json(s);
    while (!json.empty() && json.back() == '\n') json.pop_back();
    report.add("synthesis", json);
  }

  std::ostringstream summary;
  if (result.success) {
    summary << "synthesize: success, " << result.winner_actions.size()
            << " action(s), certificate "
            << synth::to_string(result.certification.method);
  } else {
    summary << "synthesize: FAILED (" << result.failure << ")";
  }
  return finish(report, result.success, summary.str());
}

JobResult run_certify(const CompiledSpec& spec, const JobDecl& job) {
  const Design& design = spec.design;
  const store::StoreConfig config = store_config(job);
  const StateSpace space(design.program, config.budget);

  ValidationOptions vopts;
  vopts.space = &space;
  const synth::CertificationResult result =
      synth::certify_design(design, vopts);

  obs::RunReport report("spec_certify", design.name);
  report.add("spec", provenance_json(spec));
  add_backend(report, config);
  {
    util::JsonValue c = util::jobj();
    c.add("method", util::jstr(synth::to_string(result.method)));
    c.add("theorem_certified", util::jbool(result.theorem_certified()));
    util::JsonValue attempts = util::jarr();
    for (const auto& a : result.attempts) attempts.push(util::jstr(a));
    c.add("attempts", std::move(attempts));
    util::JsonValue problems = util::jarr();
    for (const auto& p : result.audit_problems) problems.push(util::jstr(p));
    c.add("audit_problems", std::move(problems));
    std::string json = util::dump_json(c);
    while (!json.empty() && json.back() == '\n') json.pop_back();
    report.add("certification", json);
  }

  bool ok = result.theorem_certified();
  std::string extra;
  if (!ok && result.method == synth::CertMethod::kExhaustive) {
    // Certificate of last resort: the exhaustive checker's verdict.
    const ToleranceReport tol = verify_tolerance(space, design);
    ok = tol.tolerant();
    report.add("exhaustive_convergence", obs::to_json(tol.convergence));
    extra = ok ? " (exhaustive verdict: tolerant)"
               : " (exhaustive verdict: NOT tolerant)";
  }
  std::ostringstream summary;
  summary << "certify: " << synth::to_string(result.method) << extra;
  return finish(report, ok, summary.str());
}

}  // namespace

JobResult run_spec_job(const CompiledSpec& spec, const JobOptions& opts) {
  JobDecl job = spec.job;  // default-constructed "check" when absent
  if (job.type == "check") return run_check(spec, job);
  if (job.type == "falsify") return run_falsify(spec, job);
  if (job.type == "campaign") return run_campaign_job(spec, job, opts);
  if (job.type == "containment") return run_containment(spec, job);
  if (job.type == "synthesize") return run_synthesize(spec, job);
  if (job.type == "certify") return run_certify(spec, job);
  throw SpecError("$.job.type", "unknown job type '" + job.type + "'",
                  job.line);
}

}  // namespace nonmask::spec
