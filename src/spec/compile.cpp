#include "spec/compile.hpp"

#include <memory>
#include <unordered_map>
#include <utility>

#include "core/builder.hpp"
#include "faults/byzantine.hpp"
#include "faults/fault.hpp"
#include "graphlib/topology.hpp"
#include "util/rng.hpp"

namespace nonmask::spec {

namespace {

/// Run `body`, rewrapping ExprError as a line/field-precise SpecError.
template <typename Fn>
auto at(const std::string& path, int line, Fn&& body)
    -> decltype(body()) {
  try {
    return body();
  } catch (const ExprError& e) {
    throw SpecError(path, e.what(), line);
  }
}

std::string expand_name(const std::string& name, long long j) {
  const std::string placeholder = "{j}";
  std::string out;
  std::size_t pos = 0;
  bool substituted = false;
  while (true) {
    const std::size_t hit = name.find(placeholder, pos);
    if (hit == std::string::npos) {
      out.append(name, pos, name.size() - pos);
      break;
    }
    out.append(name, pos, hit - pos);
    out += std::to_string(j);
    pos = hit + placeholder.size();
    substituted = true;
  }
  if (!substituted) {
    out += "." + std::to_string(j);
  }
  return out;
}

VarId resolve_variable(const Program& program, const std::string& name,
                       const std::string& path, int line) {
  const VarId id = program.find_variable(name);
  if (!id.valid()) {
    throw SpecError(path, "unknown variable '" + name + "'", line);
  }
  return id;
}

/// The shape of one declaration as the expander sees it.
struct ExpandItem {
  bool per_process = false;
  std::string where;  // index expression; empty = all processes
  std::string group;  // interleave run key; empty = none
  int line = 0;
};

/// Expansion instances: (declaration index, process or -1) in final order.
std::vector<std::pair<std::size_t, long long>> expansion_order(
    const std::vector<ExpandItem>& decls, const CompileEnv& base_env, int n,
    const std::string& array_path, bool interleave_all) {
  std::vector<std::pair<std::size_t, long long>> order;
  std::size_t i = 0;
  while (i < decls.size()) {
    const ExpandItem& d = decls[i];
    if (!d.per_process) {
      order.emplace_back(i, -1);
      ++i;
      continue;
    }
    if (n <= 0) {
      throw SpecError(array_path + "[" + std::to_string(i) + "]",
                      "per-process declaration requires a topology", d.line);
    }
    // Collect the run to interleave: an explicit `group` run, or — when
    // interleave_all — every consecutive per-process declaration.
    std::size_t end = i + 1;
    if (interleave_all || !d.group.empty()) {
      while (end < decls.size() && decls[end].per_process &&
             (interleave_all || (!decls[end].group.empty() &&
                                 decls[end].group == d.group))) {
        ++end;
      }
    }
    auto admits = [&](std::size_t k, long long j) {
      if (decls[k].where.empty()) return true;
      CompileEnv env = base_env;
      env.binders["j"] = j;
      return at(array_path + "[" + std::to_string(k) + "].where",
                decls[k].line, [&] {
                  return eval_index_expr(decls[k].where, env) != 0;
                });
    };
    if (end == i + 1) {
      // Declaration-major: all processes of this declaration.
      for (long long j = 0; j < n; ++j) {
        if (admits(i, j)) order.emplace_back(i, j);
      }
    } else {
      // Process-major interleave across the run.
      for (long long j = 0; j < n; ++j) {
        for (std::size_t k = i; k < end; ++k) {
          if (admits(k, j)) order.emplace_back(k, j);
        }
      }
    }
    i = end;
  }
  return order;
}

PredicateFn to_predicate(CompiledExpr e) {
  if (e.is_const) {
    return e.value != 0 ? true_predicate() : false_predicate();
  }
  return [e = std::move(e)](const State& s) { return e.fn(s) != 0; };
}

FaultModelPtr build_fault_model(const FaultDecl& d, const Program& program,
                                const std::string& path) {
  if (d.model == "corrupt-k-variables") {
    return std::make_shared<CorruptKVariables>(d.k, program);
  }
  if (d.model == "corrupt-k-processes") {
    return std::make_shared<CorruptKProcesses>(d.k, program);
  }
  if (d.model == "corrupt-fraction") {
    return std::make_shared<CorruptFraction>(d.fraction);
  }
  if (d.model == "targeted") {
    std::vector<VarId> targets;
    for (std::size_t i = 0; i < d.targets.size(); ++i) {
      targets.push_back(resolve_variable(
          program, d.targets[i],
          path + ".targets[" + std::to_string(i) + "]", d.line));
    }
    return std::make_shared<TargetedCorruption>(std::move(targets),
                                                d.values);
  }
  // byzantine
  const ByzantineModel::Policy policy = d.policy == "extremes"
                                            ? ByzantineModel::Policy::kExtremes
                                            : ByzantineModel::Policy::kRandom;
  try {
    return std::make_shared<ByzantineModel>(program, d.processes, policy);
  } catch (const std::invalid_argument& e) {
    throw SpecError(path + ".processes", e.what(), d.line);
  }
}

}  // namespace

Topology build_topology(const TopologyDecl& decl) {
  Topology topo;
  auto from_tree = [&](const RootedTree& tree) {
    topo.kind = Topology::Kind::kTree;
    topo.n = tree.size();
    topo.root = tree.root();
    topo.parent = tree.parents();
    topo.children.resize(static_cast<std::size_t>(tree.size()));
    topo.nbrs.resize(static_cast<std::size_t>(tree.size()));
    for (int j = 0; j < tree.size(); ++j) {
      topo.children[static_cast<std::size_t>(j)] = tree.children(j);
      if (!tree.is_root(j)) {
        topo.nbrs[static_cast<std::size_t>(j)].push_back(tree.parent(j));
      }
      for (int c : tree.children(j)) {
        topo.nbrs[static_cast<std::size_t>(j)].push_back(c);
      }
    }
  };
  auto from_graph = [&](const UndirectedGraph& g) {
    topo.kind = Topology::Kind::kGraph;
    topo.n = g.size();
    topo.nbrs.resize(static_cast<std::size_t>(g.size()));
    for (int v = 0; v < g.size(); ++v) {
      topo.nbrs[static_cast<std::size_t>(v)] = g.neighbors(v);
    }
  };

  const int n = static_cast<int>(decl.n);
  if (decl.kind == "ring") {
    topo.kind = Topology::Kind::kRing;
    topo.n = n;
    topo.nbrs.resize(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      topo.nbrs[static_cast<std::size_t>(j)] = {(j - 1 + n) % n,
                                                (j + 1) % n};
    }
  } else if (decl.kind == "chain") {
    from_tree(RootedTree::chain(n));
  } else if (decl.kind == "star") {
    from_tree(RootedTree::star(n));
  } else if (decl.kind == "balanced") {
    from_tree(RootedTree::balanced(n, static_cast<int>(decl.arity)));
  } else if (decl.kind == "random-tree") {
    Rng rng(decl.seed);
    from_tree(RootedTree::random(n, rng));
  } else if (decl.kind == "path") {
    from_graph(UndirectedGraph::path(n));
  } else if (decl.kind == "cycle") {
    from_graph(UndirectedGraph::cycle(n));
  } else if (decl.kind == "complete") {
    from_graph(UndirectedGraph::complete(n));
  } else if (decl.kind == "grid") {
    from_graph(UndirectedGraph::grid(static_cast<int>(decl.rows),
                                     static_cast<int>(decl.cols)));
  } else {  // random-connected
    Rng rng(decl.seed);
    from_graph(UndirectedGraph::random_connected(
        n, static_cast<int>(decl.extra), rng));
  }
  return topo;
}

CompiledSpec compile_spec(const SpecDoc& doc) {
  CompiledSpec out;
  out.spec_name = doc.name;
  out.schema = doc.schema;
  out.content_hash = fnv1a64_hex(doc.text);
  out.fault_seed = doc.fault_seed;
  out.has_job = doc.has_job;
  out.job = doc.job;

  if (doc.has_topology) out.topology = build_topology(doc.topology);
  const int n = out.topology.n;

  std::unordered_map<std::string, long long> params;
  for (const auto& [key, value] : doc.params) params[key] = value;
  if (doc.has_topology) params["n"] = n;

  ProgramBuilder builder(doc.name);
  std::unordered_map<std::string, std::vector<VarId>> families;

  CompileEnv env;
  env.params = &params;
  env.topo = &out.topology;
  env.program = &builder.peek();
  env.families = &families;

  // --- variables -----------------------------------------------------------
  std::vector<ExpandItem> var_items;
  for (const VariableDecl& d : doc.variables) {
    var_items.push_back({d.per_process, "", "", d.line});
  }
  const auto var_order = expansion_order(var_items, env, n, "$.variables",
                                         doc.interleave_processes);
  for (const auto& [i, j] : var_order) {
    const VariableDecl& d = doc.variables[i];
    const std::string path = "$.variables[" + std::to_string(i) + "]";
    CompileEnv venv = env;
    if (j >= 0) venv.binders["j"] = j;
    const long long lo =
        at(path + ".min", d.line, [&] { return eval_index_expr(d.min, venv); });
    const long long hi =
        at(path + ".max", d.line, [&] { return eval_index_expr(d.max, venv); });
    if (hi < lo) {
      throw SpecError(path, "empty domain [" + std::to_string(lo) + ", " +
                                std::to_string(hi) + "]",
                      d.line);
    }
    const std::string name =
        d.per_process ? d.name + "." + std::to_string(j) : d.name;
    if (builder.peek().find_variable(name).valid()) {
      throw SpecError(path + ".name", "duplicate variable '" + name + "'",
                      d.line);
    }
    const int process =
        d.per_process ? static_cast<int>(j) : static_cast<int>(d.process);
    const VarId id = builder.var(name, static_cast<Value>(lo),
                                 static_cast<Value>(hi), process);
    // Expansion visits each family's processes in increasing j, so the
    // family vector is indexed by process.
    if (d.per_process) families[d.name].push_back(id);
  }

  // --- constraints ---------------------------------------------------------
  Invariant invariant;
  std::vector<ExpandItem> con_items;
  for (const ConstraintDecl& d : doc.constraints) {
    con_items.push_back({d.per_process, d.where, d.group, d.line});
  }
  const auto con_order =
      expansion_order(con_items, env, n, "$.constraints", false);
  for (const auto& [i, j] : con_order) {
    const ConstraintDecl& d = doc.constraints[i];
    const std::string path = "$.constraints[" + std::to_string(i) + "]";
    CompileEnv cenv = env;
    if (j >= 0) cenv.binders["j"] = j;
    CompiledExpr expr = at(path + ".expr", d.line,
                           [&] { return compile_expr(parse_expr(d.expr), cenv); });
    Constraint c;
    c.name = j >= 0 ? expand_name(d.name, j) : d.name;
    if (d.support.empty()) {
      c.support = expr.reads;
    } else {
      for (std::size_t k = 0; k < d.support.size(); ++k) {
        std::string ref = d.support[k];
        if (j >= 0 && ref.find("{j}") != std::string::npos) {
          ref = expand_name(ref, j);
        }
        c.support.push_back(resolve_variable(
            builder.peek(), ref, path + ".support[" + std::to_string(k) + "]",
            d.line));
      }
    }
    c.fn = to_predicate(std::move(expr));
    invariant.add(std::move(c));
  }

  // --- actions -------------------------------------------------------------
  std::vector<ExpandItem> act_items;
  for (const ActionDecl& d : doc.actions) {
    act_items.push_back({d.per_process, d.where, d.group, d.line});
  }
  const auto act_order =
      expansion_order(act_items, env, n, "$.actions", false);
  for (const auto& [i, j] : act_order) {
    const ActionDecl& d = doc.actions[i];
    const std::string path = "$.actions[" + std::to_string(i) + "]";
    CompileEnv aenv = env;
    if (j >= 0) aenv.binders["j"] = j;

    CompiledExpr guard_expr;
    if (!d.guard.empty()) {
      guard_expr = at(path + ".guard", d.line, [&] {
        return compile_expr(parse_expr(d.guard), aenv);
      });
    } else {
      guard_expr.is_const = true;
      guard_expr.value = 1;
    }

    std::vector<VarId> writes;
    std::vector<CompiledExpr> rhs;
    for (std::size_t k = 0; k < d.assigns.size(); ++k) {
      const auto& [lhs_text, rhs_text] = d.assigns[k];
      const std::string assign_path = path + ".assign." + lhs_text;
      // The left-hand side is a variable reference: a full name, or a
      // family subscript `x[expr]` with a constant index.
      const ExprPtr lhs = at(assign_path, d.line,
                             [&] { return parse_expr(lhs_text); });
      VarId target;
      if (lhs->kind == ExprNode::Kind::kIdent) {
        target = resolve_variable(builder.peek(), lhs->name, assign_path,
                                  d.line);
      } else if (lhs->kind == ExprNode::Kind::kSubscript) {
        const CompiledExpr compiled = at(
            assign_path, d.line, [&] { return compile_expr(lhs, aenv); });
        if (compiled.reads.size() != 1) {
          throw SpecError(assign_path, "assignment target must name one "
                                       "variable",
                          d.line);
        }
        target = compiled.reads[0];
      } else {
        throw SpecError(assign_path,
                        "assignment target must be a variable name or "
                        "family subscript",
                        d.line);
      }
      for (VarId w : writes) {
        if (w == target) {
          throw SpecError(assign_path, "duplicate assignment target", d.line);
        }
      }
      writes.push_back(target);
      rhs.push_back(at(assign_path, d.line, [&] {
        return compile_expr(parse_expr(rhs_text), aenv);
      }));
    }

    std::vector<VarId> reads;
    if (d.reads.empty()) {
      reads = guard_expr.reads;
      for (const CompiledExpr& e : rhs) {
        for (VarId id : e.reads) {
          bool seen = false;
          for (VarId r : reads) seen = seen || r == id;
          if (!seen) reads.push_back(id);
        }
      }
    } else {
      for (std::size_t k = 0; k < d.reads.size(); ++k) {
        std::string ref = d.reads[k];
        if (j >= 0 && ref.find("{j}") != std::string::npos) {
          ref = expand_name(ref, j);
        }
        reads.push_back(resolve_variable(
            builder.peek(), ref, path + ".reads[" + std::to_string(k) + "]",
            d.line));
      }
    }

    GuardFn guard;
    if (guard_expr.is_const) {
      const bool value = guard_expr.value != 0;
      guard = [value](const State&) { return value; };
    } else {
      guard = [e = std::move(guard_expr)](const State& s) {
        return e.fn(s) != 0;
      };
    }
    // Simultaneous assignment: all right-hand sides read the pre-state.
    StatementFn statement = [writes, rhs = std::move(rhs)](State& s) {
      Value values[8];
      std::vector<Value> spill;
      Value* slot = values;
      if (writes.size() > 8) {
        spill.resize(writes.size());
        slot = spill.data();
      }
      for (std::size_t k = 0; k < writes.size(); ++k) {
        slot[k] = rhs[k].eval(s);
      }
      for (std::size_t k = 0; k < writes.size(); ++k) {
        s.set(writes[k], slot[k]);
      }
    };

    int process = -1;
    if (!d.process.empty()) {
      process = static_cast<int>(at(path + ".process", d.line, [&] {
        return eval_index_expr(d.process, aenv);
      }));
    } else if (j >= 0) {
      process = static_cast<int>(j);
    }
    const std::string name = j >= 0 ? expand_name(d.name, j) : d.name;

    if (d.kind == "closure") {
      builder.closure(name, std::move(guard), std::move(statement),
                      std::move(reads), std::move(writes), process);
    } else if (d.kind == "convergence") {
      int constraint_id = -1;
      if (!d.constraint.empty()) {
        constraint_id = static_cast<int>(at(path + ".constraint", d.line, [&] {
          return eval_index_expr(d.constraint, aenv);
        }));
        if (constraint_id < 0 ||
            static_cast<std::size_t>(constraint_id) >= invariant.size()) {
          throw SpecError(path + ".constraint",
                          "constraint id " + std::to_string(constraint_id) +
                              " out of range [0, " +
                              std::to_string(invariant.size()) + ")",
                          d.line);
        }
      }
      builder.convergence(name, std::move(guard), std::move(statement),
                          std::move(reads), std::move(writes), constraint_id,
                          process);
    } else if (d.kind == "environment") {
      builder.environment(name, std::move(guard), std::move(statement),
                          std::move(reads), std::move(writes), process);
    } else {  // fault
      builder.fault(name, std::move(guard), std::move(statement),
                    std::move(reads), std::move(writes), process);
    }
  }

  // --- predicates ----------------------------------------------------------
  out.design.name = doc.name;
  out.design.invariant = std::move(invariant);
  out.design.stabilizing = doc.stabilizing;
  if (!doc.fault_span.empty()) {
    out.design.fault_span = to_predicate(at("$.fault_span", 0, [&] {
      return compile_expr(parse_expr(doc.fault_span), env);
    }));
  }
  if (!doc.s_override.empty()) {
    out.design.S_override = to_predicate(at("$.s_override", 0, [&] {
      return compile_expr(parse_expr(doc.s_override), env);
    }));
  }
  out.design.program = builder.build();

  // --- fault schedule ------------------------------------------------------
  std::vector<FaultSchedule> parts;
  for (std::size_t i = 0; i < doc.faults.size(); ++i) {
    const FaultDecl& d = doc.faults[i];
    const std::string path = "$.faults[" + std::to_string(i) + "]";
    FaultModelPtr model = build_fault_model(d, out.design.program, path);
    if (d.schedule == "at") {
      parts.push_back(FaultSchedule::at(std::move(model), d.step));
    } else if (d.schedule == "burst") {
      parts.push_back(
          FaultSchedule::burst(std::move(model), d.start, d.count));
    } else if (d.schedule == "sustained") {
      parts.push_back(FaultSchedule::sustained(std::move(model), d.start,
                                               d.period, d.count));
    } else {  // persistent
      parts.push_back(FaultSchedule::persistent(std::move(model)));
    }
  }
  if (!parts.empty()) {
    out.schedule = FaultSchedule::compose(std::move(parts));
  }
  return out;
}

CompiledSpec compile_spec_text(const std::string& text) {
  return compile_spec(parse_spec(text));
}

}  // namespace nonmask::spec
