// Spec emitters: every built-in protocol of src/protocols/ rendered as a
// spec DSL document.
//
// Emitters produce *fully expanded* specs — concrete per-process variable
// names ("x.3"), one declaration per action instance, explicit process
// pins, nested ternaries where the hand-coded builder loops — mirroring
// the hand-coded factories declaration-for-declaration. Variable order and
// action order are load-bearing: random start states draw per variable in
// declaration order, and the random daemon indexes the enabled-action
// list, so a reordered emission would change campaign trajectories even
// though the transition system is isomorphic. The round-trip tests
// (tests/spec_roundtrip_test.cpp) pin this: compile(emit(P)) must produce
// byte-identical closure/convergence reports to the hand-coded P.
//
// The parameterized layer of the DSL (topology objects, per-process
// declarations, comprehensions — docs/SPEC.md) is for human-authored
// specs; emitters do not use it.
#pragma once

#include <string>

#include "util/json.hpp"

namespace nonmask::spec {

/// The spec document (pretty-printed JSON text) for one built-in protocol
/// instance. Throws std::invalid_argument on an unknown name; the valid
/// names are exactly the registry entries (src/spec/registry.hpp).
std::string emit_builtin_spec(const std::string& name);

}  // namespace nonmask::spec
