// Spec compilation: SpecDoc -> executable Design + fault schedule + job.
//
// The compiler expands a parameterized spec over its topology (per-process
// variables, constraints, and actions with binder `j`), resolves every
// expression against the growing program, derives read sets and constraint
// supports where the document leaves them implicit, and packages the result
// as the same core::Design the hand-coded protocols produce — so every
// downstream facility (checkers, campaigns, containment, synthesis,
// certification) runs unchanged on spec-born designs.
//
// Expansion rules:
//  * per-process variables become `name.j` instances owned by process j;
//    consecutive per-process declarations expand process-major (all of
//    process 0's, then process 1's, ...) when `interleave_processes` is
//    set, declaration-major otherwise. Instances are also registered as a
//    *family* so expressions can write `name[j]`.
//  * per-process constraints/actions expand declaration-major, except that
//    consecutive declarations sharing a `group` expand process-major
//    interleaved — matching hand-coded protocols that add, say, accept.j /
//    propose.j / retract.j per process.
//  * `{j}` in a name substitutes the process index; a per-process name
//    without `{j}` gets `.j` appended.
//  * assignments are simultaneous: every right-hand side is evaluated
//    against the pre-state, then all writes land.
//
// Compilation errors are SpecErrors carrying the JSON path and line of the
// offending declaration.
#pragma once

#include <cstdint>
#include <string>

#include "core/candidate.hpp"
#include "faults/schedule.hpp"
#include "spec/expr.hpp"
#include "spec/spec.hpp"

namespace nonmask::spec {

struct CompiledSpec {
  Design design;
  Topology topology;
  FaultSchedule schedule;  ///< composed from the spec's `faults` array
  std::uint64_t fault_seed = 1;
  bool has_job = false;
  JobDecl job;

  // Provenance (RunReport "spec" blocks).
  std::string spec_name;
  std::string schema;
  std::string content_hash;  ///< fnv1a64_hex of the raw document text
};

/// Build the expansion-time topology view from a declaration.
Topology build_topology(const TopologyDecl& decl);

/// Compile a parsed spec document. Throws SpecError on any semantic
/// problem (unknown names, non-constant index expressions, bad processes).
CompiledSpec compile_spec(const SpecDoc& doc);

/// Convenience: parse_spec + compile_spec.
CompiledSpec compile_spec_text(const std::string& text);

}  // namespace nonmask::spec
