#include "spec/spec.hpp"

#include <limits>

#include "util/json.hpp"

namespace nonmask::spec {

namespace {

using util::JsonValue;

[[noreturn]] void fail(const std::string& path, const std::string& message,
                       const JsonValue& at) {
  throw SpecError(path, message, at.line);
}

const JsonValue& expect_object(const JsonValue& v, const std::string& path) {
  if (!v.is_object()) {
    fail(path, std::string("expected object, got ") + v.type_name(), v);
  }
  return v;
}

const JsonValue& expect_array(const JsonValue& v, const std::string& path) {
  if (!v.is_array()) {
    fail(path, std::string("expected array, got ") + v.type_name(), v);
  }
  return v;
}

std::string expect_string(const JsonValue& v, const std::string& path) {
  if (!v.is_string()) {
    fail(path, std::string("expected string, got ") + v.type_name(), v);
  }
  return v.string_value;
}

long long expect_int(const JsonValue& v, const std::string& path) {
  if (!v.is_int()) {
    fail(path, std::string("expected integer, got ") + v.type_name(), v);
  }
  return v.int_value;
}

bool expect_bool(const JsonValue& v, const std::string& path) {
  if (!v.is_bool()) {
    fail(path, std::string("expected bool, got ") + v.type_name(), v);
  }
  return v.bool_value;
}

/// A string expression, or an integer literal (written without quotes for
/// convenience) rendered to its decimal form.
std::string expect_expr(const JsonValue& v, const std::string& path) {
  if (v.is_string()) return v.string_value;
  if (v.is_int()) return std::to_string(v.int_value);
  fail(path, std::string("expected expression string or integer, got ") +
                 v.type_name(),
       v);
}

void reject_unknown_keys(const JsonValue& obj, const std::string& path,
                         std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.object) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) fail(path + "." + key, "unknown field", value);
  }
}

TopologyDecl parse_topology(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(v, path,
                      {"kind", "n", "arity", "rows", "cols", "extra", "seed"});
  TopologyDecl t;
  t.line = v.line;
  const JsonValue* kind = v.find("kind");
  if (kind == nullptr) fail(path, "missing required field \"kind\"", v);
  t.kind = expect_string(*kind, path + ".kind");
  static const char* kKinds[] = {"ring",     "chain",       "star",
                                 "balanced", "path",        "cycle",
                                 "complete", "grid",        "random-tree",
                                 "random-connected"};
  bool known = false;
  for (const char* k : kKinds) known = known || t.kind == k;
  if (!known) fail(path + ".kind", "unknown topology kind '" + t.kind + "'",
                   *kind);
  if (const JsonValue* n = v.find("n")) t.n = expect_int(*n, path + ".n");
  if (const JsonValue* a = v.find("arity")) {
    t.arity = expect_int(*a, path + ".arity");
  }
  if (const JsonValue* r = v.find("rows")) {
    t.rows = expect_int(*r, path + ".rows");
  }
  if (const JsonValue* c = v.find("cols")) {
    t.cols = expect_int(*c, path + ".cols");
  }
  if (const JsonValue* e = v.find("extra")) {
    t.extra = expect_int(*e, path + ".extra");
  }
  if (const JsonValue* s = v.find("seed")) {
    t.seed = static_cast<std::uint64_t>(expect_int(*s, path + ".seed"));
  }
  if (t.kind == "grid") {
    if (t.rows <= 0 || t.cols <= 0) {
      fail(path, "grid topology requires positive \"rows\" and \"cols\"", v);
    }
  } else if (t.n <= 0) {
    fail(path, "topology requires positive \"n\"", v);
  }
  return t;
}

VariableDecl parse_variable(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(v, path, {"name", "per", "min", "max", "process"});
  VariableDecl d;
  d.line = v.line;
  const JsonValue* name = v.find("name");
  if (name == nullptr) fail(path, "missing required field \"name\"", v);
  d.name = expect_string(*name, path + ".name");
  if (d.name.empty()) fail(path + ".name", "empty variable name", *name);
  if (const JsonValue* per = v.find("per")) {
    const std::string p = expect_string(*per, path + ".per");
    if (p != "process") {
      fail(path + ".per", "expected \"process\"", *per);
    }
    d.per_process = true;
  }
  const JsonValue* min = v.find("min");
  const JsonValue* max = v.find("max");
  if (min == nullptr || max == nullptr) {
    fail(path, "variable requires \"min\" and \"max\" domain bounds", v);
  }
  d.min = expect_expr(*min, path + ".min");
  d.max = expect_expr(*max, path + ".max");
  if (const JsonValue* process = v.find("process")) {
    if (d.per_process) {
      fail(path + ".process",
           "per-process variables may not pin an explicit process", *process);
    }
    d.process = expect_int(*process, path + ".process");
  }
  return d;
}

ConstraintDecl parse_constraint(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(v, path,
                      {"name", "per", "where", "expr", "support", "group"});
  ConstraintDecl d;
  d.line = v.line;
  const JsonValue* name = v.find("name");
  if (name == nullptr) fail(path, "missing required field \"name\"", v);
  d.name = expect_string(*name, path + ".name");
  if (const JsonValue* per = v.find("per")) {
    if (expect_string(*per, path + ".per") != "process") {
      fail(path + ".per", "expected \"process\"", *per);
    }
    d.per_process = true;
  }
  if (const JsonValue* where = v.find("where")) {
    d.where = expect_expr(*where, path + ".where");
  }
  const JsonValue* expr = v.find("expr");
  if (expr == nullptr) fail(path, "missing required field \"expr\"", v);
  d.expr = expect_string(*expr, path + ".expr");
  if (const JsonValue* support = v.find("support")) {
    expect_array(*support, path + ".support");
    for (std::size_t i = 0; i < support->array.size(); ++i) {
      d.support.push_back(expect_string(
          support->array[i], path + ".support[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* group = v.find("group")) {
    d.group = expect_string(*group, path + ".group");
  }
  return d;
}

ActionDecl parse_action(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(v, path,
                      {"name", "kind", "per", "where", "guard", "assign",
                       "constraint", "process", "reads", "group"});
  ActionDecl d;
  d.line = v.line;
  const JsonValue* name = v.find("name");
  if (name == nullptr) fail(path, "missing required field \"name\"", v);
  d.name = expect_string(*name, path + ".name");
  const JsonValue* kind = v.find("kind");
  if (kind == nullptr) fail(path, "missing required field \"kind\"", v);
  d.kind = expect_string(*kind, path + ".kind");
  if (d.kind != "closure" && d.kind != "convergence" &&
      d.kind != "environment" && d.kind != "fault") {
    fail(path + ".kind",
         "expected closure | convergence | environment | fault", *kind);
  }
  if (const JsonValue* per = v.find("per")) {
    if (expect_string(*per, path + ".per") != "process") {
      fail(path + ".per", "expected \"process\"", *per);
    }
    d.per_process = true;
  }
  if (const JsonValue* where = v.find("where")) {
    d.where = expect_expr(*where, path + ".where");
  }
  if (const JsonValue* guard = v.find("guard")) {
    d.guard = expect_string(*guard, path + ".guard");
  }
  const JsonValue* assign = v.find("assign");
  if (assign == nullptr) fail(path, "missing required field \"assign\"", v);
  expect_object(*assign, path + ".assign");
  if (assign->object.empty()) {
    fail(path + ".assign", "assignment must write at least one variable",
         *assign);
  }
  for (const auto& [lhs, rhs] : assign->object) {
    d.assigns.emplace_back(lhs,
                           expect_expr(rhs, path + ".assign." + lhs));
  }
  if (const JsonValue* constraint = v.find("constraint")) {
    d.constraint = expect_expr(*constraint, path + ".constraint");
  }
  if (const JsonValue* process = v.find("process")) {
    d.process = expect_expr(*process, path + ".process");
  }
  if (const JsonValue* reads = v.find("reads")) {
    expect_array(*reads, path + ".reads");
    for (std::size_t i = 0; i < reads->array.size(); ++i) {
      d.reads.push_back(expect_string(
          reads->array[i], path + ".reads[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* group = v.find("group")) {
    d.group = expect_string(*group, path + ".group");
  }
  return d;
}

FaultDecl parse_fault(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(v, path,
                      {"schedule", "step", "start", "count", "period",
                       "model", "k", "fraction", "targets", "values",
                       "processes", "policy"});
  FaultDecl d;
  d.line = v.line;
  const JsonValue* schedule = v.find("schedule");
  if (schedule == nullptr) {
    fail(path, "missing required field \"schedule\"", v);
  }
  d.schedule = expect_string(*schedule, path + ".schedule");
  if (d.schedule != "at" && d.schedule != "burst" &&
      d.schedule != "sustained" && d.schedule != "persistent") {
    fail(path + ".schedule", "expected at | burst | sustained | persistent",
         *schedule);
  }
  const JsonValue* model = v.find("model");
  if (model == nullptr) fail(path, "missing required field \"model\"", v);
  d.model = expect_string(*model, path + ".model");
  if (d.model != "corrupt-k-variables" && d.model != "corrupt-k-processes" &&
      d.model != "corrupt-fraction" && d.model != "targeted" &&
      d.model != "byzantine") {
    fail(path + ".model",
         "expected corrupt-k-variables | corrupt-k-processes | "
         "corrupt-fraction | targeted | byzantine",
         *model);
  }
  auto take_size = [&](const char* key, std::size_t* out) {
    if (const JsonValue* j = v.find(key)) {
      const long long parsed = expect_int(*j, path + "." + key);
      if (parsed < 0) fail(path + "." + key, "must be >= 0", *j);
      *out = static_cast<std::size_t>(parsed);
    }
  };
  take_size("step", &d.step);
  take_size("start", &d.start);
  take_size("count", &d.count);
  take_size("period", &d.period);
  take_size("k", &d.k);
  if (const JsonValue* fraction = v.find("fraction")) {
    if (!fraction->is_number()) {
      fail(path + ".fraction", "expected number", *fraction);
    }
    d.fraction = fraction->as_double();
  }
  if (const JsonValue* targets = v.find("targets")) {
    expect_array(*targets, path + ".targets");
    for (std::size_t i = 0; i < targets->array.size(); ++i) {
      d.targets.push_back(expect_string(
          targets->array[i], path + ".targets[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* values = v.find("values")) {
    expect_array(*values, path + ".values");
    for (std::size_t i = 0; i < values->array.size(); ++i) {
      d.values.push_back(static_cast<Value>(expect_int(
          values->array[i], path + ".values[" + std::to_string(i) + "]")));
    }
  }
  if (const JsonValue* processes = v.find("processes")) {
    expect_array(*processes, path + ".processes");
    for (std::size_t i = 0; i < processes->array.size(); ++i) {
      d.processes.push_back(static_cast<int>(
          expect_int(processes->array[i],
                     path + ".processes[" + std::to_string(i) + "]")));
    }
  }
  if (const JsonValue* policy = v.find("policy")) {
    d.policy = expect_string(*policy, path + ".policy");
    if (d.policy != "random" && d.policy != "extremes") {
      fail(path + ".policy", "expected random | extremes", *policy);
    }
  }
  if (d.model == "targeted" && d.targets.size() != d.values.size()) {
    fail(path, "targeted model requires \"targets\" and \"values\" of equal "
               "length",
         v);
  }
  if (d.model == "byzantine" && d.processes.empty()) {
    fail(path, "byzantine model requires a nonempty \"processes\" placement",
         v);
  }
  return d;
}

JobDecl parse_job(const JsonValue& v, const std::string& path) {
  expect_object(v, path);
  reject_unknown_keys(
      v, path,
      {"type", "threads", "backend", "state_budget", "weakly_fair", "trials",
       "seed", "max_steps", "daemon", "deadline_ms", "retries", "backoff_ms",
       "walks", "walk_length", "byzantine", "max_candidates"});
  JobDecl d;
  d.line = v.line;
  if (const JsonValue* type = v.find("type")) {
    d.type = expect_string(*type, path + ".type");
    if (d.type != "check" && d.type != "falsify" && d.type != "campaign" &&
        d.type != "containment" && d.type != "synthesize" &&
        d.type != "certify") {
      fail(path + ".type",
           "expected check | falsify | campaign | containment | synthesize "
           "| certify",
           *type);
    }
  }
  auto take_u64 = [&](const char* key, std::uint64_t* out) {
    if (const JsonValue* j = v.find(key)) {
      const long long parsed = expect_int(*j, path + "." + key);
      if (parsed < 0) fail(path + "." + key, "must be >= 0", *j);
      *out = static_cast<std::uint64_t>(parsed);
    }
  };
  auto take_size = [&](const char* key, std::size_t* out) {
    std::uint64_t u = *out;
    take_u64(key, &u);
    *out = static_cast<std::size_t>(u);
  };
  if (const JsonValue* threads = v.find("threads")) {
    const long long parsed = expect_int(*threads, path + ".threads");
    if (parsed < 0) fail(path + ".threads", "must be >= 0", *threads);
    d.threads = static_cast<unsigned>(parsed);
  }
  if (const JsonValue* backend = v.find("backend")) {
    d.backend = expect_string(*backend, path + ".backend");
    if (d.backend != "dense" && d.backend != "store") {
      fail(path + ".backend", "expected dense | store", *backend);
    }
  }
  take_u64("state_budget", &d.state_budget);
  if (const JsonValue* weakly_fair = v.find("weakly_fair")) {
    d.weakly_fair = expect_bool(*weakly_fair, path + ".weakly_fair");
  }
  take_size("trials", &d.trials);
  take_u64("seed", &d.seed);
  take_size("max_steps", &d.max_steps);
  if (const JsonValue* daemon = v.find("daemon")) {
    d.daemon = expect_string(*daemon, path + ".daemon");
    if (d.daemon != "random" && d.daemon != "round-robin" &&
        d.daemon != "first-enabled") {
      fail(path + ".daemon", "expected random | round-robin | first-enabled",
           *daemon);
    }
  }
  if (const JsonValue* deadline = v.find("deadline_ms")) {
    d.deadline_ms = expect_int(*deadline, path + ".deadline_ms");
  }
  take_size("retries", &d.retries);
  if (const JsonValue* backoff = v.find("backoff_ms")) {
    d.backoff_ms = expect_int(*backoff, path + ".backoff_ms");
  }
  take_u64("walks", &d.walks);
  take_u64("walk_length", &d.walk_length);
  if (const JsonValue* byzantine = v.find("byzantine")) {
    expect_array(*byzantine, path + ".byzantine");
    for (std::size_t i = 0; i < byzantine->array.size(); ++i) {
      d.byzantine.push_back(static_cast<int>(
          expect_int(byzantine->array[i],
                     path + ".byzantine[" + std::to_string(i) + "]")));
    }
  }
  take_u64("max_candidates", &d.max_candidates);
  return d;
}

}  // namespace

SpecDoc parse_spec(const std::string& text) {
  const JsonValue root = util::parse_json(text);
  const std::string path = "$";
  expect_object(root, path);
  reject_unknown_keys(root, path,
                      {"schema", "name", "params", "topology",
                       "interleave_processes", "variables", "constraints",
                       "actions", "fault_span", "s_override", "stabilizing",
                       "faults", "fault_seed", "job"});

  SpecDoc doc;
  doc.text = text;

  const JsonValue* schema = root.find("schema");
  if (schema == nullptr) {
    fail(path, "missing required field \"schema\"", root);
  }
  doc.schema = expect_string(*schema, path + ".schema");
  if (doc.schema != kSchemaVersion) {
    fail(path + ".schema",
         std::string("unsupported schema '") + doc.schema + "' (expected \"" +
             kSchemaVersion + "\")",
         *schema);
  }
  const JsonValue* name = root.find("name");
  if (name == nullptr) fail(path, "missing required field \"name\"", root);
  doc.name = expect_string(*name, path + ".name");
  if (doc.name.empty()) fail(path + ".name", "empty design name", *name);

  if (const JsonValue* params = root.find("params")) {
    expect_object(*params, path + ".params");
    for (const auto& [key, value] : params->object) {
      doc.params.emplace_back(key,
                              expect_int(value, path + ".params." + key));
    }
  }
  if (const JsonValue* topology = root.find("topology")) {
    doc.topology = parse_topology(*topology, path + ".topology");
    doc.has_topology = true;
  }
  if (const JsonValue* interleave = root.find("interleave_processes")) {
    doc.interleave_processes =
        expect_bool(*interleave, path + ".interleave_processes");
  }

  const JsonValue* variables = root.find("variables");
  if (variables == nullptr) {
    fail(path, "missing required field \"variables\"", root);
  }
  expect_array(*variables, path + ".variables");
  if (variables->array.empty()) {
    fail(path + ".variables", "at least one variable is required",
         *variables);
  }
  for (std::size_t i = 0; i < variables->array.size(); ++i) {
    doc.variables.push_back(
        parse_variable(variables->array[i],
                       path + ".variables[" + std::to_string(i) + "]"));
  }

  if (const JsonValue* constraints = root.find("constraints")) {
    expect_array(*constraints, path + ".constraints");
    for (std::size_t i = 0; i < constraints->array.size(); ++i) {
      doc.constraints.push_back(
          parse_constraint(constraints->array[i],
                           path + ".constraints[" + std::to_string(i) + "]"));
    }
  }

  const JsonValue* actions = root.find("actions");
  if (actions == nullptr) {
    fail(path, "missing required field \"actions\"", root);
  }
  expect_array(*actions, path + ".actions");
  if (actions->array.empty()) {
    fail(path + ".actions", "at least one action is required", *actions);
  }
  for (std::size_t i = 0; i < actions->array.size(); ++i) {
    doc.actions.push_back(parse_action(
        actions->array[i], path + ".actions[" + std::to_string(i) + "]"));
  }

  if (const JsonValue* fault_span = root.find("fault_span")) {
    doc.fault_span = expect_string(*fault_span, path + ".fault_span");
  }
  if (const JsonValue* s_override = root.find("s_override")) {
    doc.s_override = expect_string(*s_override, path + ".s_override");
  }
  if (const JsonValue* stabilizing = root.find("stabilizing")) {
    doc.stabilizing = expect_bool(*stabilizing, path + ".stabilizing");
  }
  if (const JsonValue* faults = root.find("faults")) {
    expect_array(*faults, path + ".faults");
    for (std::size_t i = 0; i < faults->array.size(); ++i) {
      doc.faults.push_back(parse_fault(
          faults->array[i], path + ".faults[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* fault_seed = root.find("fault_seed")) {
    const long long parsed = expect_int(*fault_seed, path + ".fault_seed");
    if (parsed < 0) fail(path + ".fault_seed", "must be >= 0", *fault_seed);
    doc.fault_seed = static_cast<std::uint64_t>(parsed);
  }
  if (const JsonValue* job = root.find("job")) {
    doc.job = parse_job(*job, path + ".job");
    doc.has_job = true;
  }
  return doc;
}

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string fnv1a64_hex(std::string_view text) {
  std::uint64_t hash = fnv1a64(text);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = "0123456789abcdef"[hash & 0xFu];
    hash >>= 4;
  }
  return out;
}

}  // namespace nonmask::spec
