// Built-in protocol registry: the bridge between spec names and the
// hand-coded factories in src/protocols/.
//
// Each entry pairs a canonical name (the hand-coded design's name) with
// (a) a make() thunk producing the hand-coded Design at the registry's
// fixed instance parameters and (b) the spec emitter for the same
// instance. The round-trip tests compile(emit(entry)) against make() and
// demand byte-identical checker reports; the job server resolves
// `"protocol": "<name>"` references through find_protocol.
//
// The registry is also the door onto the certification cascade: a spec job
// of type "certify" runs synth::certify_design (Theorems 1-3, then the
// exhaustive checker as the certificate of last resort) on whatever
// design the spec compiled to — built-in or hand-authored alike.
#pragma once

#include <string>
#include <vector>

#include "core/candidate.hpp"

namespace nonmask::spec {

struct RegistryEntry {
  std::string name;
  std::string description;
  /// The hand-coded factory at this entry's fixed instance parameters.
  Design (*make)();
};

/// All built-in entries, in a stable documented order.
const std::vector<RegistryEntry>& registry();

/// Entry by name, or nullptr.
const RegistryEntry* find_protocol(const std::string& name);

}  // namespace nonmask::spec
