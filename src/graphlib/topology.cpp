#include "graphlib/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace nonmask {

RootedTree::RootedTree(std::vector<int> parent) : parent_(std::move(parent)) {
  const int n = static_cast<int>(parent_.size());
  if (n == 0) throw std::invalid_argument("RootedTree: empty");
  int root = -1;
  for (int j = 0; j < n; ++j) {
    const int p = parent_[static_cast<std::size_t>(j)];
    if (p < 0 || p >= n) throw std::invalid_argument("RootedTree: bad parent");
    if (p == j) {
      if (root != -1) throw std::invalid_argument("RootedTree: two roots");
      root = j;
    }
  }
  if (root == -1) throw std::invalid_argument("RootedTree: no root");
  root_ = root;
  finalize();
}

void RootedTree::finalize() {
  const int n = size();
  children_.assign(static_cast<std::size_t>(n), {});
  for (int j = 0; j < n; ++j) {
    if (j != root_) {
      children_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(j)])]
          .push_back(j);
    }
  }
  depth_.assign(static_cast<std::size_t>(n), -1);
  bfs_.clear();
  bfs_.reserve(static_cast<std::size_t>(n));
  bfs_.push_back(root_);
  depth_[static_cast<std::size_t>(root_)] = 0;
  height_ = 0;
  for (std::size_t head = 0; head < bfs_.size(); ++head) {
    const int v = bfs_[head];
    for (int c : children_[static_cast<std::size_t>(v)]) {
      depth_[static_cast<std::size_t>(c)] =
          depth_[static_cast<std::size_t>(v)] + 1;
      height_ = std::max(height_, depth_[static_cast<std::size_t>(c)]);
      bfs_.push_back(c);
    }
  }
  if (static_cast<int>(bfs_.size()) != n) {
    throw std::invalid_argument("RootedTree: parent array contains a cycle");
  }
}

RootedTree RootedTree::chain(int n) {
  if (n <= 0) throw std::invalid_argument("chain: n must be positive");
  std::vector<int> parent(static_cast<std::size_t>(n));
  parent[0] = 0;
  for (int j = 1; j < n; ++j) parent[static_cast<std::size_t>(j)] = j - 1;
  return RootedTree(std::move(parent));
}

RootedTree RootedTree::star(int n) {
  if (n <= 0) throw std::invalid_argument("star: n must be positive");
  std::vector<int> parent(static_cast<std::size_t>(n), 0);
  return RootedTree(std::move(parent));
}

RootedTree RootedTree::balanced(int n, int arity) {
  if (n <= 0) throw std::invalid_argument("balanced: n must be positive");
  if (arity <= 0) throw std::invalid_argument("balanced: arity must be > 0");
  std::vector<int> parent(static_cast<std::size_t>(n));
  parent[0] = 0;
  for (int j = 1; j < n; ++j) {
    parent[static_cast<std::size_t>(j)] = (j - 1) / arity;
  }
  return RootedTree(std::move(parent));
}

RootedTree RootedTree::random(int n, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("random: n must be positive");
  std::vector<int> parent(static_cast<std::size_t>(n));
  parent[0] = 0;
  for (int j = 1; j < n; ++j) {
    parent[static_cast<std::size_t>(j)] =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(j)));
  }
  return RootedTree(std::move(parent));
}

void UndirectedGraph::add_edge(int u, int v) {
  if (u < 0 || v < 0 || u >= size() || v >= size() || u == v) {
    throw std::invalid_argument("UndirectedGraph::add_edge: bad endpoints");
  }
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  edges_.emplace_back(u, v);
}

int UndirectedGraph::max_degree() const noexcept {
  int best = 0;
  for (const auto& adj : adjacency_) {
    best = std::max(best, static_cast<int>(adj.size()));
  }
  return best;
}

UndirectedGraph UndirectedGraph::cycle(int n) {
  if (n < 3) throw std::invalid_argument("cycle: n must be >= 3");
  UndirectedGraph g(n);
  for (int v = 0; v < n; ++v) g.add_edge(v, (v + 1) % n);
  return g;
}

UndirectedGraph UndirectedGraph::path(int n) {
  if (n <= 0) throw std::invalid_argument("path: n must be positive");
  UndirectedGraph g(n);
  for (int v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

UndirectedGraph UndirectedGraph::complete(int n) {
  if (n <= 0) throw std::invalid_argument("complete: n must be positive");
  UndirectedGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

UndirectedGraph UndirectedGraph::grid(int rows, int cols) {
  if (rows <= 0 || cols <= 0) {
    throw std::invalid_argument("grid: dimensions must be positive");
  }
  UndirectedGraph g(rows * cols);
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

UndirectedGraph UndirectedGraph::random_gnp(int n, double p, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("random_gnp: n must be positive");
  UndirectedGraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.chance(p)) g.add_edge(u, v);
    }
  }
  return g;
}

UndirectedGraph UndirectedGraph::random_connected(int n, int extra_edges,
                                                  Rng& rng) {
  if (n <= 0) throw std::invalid_argument("random_connected: n must be > 0");
  UndirectedGraph g(n);
  for (int j = 1; j < n; ++j) {
    const int p = static_cast<int>(rng.below(static_cast<std::uint64_t>(j)));
    g.add_edge(p, j);
  }
  int added = 0;
  int attempts = 0;
  while (added < extra_edges && attempts < 20 * (extra_edges + 1)) {
    ++attempts;
    if (n < 2) break;
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    const auto& adj = g.neighbors(u);
    if (std::find(adj.begin(), adj.end(), v) != adj.end()) continue;
    g.add_edge(u, v);
    ++added;
  }
  return g;
}

}  // namespace nonmask
