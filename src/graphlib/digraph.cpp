#include "graphlib/digraph.hpp"

#include <sstream>
#include <stdexcept>

namespace nonmask {

void Digraph::resize(int num_nodes) {
  if (num_nodes < 0) throw std::invalid_argument("Digraph: negative size");
  out_.resize(static_cast<std::size_t>(num_nodes));
  in_.resize(static_cast<std::size_t>(num_nodes));
  labels_.resize(static_cast<std::size_t>(num_nodes));
}

int Digraph::add_edge(int from, int to, int payload) {
  if (from < 0 || from >= num_nodes() || to < 0 || to >= num_nodes()) {
    throw std::out_of_range("Digraph::add_edge: node out of range");
  }
  const int index = static_cast<int>(edges_.size());
  edges_.push_back(Edge{from, to, payload});
  out_[static_cast<std::size_t>(from)].push_back(index);
  in_[static_cast<std::size_t>(to)].push_back(index);
  return index;
}

int Digraph::in_degree_proper(int node) const {
  int d = 0;
  for (int e : in_.at(node)) {
    if (edges_[static_cast<std::size_t>(e)].from != node) ++d;
  }
  return d;
}

void Digraph::set_node_label(int node, std::string label) {
  labels_.at(static_cast<std::size_t>(node)) = std::move(label);
}

const std::string& Digraph::node_label(int node) const {
  return labels_.at(static_cast<std::size_t>(node));
}

std::string Digraph::to_dot(const std::string& graph_name) const {
  std::ostringstream out;
  out << "digraph " << graph_name << " {\n";
  for (int v = 0; v < num_nodes(); ++v) {
    out << "  n" << v;
    if (!labels_[static_cast<std::size_t>(v)].empty()) {
      out << " [label=\"" << labels_[static_cast<std::size_t>(v)] << "\"]";
    }
    out << ";\n";
  }
  for (const auto& e : edges_) {
    out << "  n" << e.from << " -> n" << e.to;
    if (e.payload >= 0) out << " [label=\"a" << e.payload << "\"]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace nonmask
