// A small directed multigraph.
//
// Used both for constraint graphs (Section 4: one edge per convergence
// action; parallel edges and self-loops are meaningful) and for general
// graph analysis. Nodes are dense integers 0..n-1; edges carry an integer
// payload (for constraint graphs, the action index).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nonmask {

class Digraph {
 public:
  struct Edge {
    int from = 0;
    int to = 0;
    int payload = -1;  ///< caller-defined tag (e.g. action index)
  };

  Digraph() = default;
  explicit Digraph(int num_nodes) { resize(num_nodes); }

  void resize(int num_nodes);
  int num_nodes() const noexcept { return static_cast<int>(out_.size()); }
  int num_edges() const noexcept { return static_cast<int>(edges_.size()); }

  /// Add an edge and return its index.
  int add_edge(int from, int to, int payload = -1);

  const Edge& edge(int index) const { return edges_.at(index); }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Edge indices leaving / entering a node.
  const std::vector<int>& out_edges(int node) const { return out_.at(node); }
  const std::vector<int>& in_edges(int node) const { return in_.at(node); }

  int out_degree(int node) const {
    return static_cast<int>(out_.at(node).size());
  }
  int in_degree(int node) const { return static_cast<int>(in_.at(node).size()); }

  /// In-degree counting only edges from other nodes (self-loops excluded).
  int in_degree_proper(int node) const;

  /// Optional node labels for diagnostics (e.g. the variable-set label of a
  /// constraint-graph node). Empty when not set.
  void set_node_label(int node, std::string label);
  const std::string& node_label(int node) const;

  /// Graphviz dot rendering (for the examples / docs).
  std::string to_dot(const std::string& graph_name = "g") const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  std::vector<std::string> labels_;
};

}  // namespace nonmask
