// Structural graph analysis used by the constraint-graph theorems:
// strongly connected components (Tarjan), acyclicity, out-tree and
// self-looping classification, node ranks, and weak connectivity.
#pragma once

#include <optional>
#include <vector>

#include "graphlib/digraph.hpp"

namespace nonmask {

/// Result of Tarjan's SCC algorithm.
struct SccResult {
  int num_components = 0;
  std::vector<int> component;  ///< node -> component id (reverse topo order)

  /// Sizes of each component.
  std::vector<int> sizes() const;
};

SccResult tarjan_scc(const Digraph& g);

/// True iff g has no directed cycle (self-loops count as cycles).
bool is_acyclic(const Digraph& g);

/// True iff g has no directed cycle of length > 1; self-loops are allowed.
/// This is the paper's "self-looping" constraint-graph condition (Section 6).
bool is_self_looping(const Digraph& g);

/// True iff the underlying undirected graph of g is connected.
/// Vacuously true for the empty graph.
bool is_weakly_connected(const Digraph& g);

/// True iff g is an out-tree (Section 5): weakly connected, exactly one node
/// of in-degree zero (the root), every other node of in-degree one, and
/// every node reachable from the root. Self-loops disqualify.
bool is_out_tree(const Digraph& g);
/// The root of the out-tree, when is_out_tree(g).
std::optional<int> out_tree_root(const Digraph& g);

/// Node ranks per the proof of Theorem 1/2:
///   rank(j) = 1 + max{ rank(k) | edge k -> j, k != j }  (max over {} = 0).
/// Defined whenever g is self-looping (cycles of length > 1 make ranks
/// undefined -> nullopt).
std::optional<std::vector<int>> node_ranks(const Digraph& g);

/// A topological order of the nodes ignoring self-loops; nullopt when a
/// proper cycle exists.
std::optional<std::vector<int>> topo_order_ignoring_self_loops(
    const Digraph& g);

}  // namespace nonmask
