// Network topologies for the protocols: rooted trees (diffusing
// computations, spanning trees), rings (token passing), and general
// undirected graphs (coloring, matching). All generators are deterministic
// given the seed.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace nonmask {

/// A rooted tree over nodes 0..n-1, stored as a parent array. The root j
/// has parent[j] == j, matching the paper's convention "if j is the root
/// then P.j is j".
class RootedTree {
 public:
  RootedTree() = default;
  /// Construct from a parent array; validates that it encodes one tree.
  explicit RootedTree(std::vector<int> parent);

  int size() const noexcept { return static_cast<int>(parent_.size()); }
  int root() const noexcept { return root_; }
  int parent(int j) const { return parent_.at(static_cast<std::size_t>(j)); }
  const std::vector<int>& parents() const noexcept { return parent_; }
  const std::vector<int>& children(int j) const {
    return children_.at(static_cast<std::size_t>(j));
  }
  bool is_root(int j) const { return parent(j) == j; }
  bool is_leaf(int j) const { return children(j).empty(); }

  /// Depth of node j (root has depth 0).
  int depth(int j) const { return depth_.at(static_cast<std::size_t>(j)); }
  /// Height of the tree (max depth).
  int height() const noexcept { return height_; }

  /// Nodes in BFS order from the root.
  const std::vector<int>& bfs_order() const noexcept { return bfs_; }

  // --- generators ---------------------------------------------------------

  /// Path 0 -> 1 -> ... -> n-1 rooted at 0.
  static RootedTree chain(int n);
  /// Root 0 with n-1 leaf children.
  static RootedTree star(int n);
  /// Balanced k-ary tree with n nodes (node j's parent is (j-1)/k).
  static RootedTree balanced(int n, int arity);
  /// Uniform random recursive tree: parent of j drawn from {0..j-1}.
  static RootedTree random(int n, Rng& rng);

 private:
  void finalize();

  std::vector<int> parent_;
  std::vector<std::vector<int>> children_;
  std::vector<int> depth_;
  std::vector<int> bfs_;
  int root_ = 0;
  int height_ = 0;
};

/// A simple undirected graph over nodes 0..n-1.
class UndirectedGraph {
 public:
  UndirectedGraph() = default;
  explicit UndirectedGraph(int n) : adjacency_(static_cast<std::size_t>(n)) {}

  int size() const noexcept { return static_cast<int>(adjacency_.size()); }
  int num_edges() const noexcept { return static_cast<int>(edges_.size()); }
  void add_edge(int u, int v);
  const std::vector<int>& neighbors(int v) const {
    return adjacency_.at(static_cast<std::size_t>(v));
  }
  const std::vector<std::pair<int, int>>& edges() const noexcept {
    return edges_;
  }
  int degree(int v) const {
    return static_cast<int>(adjacency_.at(static_cast<std::size_t>(v)).size());
  }
  int max_degree() const noexcept;

  // --- generators ---------------------------------------------------------

  static UndirectedGraph cycle(int n);
  static UndirectedGraph path(int n);
  static UndirectedGraph complete(int n);
  static UndirectedGraph grid(int rows, int cols);
  /// Erdos-Renyi G(n, p); guaranteed simple (no multi-edges/self-loops).
  static UndirectedGraph random_gnp(int n, double p, Rng& rng);
  /// A connected random graph: random recursive tree + extra random edges.
  static UndirectedGraph random_connected(int n, int extra_edges, Rng& rng);

 private:
  std::vector<std::vector<int>> adjacency_;
  std::vector<std::pair<int, int>> edges_;
};

}  // namespace nonmask
