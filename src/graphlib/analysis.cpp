#include "graphlib/analysis.hpp"

#include <algorithm>

namespace nonmask {

std::vector<int> SccResult::sizes() const {
  std::vector<int> out(static_cast<std::size_t>(num_components), 0);
  for (int c : component) ++out[static_cast<std::size_t>(c)];
  return out;
}

namespace {

// Iterative Tarjan to avoid stack overflow on large graphs.
struct TarjanFrame {
  int node;
  std::size_t edge_pos;
};

}  // namespace

SccResult tarjan_scc(const Digraph& g) {
  const int n = g.num_nodes();
  SccResult result;
  result.component.assign(static_cast<std::size_t>(n), -1);

  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<TarjanFrame> frames;
  int next_index = 0;

  for (int start = 0; start < n; ++start) {
    if (index[static_cast<std::size_t>(start)] != -1) continue;
    frames.push_back({start, 0});
    index[static_cast<std::size_t>(start)] = next_index;
    lowlink[static_cast<std::size_t>(start)] = next_index;
    ++next_index;
    stack.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = true;

    while (!frames.empty()) {
      auto& frame = frames.back();
      const int v = frame.node;
      const auto& out_edges = g.out_edges(v);
      if (frame.edge_pos < out_edges.size()) {
        const int w = g.edge(out_edges[frame.edge_pos]).to;
        ++frame.edge_pos;
        if (index[static_cast<std::size_t>(w)] == -1) {
          index[static_cast<std::size_t>(w)] = next_index;
          lowlink[static_cast<std::size_t>(w)] = next_index;
          ++next_index;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          frames.push_back({w, 0});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        if (lowlink[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            result.component[static_cast<std::size_t>(w)] =
                result.num_components;
            if (w == v) break;
          }
          ++result.num_components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          const int parent = frames.back().node;
          lowlink[static_cast<std::size_t>(parent)] =
              std::min(lowlink[static_cast<std::size_t>(parent)],
                       lowlink[static_cast<std::size_t>(v)]);
        }
      }
    }
  }
  return result;
}

bool is_acyclic(const Digraph& g) {
  for (const auto& e : g.edges()) {
    if (e.from == e.to) return false;
  }
  const auto scc = tarjan_scc(g);
  return scc.num_components == g.num_nodes();
}

bool is_self_looping(const Digraph& g) {
  // Every SCC must be a singleton; self-loops do not merge components.
  const auto scc = tarjan_scc(g);
  return scc.num_components == g.num_nodes();
}

bool is_weakly_connected(const Digraph& g) {
  const int n = g.num_nodes();
  if (n <= 1) return true;
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  std::vector<int> queue{0};
  seen[0] = true;
  std::size_t head = 0;
  int visited = 1;
  while (head < queue.size()) {
    const int v = queue[head++];
    auto visit = [&](int w) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        ++visited;
        queue.push_back(w);
      }
    };
    for (int e : g.out_edges(v)) visit(g.edge(e).to);
    for (int e : g.in_edges(v)) visit(g.edge(e).from);
  }
  return visited == n;
}

bool is_out_tree(const Digraph& g) {
  const int n = g.num_nodes();
  if (n == 0) return false;
  int roots = 0;
  for (int v = 0; v < n; ++v) {
    for (int e : g.in_edges(v)) {
      if (g.edge(e).from == v) return false;  // self-loop
    }
    const int d = g.in_degree(v);
    if (d == 0) {
      ++roots;
    } else if (d != 1) {
      return false;
    }
  }
  if (roots != 1) return false;
  if (g.num_edges() != n - 1) return false;
  return is_weakly_connected(g);
}

std::optional<int> out_tree_root(const Digraph& g) {
  if (!is_out_tree(g)) return std::nullopt;
  for (int v = 0; v < g.num_nodes(); ++v) {
    if (g.in_degree(v) == 0) return v;
  }
  return std::nullopt;
}

std::optional<std::vector<int>> topo_order_ignoring_self_loops(
    const Digraph& g) {
  const int n = g.num_nodes();
  std::vector<int> indeg(static_cast<std::size_t>(n), 0);
  for (const auto& e : g.edges()) {
    if (e.from != e.to) ++indeg[static_cast<std::size_t>(e.to)];
  }
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<int> ready;
  for (int v = 0; v < n; ++v) {
    if (indeg[static_cast<std::size_t>(v)] == 0) ready.push_back(v);
  }
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (int e : g.out_edges(v)) {
      const int w = g.edge(e).to;
      if (w == v) continue;
      if (--indeg[static_cast<std::size_t>(w)] == 0) ready.push_back(w);
    }
  }
  if (static_cast<int>(order.size()) != n) return std::nullopt;
  return order;
}

std::optional<std::vector<int>> node_ranks(const Digraph& g) {
  const auto order = topo_order_ignoring_self_loops(g);
  if (!order) return std::nullopt;
  std::vector<int> rank(static_cast<std::size_t>(g.num_nodes()), 1);
  for (int v : *order) {
    int best = 0;
    for (int e : g.in_edges(v)) {
      const int k = g.edge(e).from;
      if (k == v) continue;
      best = std::max(best, rank[static_cast<std::size_t>(k)]);
    }
    rank[static_cast<std::size_t>(v)] = 1 + best;
  }
  return rank;
}

}  // namespace nonmask
