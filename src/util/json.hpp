// Hand-rolled recursive-descent JSON parser (RFC 8259 subset, no external
// dependency). The spec DSL (src/spec/) and the job server (src/serve/)
// parse documents through this module; obs/json.hpp remains the *writer*.
//
// Every parsed value carries the line/column where it started, so the spec
// schema validator can report field-precise errors ("$.actions[2].guard:
// expected string (line 14)"). Object member order is preserved — the spec
// round-trip tests rely on deterministic iteration.
//
// Deliberate limits (documented, tested): numbers are either int64 or
// double (integral tokens without '.', 'e', 'E' parse exactly as int64);
// \uXXXX escapes outside the BMP surrogate-pair form decode per RFC;
// duplicate object keys are rejected (a spec with two "job" members is a
// mistake, not a merge).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nonmask::util {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& message, int line, int col)
      : std::runtime_error(message + " (line " + std::to_string(line) +
                           ", col " + std::to_string(col) + ")"),
        line_(line),
        col_(col) {}
  int line() const noexcept { return line_; }
  int col() const noexcept { return col_; }

 private:
  int line_;
  int col_;
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Type type = Type::kNull;
  bool bool_value = false;
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  /// Members in document order.
  std::vector<std::pair<std::string, JsonValue>> object;
  /// Position where this value's first token starts (1-based).
  int line = 0;
  int col = 0;

  bool is_null() const noexcept { return type == Type::kNull; }
  bool is_bool() const noexcept { return type == Type::kBool; }
  bool is_int() const noexcept { return type == Type::kInt; }
  bool is_number() const noexcept {
    return type == Type::kInt || type == Type::kDouble;
  }
  bool is_string() const noexcept { return type == Type::kString; }
  bool is_array() const noexcept { return type == Type::kArray; }
  bool is_object() const noexcept { return type == Type::kObject; }

  double as_double() const noexcept {
    return type == Type::kInt ? static_cast<double>(int_value) : double_value;
  }

  /// Pointer to the member value, or nullptr when absent (objects only).
  const JsonValue* find(std::string_view key) const noexcept {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  const char* type_name() const noexcept;

  // --- builder conveniences (the emitters construct documents in code) ---

  /// Append a member (objects). Returns *this for chaining.
  JsonValue& add(std::string key, JsonValue value) {
    object.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  /// Append an element (arrays). Returns *this for chaining.
  JsonValue& push(JsonValue value) {
    array.push_back(std::move(value));
    return *this;
  }
};

JsonValue jnull();
JsonValue jbool(bool v);
JsonValue jint(std::int64_t v);
JsonValue jstr(std::string v);
JsonValue jarr();
JsonValue jobj();

/// Parse one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Throws JsonParseError.
JsonValue parse_json(std::string_view text);

/// Render with 2-space indentation and "key": value member order as built.
/// Round-trips through parse_json (doubles print with max_digits10).
std::string dump_json(const JsonValue& v);

/// Escape and quote one string as a JSON literal.
std::string json_quote(std::string_view s);

}  // namespace nonmask::util
