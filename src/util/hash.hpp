// Shared hash finalizer.
//
// FNV-1a alone distributes poorly in its high bits (the last byte folded
// in only touches the low bits through the multiply), which breaks
// consumers that partition by prefix — the store's shard selector uses the
// *top* bits and open addressing probes the low ones. The splitmix64
// avalanche stage fixes both: every output bit depends on every input bit.
// State::hash and the packed-store hash both run their accumulator through
// this.
#pragma once

#include <cstdint>

namespace nonmask {

/// splitmix64 finalizer: the avalanche stage alone, applicable to any
/// 64-bit accumulator.
constexpr std::uint64_t avalanche64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace nonmask
