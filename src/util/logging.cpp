#include "util/logging.hpp"

#include <iostream>

namespace nonmask {

namespace {
LogLevel g_level = LogLevel::kOff;
std::ostream* g_sink = nullptr;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Log::set_level(LogLevel level) noexcept { g_level = level; }
LogLevel Log::level() noexcept { return g_level; }
void Log::set_sink(std::ostream* sink) noexcept { g_sink = sink; }
bool Log::enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(g_level) &&
         g_level != LogLevel::kOff;
}

void Log::write(LogLevel level, std::string_view msg) {
  std::ostream& out = g_sink != nullptr ? *g_sink : std::clog;
  out << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace nonmask
