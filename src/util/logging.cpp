#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace nonmask {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::atomic<std::ostream*> g_sink{nullptr};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void Log::set_sink(std::ostream* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}
bool Log::enabled(LogLevel level) noexcept {
  const LogLevel current = g_level.load(std::memory_order_relaxed);
  return static_cast<int>(level) >= static_cast<int>(current) &&
         current != LogLevel::kOff;
}

void Log::write(LogLevel level, std::string_view msg) {
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  std::ostream& out = sink != nullptr ? *sink : std::clog;
  out << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace nonmask
