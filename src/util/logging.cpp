#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

namespace nonmask {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::atomic<std::ostream*> g_sink{nullptr};
std::atomic<bool> g_prefix{false};
std::mutex g_write_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

unsigned current_thread_tag() noexcept {
  static std::atomic<unsigned> next{1};
  thread_local unsigned tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

std::string iso8601_utc_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto ms =
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000;
  const std::time_t secs = system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

void Log::set_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel Log::level() noexcept {
  return g_level.load(std::memory_order_relaxed);
}
void Log::set_sink(std::ostream* sink) noexcept {
  g_sink.store(sink, std::memory_order_release);
}
void Log::set_prefix(bool enabled) noexcept {
  g_prefix.store(enabled, std::memory_order_relaxed);
}
bool Log::prefix() noexcept {
  return g_prefix.load(std::memory_order_relaxed);
}
bool Log::enabled(LogLevel level) noexcept {
  const LogLevel current = g_level.load(std::memory_order_relaxed);
  return static_cast<int>(level) >= static_cast<int>(current) &&
         current != LogLevel::kOff;
}

void Log::write(LogLevel level, std::string_view msg) {
  // Build the prefix outside the lock; only the sink write is serialized.
  std::string prefix;
  if (g_prefix.load(std::memory_order_relaxed)) {
    prefix = "[" + iso8601_utc_now() + "] [t" +
             std::to_string(current_thread_tag()) + "] ";
  }
  std::lock_guard<std::mutex> lock(g_write_mutex);
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  std::ostream& out = sink != nullptr ? *sink : std::clog;
  out << prefix << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace nonmask
