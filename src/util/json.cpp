#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nonmask::util {

const char* JsonValue::type_name() const noexcept {
  switch (type) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kInt: return "int";
    case Type::kDouble: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, line_, col_);
  }

  bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() const noexcept { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* what) {
    if (eof() || peek() != c) fail(std::string("expected ") + what);
    advance();
  }

  JsonValue parse_value() {
    if (eof()) fail("unexpected end of input");
    JsonValue v;
    v.line = line_;
    v.col = col_;
    const char c = peek();
    switch (c) {
      case '{': parse_object(v); return v;
      case '[': parse_array(v); return v;
      case '"':
        v.type = JsonValue::Type::kString;
        v.string_value = parse_string();
        return v;
      case 't':
        parse_literal("true");
        v.type = JsonValue::Type::kBool;
        v.bool_value = true;
        return v;
      case 'f':
        parse_literal("false");
        v.type = JsonValue::Type::kBool;
        v.bool_value = false;
        return v;
      case 'n':
        parse_literal("null");
        v.type = JsonValue::Type::kNull;
        return v;
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          parse_number(v);
          return v;
        }
        fail(std::string("unexpected character '") + c + "'");
    }
  }

  void parse_literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p) {
      if (eof() || peek() != *p) {
        fail(std::string("invalid literal (expected '") + word + "')");
      }
      advance();
    }
  }

  void parse_object(JsonValue& v) {
    v.type = JsonValue::Type::kObject;
    advance();  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      advance();
      return;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const auto& [existing, unused] : v.object) {
        (void)unused;
        if (existing == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':', "':' after object key");
      skip_ws();
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == '}') {
        advance();
        return;
      }
      fail("expected ',' or '}' in object");
    }
  }

  void parse_array(JsonValue& v) {
    v.type = JsonValue::Type::kArray;
    advance();  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      advance();
      return;
    }
    while (true) {
      skip_ws();
      v.array.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        advance();
        continue;
      }
      if (peek() == ']') {
        advance();
        return;
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("unterminated \\u escape");
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80u) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800u) {
      out.push_back(static_cast<char>(0xC0u | (cp >> 6)));
      out.push_back(static_cast<char>(0x80u | (cp & 0x3Fu)));
    } else if (cp < 0x10000u) {
      out.push_back(static_cast<char>(0xE0u | (cp >> 12)));
      out.push_back(static_cast<char>(0x80u | ((cp >> 6) & 0x3Fu)));
      out.push_back(static_cast<char>(0x80u | (cp & 0x3Fu)));
    } else {
      out.push_back(static_cast<char>(0xF0u | (cp >> 18)));
      out.push_back(static_cast<char>(0x80u | ((cp >> 12) & 0x3Fu)));
      out.push_back(static_cast<char>(0x80u | ((cp >> 6) & 0x3Fu)));
      out.push_back(static_cast<char>(0x80u | (cp & 0x3Fu)));
    }
  }

  std::string parse_string() {
    advance();  // '"'
    std::string out;
    while (true) {
      if (eof()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20u) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) fail("unterminated escape");
      const char e = advance();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800u && cp <= 0xDBFFu) {
            if (eof() || peek() != '\\') fail("unpaired high surrogate");
            advance();
            if (eof() || peek() != 'u') fail("unpaired high surrogate");
            advance();
            const unsigned low = parse_hex4();
            if (low < 0xDC00u || low > 0xDFFFu) {
              fail("invalid low surrogate");
            }
            cp = 0x10000u + ((cp - 0xD800u) << 10) + (low - 0xDC00u);
          } else if (cp >= 0xDC00u && cp <= 0xDFFFu) {
            fail("unexpected low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  void parse_number(JsonValue& v) {
    const std::size_t start = pos_;
    bool integral = true;
    if (!eof() && peek() == '-') advance();
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    while (!eof() && peek() >= '0' && peek() <= '9') advance();
    if (!eof() && peek() == '.') {
      integral = false;
      advance();
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      advance();
      if (!eof() && (peek() == '+' || peek() == '-')) advance();
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digit required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') advance();
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long parsed = std::strtoll(token.c_str(), &end, 10);
      if (errno != 0 || end == token.c_str() || *end != '\0') {
        fail("integer out of range");
      }
      v.type = JsonValue::Type::kInt;
      v.int_value = parsed;
    } else {
      errno = 0;
      char* end = nullptr;
      const double parsed = std::strtod(token.c_str(), &end);
      if (end == token.c_str() || *end != '\0' || !std::isfinite(parsed)) {
        fail("invalid number");
      }
      v.type = JsonValue::Type::kDouble;
      v.double_value = parsed;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue jnull() { return JsonValue{}; }

JsonValue jbool(bool v) {
  JsonValue j;
  j.type = JsonValue::Type::kBool;
  j.bool_value = v;
  return j;
}

JsonValue jint(std::int64_t v) {
  JsonValue j;
  j.type = JsonValue::Type::kInt;
  j.int_value = v;
  return j;
}

JsonValue jstr(std::string v) {
  JsonValue j;
  j.type = JsonValue::Type::kString;
  j.string_value = std::move(v);
  return j;
}

JsonValue jarr() {
  JsonValue j;
  j.type = JsonValue::Type::kArray;
  return j;
}

JsonValue jobj() {
  JsonValue j;
  j.type = JsonValue::Type::kObject;
  return j;
}

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20u) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void dump_value(const JsonValue& v, int depth, std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (v.type) {
    case JsonValue::Type::kNull: out += "null"; return;
    case JsonValue::Type::kBool: out += v.bool_value ? "true" : "false"; return;
    case JsonValue::Type::kInt: out += std::to_string(v.int_value); return;
    case JsonValue::Type::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", v.double_value);
      out += buf;
      return;
    }
    case JsonValue::Type::kString: out += json_quote(v.string_value); return;
    case JsonValue::Type::kArray: {
      if (v.array.empty()) {
        out += "[]";
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += pad_in;
        dump_value(v.array[i], depth + 1, out);
        if (i + 1 < v.array.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      return;
    }
    case JsonValue::Type::kObject: {
      if (v.object.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out += pad_in + json_quote(v.object[i].first) + ": ";
        dump_value(v.object[i].second, depth + 1, out);
        if (i + 1 < v.object.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      return;
    }
  }
}

}  // namespace

std::string dump_json(const JsonValue& v) {
  std::string out;
  dump_value(v, 0, out);
  out += '\n';
  return out;
}

}  // namespace nonmask::util
