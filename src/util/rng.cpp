#include "util/rng.hpp"

namespace nonmask {

std::uint64_t Xoshiro256StarStar::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Xoshiro256StarStar::range(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

}  // namespace nonmask
