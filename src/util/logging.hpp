// Minimal leveled logger. Off by default; enabled per-binary for the
// examples' live traces. Thread-safe: level and sink are atomics and sink
// writes are serialized under a mutex, so concurrent NONMASK_LOG lines from
// the parallel sweep and campaign workers (src/parallel/) never interleave
// mid-line. Reconfiguring level/sink while workers log is safe but takes
// effect per-line.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>
#include <string_view>

namespace nonmask {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Small sequential id of the calling thread (1, 2, ... in first-use
/// order). Stable for the thread's lifetime; used by the log prefix and by
/// the tracing spans (src/obs/) so both report the same thread identity.
unsigned current_thread_tag() noexcept;

/// Current UTC wall-clock time as ISO-8601 with millisecond precision,
/// e.g. "2026-08-06T12:34:56.789Z".
std::string iso8601_utc_now();

/// Global log configuration (process-wide).
class Log {
 public:
  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;
  static void set_sink(std::ostream* sink) noexcept;  // nullptr -> std::clog
  /// Opt-in line prefix "[<ISO-8601 UTC>] [t<tid>] " ahead of the level
  /// tag. Off by default, so existing line-format expectations hold.
  static void set_prefix(bool enabled) noexcept;
  static bool prefix() noexcept;
  static bool enabled(LogLevel level) noexcept;
  static void write(LogLevel level, std::string_view msg);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace nonmask

#define NONMASK_LOG(level)                        \
  if (!::nonmask::Log::enabled(level)) {          \
  } else                                          \
    ::nonmask::detail::LogLine(level)

#define NONMASK_TRACE() NONMASK_LOG(::nonmask::LogLevel::kTrace)
#define NONMASK_DEBUG() NONMASK_LOG(::nonmask::LogLevel::kDebug)
#define NONMASK_INFO() NONMASK_LOG(::nonmask::LogLevel::kInfo)
#define NONMASK_WARN() NONMASK_LOG(::nonmask::LogLevel::kWarn)
#define NONMASK_ERROR() NONMASK_LOG(::nonmask::LogLevel::kError)
