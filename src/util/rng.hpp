// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Xoshiro256StarStar seeded via
// SplitMix64, so every simulation, fault schedule and sampled check is fully
// reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

namespace nonmask {

/// SplitMix64: used to expand a single 64-bit seed into the 256-bit state of
/// Xoshiro256StarStar. Also usable standalone as a fast mixing function.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Derive an independent child generator (for per-component streams).
  Xoshiro256StarStar split() noexcept {
    return Xoshiro256StarStar((*this)());
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

using Rng = Xoshiro256StarStar;

}  // namespace nonmask
