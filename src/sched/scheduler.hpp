// Daemons (schedulers).
//
// The paper's computations are fair, maximal sequences of steps in which
// "some action that is enabled in the current state is executed". The
// adversary choosing *which* action is the daemon. We model:
//   - central daemons: one enabled action fires per step;
//   - distributed daemons: a non-empty subset fires simultaneously;
//   - the synchronous daemon: every enabled process fires each step.
// Fairness is provided either natively (round-robin) or by the
// WeaklyFairDaemon decorator. Section 8 of the paper observes that its
// derived programs converge even without fairness — bench_daemons measures
// exactly this, pitting adversarial unfair daemons against the protocols.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/program.hpp"
#include "core/state.hpp"

namespace nonmask {

class Daemon {
 public:
  virtual ~Daemon() = default;

  virtual const char* name() const noexcept = 0;

  /// Select a non-empty subset of `enabled` (indices into p.actions()) to
  /// fire simultaneously. `enabled` is non-empty. Central daemons return a
  /// singleton.
  virtual std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) = 0;

  /// Clear internal bookkeeping between runs.
  virtual void reset() {}
};

using DaemonPtr = std::unique_ptr<Daemon>;

}  // namespace nonmask
