#include "sched/daemons.hpp"

#include <algorithm>

namespace nonmask {

std::vector<std::size_t> RandomDaemon::select(
    const Program& p, const State& s,
    const std::vector<std::size_t>& enabled) {
  (void)p;
  (void)s;
  return {enabled[rng_.below(enabled.size())]};
}

std::vector<std::size_t> RoundRobinDaemon::select(
    const Program& p, const State& s,
    const std::vector<std::size_t>& enabled) {
  (void)s;
  const std::size_t n = p.num_actions();
  for (std::size_t offset = 0; offset < n; ++offset) {
    const std::size_t candidate = (cursor_ + offset) % n;
    if (std::find(enabled.begin(), enabled.end(), candidate) !=
        enabled.end()) {
      cursor_ = (candidate + 1) % n;
      return {candidate};
    }
  }
  return {enabled.front()};  // unreachable: enabled is non-empty
}

std::vector<std::size_t> AdversarialDaemon::select(
    const Program& p, const State& s,
    const std::vector<std::size_t>& enabled) {
  std::size_t best_score = 0;
  std::vector<std::size_t> best;
  for (std::size_t idx : enabled) {
    const State next = p.action(idx).apply(s);
    const std::size_t score = invariant_.violation_count(next);
    if (best.empty() || score > best_score) {
      best_score = score;
      best.assign(1, idx);
    } else if (score == best_score) {
      best.push_back(idx);
    }
  }
  return {best[rng_.below(best.size())]};
}

std::vector<std::size_t> DistributedDaemon::select(
    const Program& p, const State& s,
    const std::vector<std::size_t>& enabled) {
  (void)p;
  (void)s;
  std::vector<std::size_t> chosen;
  for (std::size_t idx : enabled) {
    if (rng_.chance(p_fire_)) chosen.push_back(idx);
  }
  if (chosen.empty()) chosen.push_back(enabled[rng_.below(enabled.size())]);
  return chosen;
}

std::vector<std::size_t> SynchronousDaemon::select(
    const Program& p, const State& s,
    const std::vector<std::size_t>& enabled) {
  (void)s;
  // One action per process; actions without a process fire individually.
  std::vector<std::size_t> chosen;
  std::unordered_map<int, std::size_t> per_process;
  for (std::size_t idx : enabled) {
    const int proc = p.action(idx).process();
    if (proc < 0) {
      chosen.push_back(idx);
    } else if (per_process.find(proc) == per_process.end()) {
      per_process.emplace(proc, idx);
    }
  }
  for (const auto& [proc, idx] : per_process) {
    (void)proc;
    chosen.push_back(idx);
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

std::vector<std::size_t> WeaklyFairDaemon::select(
    const Program& p, const State& s,
    const std::vector<std::size_t>& enabled) {
  // Age the streaks: enabled actions accumulate, others reset.
  std::unordered_map<std::size_t, std::size_t> next_streak;
  std::size_t forced = enabled.front();
  std::size_t longest = 0;
  for (std::size_t idx : enabled) {
    auto it = streak_.find(idx);
    const std::size_t age = (it == streak_.end() ? 0 : it->second) + 1;
    next_streak[idx] = age;
    if (age > longest) {
      longest = age;
      forced = idx;
    }
  }
  streak_ = std::move(next_streak);
  if (longest >= patience_) {
    streak_[forced] = 0;
    return {forced};
  }
  auto chosen = inner_->select(p, s, enabled);
  for (std::size_t idx : chosen) streak_[idx] = 0;
  return chosen;
}

}  // namespace nonmask
