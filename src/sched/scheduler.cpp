// Daemon is a pure interface; this translation unit anchors its vtable.
#include "sched/scheduler.hpp"

namespace nonmask {}
