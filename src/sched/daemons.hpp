// Concrete daemons. All are deterministic given their seed.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/predicate.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace nonmask {

/// Central daemon choosing uniformly at random among enabled actions.
/// Probabilistically fair.
class RandomDaemon final : public Daemon {
 public:
  explicit RandomDaemon(std::uint64_t seed) : rng_(seed), seed_(seed) {}
  const char* name() const noexcept override { return "random"; }
  std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) override;
  void reset() override { rng_ = Rng(seed_); }

 private:
  Rng rng_;
  std::uint64_t seed_;
};

/// Central daemon cycling through action indices; weakly fair.
class RoundRobinDaemon final : public Daemon {
 public:
  const char* name() const noexcept override { return "round-robin"; }
  std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) override;
  void reset() override { cursor_ = 0; }

 private:
  std::size_t cursor_ = 0;
};

/// Central daemon that always fires the lowest-indexed enabled action.
/// Deterministic and *unfair* — a useful stress for fairness-free
/// convergence claims.
class FirstEnabledDaemon final : public Daemon {
 public:
  const char* name() const noexcept override { return "first-enabled"; }
  std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) override {
    (void)p;
    (void)s;
    return {enabled.front()};
  }
};

/// Unfair adversarial central daemon: greedily fires the enabled action
/// whose successor state violates the most invariant constraints (ties
/// broken randomly). Used to probe worst-case convergence (Section 8's
/// fairness remark).
class AdversarialDaemon final : public Daemon {
 public:
  AdversarialDaemon(Invariant invariant, std::uint64_t seed)
      : invariant_(std::move(invariant)), rng_(seed), seed_(seed) {}
  const char* name() const noexcept override { return "adversarial"; }
  std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) override;
  void reset() override { rng_ = Rng(seed_); }

 private:
  Invariant invariant_;
  Rng rng_;
  std::uint64_t seed_;
};

/// Distributed daemon: each enabled action fires independently with
/// probability `p_fire`; at least one action always fires.
class DistributedDaemon final : public Daemon {
 public:
  DistributedDaemon(double p_fire, std::uint64_t seed)
      : p_fire_(p_fire), rng_(seed), seed_(seed) {}
  const char* name() const noexcept override { return "distributed"; }
  std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) override;
  void reset() override { rng_ = Rng(seed_); }

 private:
  double p_fire_;
  Rng rng_;
  std::uint64_t seed_;
};

/// Synchronous daemon: every enabled process fires one action per step
/// (the lowest-indexed enabled action of each process; process-less actions
/// each count as their own process).
class SynchronousDaemon final : public Daemon {
 public:
  const char* name() const noexcept override { return "synchronous"; }
  std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) override;
};

/// Decorator enforcing weak fairness on any inner daemon: an action that
/// has been continuously enabled for `patience` consecutive selections is
/// fired by force.
class WeaklyFairDaemon final : public Daemon {
 public:
  WeaklyFairDaemon(DaemonPtr inner, std::size_t patience)
      : inner_(std::move(inner)), patience_(patience) {}
  const char* name() const noexcept override { return "weakly-fair"; }
  std::vector<std::size_t> select(
      const Program& p, const State& s,
      const std::vector<std::size_t>& enabled) override;
  void reset() override {
    inner_->reset();
    streak_.clear();
  }

 private:
  DaemonPtr inner_;
  std::size_t patience_;
  std::unordered_map<std::size_t, std::size_t> streak_;
};

}  // namespace nonmask
