// Cheap candidate pruning for the CEGIS loop.
//
// Before a candidate combination ever reaches a falsifier or the exact
// checker, two layers of pruning discard most of the grammar:
//   - *local* pruning checks one candidate action in isolation against the
//     obligations Section 3 imposes on any convergence action — executing
//     it from a T-state violating its constraint must establish the
//     constraint, and it must preserve the fault-span T. Both checks are
//     per-action, so a rejected action eliminates every combination that
//     contains it.
//   - the *seed bank* accumulates the violating states of every
//     counterexample found so far (falsifier cycles and deadlocks, exact
//     checker counterexamples). Replaying these through the bounded probe
//     (checker/falsify.hpp) rejects later candidates that fail the same
//     way, without re-running walks or the exhaustive checker.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "checker/preserves.hpp"
#include "core/candidate.hpp"
#include "synth/grammar.hpp"

namespace nonmask::synth {

struct LocalPruneResult {
  bool establishes = false;    ///< ¬c ∧ T states reach c in one step
  bool preserves_T = false;    ///< action preserves the fault-span
  /// A state witnessing the failed obligation, when available.
  std::optional<State> counterexample;
  bool ok() const noexcept { return establishes && preserves_T; }
};

/// Check the Section 3 per-action obligations for `action` (built for
/// `constraint`) within `candidate`'s program and fault-span. Exhaustive
/// when `opts.space` is set, sampled otherwise.
LocalPruneResult prune_local(const CandidateTriple& candidate,
                             const Action& action,
                             const Constraint& constraint,
                             const PreservesOptions& opts = {});

/// Deduplicated, insertion-ordered store of counterexample states. The
/// CEGIS loop snapshots its size at batch boundaries so parallel candidate
/// evaluations see a consistent prefix, then merges new states serially —
/// keeping results independent of thread count.
class SeedBank {
 public:
  /// Insert a state; returns true when it was new.
  bool add(const State& s);
  /// Insert every state of a counterexample trace.
  std::size_t add_all(const std::vector<State>& states);

  const std::vector<State>& seeds() const noexcept { return seeds_; }
  std::size_t size() const noexcept { return seeds_.size(); }

 private:
  std::vector<State> seeds_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> index_;
};

}  // namespace nonmask::synth
