#include "synth/triage.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "store/facade.hpp"

namespace nonmask::synth {

const char* to_string(TriageVerdict verdict) noexcept {
  switch (verdict) {
    case TriageVerdict::kSurvives: return "survives";
    case TriageVerdict::kFallsBack: return "falls-back";
    case TriageVerdict::kRefuted: return "refuted";
  }
  return "unknown";
}

namespace {

std::string join_ints(const std::vector<int>& xs) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out << ",";
    out << xs[i];
  }
  out << "}";
  return out.str();
}

TriageEntry transient_row(const Design& design, const TriageOptions& opts) {
  TriageEntry row;
  row.design = design.name;
  row.regime = FaultRegime::kTransient;

  if (!fits_in_budget(design.program, opts.state_budget)) {
    row.verdict = TriageVerdict::kFallsBack;
    row.detail = "state space exceeds triage budget; certificate unaudited";
    return row;
  }
  StateSpace space(design.program, opts.state_budget);
  ValidationOptions vopts;
  vopts.space = &space;
  const CertificationResult cert = certify_design(design, vopts);
  if (cert.theorem_certified()) {
    row.verdict = TriageVerdict::kSurvives;
    row.detail = std::string("certificate: ") + to_string(cert.method);
    return row;
  }
  const ToleranceReport tol = store::verify_tolerance_via(
      opts.byzantine.containment.config, space, design);
  if (tol.tolerant()) {
    row.verdict = TriageVerdict::kFallsBack;
    row.detail = "no theorem applies; exhaustive certificate only";
  } else {
    row.verdict = TriageVerdict::kRefuted;
    row.detail = "not nonmasking tolerant (closure or convergence fails)";
  }
  return row;
}

/// The benchmark Byzantine placement certificates are audited against: the
/// m variable-owning processes farthest from process 0 in the comm graph
/// (ties to the smaller id). This is the Dubois–Masuzawa–Tixeuil shape —
/// adversaries deep in the topology are the ones a containing protocol must
/// shrug off; the *worst* placement is the adversary search's job
/// (find_worst_byzantine_placement), not the certificate's.
std::vector<int> benchmark_placement(const Program& program, std::size_t m) {
  const UndirectedGraph g = communication_graph(program);
  const std::vector<int> dist = distances_from(g, {0});
  std::vector<int> owners;
  for (int p = 1; p < g.size(); ++p) {
    for (const auto& v : program.variables()) {
      if (v.process == p) {
        owners.push_back(p);
        break;
      }
    }
  }
  std::stable_sort(owners.begin(), owners.end(), [&dist](int a, int b) {
    return dist[static_cast<std::size_t>(a)] >
           dist[static_cast<std::size_t>(b)];
  });
  if (owners.size() > m) owners.resize(m);
  std::sort(owners.begin(), owners.end());
  return owners;
}

TriageEntry byzantine_row(const Design& design, const TriageOptions& opts) {
  TriageEntry row;
  row.design = design.name;
  row.regime = FaultRegime::kByzantine;

  const std::vector<int> bench =
      benchmark_placement(design.program, std::max<std::size_t>(
                                              opts.num_byzantine, 1));
  if (bench.empty()) {
    row.verdict = TriageVerdict::kFallsBack;
    row.detail = "no process beyond 0 owns variables; placement undefined";
    return row;
  }
  std::ostringstream detail;
  AdversaryOptions leg_opts;
  leg_opts.seed = opts.seed;
  try {
    const ContainmentReport rep =
        measure_containment(design.program, bench,
                            legitimate_state(design, leg_opts),
                            opts.byzantine.containment);
    if (rep.contained) {
      row.verdict = TriageVerdict::kSurvives;
      detail << "contained: radius " << rep.radius << " < horizon "
             << rep.horizon << " at benchmark placement " << join_ints(bench);
    } else {
      row.verdict = TriageVerdict::kRefuted;
      detail << "not contained: radius " << rep.radius << " reaches horizon "
             << rep.horizon << " at benchmark placement " << join_ints(bench);
    }
  } catch (const StateSpaceTooLarge&) {
    ByzantinePlacementOptions bopts = opts.byzantine;
    bopts.num_byzantine = opts.num_byzantine;
    bopts.seed = opts.seed;
    bopts.force_hill_climb = true;
    const ByzantinePlacementResult worst =
        find_worst_byzantine_placement(design, bopts);
    row.verdict = TriageVerdict::kFallsBack;
    detail << "space too large for exact containment; hill-climb damage "
           << "radius >= " << worst.report.radius << " at placement "
           << join_ints(worst.byzantine);
  }
  row.detail = detail.str();
  return row;
}

TriageEntry environment_row(const Design& design, const TriageOptions& opts) {
  TriageEntry row;
  row.design = design.name;
  row.regime = FaultRegime::kEnvironment;

  validate_environment(design.program);
  if (!fits_in_budget(design.program, opts.state_budget)) {
    row.verdict = TriageVerdict::kFallsBack;
    row.detail = "state space exceeds triage budget; composed system "
                 "unaudited";
    return row;
  }
  // The environment actions are part of the program, so the ordinary
  // passes already run over the composed program∪environment system.
  StateSpace space(design.program, opts.state_budget);
  const auto& config = opts.byzantine.containment.config;
  const ConvergenceReport unfair =
      store::check_convergence_via(config, space, design.S(), design.T());
  if (unfair.verdict == ConvergenceVerdict::kConverges) {
    row.verdict = TriageVerdict::kSurvives;
    row.detail = "converges under any daemon despite environment actions";
    return row;
  }
  const ConvergenceReport fair = store::check_convergence_weakly_fair_via(
      config, space, design.S(), design.T());
  if (fair.verdict == ConvergenceVerdict::kConverges) {
    row.verdict = TriageVerdict::kFallsBack;
    row.detail = "converges only under weak fairness (environment actions "
                 "can starve convergence in unfair schedules)";
  } else {
    row.verdict = TriageVerdict::kRefuted;
    row.detail = std::string("composed system does not converge (") +
                 to_string(fair.verdict) + " under weak fairness)";
  }
  return row;
}

bool has_environment_actions(const Program& program) {
  for (const auto& a : program.actions()) {
    if (a.kind() == ActionKind::kEnvironment) return true;
  }
  return false;
}

bool has_process_structure(const Program& program) {
  return communication_graph(program).size() >= 2;
}

}  // namespace

std::vector<TriageEntry> triage_design(const Design& design,
                                       const TriageOptions& opts) {
  std::vector<TriageEntry> rows;
  rows.push_back(transient_row(design, opts));
  if (has_process_structure(design.program)) {
    rows.push_back(byzantine_row(design, opts));
  }
  if (has_environment_actions(design.program)) {
    rows.push_back(environment_row(design, opts));
  }
  return rows;
}

std::vector<TriageEntry> triage_designs(const std::vector<Design>& designs,
                                        const TriageOptions& opts) {
  std::vector<TriageEntry> rows;
  for (const Design& d : designs) {
    auto part = triage_design(d, opts);
    rows.insert(rows.end(), std::make_move_iterator(part.begin()),
                std::make_move_iterator(part.end()));
  }
  return rows;
}

std::string triage_to_json(const std::vector<TriageEntry>& entries) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_array();
  for (const TriageEntry& e : entries) {
    w.begin_object();
    w.key("design");
    w.value(e.design);
    w.key("fault_model");
    w.value(to_string(e.regime));
    w.key("verdict");
    w.value(to_string(e.verdict));
    w.key("detail");
    w.value(e.detail);
    w.end_object();
  }
  w.end_array();
  return out;
}

obs::DashboardTable triage_dashboard_table(
    const std::vector<TriageEntry>& entries) {
  obs::DashboardTable table;
  table.title = "Certification triage (per protocol × fault model)";
  table.columns = {"protocol", "fault model", "certificate", "evidence"};
  for (const TriageEntry& e : entries) {
    table.rows.push_back(
        {e.design, to_string(e.regime), to_string(e.verdict), e.detail});
  }
  return table;
}

}  // namespace nonmask::synth
