// Synthesis report: a machine-readable JSON account of one synthesizer
// run — pool sizes, pruning statistics, the winning combination, its
// certificate, and the exact checker's verdict.
//
// The report deliberately contains no timestamps, walltimes, or thread
// counts: identical seeds must yield byte-identical reports regardless of
// parallelism, so reports can be diffed across machines and CI runs (the
// determinism acceptance check does exactly that).
#pragma once

#include <string>

#include "synth/synthesize.hpp"

namespace nonmask::synth {

/// Render the report as a JSON object (no trailing newline).
std::string render_synthesis_report(const SynthesisResult& result);

/// Write render_synthesis_report(result) plus a trailing newline to
/// `path`. Returns false when the file cannot be opened.
bool write_synthesis_report(const SynthesisResult& result,
                            const std::string& path);

}  // namespace nonmask::synth
