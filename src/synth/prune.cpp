#include "synth/prune.hpp"

#include "checker/state_space.hpp"
#include "util/rng.hpp"

namespace nonmask::synth {

LocalPruneResult prune_local(const CandidateTriple& candidate,
                             const Action& action,
                             const Constraint& constraint,
                             const PreservesOptions& opts) {
  LocalPruneResult result;
  const PredicateFn T = candidate.T();

  // Establishment: from any T-state violating c, one execution establishes
  // c. (The guard is ¬c, so these are exactly the enabled T-states.)
  result.establishes = true;
  auto check_at = [&](const State& s) {
    if (!T(s) || constraint.fn(s)) return true;
    if (constraint.fn(action.apply(s))) return true;
    result.establishes = false;
    result.counterexample = s;
    return false;
  };
  if (opts.space != nullptr) {
    State scratch(candidate.program.num_variables());
    for (std::uint64_t code = 0; code < opts.space->size(); ++code) {
      opts.space->decode_into(code, scratch);
      if (!check_at(scratch)) break;
    }
  } else {
    Rng rng(opts.seed ^ 0xe57ab115ULL);
    for (std::uint64_t i = 0; i < opts.samples; ++i) {
      if (!check_at(candidate.program.random_state(rng))) break;
    }
  }
  if (!result.establishes) return result;

  // Fault-span preservation (the "while preserving T" half of Section 3).
  PreservesOptions po = opts;
  po.seed = opts.seed ^ 0x7a57ULL;  // independent sampling stream
  const auto pr = check_preserves(candidate.program, action, T, po);
  result.preserves_T = pr.preserves;
  if (!pr.preserves && pr.counterexample) {
    result.counterexample = pr.counterexample;
  }
  return result;
}

bool SeedBank::add(const State& s) {
  const std::uint64_t h = s.hash();
  auto& bucket = index_[h];
  for (std::size_t i : bucket) {
    if (seeds_[i] == s) return false;
  }
  bucket.push_back(seeds_.size());
  seeds_.push_back(s);
  return true;
}

std::size_t SeedBank::add_all(const std::vector<State>& states) {
  std::size_t added = 0;
  for (const State& s : states) {
    if (add(s)) ++added;
  }
  return added;
}

}  // namespace nonmask::synth
