// Certification cascade for synthesized designs.
//
// A design that survives the CEGIS loop is *correct* (the exact checker
// accepted it) but not yet *explained*. This module attaches the strongest
// applicable certificate from the paper's toolbox, trying in order:
//   1. Theorem 1 on the inferred constraint graph (out-tree);
//   2. Theorem 2 (self-looping graph + per-node linear orders);
//   3. Theorems 1-2 again on the Section 7 *restricted* graph (edges of
//      constraints that hold throughout the reachable ¬S region dropped);
//   4. Theorem 3 with an automatically suggested layering (Section 7);
//   5. the exhaustive convergence checker as a certificate of last resort
//      (sound but unexplained — no inductive argument, just enumeration).
// Whichever theorem report applies is then re-audited independently with
// audit_certificate, so the synthesizer never emits a design on the
// validators' say-so alone.
#pragma once

#include <string>
#include <vector>

#include "cgraph/certify.hpp"
#include "cgraph/constraint_graph.hpp"
#include "cgraph/theorems.hpp"
#include "core/candidate.hpp"

namespace nonmask::synth {

enum class CertMethod {
  kNone,                ///< nothing applied (design not certified)
  kTheorem1,            ///< out-tree constraint graph
  kTheorem2,            ///< self-looping graph + linear orders
  kTheorem1Restricted,  ///< Theorem 1 on the Section 7 restricted graph
  kTheorem2Restricted,  ///< Theorem 2 on the Section 7 restricted graph
  kTheorem3,            ///< layered (suggest_layers + validate_theorem3)
  kExhaustive,          ///< exact convergence checker only
};

const char* to_string(CertMethod method) noexcept;

struct CertificationResult {
  CertMethod method = CertMethod::kNone;
  /// The applying theorem report (kTheorem* methods only).
  TheoremReport report;
  /// The graph the report was validated against (restricted when the
  /// method says so) — what audit_certificate consumed.
  ConstraintGraph graph;
  /// Action indices whose edges the Section 7 restriction dropped
  /// (kTheorem*Restricted only).
  std::vector<std::size_t> restricted_dropped;
  /// Independent audit of the applying report; nonempty = forged or buggy
  /// certificate, and the cascade continues past it.
  std::vector<std::string> audit_problems;
  /// Human-readable trail of every attempt, e.g.
  /// "theorem 1: constraint graph is self-looping, not an out-tree".
  std::vector<std::string> attempts;

  /// True when a theorem certified the design and its certificate audited
  /// clean. kExhaustive returns false here — the caller holds the exact
  /// checker's verdict separately.
  bool theorem_certified() const noexcept {
    return method != CertMethod::kNone && method != CertMethod::kExhaustive &&
           audit_problems.empty();
  }
};

/// Run the cascade on `design`. Pass `opts.space` for exhaustive obligation
/// discharge (the synthesizer always does). The result's method is
/// kExhaustive when no theorem applies — the caller must then rely on its
/// own verify_tolerance run, which the CEGIS loop performs before
/// certification anyway.
CertificationResult certify_design(const Design& design,
                                   const ValidationOptions& opts = {});

}  // namespace nonmask::synth
