// Certificate triage under restricted fault models.
//
// The Theorem 1–3 certification cascade (certify_design.hpp) explains *why*
// a design converges — under the paper's transient fault model. A restricted
// model can void that explanation: a Byzantine process re-violates its
// constraints forever, and an unchangeable environment action may keep a
// constraint perpetually off. Triage re-audits each design against each
// fault regime and classifies the certificate's fate:
//
//   survives    — the guarantee holds as stated (theorem certificate under
//                 transient faults; containment under Byzantine; unfair
//                 convergence of the composed system under environment).
//   falls back  — a weaker but sound guarantee replaces it (exhaustive-only
//                 certificate; hill-climb evidence where the composed space
//                 is too large; convergence only under weak fairness).
//   refuted     — the regime breaks the guarantee outright (not tolerant;
//                 no containment at the worst placement; a fair loop that
//                 never re-establishes S).
//
// The result renders as the per-protocol triage table in RunReport JSON and
// as a DashboardTable card in the HTML dashboard.
#pragma once

#include <string>
#include <vector>

#include "checker/restricted.hpp"
#include "core/candidate.hpp"
#include "obs/dashboard.hpp"
#include "resilience/adversary.hpp"
#include "synth/certify_design.hpp"

namespace nonmask::synth {

enum class TriageVerdict { kSurvives, kFallsBack, kRefuted };

const char* to_string(TriageVerdict verdict) noexcept;

struct TriageEntry {
  std::string design;
  FaultRegime regime = FaultRegime::kTransient;
  TriageVerdict verdict = TriageVerdict::kRefuted;
  /// The certificate / replacement evidence, e.g. "theorem1" or
  /// "contained: radius 1 < horizon 4 at worst placement {4}".
  std::string detail;
};

struct TriageOptions {
  /// Byzantine set size handed to the placement search.
  std::size_t num_byzantine = 1;
  std::uint64_t seed = 1;
  /// Forwarded to find_worst_byzantine_placement / measure_containment.
  ByzantinePlacementOptions byzantine;
  /// Exhaustive certification when the design's space fits this budget.
  std::uint64_t state_budget = 1u << 20;
};

/// Triage one design: always a transient row; a Byzantine row when the
/// program has >= 2 processes; an environment row when it declares
/// kEnvironment actions. Deterministic per seed.
std::vector<TriageEntry> triage_design(const Design& design,
                                       const TriageOptions& opts = {});

/// Concatenation of triage_design over several designs.
std::vector<TriageEntry> triage_designs(const std::vector<Design>& designs,
                                        const TriageOptions& opts = {});

/// The triage table as a JSON array (RunReport section payload).
std::string triage_to_json(const std::vector<TriageEntry>& entries);

/// The triage table as a dashboard card.
obs::DashboardTable triage_dashboard_table(
    const std::vector<TriageEntry>& entries);

}  // namespace nonmask::synth
