#include "synth/report.hpp"

#include <fstream>

#include "obs/json.hpp"

namespace nonmask::synth {

std::string render_synthesis_report(const SynthesisResult& result) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("success");
  w.value(result.success);
  if (!result.success) {
    w.key("failure");
    w.value(result.failure);
  } else {
    w.key("design");
    w.value(result.design.name);
  }

  w.key("pools");
  w.begin_array();
  for (const PoolStats& p : result.pools) {
    w.begin_object();
    w.key("constraint");
    w.value(p.constraint);
    w.key("enumerated");
    w.value(static_cast<std::uint64_t>(p.enumerated));
    w.key("kept");
    w.value(static_cast<std::uint64_t>(p.kept));
    w.end_object();
  }
  w.end_array();
  w.key("total_combinations");
  w.value(result.total_combinations);

  w.key("stats");
  w.begin_object();
  w.key("enumerated_actions");
  w.value(result.stats.enumerated_actions);
  w.key("local_pruned_actions");
  w.value(result.stats.local_pruned_actions);
  w.key("evaluated");
  w.value(result.stats.evaluated);
  w.key("pruned_by_seed");
  w.value(result.stats.pruned_by_seed);
  w.key("falsified");
  w.value(result.stats.falsified);
  w.key("exact_checks");
  w.value(result.stats.exact_checks);
  w.key("exact_failures");
  w.value(result.stats.exact_failures);
  w.key("seeds_collected");
  w.value(result.stats.seeds_collected);
  w.key("batches");
  w.value(result.stats.batches);
  w.end_object();

  if (result.success) {
    w.key("winner");
    w.begin_object();
    w.key("index");
    w.value(result.winner_index);
    w.key("choice");
    w.begin_array();
    for (std::size_t c : result.winner_choice) {
      w.value(static_cast<std::uint64_t>(c));
    }
    w.end_array();
    w.key("actions");
    w.begin_array();
    for (const std::string& d : result.winner_descriptions) w.value(d);
    w.end_array();
    w.end_object();

    const CertificationResult& cert = result.certification;
    w.key("certificate");
    w.begin_object();
    w.key("method");
    w.value(to_string(cert.method));
    w.key("theorem_certified");
    w.value(cert.theorem_certified());
    if (!cert.report.theorem.empty()) {
      w.key("theorem");
      w.value(cert.report.theorem);
    }
    if (!cert.report.ranks.empty()) {
      w.key("ranks");
      w.begin_array();
      for (int r : cert.report.ranks) w.value(r);
      w.end_array();
    }
    if (!cert.report.layers.empty()) {
      w.key("layers");
      w.begin_array();
      for (const auto& layer : cert.report.layers) {
        w.begin_array();
        for (std::size_t a : layer) w.value(static_cast<std::uint64_t>(a));
        w.end_array();
      }
      w.end_array();
    }
    if (!cert.restricted_dropped.empty()) {
      w.key("restricted_dropped");
      w.begin_array();
      for (std::size_t a : cert.restricted_dropped) {
        w.value(static_cast<std::uint64_t>(a));
      }
      w.end_array();
    }
    w.key("attempts");
    w.begin_array();
    for (const std::string& a : cert.attempts) w.value(a);
    w.end_array();
    if (!cert.audit_problems.empty()) {
      w.key("audit_problems");
      w.begin_array();
      for (const std::string& p : cert.audit_problems) w.value(p);
      w.end_array();
    }
    w.end_object();

    w.key("exact");
    w.begin_object();
    w.key("S_closed");
    w.value(result.exact.S_closed);
    w.key("T_closed");
    w.value(result.exact.T_closed);
    w.key("verdict");
    w.value(to_string(result.exact.convergence.verdict));
    w.key("region_states");
    w.value(result.exact.convergence.region_states);
    w.key("max_steps_to_S");
    w.value(result.exact.convergence.max_steps_to_S);
    w.end_object();
  }
  w.end_object();
  return out;
}

bool write_synthesis_report(const SynthesisResult& result,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_synthesis_report(result) << "\n";
  return static_cast<bool>(out);
}

}  // namespace nonmask::synth
