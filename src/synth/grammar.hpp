// Candidate grammar for convergence-action synthesis.
//
// Section 3's recipe fixes the *shape* of a convergence action for a
// constraint c: the guard is ¬c and the statement re-establishes c while
// preserving T. The synthesizer searches the statement space. This module
// enumerates that space deterministically:
//   - the writable variables are the constraint's support, grouped into
//     *write groups* by owning process (a distributed action may only
//     write one process's variables; shared variables form singleton
//     groups);
//   - each written variable is assigned one of a small set of expression
//     templates over the support (copy another variable, increment /
//     decrement, minimum excludant, a small constant), all of which stay
//     within the target's domain by construction;
//   - candidates are ordered so that fewer-write, simpler statements come
//     first — ties broken by the fixed template order — giving a stable,
//     seed-independent enumeration the CEGIS loop indexes into.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"

namespace nonmask::synth {

/// Expression templates a candidate assignment can use. All of them produce
/// in-domain values for the target variable.
enum class ExprKind {
  kCopy,   ///< target := source, clamped into target's domain (enumerated
           ///  only when the two domains overlap)
  kDec,    ///< target := max(lo, target - 1)
  kInc,    ///< target := min(hi, target + 1)
  kMex,    ///< target := least domain value differing from every other
           ///  support variable's value (unchanged when none exists)
  kConst,  ///< target := k, for small domains
};

const char* to_string(ExprKind kind) noexcept;

/// One assignment template: target := expr(support).
struct AssignTemplate {
  VarId target;
  ExprKind kind = ExprKind::kConst;
  VarId source;          ///< kCopy only
  Value constant = 0;    ///< kConst only
  /// kMex only: the variables whose values the target must avoid.
  std::vector<VarId> mex_over;
};

/// A candidate convergence action for one constraint: guard ¬c plus a
/// simultaneous multi-assignment over one write group. Plain data until
/// build() turns it into an executable Action.
struct ActionCandidate {
  std::size_t constraint_index = 0;
  /// Distinct targets, all within one write group; evaluated
  /// simultaneously (every right-hand side reads the pre-state).
  std::vector<AssignTemplate> assigns;

  /// Human-readable rendering, e.g. "y := x, z := max(lo, z-1)".
  std::string describe(const Program& program) const;

  /// Materialize the executable action: guard ¬c, statement = simultaneous
  /// assignment, reads = the constraint's support, writes = the targets,
  /// constraint_id = constraint_index.
  Action build(const Program& program, const Constraint& constraint) const;
};

struct GrammarOptions {
  /// Enumerate kConst templates only for domains of at most this size
  /// (constants explode the space on wide domains and are rarely needed).
  std::uint64_t const_domain_cap = 4;
  /// Cap on candidates enumerated per constraint (applied after ordering,
  /// so the simplest candidates always survive).
  std::size_t max_candidates_per_constraint = 512;
  /// When nonempty, only these variables may be assigned. Use to model
  /// which processes are allowed to correct a constraint (e.g. "only the
  /// raising process may write x").
  std::vector<VarId> writable;
};

/// Enumerate candidate convergence actions for constraint `cid` of
/// `invariant`, in the deterministic order described above. The result may
/// be empty (no support variable is writable).
std::vector<ActionCandidate> enumerate_candidates(
    const Program& program, const Invariant& invariant, std::size_t cid,
    const GrammarOptions& opts = {});

}  // namespace nonmask::synth
