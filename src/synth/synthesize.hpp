// Counterexample-guided synthesis of convergence actions (the tentpole of
// the synth subsystem).
//
// Input: a candidate triple (p, S, T) — closure actions plus the
// constraint decomposition of S (Section 3). Output: a certified Design
// whose synthesized convergence actions make the program T-tolerant for S.
//
// The search runs CEGIS over the grammar's per-constraint candidate pools:
//   1. *local pruning* discards actions that fail Section 3's per-action
//      obligations (establish the constraint, preserve T) — checked
//      exhaustively against the candidate program's state space;
//   2. surviving actions form one pool per constraint; a *combination*
//      picks one action per pool (mixed-radix index, constraint 0 varies
//      fastest), and combinations are evaluated in batches on the thread
//      pool;
//   3. each evaluation replays the *seed bank* — violating states from
//      every counterexample found so far — through the bounded probe, then
//      runs cheap random-walk falsification; only survivors reach the
//      exhaustive checker, whose counterexamples seed the bank in turn;
//   4. the first (lowest-index) combination the exact checker accepts is
//      the winner, which then passes through the certification cascade
//      (synth/certify_design.hpp) and an independent certificate audit.
//
// Determinism: the seed bank is snapshotted at each batch boundary, the
// parallel phase reads only the snapshot, and all bank mutations and
// exact-checker calls happen serially in combination order — so the
// winner, the statistics, and the JSON report are byte-identical for any
// thread count given the same seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/candidate.hpp"
#include "store/config.hpp"
#include "synth/certify_design.hpp"
#include "synth/grammar.hpp"

namespace nonmask::synth {

struct SynthesisOptions {
  std::uint64_t seed = 0x5e17ULL;
  /// Cap on combination evaluations before giving up.
  std::uint64_t max_candidates = 50'000;
  /// Combinations evaluated per parallel batch (also the seed-bank
  /// snapshot granularity).
  std::size_t batch = 64;
  /// Worker threads; 0 = default_threads(). Does not affect results.
  unsigned threads = 0;
  GrammarOptions grammar;
  /// Random-walk falsification effort per surviving combination.
  std::uint64_t falsify_walks = 24;
  std::uint64_t falsify_walk_length = 256;
  /// State cap for each seed-replay probe.
  std::uint64_t probe_max_states = 4'096;
  /// Budget for the exact oracle's state space; synthesis requires the
  /// candidate program to fit (the exact checker is the final judge).
  std::uint64_t state_budget = StateSpace::kDefaultBudget;
  /// Backend for the exact oracle (legacy dense arrays or the compact
  /// store); results are byte-identical, the switch only changes memory
  /// and scale. Defaults honor NONMASK_STORE_BACKEND / NONMASK_STATE_BUDGET
  /// when constructed via StoreConfig::from_env() by the callers.
  store::StoreConfig store;
  /// Name given to the synthesized design ("<program>-synth" when empty).
  std::string design_name;
};

struct SynthesisStats {
  std::uint64_t enumerated_actions = 0;   ///< grammar output, all pools
  std::uint64_t local_pruned_actions = 0; ///< rejected by local obligations
  std::uint64_t evaluated = 0;            ///< combination evaluations
  std::uint64_t pruned_by_seed = 0;       ///< rejected by seed replay
  std::uint64_t falsified = 0;            ///< rejected by random walks
  std::uint64_t exact_checks = 0;         ///< exhaustive checker runs
  std::uint64_t exact_failures = 0;
  std::uint64_t seeds_collected = 0;      ///< distinct seed states banked
  std::uint64_t batches = 0;
};

/// Per-constraint pool accounting for the report.
struct PoolStats {
  std::string constraint;
  std::size_t enumerated = 0;  ///< grammar candidates
  std::size_t kept = 0;        ///< survivors of local pruning
};

struct SynthesisResult {
  bool success = false;
  std::string failure;  ///< human-readable, when !success

  /// The synthesized design (valid when success).
  Design design;
  /// Winning combination: index into each constraint's pool, plus its
  /// mixed-radix combination index and the chosen candidates.
  std::vector<std::size_t> winner_choice;
  std::uint64_t winner_index = 0;
  std::vector<ActionCandidate> winner_actions;
  /// Synthesized action renderings, e.g. "synth[eq0]: x.1 := x.0".
  std::vector<std::string> winner_descriptions;

  std::vector<PoolStats> pools;
  /// Size of the combination space (saturates at uint64 max).
  std::uint64_t total_combinations = 0;
  SynthesisStats stats;

  /// Certificate for the winner (valid when success).
  CertificationResult certification;
  /// The exact checker's verdict on the winner (valid when success).
  ToleranceReport exact;
};

/// Run the synthesizer. The candidate program must contain no convergence
/// actions (closure actions, and optionally fault actions, only).
SynthesisResult synthesize(const CandidateTriple& candidate,
                           const SynthesisOptions& opts = {});

}  // namespace nonmask::synth
