#include "synth/grammar.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <utility>

namespace nonmask::synth {

namespace {

/// Per-variable statement compiled from an AssignTemplate: everything the
/// statement lambda needs, with the target's domain bounds baked in.
struct CompiledAssign {
  VarId target;
  ExprKind kind;
  VarId source;
  Value constant;
  Value lo;
  Value hi;
  std::vector<VarId> mex_over;
};

/// Simultaneous assignment: all right-hand sides read the pre-state.
constexpr std::size_t kMaxAssigns = 16;

Value evaluate(const CompiledAssign& a, const State& s) {
  switch (a.kind) {
    case ExprKind::kCopy: {
      const Value v = s.get(a.source);
      return v < a.lo ? a.lo : (v > a.hi ? a.hi : v);
    }
    case ExprKind::kDec: {
      const Value v = s.get(a.target);
      return v > a.lo ? v - 1 : a.lo;
    }
    case ExprKind::kInc: {
      const Value v = s.get(a.target);
      return v < a.hi ? v + 1 : a.hi;
    }
    case ExprKind::kMex: {
      for (Value v = a.lo; v <= a.hi; ++v) {
        bool used = false;
        for (VarId u : a.mex_over) {
          if (s.get(u) == v) {
            used = true;
            break;
          }
        }
        if (!used) return v;
      }
      return s.get(a.target);  // every domain value is taken: keep
    }
    case ExprKind::kConst:
      return a.constant;
  }
  return a.constant;  // unreachable
}

}  // namespace

const char* to_string(ExprKind kind) noexcept {
  switch (kind) {
    case ExprKind::kCopy: return "copy";
    case ExprKind::kDec: return "dec";
    case ExprKind::kInc: return "inc";
    case ExprKind::kMex: return "mex";
    case ExprKind::kConst: return "const";
  }
  return "?";
}

std::string ActionCandidate::describe(const Program& program) const {
  std::string out;
  for (std::size_t i = 0; i < assigns.size(); ++i) {
    const AssignTemplate& a = assigns[i];
    if (i > 0) out += ", ";
    out += program.variable(a.target).name;
    out += " := ";
    switch (a.kind) {
      case ExprKind::kCopy:
        out += program.variable(a.source).name;
        break;
      case ExprKind::kDec:
        out += "dec(" + program.variable(a.target).name + ")";
        break;
      case ExprKind::kInc:
        out += "inc(" + program.variable(a.target).name + ")";
        break;
      case ExprKind::kMex: {
        out += "mex(";
        for (std::size_t j = 0; j < a.mex_over.size(); ++j) {
          if (j > 0) out += ", ";
          out += program.variable(a.mex_over[j]).name;
        }
        out += ")";
        break;
      }
      case ExprKind::kConst:
        out += std::to_string(a.constant);
        break;
    }
  }
  return out;
}

Action ActionCandidate::build(const Program& program,
                              const Constraint& constraint) const {
  if (assigns.empty() || assigns.size() > kMaxAssigns) {
    throw std::invalid_argument("ActionCandidate: assignment count out of range");
  }
  std::vector<CompiledAssign> compiled;
  compiled.reserve(assigns.size());
  std::vector<VarId> writes;
  for (const AssignTemplate& a : assigns) {
    const VariableSpec& spec = program.variable(a.target);
    compiled.push_back(
        {a.target, a.kind, a.source, a.constant, spec.lo, spec.hi, a.mex_over});
    writes.push_back(a.target);
  }
  std::sort(writes.begin(), writes.end());

  const PredicateFn c = constraint.fn;
  GuardFn guard = [c](const State& s) { return !c(s); };
  StatementFn statement = [compiled](State& s) {
    std::array<Value, kMaxAssigns> next{};
    for (std::size_t i = 0; i < compiled.size(); ++i) {
      next[i] = evaluate(compiled[i], s);
    }
    for (std::size_t i = 0; i < compiled.size(); ++i) {
      s.set(compiled[i].target, next[i]);
    }
  };

  // A distributed action belongs to a process iff every written variable
  // does.
  int process = program.variable(assigns.front().target).process;
  for (const AssignTemplate& a : assigns) {
    if (program.variable(a.target).process != process) {
      process = VariableSpec::kNoProcess;
      break;
    }
  }

  Action action("synth[" + constraint.name + "]: " + describe(program),
                ActionKind::kConvergence, std::move(guard),
                std::move(statement), constraint.support, std::move(writes),
                process);
  action.set_constraint_id(static_cast<int>(constraint_index));
  return action;
}

namespace {

/// One selectable option for a group variable; index 0 is always "keep".
struct VarOptions {
  VarId var;
  std::vector<AssignTemplate> options;  ///< excluding "keep"
};

std::vector<AssignTemplate> options_for(const Program& program, VarId target,
                                        const std::vector<VarId>& support,
                                        const GrammarOptions& opts) {
  std::vector<AssignTemplate> out;
  const VariableSpec& spec = program.variable(target);

  // Copy: sources in support order whose domain overlaps the target's
  // (values are clamped into the target's domain at execution).
  for (VarId src : support) {
    if (src == target) continue;
    const VariableSpec& sspec = program.variable(src);
    if (sspec.hi < spec.lo || sspec.lo > spec.hi) continue;
    AssignTemplate a;
    a.target = target;
    a.kind = ExprKind::kCopy;
    a.source = src;
    out.push_back(std::move(a));
  }

  if (spec.domain_size() >= 2) {
    AssignTemplate dec;
    dec.target = target;
    dec.kind = ExprKind::kDec;
    out.push_back(std::move(dec));

    AssignTemplate inc;
    inc.target = target;
    inc.kind = ExprKind::kInc;
    out.push_back(std::move(inc));

    std::vector<VarId> others;
    for (VarId v : support) {
      if (v != target) others.push_back(v);
    }
    if (!others.empty()) {
      AssignTemplate mex;
      mex.target = target;
      mex.kind = ExprKind::kMex;
      mex.mex_over = std::move(others);
      out.push_back(std::move(mex));
    }
  }

  if (spec.domain_size() <= opts.const_domain_cap) {
    for (Value k = spec.lo; k <= spec.hi; ++k) {
      AssignTemplate c;
      c.target = target;
      c.kind = ExprKind::kConst;
      c.constant = k;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace

std::vector<ActionCandidate> enumerate_candidates(
    const Program& program, const Invariant& invariant, std::size_t cid,
    const GrammarOptions& opts) {
  const Constraint& constraint = invariant.at(cid);

  // Writable targets: the constraint's support, optionally filtered.
  std::vector<VarId> targets;
  for (VarId v : constraint.support) {
    if (!opts.writable.empty() &&
        std::find(opts.writable.begin(), opts.writable.end(), v) ==
            opts.writable.end()) {
      continue;
    }
    targets.push_back(v);
  }

  // Write groups: variables owned by the same process form one group (a
  // process may correct all of its own variables atomically); shared
  // variables are singleton groups.
  std::vector<std::vector<VarId>> groups;
  for (VarId v : targets) {
    const int proc = program.variable(v).process;
    bool placed = false;
    if (proc != VariableSpec::kNoProcess) {
      for (auto& g : groups) {
        if (program.variable(g.front()).process == proc) {
          g.push_back(v);
          placed = true;
          break;
        }
      }
    }
    if (!placed) groups.push_back({v});
  }
  // Deterministic group order: descending process, then descending maximum
  // variable index — later processes (typically the "downstream" side of a
  // constraint) get to correct first.
  auto group_key = [&](const std::vector<VarId>& g) {
    int proc = VariableSpec::kNoProcess;
    std::uint32_t max_index = 0;
    for (VarId v : g) {
      proc = std::max(proc, program.variable(v).process);
      max_index = std::max(max_index, v.index());
    }
    return std::make_pair(proc, max_index);
  };
  std::stable_sort(groups.begin(), groups.end(),
                   [&](const auto& a, const auto& b) {
                     return group_key(a) > group_key(b);
                   });

  std::vector<ActionCandidate> candidates;
  constexpr std::size_t kGroupComboCap = 65'536;
  for (const auto& group : groups) {
    std::vector<VarOptions> per_var;
    std::size_t total = 1;
    for (VarId v : group) {
      VarOptions vo;
      vo.var = v;
      vo.options = options_for(program, v, constraint.support, opts);
      total *= vo.options.size() + 1;  // +1 for "keep"
      per_var.push_back(std::move(vo));
      if (total > kGroupComboCap) {
        total = kGroupComboCap;
        break;
      }
    }

    // Mixed-radix enumeration: first group variable varies fastest; digit 0
    // means "keep". Collect (writes, rank) and stable-sort so that combos
    // writing fewer variables come first.
    std::vector<ActionCandidate> group_candidates;
    std::vector<std::size_t> digits(per_var.size(), 0);
    for (std::size_t rank = 0; rank + 1 < kGroupComboCap; ++rank) {
      // Advance (skip the all-keep combo at rank 0 by advancing first).
      std::size_t i = 0;
      for (; i < digits.size(); ++i) {
        if (++digits[i] <= per_var[i].options.size()) break;
        digits[i] = 0;
      }
      if (i == digits.size()) break;  // wrapped: enumeration complete

      ActionCandidate cand;
      cand.constraint_index = cid;
      for (std::size_t j = 0; j < digits.size(); ++j) {
        if (digits[j] == 0) continue;
        cand.assigns.push_back(per_var[j].options[digits[j] - 1]);
      }
      group_candidates.push_back(std::move(cand));
    }
    std::stable_sort(group_candidates.begin(), group_candidates.end(),
                     [](const ActionCandidate& a, const ActionCandidate& b) {
                       return a.assigns.size() < b.assigns.size();
                     });
    for (auto& c : group_candidates) candidates.push_back(std::move(c));
  }

  if (candidates.size() > opts.max_candidates_per_constraint) {
    candidates.resize(opts.max_candidates_per_constraint);
  }
  return candidates;
}

}  // namespace nonmask::synth
