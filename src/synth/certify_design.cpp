#include "synth/certify_design.hpp"

#include <utility>

#include "cgraph/refine.hpp"

namespace nonmask::synth {

const char* to_string(CertMethod method) noexcept {
  switch (method) {
    case CertMethod::kNone: return "none";
    case CertMethod::kTheorem1: return "theorem 1";
    case CertMethod::kTheorem2: return "theorem 2";
    case CertMethod::kTheorem1Restricted: return "theorem 1 (restricted graph)";
    case CertMethod::kTheorem2Restricted: return "theorem 2 (restricted graph)";
    case CertMethod::kTheorem3: return "theorem 3";
    case CertMethod::kExhaustive: return "exhaustive checker";
  }
  return "?";
}

namespace {

/// Adopt `report` as the certificate if it applies and its audit is clean;
/// otherwise record the failure in the attempt trail and keep cascading.
bool adopt(CertificationResult& result, CertMethod method,
           TheoremReport report, const ConstraintGraph& graph,
           const Design& design, const ValidationOptions& opts,
           const std::string& label) {
  if (!report.applies) {
    result.attempts.push_back(
        label + ": " +
        (report.failure.empty() ? "does not apply" : report.failure));
    return false;
  }
  auto problems = audit_certificate(design, graph, report, opts);
  if (!problems.empty()) {
    // A validator said yes but its certificate does not re-verify: distrust
    // it and continue the cascade (this is the audit earning its keep).
    result.attempts.push_back(label + ": applies but audit failed: " +
                              problems.front());
    return false;
  }
  result.method = method;
  result.report = std::move(report);
  result.graph = graph;
  result.attempts.push_back(label + ": certified");
  return true;
}

}  // namespace

CertificationResult certify_design(const Design& design,
                                   const ValidationOptions& opts) {
  CertificationResult result;
  const auto cg = infer_constraint_graph(design.program);
  if (!cg.ok) {
    result.attempts.push_back("constraint graph: " + cg.error);
    result.method = CertMethod::kExhaustive;
    return result;
  }

  if (adopt(result, CertMethod::kTheorem1,
            validate_theorem1(design, cg.graph, opts), cg.graph, design, opts,
            "theorem 1")) {
    return result;
  }
  if (adopt(result, CertMethod::kTheorem2,
            validate_theorem2(design, cg.graph, opts), cg.graph, design, opts,
            "theorem 2")) {
    return result;
  }

  // Section 7 restriction: during convergence the system sits in the
  // reachable ¬S region, so edges of constraints that hold throughout ¬S
  // (within T) never fire and can be dropped before re-classifying.
  const auto restricted =
      restrict_constraint_graph(design, cg.graph, p_not(design.S()), opts);
  if (restricted.dropped.empty()) {
    result.attempts.push_back("restriction: no edges dropped");
  } else {
    if (adopt(result, CertMethod::kTheorem1Restricted,
              validate_theorem1(design, restricted.graph, opts),
              restricted.graph, design, opts, "theorem 1 on restricted graph")) {
      result.restricted_dropped = restricted.dropped;
      return result;
    }
    if (adopt(result, CertMethod::kTheorem2Restricted,
              validate_theorem2(design, restricted.graph, opts),
              restricted.graph, design, opts, "theorem 2 on restricted graph")) {
      result.restricted_dropped = restricted.dropped;
      return result;
    }
  }

  // Theorem 3 with an automatically suggested layering.
  if (const auto layers = suggest_layers(design, opts)) {
    if (adopt(result, CertMethod::kTheorem3,
              validate_theorem3(design, *layers, opts), cg.graph, design, opts,
              "theorem 3 (suggested layers)")) {
      return result;
    }
  } else {
    result.attempts.push_back(
        "layering: no hierarchy found by suggest_layers");
  }

  result.method = CertMethod::kExhaustive;
  result.attempts.push_back(
      "no theorem applies; relying on the exhaustive convergence certificate");
  return result;
}

}  // namespace nonmask::synth
