#include "synth/synthesize.hpp"

#include <algorithm>
#include <utility>

#include "checker/falsify.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"
#include "store/facade.hpp"
#include "synth/prune.hpp"

namespace nonmask::synth {

namespace {

/// Per-combination verdict from the parallel phase. kSurvived combinations
/// proceed to the serial phase (late seed screen + exact check).
enum class EvalStatus { kSeedPruned, kFalsified, kSurvived };

struct EvalOutcome {
  EvalStatus status = EvalStatus::kSurvived;
  /// Violating states harvested from the falsifier (kFalsified only).
  std::vector<State> states;
};

/// Decode a mixed-radix combination index into one pool choice per
/// constraint (constraint 0 varies fastest).
std::vector<std::size_t> decode_combination(
    std::uint64_t index, const std::vector<std::size_t>& pool_sizes) {
  std::vector<std::size_t> choice(pool_sizes.size(), 0);
  for (std::size_t c = 0; c < pool_sizes.size(); ++c) {
    choice[c] = static_cast<std::size_t>(index % pool_sizes[c]);
    index /= pool_sizes[c];
  }
  return choice;
}

/// Distinct, reproducible falsifier seed per combination.
std::uint64_t falsify_seed(std::uint64_t base, std::uint64_t index) {
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void harvest(const FalsifyResult& r, std::vector<State>& out) {
  if (r.cycle) out.insert(out.end(), r.cycle->begin(), r.cycle->end());
  if (r.deadlock) out.push_back(*r.deadlock);
}

}  // namespace

SynthesisResult synthesize(const CandidateTriple& candidate,
                           const SynthesisOptions& opts) {
  obs::Span run_span("synth.run");
  SynthesisResult result;

  if (candidate.invariant.size() == 0) {
    result.failure = "candidate has no constraints to establish";
    return result;
  }
  if (!candidate.program.actions_of_kind(ActionKind::kConvergence).empty()) {
    result.failure = "candidate program already contains convergence actions";
    return result;
  }
  if (!fits_in_budget(candidate.program, opts.state_budget)) {
    result.failure =
        "candidate state space exceeds the budget; the exact oracle is "
        "unavailable";
    return result;
  }
  const StateSpace base_space(candidate.program, opts.state_budget);

  // --- Phase 1: enumerate and locally prune per-constraint pools. --------
  std::vector<std::vector<ActionCandidate>> pools;
  std::vector<std::vector<Action>> pool_actions;  // prebuilt, pool-parallel
  {
    obs::Span span("synth.enumerate");
    PreservesOptions po;
    po.space = &base_space;
    po.seed = opts.seed;
    for (std::size_t cid = 0; cid < candidate.invariant.size(); ++cid) {
      const Constraint& c = candidate.invariant.at(cid);
      auto enumerated = enumerate_candidates(candidate.program,
                                             candidate.invariant, cid,
                                             opts.grammar);
      result.stats.enumerated_actions += enumerated.size();
      std::vector<ActionCandidate> kept;
      std::vector<Action> kept_actions;
      for (auto& cand : enumerated) {
        Action action = cand.build(candidate.program, c);
        if (prune_local(candidate, action, c, po).ok()) {
          kept.push_back(std::move(cand));
          kept_actions.push_back(std::move(action));
        } else {
          ++result.stats.local_pruned_actions;
        }
      }
      result.pools.push_back({c.name, enumerated.size(), kept.size()});
      if (kept.empty()) {
        result.failure = "no candidate action for constraint '" + c.name +
                         "' survives local pruning";
        return result;
      }
      pools.push_back(std::move(kept));
      pool_actions.push_back(std::move(kept_actions));
    }
  }

  std::vector<std::size_t> pool_sizes;
  result.total_combinations = 1;
  for (const auto& pool : pools) {
    pool_sizes.push_back(pool.size());
    if (result.total_combinations >
        UINT64_MAX / static_cast<std::uint64_t>(pool.size())) {
      result.total_combinations = UINT64_MAX;  // saturate
    } else {
      result.total_combinations *= static_cast<std::uint64_t>(pool.size());
    }
  }
  const std::uint64_t limit =
      std::min<std::uint64_t>(result.total_combinations, opts.max_candidates);

  auto build_design = [&](std::uint64_t index,
                          std::vector<std::size_t>* choice_out) {
    const auto choice = decode_combination(index, pool_sizes);
    std::vector<Action> actions;
    actions.reserve(choice.size());
    for (std::size_t c = 0; c < choice.size(); ++c) {
      actions.push_back(pool_actions[c][choice[c]]);
    }
    if (choice_out != nullptr) *choice_out = choice;
    return candidate.augmented(std::move(actions));
  };

  // --- Phase 2: batched CEGIS over the combination space. ----------------
  ThreadPool workers(opts.threads);
  obs::ProgressMeter meter("synth", limit);
  SeedBank bank;
  const ProbeOptions probe{opts.probe_max_states};
  bool found = false;

  for (std::uint64_t batch_start = 0; batch_start < limit && !found;
       batch_start += opts.batch) {
    const std::uint64_t batch_end =
        std::min<std::uint64_t>(batch_start + std::max<std::size_t>(
                                                  opts.batch, 1),
                                limit);
    const std::size_t n = static_cast<std::size_t>(batch_end - batch_start);
    ++result.stats.batches;
    obs::Span batch_span("synth.batch");

    // Parallel phase: every combination sees the same seed-bank snapshot
    // (the bank is not mutated until the serial phase below).
    const std::size_t snapshot = bank.size();
    std::vector<EvalOutcome> outcomes(n);
    parallel_for_each(workers, n, [&](std::size_t i, unsigned) {
      const std::uint64_t index = batch_start + i;
      const Design design = build_design(index, nullptr);
      EvalOutcome& out = outcomes[i];
      for (std::size_t si = 0; si < snapshot; ++si) {
        if (probe_violation_from(design, bank.seeds()[si], probe).violated) {
          out.status = EvalStatus::kSeedPruned;
          return;
        }
      }
      FalsifyOptions fo;
      fo.walks = opts.falsify_walks;
      fo.max_walk_length = opts.falsify_walk_length;
      fo.seed = falsify_seed(opts.seed, index);
      const FalsifyResult fr = falsify_convergence(design, fo);
      if (fr.violated) {
        out.status = EvalStatus::kFalsified;
        harvest(fr, out.states);
        return;
      }
      out.status = EvalStatus::kSurvived;
    });

    // Serial phase, in combination order: merge counterexamples, re-screen
    // survivors against seeds banked since the snapshot, exact-check.
    for (std::size_t i = 0; i < n && !found; ++i) {
      const std::uint64_t index = batch_start + i;
      ++result.stats.evaluated;
      EvalOutcome& out = outcomes[i];
      if (out.status == EvalStatus::kSeedPruned) {
        ++result.stats.pruned_by_seed;
        continue;
      }
      if (out.status == EvalStatus::kFalsified) {
        ++result.stats.falsified;
        bank.add_all(out.states);
        continue;
      }

      std::vector<std::size_t> choice;
      const Design design = build_design(index, &choice);
      bool pruned_late = false;
      for (std::size_t si = snapshot; si < bank.size(); ++si) {
        if (probe_violation_from(design, bank.seeds()[si], probe).violated) {
          pruned_late = true;
          break;
        }
      }
      if (pruned_late) {
        ++result.stats.pruned_by_seed;
        continue;
      }

      ++result.stats.exact_checks;
      const StateSpace space(design.program, opts.state_budget);
      const ToleranceReport report =
          store::verify_tolerance_via(opts.store, space, design);
      if (!report.tolerant()) {
        ++result.stats.exact_failures;
        if (report.convergence.cycle) bank.add_all(*report.convergence.cycle);
        if (report.convergence.deadlock) bank.add(*report.convergence.deadlock);
        continue;
      }

      found = true;
      result.success = true;
      result.design = design;
      result.design.name = opts.design_name.empty()
                               ? candidate.program.name() + "-synth"
                               : opts.design_name;
      result.winner_index = index;
      result.winner_choice = choice;
      for (std::size_t c = 0; c < choice.size(); ++c) {
        result.winner_actions.push_back(pools[c][choice[c]]);
        result.winner_descriptions.push_back(
            pool_actions[c][choice[c]].name());
      }
      result.exact = report;
    }
    meter.add(n);
    meter.aux("seeds", bank.size());
  }
  result.stats.seeds_collected = bank.size();

  if (!result.success) {
    result.failure = "no tolerant combination among the " +
                     std::to_string(result.stats.evaluated) + " evaluated (" +
                     std::to_string(result.total_combinations) + " total)";
    return result;
  }

  // --- Phase 3: certification cascade + independent audit. ---------------
  {
    obs::Span span("synth.certify");
    const StateSpace space(result.design.program, opts.state_budget);
    ValidationOptions vo;
    vo.space = &space;
    vo.seed = opts.seed;
    result.certification = certify_design(result.design, vo);
  }

  if (obs::Metrics::enabled()) {
    auto& reg = obs::Registry::instance();
    reg.counter("synth.evaluated").add(result.stats.evaluated);
    reg.counter("synth.pruned_by_seed").add(result.stats.pruned_by_seed);
    reg.counter("synth.falsified").add(result.stats.falsified);
    reg.counter("synth.exact_checks").add(result.stats.exact_checks);
    reg.counter("synth.seeds").add(result.stats.seeds_collected);
  }
  return result;
}

}  // namespace nonmask::synth
