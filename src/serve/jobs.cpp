#include "serve/jobs.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/dashboard.hpp"
#include "obs/telemetry.hpp"
#include "spec/compile.hpp"
#include "spec/job.hpp"
#include "spec/spec.hpp"
#include "util/json.hpp"

namespace nonmask::serve {

namespace {

std::uint64_t unix_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// tmp + rename: a crash leaves the old file or the new one, never a torn
/// write.
void write_file_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp);
    out << content;
    out.flush();
    if (!out) throw std::runtime_error("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("rename " + tmp + " -> " + path + " failed: " +
                             std::strerror(errno));
  }
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

JobManager::JobManager(ServeOptions opts) : opts_(std::move(opts)) {
  if (opts_.state_dir.empty()) {
    throw std::invalid_argument("JobManager: state_dir is required");
  }
  std::filesystem::create_directories(opts_.state_dir);
  if (opts_.workers == 0) opts_.workers = 1;
  workers_.reserve(opts_.workers);
  for (unsigned i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobManager::~JobManager() { drain(); }

std::string JobManager::path(const std::string& id,
                             const char* suffix) const {
  return opts_.state_dir + "/" + id + suffix;
}

std::string JobManager::next_id_locked() {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "job-%06llu",
                static_cast<unsigned long long>(next_seq_++));
  return buf;
}

JobManager::SubmitResult JobManager::submit(const std::string& spec_text) {
  SubmitResult result;

  // Validate before admitting: parse + compile, so a bad document is a 422
  // at submit time, not a failed job later.
  std::string design_name, job_type;
  try {
    const spec::CompiledSpec compiled = spec::compile_spec_text(spec_text);
    design_name = compiled.design.name;
    job_type = compiled.has_job ? compiled.job.type : "check";
  } catch (const std::exception& e) {
    result.status = 422;
    result.error = e.what();
    return result;
  }

  std::string id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      result.status = 503;
      result.error = "server is draining";
      return result;
    }
    if (queue_.size() >= opts_.max_queue) {
      result.status = 429;
      result.error = "job queue is full (" + std::to_string(opts_.max_queue) +
                     " queued)";
      return result;
    }
    id = next_id_locked();
  }

  // Persist the spec before acknowledging: a crash after the 201 must
  // still find the job on disk for recover().
  write_file_atomic(path(id, ".spec.json"), spec_text);

  {
    std::lock_guard<std::mutex> lock(mu_);
    // The admission checks above ran in an earlier critical section; the
    // file write between them dropped the lock, so drain() may have begun
    // (workers gone — a 201 would acknowledge a job nobody will run) or
    // concurrent submits may have filled the queue. Re-check both and
    // unpersist the spec on rejection so recover() never resurrects it.
    if (draining_ || queue_.size() >= opts_.max_queue) {
      const bool was_draining = draining_;
      std::remove(path(id, ".spec.json").c_str());
      result.status = was_draining ? 503 : 429;
      result.error = was_draining
                         ? "server is draining"
                         : "job queue is full (" +
                               std::to_string(opts_.max_queue) + " queued)";
      return result;
    }
    JobInfo info;
    info.id = id;
    info.state = JobState::kQueued;
    info.design = design_name;
    info.type = job_type;
    info.submitted_ms = unix_ms();
    jobs_[id] = info;
    queue_.push_back(id);
  }
  cv_.notify_one();

  result.status = 201;
  result.id = id;
  return result;
}

std::optional<JobInfo> JobManager::info(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

std::vector<JobInfo> JobManager::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, info] : jobs_) out.push_back(info);
  return out;
}

std::string JobManager::report_json(const std::string& id) const {
  return read_file(path(id, ".report.json"));
}

std::string JobManager::dashboard_html(const std::string& id) const {
  return read_file(path(id, ".dashboard.html"));
}

std::size_t JobManager::recover() {
  namespace fs = std::filesystem;
  std::vector<std::string> ids;
  std::uint64_t max_seq = 0;
  for (const auto& entry : fs::directory_iterator(opts_.state_dir)) {
    const std::string name = entry.path().filename().string();
    // job-NNNNNN.spec.json
    if (name.rfind("job-", 0) != 0) continue;
    const std::string suffix = ".spec.json";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    const std::string id = name.substr(0, name.size() - suffix.size());
    const std::uint64_t seq = std::strtoull(id.c_str() + 4, nullptr, 10);
    if (seq > max_seq) max_seq = seq;
    if (!file_exists(path(id, ".report.json")) &&
        !file_exists(path(id, ".error.txt"))) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());

  std::lock_guard<std::mutex> lock(mu_);
  if (max_seq >= next_seq_) next_seq_ = max_seq + 1;
  for (const auto& id : ids) {
    if (jobs_.count(id) != 0) continue;
    JobInfo info;
    info.id = id;
    info.state = JobState::kQueued;
    info.submitted_ms = unix_ms();
    info.recovered = true;
    // Design/type are refreshed when the worker recompiles the spec.
    jobs_[id] = info;
    queue_.push_back(id);
    cv_.notify_one();
  }
  return ids.size();
}

std::size_t JobManager::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + running_;
}

void JobManager::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && workers_.empty()) return;
    draining_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
}

void JobManager::worker_loop() {
  for (;;) {
    std::string id;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (draining_) return;
        continue;
      }
      id = queue_.front();
      queue_.pop_front();
      ++running_;
      auto it = jobs_.find(id);
      if (it != jobs_.end()) {
        it->second.state = JobState::kRunning;
        it->second.started_ms = unix_ms();
      }
    }
    run_one(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
  }
}

void JobManager::run_one(const std::string& id) {
  const std::string spec_text = read_file(path(id, ".spec.json"));
  std::string error;
  spec::JobResult result;
  bool done = false;
  bool was_recovered = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) was_recovered = it->second.recovered;
  }

  try {
    spec::CompiledSpec compiled = spec::compile_spec_text(spec_text);
    {
      // Refresh metadata (recovered jobs were enqueued before compiling).
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(id);
      if (it != jobs_.end()) {
        it->second.design = compiled.design.name;
        it->second.type = compiled.has_job ? compiled.job.type : "check";
      }
    }
    // Server-level defaults for specs that left resilience knobs unset.
    if (compiled.has_job && compiled.job.type == "campaign") {
      if (compiled.job.deadline_ms == 0) {
        compiled.job.deadline_ms = opts_.default_deadline_ms;
      }
      if (compiled.job.retries == 0) {
        compiled.job.retries = opts_.default_retries;
      }
    }

    spec::JobOptions jopts;
    if (compiled.has_job && compiled.job.type == "campaign") {
      jopts.checkpoint = path(id, ".checkpoint.jsonl");
      // Resume the journal's valid prefix after a restart; a fresh job has
      // no journal and runs from trial 0 either way.
      jopts.resume = was_recovered && file_exists(jopts.checkpoint);
    }
    result = spec::run_spec_job(compiled, jopts);
    done = true;
  } catch (const std::exception& e) {
    error = e.what();
  }

  if (done) {
    write_file_atomic(path(id, ".report.json"), result.report_json);
    if (obs::Telemetry::running()) {
      obs::DashboardSpec dspec;
      dspec.title = "job " + id;
      dspec.subtitle = result.summary;
      // The sampler is process-global; with more than one worker, other
      // jobs run concurrently and their throughput lands in the same
      // sample stream. Say so rather than presenting mixed numbers as
      // this job's own.
      if (opts_.workers > 1) {
        dspec.title += " (service-wide telemetry)";
        dspec.subtitle += " — samples cover all jobs running concurrently "
                          "on this server";
      }
      dspec.samples = obs::Telemetry::samples();
      std::ostringstream html;
      obs::write_dashboard_html(html, dspec);
      write_file_atomic(path(id, ".dashboard.html"), html.str());
    }
  } else {
    write_file_atomic(path(id, ".error.txt"), error + "\n");
  }

  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  it->second.state = done ? JobState::kDone : JobState::kFailed;
  it->second.ok = done && result.ok;
  it->second.summary = done ? result.summary : error;
  it->second.finished_ms = unix_ms();
}

}  // namespace nonmask::serve
