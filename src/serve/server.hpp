// Route layer of the verification service: maps the HTTP surface onto the
// JobManager.
//
//   POST /jobs                submit a spec document; 201 {"id": ...}
//   GET  /jobs                all jobs, newest last
//   GET  /jobs/<id>           status + result summary + telemetry tail
//   GET  /jobs/<id>/report    the finished RunReport document
//   GET  /jobs/<id>/dashboard the job's telemetry dashboard (HTML)
//   GET  /healthz             liveness + queue depth
//
// The handler is synchronous and cheap: submissions validate + enqueue,
// queries read the job table and artifact files. All verification work
// happens on the JobManager's worker pool.
#pragma once

#include "serve/http.hpp"
#include "serve/jobs.hpp"

namespace nonmask::serve {

/// Build the request handler for `manager`. The manager must outlive the
/// returned handler.
HttpServer::Handler make_handler(JobManager& manager);

/// Status JSON for one job (exposed for tests): state, type, design,
/// verdict, timestamps, and the last `telemetry_tail` heartbeat samples
/// when the sampler is running.
std::string job_status_json(const JobManager& manager, const JobInfo& info,
                            std::size_t telemetry_tail = 5);

}  // namespace nonmask::serve
