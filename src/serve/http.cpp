#include "serve/http.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>
#include <stdexcept>

// A peer that closes early must surface as EPIPE on send, not SIGPIPE —
// one impatient curl must not take down the whole service.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace nonmask::serve {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64 * 1024;
constexpr std::size_t kMaxBodyBytes = 16 * 1024 * 1024;

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

void write_response(int fd, const HttpResponse& resp) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     status_text(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size())) {
    send_all(fd, resp.body.data(), resp.body.size());
  }
}

/// One recv with the error taxonomy the server cares about: EINTR retries,
/// a timed-out socket (SO_RCVTIMEO) is a 408, anything else — including a
/// peer that hung up mid-request — is a 400.
ssize_t recv_or_status(int fd, char* chunk, std::size_t len,
                       int* error_status) {
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, len, 0);
    if (n > 0) return n;
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *error_status = 408;
    } else {
      *error_status = 400;
    }
    return -1;
  }
}

/// Read until the blank line, then Content-Length body bytes. Returns
/// false on malformed input (connection is answered with 400 and closed)
/// or on a socket that idles past the io timeout (answered with 408).
bool read_request(int fd, HttpRequest* req, int* error_status) {
  std::string buf;
  std::size_t header_end = std::string::npos;
  char chunk[4096];
  while (header_end == std::string::npos) {
    if (buf.size() > kMaxHeaderBytes) {
      *error_status = 431;
      return false;
    }
    const ssize_t n = recv_or_status(fd, chunk, sizeof(chunk), error_status);
    if (n < 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
    header_end = buf.find("\r\n\r\n");
  }

  // Request line.
  const std::size_t line_end = buf.find("\r\n");
  const std::string line = buf.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    *error_status = 400;
    return false;
  }
  req->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    req->query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  req->target = target;

  // Headers.
  std::size_t pos = line_end + 2;
  while (pos < header_end) {
    std::size_t eol = buf.find("\r\n", pos);
    if (eol == std::string::npos || eol > header_end) eol = header_end;
    const std::string h = buf.substr(pos, eol - pos);
    const std::size_t colon = h.find(':');
    if (colon != std::string::npos) {
      std::string name = lower(h.substr(0, colon));
      std::size_t vs = colon + 1;
      while (vs < h.size() && h[vs] == ' ') ++vs;
      req->headers[name] = h.substr(vs);
    }
    pos = eol + 2;
  }

  // Body.
  std::size_t content_length = 0;
  if (const auto it = req->headers.find("content-length");
      it != req->headers.end()) {
    content_length = static_cast<std::size_t>(
        std::strtoull(it->second.c_str(), nullptr, 10));
  }
  if (content_length > kMaxBodyBytes) {
    *error_status = 413;
    return false;
  }
  req->body = buf.substr(header_end + 4);
  while (req->body.size() < content_length) {
    const ssize_t n = recv_or_status(fd, chunk, sizeof(chunk), error_status);
    if (n < 0) return false;
    req->body.append(chunk, static_cast<std::size_t>(n));
  }
  req->body.resize(content_length);
  return true;
}

}  // namespace

const char* status_text(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServer::HttpServer(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int e = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(127.0.0.1:" + std::to_string(port) +
                             ") failed: " + std::strerror(e));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  } else {
    port_ = port;
  }
}

HttpServer::~HttpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::serve_forever(const Handler& handler) {
  while (!stop_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // ::shutdown on the listener (our shutdown()) surfaces as EINVAL /
      // ECONNABORTED; anything else on a live listener is transient.
      if (stop_.load(std::memory_order_acquire)) break;
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Bound every recv/send on this connection: a client that connects and
    // sends nothing (or never reads the response) must not wedge the
    // single-threaded accept loop — it gets a 408 and the next connection
    // is served.
    timeval tv{};
    tv.tv_sec = io_timeout_sec_;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    HttpRequest req;
    int error_status = 0;
    if (!read_request(fd, &req, &error_status)) {
      HttpResponse err;
      err.status = error_status;
      err.body = std::string("{\"error\":\"") + status_text(error_status) +
                 "\"}\n";
      write_response(fd, err);
      ::close(fd);
      continue;
    }
    HttpResponse resp;
    try {
      resp = handler(req);
    } catch (const std::exception& e) {
      resp.status = 500;
      std::string msg = e.what();
      for (char& c : msg) {
        if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
          c = ' ';
        }
      }
      resp.body = "{\"error\":\"" + msg + "\"}\n";
    }
    write_response(fd, resp);
    ::close(fd);
  }
}

void HttpServer::shutdown() noexcept {
  stop_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
}

}  // namespace nonmask::serve
