// Minimal HTTP/1.1 server over plain POSIX sockets — just enough protocol
// for the verification job service: request-line + headers +
// Content-Length bodies in, status + headers + body out, one request per
// connection ("Connection: close"). No external dependency, no TLS, no
// chunked encoding; curl and the in-test client speak it fine.
//
// Threading model: accept loop on the caller's thread (serve_forever), one
// short-lived handler call per connection. Handlers run on the accept
// thread — the job manager behind them only *enqueues* work, so a handler
// never blocks on a campaign. shutdown() wakes the accept loop via
// ::shutdown on the listening socket and is async-signal-safe enough for a
// SIGTERM handler (it only calls shutdown(2) on a pre-stored fd).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>

namespace nonmask::serve {

struct HttpRequest {
  std::string method;  // GET | POST | ...
  std::string target;  // path only (query string stripped into `query`)
  std::string query;   // raw query string, "" when absent
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Reason phrase for the handful of statuses the server emits.
const char* status_text(int status) noexcept;

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Bind + listen on 127.0.0.1:port (port 0 = ephemeral). Throws
  /// std::runtime_error on bind failure.
  explicit HttpServer(int port);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (resolved when constructed with port 0).
  int port() const noexcept { return port_; }

  /// Per-connection recv/send timeout (SO_RCVTIMEO / SO_SNDTIMEO), applied
  /// to sockets accepted after the call. A connection that idles past it
  /// is answered with 408 and closed so the accept loop keeps moving.
  void set_io_timeout(int seconds) noexcept { io_timeout_sec_ = seconds; }

  /// Accept-and-dispatch loop; returns after shutdown(). Handler
  /// exceptions become 500 responses.
  void serve_forever(const Handler& handler);

  /// Wake serve_forever and make it return. Safe from other threads and
  /// from signal handlers.
  void shutdown() noexcept;

  bool shutting_down() const noexcept {
    return stop_.load(std::memory_order_acquire);
  }

 private:
  int listen_fd_ = -1;
  int port_ = 0;
  int io_timeout_sec_ = 10;
  std::atomic<bool> stop_{false};
};

}  // namespace nonmask::serve
