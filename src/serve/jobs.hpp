// The job manager behind the verification service: a bounded FIFO queue of
// submitted specs sharded across a fixed pool of worker threads, with
// crash-safe persistence under one state directory.
//
// Persistence layout (`<state_dir>/<id>.*`, ids "job-000001", ...):
//   <id>.spec.json        the submitted spec text (written before accept)
//   <id>.checkpoint.jsonl campaign checkpoint journal (run_campaign's own)
//   <id>.report.json      the finished RunReport (tmp + rename, atomic)
//   <id>.dashboard.html   telemetry dashboard for the job, when sampling
//   <id>.error.txt        failure text when the job errored
//
// Every artifact is written tmp + rename, so a crash leaves either the old
// file or the new one, never a torn write. recover() re-enqueues every
// persisted spec without a report; campaign jobs then pass their existing
// checkpoint journal to run_campaign with resume=true, which replays the
// completed prefix bit-identically and runs only the remainder — the
// ISSUE's kill-and-restart contract.
//
// Concurrency: one mutex guards the queue and the job table; workers pull
// ids, run the (long) job without the lock, and re-take it only to publish
// the result. Campaign internals shard across the job's own thread count
// (parallel/campaign.hpp) independently of the worker pool.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace nonmask::serve {

struct ServeOptions {
  std::string state_dir;  ///< required; created if absent
  unsigned workers = 2;   ///< job worker threads (jobs run concurrently)
  /// Queued-but-not-running jobs admitted before submissions get 429.
  std::size_t max_queue = 64;
  /// Watchdog deadline / retry defaults applied to campaign jobs whose
  /// spec leaves them unset (0 = no default).
  long long default_deadline_ms = 0;
  std::size_t default_retries = 0;
};

enum class JobState { kQueued, kRunning, kDone, kFailed };

const char* to_string(JobState s) noexcept;

struct JobInfo {
  std::string id;
  JobState state = JobState::kQueued;
  std::string design;   ///< compiled design name
  std::string type;     ///< job type (check / campaign / ...)
  bool ok = false;      ///< job verdict (kDone only)
  std::string summary;  ///< result one-liner, or the error text
  std::uint64_t submitted_ms = 0;  ///< wall-clock unix ms
  std::uint64_t started_ms = 0;
  std::uint64_t finished_ms = 0;
  bool recovered = false;  ///< re-enqueued by recover() after a restart
};

class JobManager {
 public:
  explicit JobManager(ServeOptions opts);
  ~JobManager();

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  struct SubmitResult {
    int status = 201;   ///< HTTP status (201 / 422 / 429 / 503)
    std::string id;     ///< assigned id (status 201 only)
    std::string error;  ///< validation error (422)
  };

  /// Validate (parse + compile) and enqueue one spec document. The spec
  /// text is persisted before the submission is acknowledged.
  SubmitResult submit(const std::string& spec_text);

  std::optional<JobInfo> info(const std::string& id) const;
  std::vector<JobInfo> list() const;

  /// The finished report document, or "" when not (yet) available.
  std::string report_json(const std::string& id) const;
  /// The job's dashboard HTML, or "" when not available.
  std::string dashboard_html(const std::string& id) const;

  /// Scan the state directory and re-enqueue every spec without a report.
  /// Returns the number of jobs recovered. Call once, before serving.
  std::size_t recover();

  /// Stop admitting work, finish everything queued and running, join the
  /// workers. Idempotent.
  void drain();

  /// Active + queued job count (drain-progress reporting).
  std::size_t pending() const;

  const ServeOptions& options() const noexcept { return opts_; }

 private:
  void worker_loop();
  void run_one(const std::string& id);
  std::string next_id_locked();
  std::string path(const std::string& id, const char* suffix) const;

  ServeOptions opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  std::map<std::string, JobInfo> jobs_;
  std::uint64_t next_seq_ = 1;
  bool draining_ = false;
  std::size_t running_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace nonmask::serve
