#include "serve/server.hpp"

#include "obs/telemetry.hpp"
#include "util/json.hpp"

namespace nonmask::serve {

namespace {

using util::jarr;
using util::jbool;
using util::jint;
using util::jobj;
using util::jstr;
using util::JsonValue;

HttpResponse json_response(int status, JsonValue body) {
  HttpResponse resp;
  resp.status = status;
  resp.body = util::dump_json(body);
  return resp;
}

HttpResponse error_response(int status, const std::string& message) {
  JsonValue body = jobj();
  body.add("error", jstr(message));
  return json_response(status, std::move(body));
}

JsonValue info_value(const JobInfo& info) {
  JsonValue v = jobj();
  v.add("id", jstr(info.id));
  v.add("state", jstr(to_string(info.state)));
  v.add("type", jstr(info.type));
  v.add("design", jstr(info.design));
  if (info.state == JobState::kDone) v.add("ok", jbool(info.ok));
  v.add("summary", jstr(info.summary));
  v.add("submitted_ms", jint(static_cast<std::int64_t>(info.submitted_ms)));
  v.add("started_ms", jint(static_cast<std::int64_t>(info.started_ms)));
  v.add("finished_ms", jint(static_cast<std::int64_t>(info.finished_ms)));
  v.add("recovered", jbool(info.recovered));
  return v;
}

}  // namespace

std::string job_status_json(const JobManager& manager, const JobInfo& info,
                            std::size_t telemetry_tail) {
  (void)manager;
  JsonValue v = info_value(info);
  if (obs::Telemetry::running() && telemetry_tail > 0) {
    // Heartbeat tail: the service-wide sampler's most recent samples, so a
    // poll shows live throughput without waiting for the final report.
    const auto samples = obs::Telemetry::samples();
    JsonValue tail = jarr();
    const std::size_t begin =
        samples.size() > telemetry_tail ? samples.size() - telemetry_tail : 0;
    for (std::size_t i = begin; i < samples.size(); ++i) {
      const auto& s = samples[i];
      JsonValue hb = jobj();
      hb.add("seq", jint(static_cast<std::int64_t>(s.seq)));
      hb.add("t_ms", jint(static_cast<std::int64_t>(s.t_ms)));
      hb.add("states_explored",
             jint(static_cast<std::int64_t>(s.states_explored)));
      hb.add("campaign_trials",
             jint(static_cast<std::int64_t>(s.campaign_trials)));
      hb.add("workers", jint(s.workers));
      tail.push(std::move(hb));
    }
    v.add("telemetry", std::move(tail));
  }
  return util::dump_json(v);
}

HttpServer::Handler make_handler(JobManager& manager) {
  return [&manager](const HttpRequest& req) -> HttpResponse {
    if (req.target == "/healthz") {
      if (req.method != "GET") return error_response(405, "GET only");
      JsonValue v = jobj();
      v.add("status", jstr("ok"));
      v.add("pending", jint(static_cast<std::int64_t>(manager.pending())));
      return json_response(200, std::move(v));
    }

    if (req.target == "/jobs") {
      if (req.method == "POST") {
        const auto result = manager.submit(req.body);
        if (result.status != 201) {
          return error_response(result.status, result.error);
        }
        JsonValue v = jobj();
        v.add("id", jstr(result.id));
        v.add("location", jstr("/jobs/" + result.id));
        return json_response(201, std::move(v));
      }
      if (req.method == "GET") {
        JsonValue v = jobj();
        JsonValue arr = jarr();
        for (const auto& info : manager.list()) {
          arr.push(info_value(info));
        }
        v.add("jobs", std::move(arr));
        return json_response(200, std::move(v));
      }
      return error_response(405, "GET or POST");
    }

    const std::string prefix = "/jobs/";
    if (req.target.rfind(prefix, 0) == 0) {
      if (req.method != "GET") return error_response(405, "GET only");
      std::string rest = req.target.substr(prefix.size());
      std::string leaf;
      const std::size_t slash = rest.find('/');
      if (slash != std::string::npos) {
        leaf = rest.substr(slash + 1);
        rest.resize(slash);
      }
      const auto info = manager.info(rest);
      if (!info) return error_response(404, "no such job: " + rest);

      if (leaf.empty()) {
        HttpResponse resp;
        resp.body = job_status_json(manager, *info);
        return resp;
      }
      if (leaf == "report") {
        const std::string report = manager.report_json(rest);
        if (report.empty()) {
          return error_response(404, "report not ready (state " +
                                         std::string(to_string(info->state)) +
                                         ")");
        }
        HttpResponse resp;
        resp.body = report;
        return resp;
      }
      if (leaf == "dashboard") {
        const std::string html = manager.dashboard_html(rest);
        if (html.empty()) return error_response(404, "no dashboard");
        HttpResponse resp;
        resp.content_type = "text/html";
        resp.body = html;
        return resp;
      }
      return error_response(404, "unknown resource: " + leaf);
    }

    return error_response(404, "unknown path: " + req.target);
  };
}

}  // namespace nonmask::serve
