#include "obs/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"
#include "obs/progress.hpp"
#include "obs/rss.hpp"

namespace nonmask::obs {

namespace {

std::uint64_t wall_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct TelemetryState {
  std::atomic<bool> counting{false};
  DepthCounters depth;

  std::mutex mutex;  // guards everything below
  std::condition_variable cv;
  bool running = false;
  bool stop_requested = false;
  std::thread sampler;
  TelemetryOptions opts;
  std::ofstream out;
  std::uint64_t start_us = 0;
  std::uint64_t seq = 0;
  std::uint64_t prev_states = 0;
  std::uint64_t prev_t_us = 0;
  std::vector<HeartbeatSample> series;
  std::vector<const ProgressMeter*> meters;
  std::vector<const SetTelemetrySource*> sets;
  SetSample retired;          // aggregate of destroyed sets
  std::uint64_t sets_seen = 0;
};

TelemetryState& state() {
  static TelemetryState s;
  return s;
}

void fold_into(SetSample& acc, const SetSample& s) {
  acc.shards += s.shards;
  acc.materialized += s.materialized;
  acc.entries += s.entries;
  acc.capacity += s.capacity;
  acc.max_probe = std::max(acc.max_probe, s.max_probe);
  acc.arena_bytes += s.arena_bytes;
}

/// Take one heartbeat. Caller holds state().mutex.
HeartbeatSample sample_locked(TelemetryState& s) {
  HeartbeatSample hb;
  const std::uint64_t now_us = wall_us();
  hb.seq = s.seq++;
  hb.t_ms = (now_us - s.start_us) / 1000;
  hb.states_explored = s.depth.states_explored.load(std::memory_order_relaxed);
  const std::uint64_t dt_us = now_us - s.prev_t_us;
  hb.states_per_sec =
      dt_us == 0 ? 0.0
                 : static_cast<double>(hb.states_explored - s.prev_states) *
                       1e6 / static_cast<double>(dt_us);
  s.prev_states = hb.states_explored;
  s.prev_t_us = now_us;
  hb.rss_mb = current_rss_mb();
  hb.peak_rss_mb = peak_rss_mb();
  hb.workers = s.depth.workers_live.load(std::memory_order_relaxed);
  hb.set_probes = s.depth.set_probes.load(std::memory_order_relaxed);
  hb.set_grows = s.depth.set_grows.load(std::memory_order_relaxed);
  hb.set_cas_retries = s.depth.set_cas_retries.load(std::memory_order_relaxed);
  hb.arena_slab_allocs =
      s.depth.arena_slab_allocs.load(std::memory_order_relaxed);
  hb.arena_slab_bytes =
      s.depth.arena_slab_bytes.load(std::memory_order_relaxed);
  hb.frontier_spill_flushes =
      s.depth.frontier_spill_flushes.load(std::memory_order_relaxed);
  hb.frontier_spill_bytes =
      s.depth.frontier_spill_bytes.load(std::memory_order_relaxed);
  hb.frontier_levels = s.depth.frontier_levels.load(std::memory_order_relaxed);
  hb.frontier_merge_rounds =
      s.depth.frontier_merge_rounds.load(std::memory_order_relaxed);
  hb.campaign_trials = s.depth.campaign_trials.load(std::memory_order_relaxed);
  hb.campaign_retries =
      s.depth.campaign_retries.load(std::memory_order_relaxed);
  hb.campaign_timeouts =
      s.depth.campaign_timeouts.load(std::memory_order_relaxed);
  for (const ProgressMeter* meter : s.meters) {
    MeterSample ms;
    meter->sample_into(ms);
    for (const auto& [label, value] : ms.aux) {
      if (label == "frontier") hb.frontier += value;
    }
    hb.meters.push_back(std::move(ms));
  }
  for (const SetTelemetrySource* set : s.sets) {
    hb.sets.push_back(set->sample_set_telemetry());
  }
  s.series.push_back(hb);
  if (s.out.is_open()) {
    s.out << to_json(hb) << '\n';
    s.out.flush();
  }
  return hb;
}

void sampler_loop() {
  TelemetryState& s = state();
  std::unique_lock<std::mutex> lock(s.mutex);
  while (!s.stop_requested) {
    const auto interval = std::chrono::milliseconds(
        s.opts.interval_ms == 0 ? 1 : s.opts.interval_ms);
    s.cv.wait_for(lock, interval, [&s] { return s.stop_requested; });
    if (s.stop_requested) break;
    sample_locked(s);
  }
}

}  // namespace

std::string to_json(const HeartbeatSample& hb) {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("seq");
  w.value(hb.seq);
  w.key("t_ms");
  w.value(hb.t_ms);
  w.key("states");
  w.value(hb.states_explored);
  w.key("states_per_sec");
  w.value(hb.states_per_sec);
  w.key("frontier");
  w.value(hb.frontier);
  w.key("rss_mb");
  w.value(hb.rss_mb);
  w.key("peak_rss_mb");
  w.value(hb.peak_rss_mb);
  w.key("workers");
  w.value(static_cast<std::int64_t>(hb.workers));
  w.key("counters");
  w.begin_object();
  w.key("set_probes");
  w.value(hb.set_probes);
  w.key("set_grows");
  w.value(hb.set_grows);
  w.key("set_cas_retries");
  w.value(hb.set_cas_retries);
  w.key("arena_slab_allocs");
  w.value(hb.arena_slab_allocs);
  w.key("arena_slab_bytes");
  w.value(hb.arena_slab_bytes);
  w.key("frontier_spill_flushes");
  w.value(hb.frontier_spill_flushes);
  w.key("frontier_spill_bytes");
  w.value(hb.frontier_spill_bytes);
  w.key("frontier_levels");
  w.value(hb.frontier_levels);
  w.key("frontier_merge_rounds");
  w.value(hb.frontier_merge_rounds);
  w.key("campaign_trials");
  w.value(hb.campaign_trials);
  w.key("campaign_retries");
  w.value(hb.campaign_retries);
  w.key("campaign_timeouts");
  w.value(hb.campaign_timeouts);
  w.end_object();
  w.key("meters");
  w.begin_array();
  for (const MeterSample& m : hb.meters) {
    w.begin_object();
    w.key("label");
    w.value(m.label);
    w.key("done");
    w.value(m.done);
    w.key("total");
    w.value(m.total);
    w.key("aux");
    w.begin_object();
    for (const auto& [label, value] : m.aux) {
      w.key(label);
      w.value(value);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("sets");
  w.begin_array();
  for (const SetSample& set : hb.sets) {
    w.begin_object();
    w.key("shards");
    w.value(set.shards);
    w.key("materialized");
    w.value(set.materialized);
    w.key("entries");
    w.value(set.entries);
    w.key("capacity");
    w.value(set.capacity);
    w.key("max_probe");
    w.value(set.max_probe);
    w.key("arena_bytes");
    w.value(set.arena_bytes);
    w.key("shard_entries");
    w.begin_array();
    for (std::uint64_t e : set.shard_entries) w.value(e);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return out;
}

void Telemetry::start(const TelemetryOptions& opts) {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.running) return;
  if (!opts.path.empty()) {
    s.out.open(opts.path, std::ios::trunc);
    if (!s.out) {
      throw std::runtime_error("telemetry: cannot open JSONL sink " +
                               opts.path);
    }
  }
  s.opts = opts;
  s.running = true;
  s.stop_requested = false;
  s.start_us = wall_us();
  s.seq = 0;
  s.prev_states = s.depth.states_explored.load(std::memory_order_relaxed);
  s.prev_t_us = s.start_us;
  s.series.clear();
  s.counting.store(true, std::memory_order_relaxed);
  s.sampler = std::thread(sampler_loop);
}

bool Telemetry::start_from_env() {
  const char* path = std::getenv("NONMASK_TELEMETRY");
  if (path == nullptr || path[0] == '\0') return false;
  TelemetryOptions opts;
  opts.path = path;
  if (const char* ms = std::getenv("NONMASK_TELEMETRY_MS")) {
    const long parsed = std::strtol(ms, nullptr, 10);
    if (parsed >= 1) opts.interval_ms = static_cast<unsigned>(parsed);
  }
  start(opts);
  return true;
}

void Telemetry::stop() {
  TelemetryState& s = state();
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.running || s.stop_requested) return;  // second stop(): no-op
    s.stop_requested = true;
    joinable = std::move(s.sampler);
  }
  s.cv.notify_all();
  joinable.join();
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    sample_locked(s);  // final heartbeat: cumulative count == report count
    s.counting.store(false, std::memory_order_relaxed);
    s.running = false;
    if (s.out.is_open()) s.out.close();
  }
}

bool Telemetry::running() noexcept {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.running;
}

bool Telemetry::counting() noexcept {
  return state().counting.load(std::memory_order_relaxed);
}

DepthCounters& Telemetry::depth() noexcept { return state().depth; }

HeartbeatSample Telemetry::sample_now() {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (!s.running) throw std::logic_error("telemetry: sample_now before start");
  return sample_locked(s);
}

std::vector<HeartbeatSample> Telemetry::samples() {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.series;
}

void Telemetry::register_meter(const ProgressMeter* meter) noexcept {
  TelemetryState& s = state();
  try {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.meters.push_back(meter);
  } catch (...) {
    // ProgressMeter's constructor is noexcept; a failed registration just
    // means this meter goes unsampled.
  }
}

void Telemetry::unregister_meter(const ProgressMeter* meter) noexcept {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.meters.erase(std::remove(s.meters.begin(), s.meters.end(), meter),
                 s.meters.end());
}

void Telemetry::register_set(const SetTelemetrySource* set) {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.sets.push_back(set);
  ++s.sets_seen;
}

void Telemetry::unregister_set(const SetTelemetrySource* set) {
  const SetSample final_sample = set->sample_set_telemetry();
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  fold_into(s.retired, final_sample);
  s.sets.erase(std::remove(s.sets.begin(), s.sets.end(), set), s.sets.end());
}

SetSample Telemetry::set_aggregate() {
  TelemetryState& s = state();
  std::vector<const SetTelemetrySource*> live;
  SetSample acc;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    acc = s.retired;
    live = s.sets;
  }
  // Sample live sets outside the registry lock: sample_set_telemetry takes
  // shard locks, and holding both here would order them against the
  // sampler's identical acquisition (harmlessly, but keep the lock graph a
  // tree). Sets unregister under the same mutex, so `live` pointers stay
  // valid only while their owners do — callers snapshot between phases.
  for (const SetTelemetrySource* set : live) {
    fold_into(acc, set->sample_set_telemetry());
  }
  return acc;
}

std::uint64_t Telemetry::sets_seen() noexcept {
  TelemetryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.sets_seen;
}

}  // namespace nonmask::obs
