// Process-wide metrics registry: named counters, gauges, and histograms
// with lock-free record paths, designed so the checker and parallel
// subsystems can stay instrumented permanently.
//
// Cost model. Collection is off by default: every record call first reads
// one relaxed atomic flag (Metrics::enabled) and returns, so dormant
// instrumentation is a load + predicted branch. The instrumentation points
// themselves sit at batch granularity (per chunk, per trial, per completed
// check), never per state, so even enabled collection is far off the hot
// paths. Registration (`Registry::counter(...)` etc.) takes a mutex and is
// meant for call-site setup, not inner loops — hold the returned reference.
//
// Concurrency. Counter/Gauge are single atomics. Histogram shards its
// accumulators per thread slot: a record touches only the calling thread's
// shard with relaxed atomic ops, so concurrent records never contend and a
// snapshot taken mid-write is a consistent (if slightly stale) sum. All
// record/snapshot paths are data-race-free under ThreadSanitizer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nonmask::obs {

/// Global collection switch (default: off).
class Metrics {
 public:
  static void set_enabled(bool on) noexcept;
  static bool enabled() noexcept;
};

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    if (!Metrics::enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept {
    if (!Metrics::enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Aggregated view of one histogram at snapshot time.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  /// Log2 buckets: bucket b counts values v with 2^(b-1) <= v < 2^b
  /// (bucket 0 counts v == 0).
  std::array<std::uint64_t, 65> buckets{};

  double mean() const noexcept {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Percentile estimate from the bucket histogram: the upper bound of the
  /// bucket containing rank q*count (exact for min/max, otherwise within a
  /// factor of 2). Returns 0 when empty.
  double approx_percentile(double q) const noexcept;
};

/// Fixed-bucket log2 histogram of uint64 values (durations, sizes) with
/// per-thread-slot shards. Threads map to one of kShardSlots slots by their
/// thread tag; slot collisions only share a shard, they never break
/// correctness.
class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  ~Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t value) noexcept;
  HistogramSnapshot snapshot() const;
  const std::string& name() const noexcept { return name_; }
  void reset() noexcept;

 private:
  static constexpr unsigned kShardSlots = 64;

  struct Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, 65> buckets{};
  };

  Shard& shard_for_this_thread() noexcept;

  std::string name_;
  std::array<std::atomic<Shard*>, kShardSlots> shards_{};
};

/// Everything the registry knows, keyed and sorted by metric name.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create by name. References stay valid for the process
  /// lifetime; call once per site and keep the reference.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  RegistrySnapshot snapshot() const;
  /// Zero every registered metric (names survive). For tests and CLI runs
  /// that want a per-phase snapshot.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace nonmask::obs
