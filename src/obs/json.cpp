#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace nonmask::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_->push_back(',');
    has_element_.back() = true;
  }
}

void JsonWriter::begin_object() {
  separate();
  out_->push_back('{');
  has_element_.push_back(false);
}

void JsonWriter::end_object() {
  has_element_.pop_back();
  out_->push_back('}');
}

void JsonWriter::begin_array() {
  separate();
  out_->push_back('[');
  has_element_.push_back(false);
}

void JsonWriter::end_array() {
  has_element_.pop_back();
  out_->push_back(']');
}

void JsonWriter::key(std::string_view k) {
  separate();
  out_->push_back('"');
  *out_ += json_escape(k);
  *out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  separate();
  out_->push_back('"');
  *out_ += json_escape(v);
  out_->push_back('"');
}

void JsonWriter::value(std::uint64_t v) {
  separate();
  *out_ += std::to_string(v);
}

void JsonWriter::value(std::int64_t v) {
  separate();
  *out_ += std::to_string(v);
}

void JsonWriter::value(double v) {
  separate();
  if (!std::isfinite(v)) {
    *out_ += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out_ += buf;
}

void JsonWriter::value(bool v) {
  separate();
  *out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  separate();
  *out_ += "null";
}

void JsonWriter::raw(std::string_view json) {
  separate();
  *out_ += json;
}

}  // namespace nonmask::obs
