#include "obs/report.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "obs/json.hpp"
#include "obs/telemetry.hpp"
#include "util/logging.hpp"

namespace nonmask::obs {

namespace {

std::uint64_t wall_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void stats_fields(JsonWriter& w, const SampleStats& stats) {
  w.begin_object();
  w.key("count");
  w.value(static_cast<std::uint64_t>(stats.count));
  w.key("sum");
  w.value(stats.sum);
  w.key("mean");
  w.value(stats.mean);
  w.key("stddev");
  w.value(stats.stddev);
  w.key("min");
  w.value(stats.min);
  w.key("max");
  w.value(stats.max);
  w.key("p50");
  w.value(stats.p50);
  w.key("p95");
  w.value(stats.p95);
  w.key("p99");
  w.value(stats.p99);
  w.end_object();
}

}  // namespace

std::string to_json(const SampleStats& stats) {
  std::string out;
  JsonWriter w(&out);
  stats_fields(w, stats);
  return out;
}

std::string to_json(const ClosureReport& report) {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("closed");
  w.value(report.closed);
  w.key("states_checked");
  w.value(report.states_checked);
  w.key("transitions_checked");
  w.value(report.transitions_checked);
  w.key("has_violation");
  w.value(report.violation.has_value());
  if (report.violation.has_value()) {
    w.key("violating_action");
    w.value(static_cast<std::uint64_t>(report.violation->action));
  }
  w.end_object();
  return out;
}

std::string to_json(const ConvergenceReport& report) {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("verdict");
  w.value(to_string(report.verdict));
  w.key("states_in_T");
  w.value(report.states_in_T);
  w.key("states_in_S");
  w.value(report.states_in_S);
  w.key("region_states");
  w.value(report.region_states);
  w.key("transitions");
  w.value(report.transitions);
  w.key("max_steps_to_S");
  w.value(report.max_steps_to_S);
  w.key("has_cycle");
  w.value(report.cycle.has_value());
  if (report.cycle.has_value()) {
    w.key("cycle_length");
    w.value(static_cast<std::uint64_t>(report.cycle->size()));
  }
  w.key("has_deadlock");
  w.value(report.deadlock.has_value());
  w.end_object();
  return out;
}

std::string to_json(const ConvergenceResults& results) {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("converged_fraction");
  w.value(results.converged_fraction);
  w.key("steps");
  stats_fields(w, results.steps);
  w.key("rounds");
  stats_fields(w, results.rounds);
  w.key("moves");
  stats_fields(w, results.moves);
  w.end_object();
  return out;
}

std::string to_json(const HistogramSnapshot& snapshot) {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("count");
  w.value(snapshot.count);
  w.key("sum");
  w.value(snapshot.sum);
  w.key("min");
  w.value(snapshot.min);
  w.key("max");
  w.value(snapshot.max);
  w.key("mean");
  w.value(snapshot.mean());
  w.key("p50");
  w.value(snapshot.approx_percentile(0.50));
  w.key("p95");
  w.value(snapshot.approx_percentile(0.95));
  w.key("p99");
  w.value(snapshot.approx_percentile(0.99));
  w.end_object();
  return out;
}

std::string metrics_to_json() {
  const RegistrySnapshot snap = Registry::instance().snapshot();
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : snap.counters) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : snap.gauges) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, hist] : snap.histograms) {
    w.key(name);
    w.raw(to_json(hist));
  }
  w.end_object();
  w.end_object();
  return out;
}

RunReport::RunReport(std::string tool, std::string design)
    : tool_(std::move(tool)),
      design_(std::move(design)),
      started_at_(iso8601_utc_now()),
      start_us_(wall_us()) {}

void RunReport::add(std::string key, std::string json_value) {
  sections_.emplace_back(std::move(key), std::move(json_value));
}

void RunReport::add_text(std::string key, std::string_view text) {
  std::string value;
  JsonWriter w(&value);
  w.value(text);
  sections_.emplace_back(std::move(key), std::move(value));
}

void RunReport::add_number(std::string key, double value) {
  std::string rendered;
  JsonWriter w(&rendered);
  w.value(value);
  sections_.emplace_back(std::move(key), std::move(rendered));
}

void RunReport::add_number(std::string key, std::uint64_t value) {
  std::string rendered;
  JsonWriter w(&rendered);
  w.value(value);
  sections_.emplace_back(std::move(key), std::move(rendered));
}

std::string RunReport::to_json() const {
  std::string out;
  JsonWriter w(&out);
  w.begin_object();
  w.key("tool");
  w.value(tool_);
  if (!design_.empty()) {
    w.key("design");
    w.value(design_);
  }
  w.key("started_at");
  w.value(started_at_);
  w.key("wall_ms");
  w.value(static_cast<double>(wall_us() - start_us_) / 1000.0);
  for (const auto& [key, json] : sections_) {
    w.key(key);
    w.raw(json);
  }
  // Visited-set depth: aggregate over every concurrent set this process
  // constructed (retired + live). Registration is unconditional, so this
  // section appears for store-backed runs even with telemetry off.
  if (Telemetry::sets_seen() > 0) {
    const SetSample sets = Telemetry::set_aggregate();
    w.key("store");
    w.begin_object();
    w.key("sets");
    w.value(Telemetry::sets_seen());
    w.key("shards");
    w.value(sets.shards);
    w.key("materialized_shards");
    w.value(sets.materialized);
    w.key("entries");
    w.value(sets.entries);
    w.key("table_slots");
    w.value(sets.capacity);
    w.key("max_probe");
    w.value(sets.max_probe);
    w.key("arena_bytes");
    w.value(sets.arena_bytes);
    w.end_object();
  }
  w.key("metrics");
  w.raw(metrics_to_json());
  w.end_object();
  return out;
}

void RunReport::write(std::ostream& out) const { out << to_json() << '\n'; }

void write_env_report(const char* tool) {
  const char* path = std::getenv("NONMASK_REPORT_OUT");
  if (path == nullptr || path[0] == '\0') return;
  std::ofstream out(path);
  if (!out) return;
  RunReport(tool).write(out);
}

}  // namespace nonmask::obs
