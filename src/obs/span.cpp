#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <mutex>
#include <ostream>
#include <string_view>

#include "obs/json.hpp"
#include "util/logging.hpp"

namespace nonmask::obs {

namespace {

std::atomic<bool> g_trace_enabled{false};
std::mutex g_events_mutex;
std::vector<TraceEvent>& event_buffer() {
  static std::vector<TraceEvent>* events = new std::vector<TraceEvent>();
  return *events;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

}  // namespace

void Trace::set_enabled(bool on) noexcept {
  if (on) trace_epoch();  // pin the epoch before the first event
  g_trace_enabled.store(on, std::memory_order_relaxed);
}

bool Trace::enabled() noexcept {
  return g_trace_enabled.load(std::memory_order_relaxed);
}

void Trace::clear() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  event_buffer().clear();
}

std::size_t Trace::event_count() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  return event_buffer().size();
}

std::vector<TraceEvent> Trace::events() {
  std::lock_guard<std::mutex> lock(g_events_mutex);
  return event_buffer();
}

void Trace::write_chrome_trace(std::ostream& out) {
  const auto snapshot = events();
  std::string json;
  json.reserve(snapshot.size() * 96 + 64);
  JsonWriter w(&json);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const TraceEvent& e : snapshot) {
    w.begin_object();
    w.key("name");
    w.value(std::string_view(e.name));
    w.key("cat");
    w.value("nonmask");
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(e.ts_us);
    w.key("dur");
    w.value(e.dur_us);
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(e.tid));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << json << '\n';
}

void Trace::write_flame_summary(std::ostream& out) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string_view, Agg> by_name;
  for (const TraceEvent& e : events()) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_us += e.dur_us;
    a.max_us = std::max(a.max_us, e.dur_us);
  }
  std::vector<std::pair<std::string_view, Agg>> rows(by_name.begin(),
                                                     by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });

  out << std::left << std::setw(32) << "span" << std::right << std::setw(8)
      << "count" << std::setw(12) << "total ms" << std::setw(12) << "mean ms"
      << std::setw(12) << "max ms" << '\n';
  const auto ms = [](std::uint64_t us) {
    return static_cast<double>(us) / 1000.0;
  };
  for (const auto& [name, a] : rows) {
    out << std::left << std::setw(32) << name << std::right << std::setw(8)
        << a.count << std::fixed << std::setprecision(3) << std::setw(12)
        << ms(a.total_us) << std::setw(12)
        << ms(a.total_us) / static_cast<double>(a.count) << std::setw(12)
        << ms(a.max_us) << std::defaultfloat
        << std::setprecision(6) << '\n';
  }
}

Span::Span(const char* name, Histogram* duration_us) noexcept
    : name_(name), hist_(duration_us) {
  const bool tracing = Trace::enabled();
  const bool measuring = hist_ != nullptr && Metrics::enabled();
  if (!tracing && !measuring) return;
  if (!tracing) name_ = nullptr;  // histogram only: skip event recording
  active_ = true;
  start_us_ = now_us();
}

void Span::end() noexcept {
  if (!active_) return;
  active_ = false;
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur = end_us - start_us_;
  if (hist_ != nullptr) hist_->record(dur);
  if (name_ == nullptr || !Trace::enabled()) return;
  TraceEvent e{name_, current_thread_tag(), start_us_, dur};
  std::lock_guard<std::mutex> lock(g_events_mutex);
  event_buffer().push_back(e);
}

}  // namespace nonmask::obs
