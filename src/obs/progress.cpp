#include "obs/progress.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <ostream>
#include <string>

#include "obs/telemetry.hpp"

namespace nonmask::obs {

namespace {

/// Labels whose add() units are explored states — the meters that feed the
/// cumulative states_explored depth counter. "flags" is deliberately
/// absent: the flags pass precedes the DFS/SCC pass over the same codes,
/// and counting both would double every state.
bool is_explored_label(const char* label) {
  static const char* const kExplored[] = {
      "convergence-dfs", "convergence-scc", "store-reach",
      "store-backward",  "reach",           "closure",
  };
  for (const char* candidate : kExplored) {
    if (std::strcmp(label, candidate) == 0) return true;
  }
  return false;
}

std::atomic<std::ostream*> g_sink{nullptr};
std::atomic<unsigned> g_interval_ms{500};
std::mutex g_line_mutex;

std::uint64_t wall_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string human_count(double v) {
  char buf[32];
  if (v >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

}  // namespace

void Progress::enable(std::ostream* sink, unsigned interval_ms) {
  g_interval_ms.store(interval_ms, std::memory_order_relaxed);
  g_sink.store(sink, std::memory_order_release);
}

void Progress::disable() { g_sink.store(nullptr, std::memory_order_release); }

bool Progress::active() noexcept {
  return g_sink.load(std::memory_order_relaxed) != nullptr;
}

unsigned Progress::interval_ms() noexcept {
  return g_interval_ms.load(std::memory_order_relaxed);
}

void Progress::write_line(const char* label, std::uint64_t done,
                          std::uint64_t total, double per_sec,
                          const char* aux_text) {
  std::ostream* sink = g_sink.load(std::memory_order_acquire);
  if (sink == nullptr) return;
  std::string line = "[progress] ";
  line += label;
  line += ": ";
  line += human_count(static_cast<double>(done));
  if (total > 0) {
    line += "/";
    line += human_count(static_cast<double>(total));
    char pct[16];
    std::snprintf(pct, sizeof(pct), " (%.1f%%)",
                  100.0 * static_cast<double>(done) /
                      static_cast<double>(total));
    line += pct;
  }
  line += " ";
  line += human_count(per_sec);
  line += "/s";
  if (aux_text != nullptr && aux_text[0] != '\0') {
    line += " ";
    line += aux_text;
  }
  std::lock_guard<std::mutex> lock(g_line_mutex);
  *sink << line << '\n';
  sink->flush();
}

ProgressMeter::ProgressMeter(const char* label, std::uint64_t total) noexcept
    : label_(label), total_(total) {
  telemetry_ = Telemetry::counting();
  if (telemetry_) {
    explored_ = is_explored_label(label);
    Telemetry::register_meter(this);
  }
  if (!Progress::active() && !telemetry_) return;
  start_us_ = wall_us();
  last_report_us_.store(start_us_, std::memory_order_relaxed);
}

ProgressMeter::~ProgressMeter() {
  if (reported_.load(std::memory_order_relaxed)) maybe_report(true);
  if (telemetry_) Telemetry::unregister_meter(this);
}

void ProgressMeter::add(std::uint64_t n) noexcept {
  const bool progress = Progress::active();
  if (!progress && !telemetry_) return;
  done_.fetch_add(n, std::memory_order_relaxed);
  if (telemetry_ && explored_) {
    Telemetry::depth().states_explored.fetch_add(n, std::memory_order_relaxed);
  }
  if (progress) maybe_report(false);
}

void ProgressMeter::aux(const char* label, std::uint64_t value) noexcept {
  if (!Progress::active() && !telemetry_) return;
  for (AuxSlot& slot : aux_) {
    const char* cur = slot.label.load(std::memory_order_acquire);
    if (cur == nullptr) {
      if (!slot.label.compare_exchange_strong(cur, label,
                                              std::memory_order_acq_rel)) {
        if (cur != label) continue;  // lost to a different label
      }
      slot.value.store(value, std::memory_order_relaxed);
      return;
    }
    if (cur == label) {
      slot.value.store(value, std::memory_order_relaxed);
      return;
    }
  }
}

void ProgressMeter::sample_into(MeterSample& out) const {
  out.label = label_;
  out.done = done_.load(std::memory_order_relaxed);
  out.total = total_;
  out.aux.clear();
  for (const AuxSlot& slot : aux_) {
    const char* label = slot.label.load(std::memory_order_acquire);
    if (label == nullptr) break;
    out.aux.emplace_back(label, slot.value.load(std::memory_order_relaxed));
  }
}

void ProgressMeter::maybe_report(bool force) noexcept {
  const std::uint64_t now = wall_us();
  std::uint64_t last = last_report_us_.load(std::memory_order_relaxed);
  if (!force) {
    const std::uint64_t interval_us =
        std::uint64_t{Progress::interval_ms()} * 1000;
    if (now - last < interval_us) return;
    // Elect one reporter; losers skip.
    if (!last_report_us_.compare_exchange_strong(
            last, now, std::memory_order_relaxed)) {
      return;
    }
  }
  reported_.store(true, std::memory_order_relaxed);

  const std::uint64_t done = done_.load(std::memory_order_relaxed);
  const double elapsed_s =
      static_cast<double>(now - start_us_) / 1e6;
  const double per_sec =
      elapsed_s > 0 ? static_cast<double>(done) / elapsed_s : 0.0;

  char aux_text[128] = "";
  std::size_t len = 0;
  for (const AuxSlot& slot : aux_) {
    const char* label = slot.label.load(std::memory_order_acquire);
    if (label == nullptr) break;
    const int n = std::snprintf(
        aux_text + len, sizeof(aux_text) - len, "%s%s=%llu",
        len == 0 ? "" : " ", label,
        static_cast<unsigned long long>(
            slot.value.load(std::memory_order_relaxed)));
    if (n < 0 || len + static_cast<std::size_t>(n) >= sizeof(aux_text)) break;
    len += static_cast<std::size_t>(n);
  }
  Progress::write_line(label_, done, total_, per_sec, aux_text);
}

}  // namespace nonmask::obs
