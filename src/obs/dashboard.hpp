// Self-contained HTML run dashboard: folds the telemetry heartbeat series
// (obs/telemetry.hpp), the Chrome-trace span aggregate (obs/span.hpp), and
// a caller-supplied run summary into one dependency-free HTML file —
// inline SVG time-series (instantaneous states/s, cumulative states, RSS,
// frontier, spill), a shard-occupancy heatmap, counter and heartbeat
// tables, and a crosshair hover layer, with dark mode via CSS custom
// properties. The file references nothing external: no scripts, fonts,
// images, or stylesheets are fetched, so it renders offline and can be
// archived as a CI artifact next to the JSONL it was built from.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"

namespace nonmask::obs {

/// Everything the renderer needs. `summary` rows become the run-summary
/// table (tool, design, backend, verdict, ...) and are HTML-escaped by the
/// renderer. `samples` is typically Telemetry::samples() taken after
/// Telemetry::stop(); with fewer than two samples the time-series cards
/// are omitted and the tiles/tables still render.
/// A free-form table card (e.g. the certification-triage matrix): one
/// header row plus data rows, HTML-escaped by the renderer. Rows shorter
/// than `columns` render with trailing empty cells.
struct DashboardTable {
  std::string title;
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
};

struct DashboardSpec {
  std::string title;
  std::string subtitle;
  std::vector<std::pair<std::string, std::string>> summary;
  std::vector<DashboardTable> tables;  ///< rendered after the summary card
  std::vector<HeartbeatSample> samples;
  bool include_trace = true;  ///< fold in Trace span aggregates when present
};

void write_dashboard_html(std::ostream& out, const DashboardSpec& spec);

/// Open `path` (truncating) and write the dashboard; throws on failure.
void write_dashboard_file(const std::string& path, const DashboardSpec& spec);

}  // namespace nonmask::obs
