// Live run telemetry: a background sampler thread that turns a long
// verification run into a JSONL heartbeat series — cumulative states
// explored, instantaneous states/s, frontier size and spill bytes,
// per-shard visited-set occupancy, arena bytes, RSS, live workers, and
// campaign trial counters — so a throughput collapse at minute 3 of a
// 4-minute run is visible instead of averaged away by the end-of-run
// report.
//
// Cost model (the same contract as obs/metrics.hpp): telemetry is off by
// default, and every depth-counter site in the store/parallel layers first
// reads one relaxed atomic flag (Telemetry::counting) and returns. The
// sampler thread only exists between start() and stop(). Enable with
// NONMASK_TELEMETRY=<jsonl-path> (interval via NONMASK_TELEMETRY_MS,
// default 200) or programmatically with TelemetryOptions — an empty path
// keeps the series in memory only, which is how --dashboard-out runs
// collect their data without touching disk.
//
// Samplable objects register themselves while telemetry is counting:
// ProgressMeter registers in its constructor (progress.hpp) so the sampler
// can read done/total/aux without cooperation from the meter's owner, and
// ConcurrentPackedSet implements SetTelemetrySource. Set registration is
// unconditional (construction is rare) because the retired-set aggregate
// also feeds the run-report store section when telemetry is off.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nonmask::obs {

class ProgressMeter;

/// Relaxed-atomic depth counters fed by the store and parallel layers.
/// Every site is gated on Telemetry::counting() except workers_live,
/// which ThreadPool maintains unconditionally (one RMW per pool lifetime)
/// so a sampler started mid-run never underflows it.
struct DepthCounters {
  std::atomic<std::uint64_t> states_explored{0};   ///< fed by ProgressMeter
  std::atomic<std::uint64_t> set_probes{0};        ///< linear-probe steps
  std::atomic<std::uint64_t> set_grows{0};         ///< shard table doublings
  std::atomic<std::uint64_t> set_cas_retries{0};   ///< lost shard-touch races
  std::atomic<std::uint64_t> arena_slab_allocs{0};
  std::atomic<std::uint64_t> arena_slab_bytes{0};
  std::atomic<std::uint64_t> frontier_spill_flushes{0};
  std::atomic<std::uint64_t> frontier_spill_bytes{0};
  std::atomic<std::uint64_t> frontier_levels{0};       ///< forward BFS levels
  std::atomic<std::uint64_t> frontier_merge_rounds{0}; ///< backward rounds
  std::atomic<std::uint64_t> campaign_trials{0};
  std::atomic<std::uint64_t> campaign_retries{0};
  std::atomic<std::uint64_t> campaign_timeouts{0};
  std::atomic<std::int64_t> workers_live{0};
};

/// One registered ProgressMeter, as seen by the sampler.
struct MeterSample {
  std::string label;
  std::uint64_t done = 0;
  std::uint64_t total = 0;  ///< 0 = unknown
  std::vector<std::pair<std::string, std::uint64_t>> aux;
};

/// One registered concurrent set, as seen by the sampler (and, folded
/// across retired sets, by the run-report store section).
struct SetSample {
  std::uint64_t shards = 0;        ///< configured shard count
  std::uint64_t materialized = 0;  ///< shards touched so far
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;      ///< summed table slots
  std::uint64_t max_probe = 0;     ///< longest insert probe sequence
  std::uint64_t arena_bytes = 0;
  std::vector<std::uint64_t> shard_entries;  ///< per-shard occupancy
};

/// Implemented by containers the sampler polls (ConcurrentPackedSet).
class SetTelemetrySource {
 public:
  virtual ~SetTelemetrySource() = default;
  virtual SetSample sample_set_telemetry() const = 0;
};

/// One heartbeat. `states_per_sec` is instantaneous (delta over the
/// sampling interval), not the cumulative average the end-of-run report
/// prints — the difference is exactly what makes mid-run collapses
/// visible.
struct HeartbeatSample {
  std::uint64_t seq = 0;
  std::uint64_t t_ms = 0;  ///< since Telemetry::start()
  std::uint64_t states_explored = 0;
  double states_per_sec = 0.0;
  std::uint64_t frontier = 0;  ///< summed "frontier" aux across meters
  double rss_mb = 0.0;
  double peak_rss_mb = 0.0;
  std::int64_t workers = 0;
  std::uint64_t set_probes = 0;
  std::uint64_t set_grows = 0;
  std::uint64_t set_cas_retries = 0;
  std::uint64_t arena_slab_allocs = 0;
  std::uint64_t arena_slab_bytes = 0;
  std::uint64_t frontier_spill_flushes = 0;
  std::uint64_t frontier_spill_bytes = 0;
  std::uint64_t frontier_levels = 0;
  std::uint64_t frontier_merge_rounds = 0;
  std::uint64_t campaign_trials = 0;
  std::uint64_t campaign_retries = 0;
  std::uint64_t campaign_timeouts = 0;
  std::vector<MeterSample> meters;
  std::vector<SetSample> sets;
};

/// One JSONL heartbeat line (no trailing newline). The key set and order
/// are the schema the golden test and bench_compare.py --telemetry parse.
std::string to_json(const HeartbeatSample& sample);

struct TelemetryOptions {
  std::string path;           ///< JSONL sink; empty = in-memory only
  unsigned interval_ms = 200;
};

class Telemetry {
 public:
  /// Start the sampler thread. No-op if already running. Throws when the
  /// JSONL path cannot be opened.
  static void start(const TelemetryOptions& opts);
  /// Start from NONMASK_TELEMETRY / NONMASK_TELEMETRY_MS; no-op when the
  /// variable is unset. Returns true when the sampler was started.
  static bool start_from_env();
  /// Join the sampler after taking one final sample (so the last
  /// heartbeat's cumulative state count matches the end-of-run report).
  /// No-op when not running.
  static void stop();
  static bool running() noexcept;

  /// The one relaxed load every gated instrumentation site pays when off.
  static bool counting() noexcept;
  static DepthCounters& depth() noexcept;

  /// Take a sample immediately (also appended to the series and the JSONL
  /// sink). Requires a prior start(); used by stop() and tests.
  static HeartbeatSample sample_now();
  /// Copy of the in-memory heartbeat series recorded since start().
  static std::vector<HeartbeatSample> samples();

  static void register_meter(const ProgressMeter* meter) noexcept;
  static void unregister_meter(const ProgressMeter* meter) noexcept;
  static void register_set(const SetTelemetrySource* set);
  /// Folds the set's final sample into the retired aggregate, then drops
  /// it from the live list.
  static void unregister_set(const SetTelemetrySource* set);

  /// Aggregate of every set that lived in this process (retired + live):
  /// the run-report "store" section. Available with telemetry off.
  static SetSample set_aggregate();
  static std::uint64_t sets_seen() noexcept;
};

}  // namespace nonmask::obs
