#include "obs/dashboard.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace nonmask::obs {

namespace {

// ---------------------------------------------------------------------------
// Formatting helpers
// ---------------------------------------------------------------------------

std::string html_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

/// 1234 -> "1,234" (tables want exact values, tiles want short ones).
std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

/// 612220032 -> "612.2M"; keeps small values exact.
std::string human_count(double v) {
  const double a = std::fabs(v);
  if (a >= 1e9) return fmt(v / 1e9, a >= 1e10 ? 0 : 1) + "B";
  if (a >= 1e6) return fmt(v / 1e6, a >= 1e7 ? 0 : 1) + "M";
  if (a >= 1e3) return fmt(v / 1e3, a >= 1e4 ? 0 : 1) + "K";
  if (a >= 10 || v == std::floor(v)) return fmt(v, 0);
  return fmt(v, 1);
}

std::string human_bytes(double v) {
  if (v >= 1024.0 * 1024.0 * 1024.0) {
    return fmt(v / (1024.0 * 1024.0 * 1024.0), 1) + " GiB";
  }
  if (v >= 1024.0 * 1024.0) return fmt(v / (1024.0 * 1024.0), 1) + " MiB";
  if (v >= 1024.0) return fmt(v / 1024.0, 1) + " KiB";
  return fmt(v, 0) + " B";
}

std::string fmt_duration_ms(std::uint64_t ms) {
  if (ms < 1000) return std::to_string(ms) + " ms";
  const double s = static_cast<double>(ms) / 1000.0;
  if (s < 120.0) return fmt(s, 1) + " s";
  const std::uint64_t whole_s = ms / 1000;
  return std::to_string(whole_s / 60) + "m " + std::to_string(whole_s % 60) +
         "s";
}

/// Axis label for a time value in seconds.
std::string fmt_time_axis(double s) {
  if (s >= 120.0) {
    const std::uint64_t whole = static_cast<std::uint64_t>(s + 0.5);
    if (whole % 60 == 0) return std::to_string(whole / 60) + "m";
    return std::to_string(whole / 60) + "m" + std::to_string(whole % 60) + "s";
  }
  if (s >= 10.0 || s == std::floor(s)) return fmt(s, 0) + "s";
  return fmt(s, 1) + "s";
}

// ---------------------------------------------------------------------------
// Chart geometry
// ---------------------------------------------------------------------------

constexpr double kW = 640.0;   ///< SVG viewBox width
constexpr double kH = 230.0;   ///< SVG viewBox height
constexpr double kML = 56.0;   ///< left margin (y tick labels)
constexpr double kMR = 14.0;
constexpr double kMT = 14.0;
constexpr double kMB = 30.0;   ///< bottom margin (x tick labels)
constexpr double kPlotW = kW - kML - kMR;
constexpr double kPlotH = kH - kMT - kMB;

/// Round a step up to the nearest 1/2/5 x 10^k, so axis ticks land on
/// round numbers.
double nice_step(double raw) {
  if (raw <= 0.0) return 1.0;
  const double mag = std::pow(10.0, std::floor(std::log10(raw)));
  const double frac = raw / mag;
  if (frac <= 1.0) return mag;
  if (frac <= 2.0) return 2.0 * mag;
  if (frac <= 5.0) return 5.0 * mag;
  return 10.0 * mag;
}

/// Ticks from 0 up to (at least) hi.
std::vector<double> nice_ticks(double hi, int target) {
  if (hi <= 0.0) hi = 1.0;
  const double step = nice_step(hi / target);
  std::vector<double> ticks;
  for (double t = 0.0; t <= hi + step * 0.5; t += step) ticks.push_back(t);
  return ticks;
}

enum class Unit { kCount, kRate, kMegabytes, kBytes };

const char* unit_tag(Unit u) {
  switch (u) {
    case Unit::kRate: return "rate";
    case Unit::kMegabytes: return "mb";
    case Unit::kBytes: return "bytes";
    default: return "count";
  }
}

std::string unit_label(Unit u, double v) {
  switch (u) {
    case Unit::kRate: return human_count(v) + "/s";
    case Unit::kMegabytes: return fmt(v, v >= 100 ? 0 : 1) + " MB";
    case Unit::kBytes: return human_bytes(v);
    default: return human_count(v);
  }
}

struct ChartSeries {
  std::string name;
  std::vector<double> y;
};

struct ChartDef {
  std::string title;
  Unit unit = Unit::kCount;
  std::vector<ChartSeries> series;  ///< 1 or 2; colors assigned in order
};

/// One time-series card: optional legend, inline SVG (gridlines, area wash
/// for single series, 2px lines), an embedded JSON data block for the hover
/// layer, and geometry data-attributes the script uses to map mouse x back
/// to a sample index.
void render_line_chart(std::ostream& out, const ChartDef& def,
                       const std::vector<double>& xs) {
  double ymax = 0.0;
  for (const ChartSeries& s : def.series) {
    for (double v : s.y) ymax = std::max(ymax, v);
  }
  const std::vector<double> yticks = nice_ticks(ymax, 4);
  const double ytop = yticks.back();
  const double x0 = xs.front();
  const double x1 = std::max(xs.back(), x0 + 1e-9);

  const auto px = [&](double x) {
    return kML + (x - x0) / (x1 - x0) * kPlotW;
  };
  const auto py = [&](double y) {
    return kMT + kPlotH - (ytop <= 0.0 ? 0.0 : y / ytop * kPlotH);
  };

  out << "<div class=\"card chart\" data-unit=\"" << unit_tag(def.unit)
      << "\">\n";
  out << "<h3>" << html_escape(def.title) << "</h3>\n";
  if (def.series.size() >= 2) {
    out << "<div class=\"legend\">";
    for (std::size_t i = 0; i < def.series.size(); ++i) {
      out << "<span><i class=\"key s" << (i + 1) << "\"></i>"
          << html_escape(def.series[i].name) << "</span>";
    }
    out << "</div>\n";
  }
  out << "<div class=\"plot\"><svg viewBox=\"0 0 " << fmt(kW, 0) << ' '
      << fmt(kH, 0) << "\" data-ml=\"" << fmt(kML, 0) << "\" data-mt=\""
      << fmt(kMT, 0) << "\" data-pw=\"" << fmt(kPlotW, 0) << "\" data-ph=\""
      << fmt(kPlotH, 0) << "\" data-x0=\"" << fmt(x0, 3) << "\" data-x1=\""
      << fmt(x1, 3) << "\" data-ytop=\"" << fmt(ytop, 6)
      << "\" role=\"img\" aria-label=\"" << html_escape(def.title) << "\">\n";

  // Horizontal hairline gridlines + y tick labels (baseline heavier).
  for (double t : yticks) {
    const double y = py(t);
    out << "<line class=\"" << (t == 0.0 ? "baseline" : "grid") << "\" x1=\""
        << fmt(kML, 1) << "\" y1=\"" << fmt(y, 1) << "\" x2=\""
        << fmt(kW - kMR, 1) << "\" y2=\"" << fmt(y, 1) << "\"/>\n";
    out << "<text class=\"tick\" x=\"" << fmt(kML - 6, 1) << "\" y=\""
        << fmt(y + 3.5, 1) << "\" text-anchor=\"end\">"
        << html_escape(def.unit == Unit::kBytes ? human_bytes(t)
                                                : human_count(t))
        << "</text>\n";
  }
  // X ticks: round time values.
  const std::vector<double> xticks_all = nice_ticks(x1 - x0, 5);
  for (double t : xticks_all) {
    const double xv = x0 + t;
    if (xv > x1 + 1e-9) continue;
    out << "<text class=\"tick\" x=\"" << fmt(px(xv), 1) << "\" y=\""
        << fmt(kH - kMB + 16, 1) << "\" text-anchor=\"middle\">"
        << html_escape(fmt_time_axis(xv)) << "</text>\n";
  }

  // Area wash under a single series only (two washes would occlude).
  if (def.series.size() == 1) {
    const ChartSeries& s = def.series.front();
    out << "<path class=\"wash s1\" d=\"M" << fmt(px(xs.front()), 1) << ','
        << fmt(py(0.0), 1);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      out << " L" << fmt(px(xs[i]), 1) << ',' << fmt(py(s.y[i]), 1);
    }
    out << " L" << fmt(px(xs.back()), 1) << ',' << fmt(py(0.0), 1)
        << " Z\"/>\n";
  }
  for (std::size_t si = 0; si < def.series.size(); ++si) {
    out << "<polyline class=\"line s" << (si + 1) << "\" points=\"";
    for (std::size_t i = 0; i < xs.size(); ++i) {
      if (i != 0) out << ' ';
      out << fmt(px(xs[i]), 1) << ',' << fmt(py(def.series[si].y[i]), 1);
    }
    out << "\"/>\n";
  }

  // Hover layer targets, positioned by the inline script.
  out << "<line class=\"cross\" y1=\"" << fmt(kMT, 1) << "\" y2=\""
      << fmt(kMT + kPlotH, 1) << "\" style=\"display:none\"/>\n";
  for (std::size_t si = 0; si < def.series.size(); ++si) {
    out << "<circle class=\"dot s" << (si + 1)
        << "\" r=\"4\" style=\"display:none\"/>\n";
  }
  out << "</svg><div class=\"tip\" style=\"display:none\"></div></div>\n";

  // Embedded data for the hover layer.
  out << "<script type=\"application/json\" class=\"d\">{\"x\":[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) out << ',';
    out << fmt(xs[i], 3);
  }
  out << "],\"series\":[";
  for (std::size_t si = 0; si < def.series.size(); ++si) {
    if (si != 0) out << ',';
    out << "{\"name\":\"" << json_escape(def.series[si].name)
        << "\",\"y\":[";
    for (std::size_t i = 0; i < def.series[si].y.size(); ++i) {
      if (i != 0) out << ',';
      out << fmt(def.series[si].y[i], 3);
    }
    out << "]}";
  }
  out << "]}</script>\n</div>\n";
}

/// Shard-occupancy heatmap: one row per shard bucket, one column per
/// sample bucket, quantized onto a six-step single-hue ramp (classes q1-q6,
/// q0 = untouched) so dark mode can restep the ramp in CSS.
void render_heatmap(std::ostream& out,
                    const std::vector<HeartbeatSample>& samples,
                    const std::vector<double>& xs) {
  // The heartbeat's first sampled set carries the per-shard series.
  std::size_t shards = 0;
  for (const HeartbeatSample& s : samples) {
    if (!s.sets.empty() && !s.sets.front().shard_entries.empty()) {
      shards = std::max(shards, s.sets.front().shard_entries.size());
    }
  }
  if (shards == 0) return;

  constexpr std::size_t kMaxRows = 32;
  constexpr std::size_t kMaxCols = 120;
  const std::size_t row_bucket = (shards + kMaxRows - 1) / kMaxRows;
  const std::size_t rows = (shards + row_bucket - 1) / row_bucket;
  const std::size_t col_bucket =
      (samples.size() + kMaxCols - 1) / kMaxCols;
  const std::size_t cols = (samples.size() + col_bucket - 1) / col_bucket;

  // cells[r][c]: summed occupancy of the bucket's shards at the bucket's
  // last sample (occupancy is cumulative, so last-in-bucket is exact).
  std::vector<std::vector<double>> cells(rows, std::vector<double>(cols, 0));
  double vmax = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t si =
        std::min(samples.size() - 1, (c + 1) * col_bucket - 1);
    const HeartbeatSample& s = samples[si];
    if (s.sets.empty()) continue;
    const std::vector<std::uint64_t>& occ = s.sets.front().shard_entries;
    for (std::size_t sh = 0; sh < occ.size(); ++sh) {
      cells[sh / row_bucket][c] += static_cast<double>(occ[sh]);
    }
    for (std::size_t r = 0; r < rows; ++r) vmax = std::max(vmax, cells[r][c]);
  }
  if (vmax <= 0.0) return;

  const double x0 = xs.front();
  const double x1 = std::max(xs.back(), x0 + 1e-9);
  const double cell_w = kPlotW / static_cast<double>(cols);
  const double cell_h = kPlotH / static_cast<double>(rows);

  out << "<div class=\"card\">\n<h3>Visited-set shard occupancy over time"
      << "</h3>\n<p class=\"sub\">rows: shard"
      << (row_bucket > 1 ? " buckets of " + std::to_string(row_bucket) : "s")
      << " 0–" << (shards - 1)
      << " (top = shard 0) &middot; darker = more entries &middot; max cell "
      << human_count(vmax) << "</p>\n";
  out << "<svg viewBox=\"0 0 " << fmt(kW, 0) << ' ' << fmt(kH, 0)
      << "\" role=\"img\" aria-label=\"shard occupancy heatmap\">\n";
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      int q = 0;
      if (cells[r][c] > 0.0) {
        q = 1 + static_cast<int>(cells[r][c] / vmax * 5.999);
        q = std::min(q, 6);
      }
      out << "<rect class=\"q" << q << "\" x=\""
          << fmt(kML + static_cast<double>(c) * cell_w, 1) << "\" y=\""
          << fmt(kMT + static_cast<double>(r) * cell_h, 1) << "\" width=\""
          << fmt(std::max(cell_w - 1.0, 0.5), 1) << "\" height=\""
          << fmt(std::max(cell_h - 1.0, 0.5), 1) << "\"/>\n";
    }
  }
  const std::vector<double> xticks = nice_ticks(x1 - x0, 5);
  for (double t : xticks) {
    const double xv = x0 + t;
    if (xv > x1 + 1e-9) continue;
    out << "<text class=\"tick\" x=\""
        << fmt(kML + (xv - x0) / (x1 - x0) * kPlotW, 1) << "\" y=\""
        << fmt(kH - kMB + 16, 1) << "\" text-anchor=\"middle\">"
        << html_escape(fmt_time_axis(xv)) << "</text>\n";
  }
  out << "</svg>\n</div>\n";
}

// ---------------------------------------------------------------------------
// Static page chrome
// ---------------------------------------------------------------------------

// CSS custom properties carry the palette; the dark block restates them
// under both the user-agent media query and an explicit [data-theme="dark"]
// scope. Series/text/grid tokens follow the repo dataviz conventions:
// text wears text tokens (never series color), hairline gridlines, 2px
// lines, ~10% area wash, sequential single-hue ramp for the heatmap.
const char kCss[] = R"CSS(
:root {
  --surface:#fcfcfb; --card:#ffffff; --text:#0b0b0b; --text2:#52514e;
  --muted:#898781; --grid:#e1e0d9; --baseline:#c3c2b7;
  --s1:#2a78d6; --s2:#eb6834;
  --q0:var(--surface); --q1:#cde2fb; --q2:#86b6ef; --q3:#3987e5;
  --q4:#2a78d6; --q5:#1c5cab; --q6:#0d366b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface:#1a1a19; --card:#222221; --text:#ffffff; --text2:#c3c2b7;
    --muted:#898781; --grid:#2c2c2a; --baseline:#383835;
    --s1:#3987e5; --s2:#d95926;
    --q0:var(--surface); --q1:#0d366b; --q2:#1c5cab; --q3:#2a78d6;
    --q4:#3987e5; --q5:#86b6ef; --q6:#cde2fb;
  }
}
[data-theme="dark"] {
  --surface:#1a1a19; --card:#222221; --text:#ffffff; --text2:#c3c2b7;
  --muted:#898781; --grid:#2c2c2a; --baseline:#383835;
  --s1:#3987e5; --s2:#d95926;
  --q0:var(--surface); --q1:#0d366b; --q2:#1c5cab; --q3:#2a78d6;
  --q4:#3987e5; --q5:#86b6ef; --q6:#cde2fb;
}
* { box-sizing:border-box; }
body {
  margin:0; padding:24px; background:var(--surface); color:var(--text);
  font:14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width:1360px; margin:0 auto; }
h1 { font-size:20px; margin:0 0 2px; }
h3 { font-size:13px; font-weight:600; margin:0 0 8px; color:var(--text); }
p.sub { color:var(--text2); margin:0 0 16px; font-size:13px; }
.card p.sub { margin:-4px 0 8px; font-size:12px; }
.tiles { display:grid; grid-template-columns:repeat(auto-fit,minmax(180px,1fr));
  gap:12px; margin:16px 0; }
.tile { background:var(--card); border:1px solid var(--grid);
  border-radius:8px; padding:12px 14px; }
.tile .v { font-size:24px; font-weight:650; letter-spacing:-0.01em; }
.tile .l { color:var(--text2); font-size:12px; margin-top:2px; }
.grid2 { display:grid; grid-template-columns:repeat(auto-fit,minmax(420px,1fr));
  gap:12px; }
.card { background:var(--card); border:1px solid var(--grid);
  border-radius:8px; padding:14px; margin:0 0 12px; }
.plot { position:relative; }
svg { display:block; width:100%; height:auto; }
svg .grid { stroke:var(--grid); stroke-width:1; }
svg .baseline { stroke:var(--baseline); stroke-width:1; }
svg .tick { fill:var(--muted); font-size:10px;
  font-family:system-ui, -apple-system, "Segoe UI", sans-serif; }
svg .line { fill:none; stroke-width:2; stroke-linejoin:round; }
svg .line.s1, svg .dot.s1 { stroke:var(--s1); }
svg .line.s2, svg .dot.s2 { stroke:var(--s2); }
svg .dot { fill:var(--card); stroke-width:2; }
svg .wash.s1 { fill:var(--s1); opacity:0.1; }
svg .cross { stroke:var(--baseline); stroke-width:1; }
svg rect.q0 { fill:var(--q0); stroke:var(--grid); stroke-width:0.5; }
svg rect.q1 { fill:var(--q1); } svg rect.q2 { fill:var(--q2); }
svg rect.q3 { fill:var(--q3); } svg rect.q4 { fill:var(--q4); }
svg rect.q5 { fill:var(--q5); } svg rect.q6 { fill:var(--q6); }
.legend { display:flex; gap:14px; font-size:12px; color:var(--text2);
  margin:0 0 6px; }
.legend .key { display:inline-block; width:10px; height:10px;
  border-radius:3px; margin-right:5px; vertical-align:-1px; }
.legend .key.s1 { background:var(--s1); }
.legend .key.s2 { background:var(--s2); }
.tip { position:absolute; pointer-events:none; background:var(--card);
  border:1px solid var(--baseline); border-radius:6px; padding:6px 9px;
  font-size:12px; color:var(--text); box-shadow:0 2px 8px rgba(0,0,0,0.12);
  white-space:nowrap; z-index:2; }
.tip .t { color:var(--text2); }
table { border-collapse:collapse; width:100%; font-size:13px; }
th { text-align:left; color:var(--text2); font-weight:600;
  border-bottom:1px solid var(--baseline); padding:5px 10px 5px 0; }
td { border-bottom:1px solid var(--grid); padding:5px 10px 5px 0;
  font-variant-numeric:tabular-nums; }
td.num, th.num { text-align:right; }
details summary { cursor:pointer; color:var(--text2); font-size:13px;
  margin:4px 0 8px; }
footer { color:var(--muted); font-size:12px; margin:18px 0 4px; }
)CSS";

// Hover layer: per chart card, nearest-sample crosshair + tooltip. Data
// and pixel geometry are embedded by the renderer; no network, no
// libraries.
const char kJs[] = R"JS(
(function () {
  function fmtCount(v) {
    var a = Math.abs(v);
    if (a >= 1e9) return (v / 1e9).toFixed(a >= 1e10 ? 0 : 1) + 'B';
    if (a >= 1e6) return (v / 1e6).toFixed(a >= 1e7 ? 0 : 1) + 'M';
    if (a >= 1e3) return (v / 1e3).toFixed(a >= 1e4 ? 0 : 1) + 'K';
    return a >= 10 || v === Math.floor(v) ? v.toFixed(0) : v.toFixed(1);
  }
  function fmtBytes(v) {
    if (v >= 1073741824) return (v / 1073741824).toFixed(1) + ' GiB';
    if (v >= 1048576) return (v / 1048576).toFixed(1) + ' MiB';
    if (v >= 1024) return (v / 1024).toFixed(1) + ' KiB';
    return v.toFixed(0) + ' B';
  }
  function fmtVal(v, unit) {
    if (unit === 'rate') return fmtCount(v) + '/s';
    if (unit === 'mb') return v.toFixed(v >= 100 ? 0 : 1) + ' MB';
    if (unit === 'bytes') return fmtBytes(v);
    return fmtCount(v);
  }
  function fmtTime(s) {
    if (s >= 120) {
      var w = Math.round(s);
      return Math.floor(w / 60) + 'm' + (w % 60 ? (w % 60) + 's' : '');
    }
    return (s >= 10 ? s.toFixed(0) : s.toFixed(1)) + 's';
  }
  document.querySelectorAll('.chart').forEach(function (card) {
    var dataEl = card.querySelector('script.d');
    var svg = card.querySelector('svg');
    var tip = card.querySelector('.tip');
    if (!dataEl || !svg || !tip) return;
    var data = JSON.parse(dataEl.textContent);
    var unit = card.dataset.unit;
    var ml = +svg.dataset.ml, mt = +svg.dataset.mt;
    var pw = +svg.dataset.pw, ph = +svg.dataset.ph;
    var x0 = +svg.dataset.x0, x1 = +svg.dataset.x1;
    var ytop = +svg.dataset.ytop;
    var cross = svg.querySelector('.cross');
    var dots = svg.querySelectorAll('.dot');
    svg.addEventListener('mousemove', function (ev) {
      var rect = svg.getBoundingClientRect();
      var vx = (ev.clientX - rect.left) / rect.width * 640;
      var t = x0 + (vx - ml) / pw * (x1 - x0);
      var best = 0, bestD = Infinity;
      for (var i = 0; i < data.x.length; i++) {
        var d = Math.abs(data.x[i] - t);
        if (d < bestD) { bestD = d; best = i; }
      }
      var cx = ml + (data.x[best] - x0) / (x1 - x0) * pw;
      cross.setAttribute('x1', cx);
      cross.setAttribute('x2', cx);
      cross.style.display = '';
      var html = '<span class="t">' + fmtTime(data.x[best]) + '</span>';
      data.series.forEach(function (s, si) {
        var v = s.y[best];
        var cy = mt + ph - (ytop > 0 ? v / ytop * ph : 0);
        if (dots[si]) {
          dots[si].setAttribute('cx', cx);
          dots[si].setAttribute('cy', cy);
          dots[si].style.display = '';
        }
        html += '<br>' + (data.series.length > 1 ? s.name + ': ' : '') +
                fmtVal(v, unit);
      });
      tip.innerHTML = html;
      tip.style.display = '';
      var left = cx / 640 * rect.width + 12;
      if (left > rect.width - 140) left -= 160;
      tip.style.left = left + 'px';
      tip.style.top = '10px';
    });
    svg.addEventListener('mouseleave', function () {
      cross.style.display = 'none';
      dots.forEach(function (d) { d.style.display = 'none'; });
      tip.style.display = 'none';
    });
  });
})();
)JS";

void render_tile(std::ostream& out, const std::string& value,
                 const std::string& label) {
  out << "<div class=\"tile\"><div class=\"v\">" << html_escape(value)
      << "</div><div class=\"l\">" << html_escape(label) << "</div></div>\n";
}

void render_kv_table(
    std::ostream& out, const char* heading,
    const std::vector<std::pair<std::string, std::string>>& rows) {
  out << "<div class=\"card\">\n<h3>" << heading << "</h3>\n<table>\n";
  for (const auto& [k, v] : rows) {
    out << "<tr><td>" << html_escape(k) << "</td><td class=\"num\">"
        << html_escape(v) << "</td></tr>\n";
  }
  out << "</table>\n</div>\n";
}

void render_data_table(std::ostream& out, const DashboardTable& table) {
  out << "<div class=\"card\">\n<h3>" << html_escape(table.title)
      << "</h3>\n<table>\n<tr>";
  for (const std::string& c : table.columns) {
    out << "<th>" << html_escape(c) << "</th>";
  }
  out << "</tr>\n";
  for (const auto& row : table.rows) {
    out << "<tr>";
    for (std::size_t i = 0; i < table.columns.size(); ++i) {
      out << "<td>" << (i < row.size() ? html_escape(row[i]) : "") << "</td>";
    }
    out << "</tr>\n";
  }
  out << "</table>\n</div>\n";
}

void render_trace_table(std::ostream& out) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& e : Trace::events()) {
    Agg& a = by_name[e.name];
    ++a.count;
    a.total_us += e.dur_us;
    a.max_us = std::max(a.max_us, e.dur_us);
  }
  if (by_name.empty()) return;
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  out << "<div class=\"card\">\n<h3>Trace spans</h3>\n<table>\n"
      << "<tr><th>span</th><th class=\"num\">count</th>"
      << "<th class=\"num\">total</th><th class=\"num\">mean</th>"
      << "<th class=\"num\">max</th></tr>\n";
  for (const auto& [name, a] : rows) {
    out << "<tr><td>" << html_escape(name) << "</td><td class=\"num\">"
        << with_commas(a.count) << "</td><td class=\"num\">"
        << fmt(static_cast<double>(a.total_us) / 1000.0, 1)
        << " ms</td><td class=\"num\">"
        << fmt(static_cast<double>(a.total_us) / 1000.0 /
                   static_cast<double>(a.count),
               2)
        << " ms</td><td class=\"num\">"
        << fmt(static_cast<double>(a.max_us) / 1000.0, 1)
        << " ms</td></tr>\n";
  }
  out << "</table>\n</div>\n";
}

}  // namespace

void write_dashboard_html(std::ostream& out, const DashboardSpec& spec) {
  const std::vector<HeartbeatSample>& samples = spec.samples;
  const HeartbeatSample* last = samples.empty() ? nullptr : &samples.back();

  out << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      << "<meta charset=\"utf-8\">\n"
      << "<meta name=\"viewport\" content=\"width=device-width, "
         "initial-scale=1\">\n"
      << "<title>" << html_escape(spec.title) << "</title>\n"
      << "<style>" << kCss << "</style>\n</head>\n<body>\n<main>\n";
  out << "<h1>" << html_escape(spec.title) << "</h1>\n";
  if (!spec.subtitle.empty()) {
    out << "<p class=\"sub\">" << html_escape(spec.subtitle) << "</p>\n";
  }

  // Stat tiles.
  out << "<div class=\"tiles\">\n";
  if (last != nullptr) {
    double peak_rate = 0.0;
    for (const HeartbeatSample& s : samples) {
      peak_rate = std::max(peak_rate, s.states_per_sec);
    }
    render_tile(out, human_count(static_cast<double>(last->states_explored)),
                "states explored");
    render_tile(out, human_count(peak_rate) + "/s", "peak throughput");
    render_tile(out, fmt(last->peak_rss_mb, last->peak_rss_mb >= 100 ? 0 : 1) +
                         " MB",
                "peak RSS");
    render_tile(out, fmt_duration_ms(last->t_ms), "sampled wall time");
  } else {
    render_tile(out, "—", "no heartbeat samples recorded");
  }
  out << "</div>\n";

  // Time-series cards need at least two heartbeats.
  if (samples.size() >= 2) {
    std::vector<double> xs;
    xs.reserve(samples.size());
    for (const HeartbeatSample& s : samples) {
      xs.push_back(static_cast<double>(s.t_ms) / 1000.0);
    }
    const auto collect = [&](auto&& get) {
      std::vector<double> ys;
      ys.reserve(samples.size());
      for (const HeartbeatSample& s : samples) {
        ys.push_back(static_cast<double>(get(s)));
      }
      return ys;
    };
    const auto any_nonzero = [](const std::vector<double>& ys) {
      return std::any_of(ys.begin(), ys.end(),
                         [](double v) { return v > 0.0; });
    };

    out << "<div class=\"grid2\">\n";
    render_line_chart(
        out,
        {"Instantaneous throughput",
         Unit::kRate,
         {{"states/s",
           collect([](const HeartbeatSample& s) { return s.states_per_sec; })}}},
        xs);
    render_line_chart(
        out,
        {"Cumulative states explored",
         Unit::kCount,
         {{"states", collect([](const HeartbeatSample& s) {
             return s.states_explored;
           })}}},
        xs);
    render_line_chart(
        out,
        {"Resident memory",
         Unit::kMegabytes,
         {{"current",
           collect([](const HeartbeatSample& s) { return s.rss_mb; })},
          {"peak",
           collect([](const HeartbeatSample& s) { return s.peak_rss_mb; })}}},
        xs);
    const std::vector<double> frontier =
        collect([](const HeartbeatSample& s) { return s.frontier; });
    if (any_nonzero(frontier)) {
      render_line_chart(out,
                        {"Frontier size", Unit::kCount, {{"states", frontier}}},
                        xs);
    }
    const std::vector<double> spill = collect(
        [](const HeartbeatSample& s) { return s.frontier_spill_bytes; });
    if (any_nonzero(spill)) {
      render_line_chart(
          out, {"Frontier spill (cumulative)", Unit::kBytes, {{"bytes", spill}}},
          xs);
    }
    out << "</div>\n";
    render_heatmap(out, samples, xs);
  }

  out << "<div class=\"grid2\">\n";
  if (!spec.summary.empty()) render_kv_table(out, "Run summary", spec.summary);
  for (const DashboardTable& table : spec.tables) {
    render_data_table(out, table);
  }
  if (last != nullptr) {
    std::vector<std::pair<std::string, std::string>> rows = {
        {"set probes", with_commas(last->set_probes)},
        {"set grows", with_commas(last->set_grows)},
        {"set CAS retries", with_commas(last->set_cas_retries)},
        {"arena slab allocs", with_commas(last->arena_slab_allocs)},
        {"arena slab bytes",
         human_bytes(static_cast<double>(last->arena_slab_bytes))},
        {"frontier spill flushes", with_commas(last->frontier_spill_flushes)},
        {"frontier spill bytes",
         human_bytes(static_cast<double>(last->frontier_spill_bytes))},
        {"frontier levels", with_commas(last->frontier_levels)},
        {"frontier merge rounds", with_commas(last->frontier_merge_rounds)},
        {"campaign trials", with_commas(last->campaign_trials)},
        {"campaign retries", with_commas(last->campaign_retries)},
        {"campaign timeouts", with_commas(last->campaign_timeouts)},
        {"live workers at stop", std::to_string(last->workers)},
    };
    render_kv_table(out, "Depth counters (final heartbeat)", rows);
    if (!last->sets.empty()) {
      out << "<div class=\"card\">\n<h3>Visited sets (final heartbeat)</h3>\n"
          << "<table>\n<tr><th class=\"num\">shards</th>"
          << "<th class=\"num\">materialized</th>"
          << "<th class=\"num\">entries</th><th class=\"num\">load</th>"
          << "<th class=\"num\">max probe</th>"
          << "<th class=\"num\">arena</th></tr>\n";
      for (const SetSample& set : last->sets) {
        const double load =
            set.capacity == 0 ? 0.0
                              : static_cast<double>(set.entries) /
                                    static_cast<double>(set.capacity) * 100.0;
        out << "<tr><td class=\"num\">" << set.shards
            << "</td><td class=\"num\">" << set.materialized
            << "</td><td class=\"num\">" << with_commas(set.entries)
            << "</td><td class=\"num\">" << fmt(load, 1)
            << "%</td><td class=\"num\">" << set.max_probe
            << "</td><td class=\"num\">"
            << human_bytes(static_cast<double>(set.arena_bytes))
            << "</td></tr>\n";
      }
      out << "</table>\n</div>\n";
    }
  }
  if (spec.include_trace) render_trace_table(out);
  out << "</div>\n";

  // Table-view twin of the time-series charts.
  if (!samples.empty()) {
    out << "<details><summary>Heartbeat table (" << samples.size()
        << " samples)</summary>\n<div class=\"card\">\n<table>\n"
        << "<tr><th class=\"num\">#</th><th class=\"num\">t</th>"
        << "<th class=\"num\">states</th><th class=\"num\">states/s</th>"
        << "<th class=\"num\">frontier</th><th class=\"num\">RSS</th>"
        << "<th class=\"num\">workers</th></tr>\n";
    for (const HeartbeatSample& s : samples) {
      out << "<tr><td class=\"num\">" << s.seq << "</td><td class=\"num\">"
          << fmt_duration_ms(s.t_ms) << "</td><td class=\"num\">"
          << with_commas(s.states_explored) << "</td><td class=\"num\">"
          << human_count(s.states_per_sec) << "</td><td class=\"num\">"
          << with_commas(s.frontier) << "</td><td class=\"num\">"
          << fmt(s.rss_mb, 1) << " MB</td><td class=\"num\">" << s.workers
          << "</td></tr>\n";
    }
    out << "</table>\n</div>\n</details>\n";
  }

  out << "<footer>Generated by nonmask telemetry; self-contained (no "
         "external resources).</footer>\n";
  out << "</main>\n<script>" << kJs << "</script>\n</body>\n</html>\n";
}

void write_dashboard_file(const std::string& path, const DashboardSpec& spec) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("write_dashboard_file: cannot open " + path);
  }
  write_dashboard_html(out, spec);
}

}  // namespace nonmask::obs
