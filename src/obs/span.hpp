// Tracing spans: RAII scoped timers that record complete ("ph":"X") events
// per thread and export Chrome trace-event JSON — loadable in
// chrome://tracing or https://ui.perfetto.dev — plus a compact text flame
// summary grouped by span name.
//
// Recording is off by default; a dormant Span costs one relaxed atomic load
// in its constructor. Span names must be string literals (or otherwise
// outlive the trace buffer): events store the pointer, not a copy.
// Timestamps are microseconds on the steady clock relative to the first
// enable, and the tid is current_thread_tag() — the same id the log prefix
// prints.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/metrics.hpp"

namespace nonmask::obs {

struct TraceEvent {
  const char* name = nullptr;
  unsigned tid = 0;
  std::uint64_t ts_us = 0;   ///< span begin, relative to the trace epoch
  std::uint64_t dur_us = 0;  ///< span duration
};

/// Process-wide trace recorder.
class Trace {
 public:
  static void set_enabled(bool on) noexcept;
  static bool enabled() noexcept;

  /// Drop all recorded events (the epoch is kept).
  static void clear();
  static std::size_t event_count();
  static std::vector<TraceEvent> events();

  /// Chrome trace-event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}.
  static void write_chrome_trace(std::ostream& out);
  /// Per-name aggregate table (count, total/mean/max ms), widest first.
  static void write_flame_summary(std::ostream& out);
};

/// Scoped timer. Records a trace event when tracing is enabled and, when a
/// histogram is attached, the span duration in microseconds when metrics
/// collection is enabled — either switch alone activates the timer.
class Span {
 public:
  explicit Span(const char* name, Histogram* duration_us = nullptr) noexcept;
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Finish early (idempotent).
  void end() noexcept;

 private:
  const char* name_;
  Histogram* hist_;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace nonmask::obs
