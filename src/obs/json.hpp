// Minimal streaming JSON writer for the observability exports (metrics
// snapshots, Chrome trace events, run reports). Handles comma insertion and
// string escaping; callers are responsible for pairing begin/end calls.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nonmask::obs {

/// `s` with JSON string escapes applied (quotes, backslash, control chars).
std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  /// Appends to `out`; the string must outlive the writer.
  explicit JsonWriter(std::string* out) : out_(out) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object key; must be followed by exactly one value or container.
  void key(std::string_view k);

  void value(std::string_view v);  ///< quoted + escaped
  void value(const char* v) { value(std::string_view(v)); }
  void value(std::uint64_t v);
  void value(std::int64_t v);
  /// Plain int / size_t literals would otherwise be ambiguous between the
  /// integer overloads; forward them explicitly.
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(double v);  ///< non-finite values serialize as null
  void value(bool v);
  void null();
  /// Splice a pre-rendered JSON value verbatim.
  void raw(std::string_view json);

 private:
  void separate();

  std::string* out_;
  // One frame per open container: true once the first element was written.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace nonmask::obs
