#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>

#include "util/logging.hpp"

namespace nonmask::obs {

namespace {
std::atomic<bool> g_metrics_enabled{false};

unsigned bucket_of(std::uint64_t v) noexcept {
  // Bucket 0: v == 0; bucket b >= 1: 2^(b-1) <= v < 2^b.
  return v == 0 ? 0u : static_cast<unsigned>(64 - std::countl_zero(v));
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace

void Metrics::set_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}
bool Metrics::enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

double HistogramSnapshot::approx_percentile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(count - 1);
  std::uint64_t seen = 0;
  for (unsigned b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) > rank) {
      // Upper bound of bucket b, clamped into the observed range.
      const std::uint64_t bound = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
      return static_cast<double>(std::clamp(bound, min, max));
    }
  }
  return static_cast<double>(max);
}

Histogram::~Histogram() {
  for (auto& slot : shards_) {
    delete slot.load(std::memory_order_acquire);
  }
}

Histogram::Shard& Histogram::shard_for_this_thread() noexcept {
  auto& slot = shards_[current_thread_tag() % kShardSlots];
  Shard* shard = slot.load(std::memory_order_acquire);
  if (shard == nullptr) {
    Shard* fresh = new Shard();
    if (slot.compare_exchange_strong(shard, fresh,
                                     std::memory_order_acq_rel)) {
      return *fresh;
    }
    delete fresh;  // another thread on this slot won the race
  }
  return *shard;
}

void Histogram::record(std::uint64_t value) noexcept {
  if (!Metrics::enabled()) return;
  Shard& shard = shard_for_this_thread();
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  atomic_min(shard.min, value);
  atomic_max(shard.max, value);
  shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.min = ~std::uint64_t{0};
  for (const auto& slot : shards_) {
    const Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    snap.count += shard->count.load(std::memory_order_relaxed);
    snap.sum += shard->sum.load(std::memory_order_relaxed);
    snap.min = std::min(snap.min, shard->min.load(std::memory_order_relaxed));
    snap.max = std::max(snap.max, shard->max.load(std::memory_order_relaxed));
    for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
      snap.buckets[b] += shard->buckets[b].load(std::memory_order_relaxed);
    }
  }
  if (snap.count == 0) snap.min = 0;
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& slot : shards_) {
    Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    shard->count.store(0, std::memory_order_relaxed);
    shard->sum.store(0, std::memory_order_relaxed);
    shard->min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    shard->max.store(0, std::memory_order_relaxed);
    for (auto& b : shard->buckets) b.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // never destroyed: references
  return *registry;                            // stay valid at exit
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace nonmask::obs
