// Rate-limited progress reporting for long checker, sweep, and campaign
// runs: a process-wide sink plus per-operation meters that print at most
// one line per interval ("states explored, states/sec, frontier size, ...").
//
// Off by default: with no sink configured, ProgressMeter::add is one
// relaxed atomic load and a return. Instrumentation points call add() at
// batch granularity (per slice, chunk, BFS level, or trial), so enabled
// reporting stays off the hot paths too. Meters are safe to tick from many
// threads: counts accumulate with relaxed atomics and the interval gate
// elects one reporting thread by compare-exchange.
//
// Meters double as the telemetry sampler's work-progress source: when
// Telemetry::counting() is true at construction, the meter registers
// itself, keeps done_ accumulating even without a progress sink, and — if
// its label names a state-exploration pass — feeds the process-wide
// states_explored depth counter. With both progress and telemetry off the
// cost of add() is unchanged (one relaxed load plus a member test).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>

namespace nonmask::obs {

struct MeterSample;

/// Process-wide progress configuration.
class Progress {
 public:
  /// Route progress lines to `sink` (must outlive reporting) at most once
  /// per `interval_ms` per meter.
  static void enable(std::ostream* sink, unsigned interval_ms = 500);
  static void disable();
  static bool active() noexcept;
  static unsigned interval_ms() noexcept;
  /// Serialized write of one progress line (internal, used by meters).
  static void write_line(const char* label, std::uint64_t done,
                         std::uint64_t total, double per_sec,
                         const char* aux_text);
};

/// Progress over one long-running operation. `total` == 0 means unknown
/// (no percentage is printed). Construction is cheap; destruction emits a
/// final line only if a periodic line was already printed.
class ProgressMeter {
 public:
  explicit ProgressMeter(const char* label, std::uint64_t total = 0) noexcept;
  ~ProgressMeter();
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  /// Account `n` more units of work; prints when the interval elapsed.
  void add(std::uint64_t n) noexcept;

  /// Publish an auxiliary "label=value" pair shown on subsequent lines
  /// (e.g. frontier size, SCCs found). `label` must be a string literal;
  /// up to 4 distinct labels per meter, extras are dropped.
  void aux(const char* label, std::uint64_t value) noexcept;

  std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }

  /// Fill `out` with label/done/total and the published aux pairs — the
  /// telemetry sampler's read path (safe concurrently with add/aux).
  void sample_into(MeterSample& out) const;

 private:
  void maybe_report(bool force) noexcept;

  const char* label_;
  std::uint64_t total_;
  bool telemetry_ = false;  ///< Telemetry::counting() at construction
  bool explored_ = false;   ///< label counts explored states
  std::atomic<std::uint64_t> done_{0};
  std::uint64_t start_us_ = 0;
  std::atomic<std::uint64_t> last_report_us_{0};
  std::atomic<bool> reported_{false};

  struct AuxSlot {
    std::atomic<const char*> label{nullptr};
    std::atomic<std::uint64_t> value{0};
  };
  AuxSlot aux_[4];
};

}  // namespace nonmask::obs
