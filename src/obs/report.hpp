// Machine-readable run reports: one JSON document that bundles checker
// reports, experiment SampleStats, and the metrics-registry snapshot, so a
// verification or campaign run is self-describing (tool, design, config,
// results, metrics, wall-clock).
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "engine/experiment.hpp"
#include "engine/metrics.hpp"
#include "obs/metrics.hpp"

namespace nonmask::obs {

/// JSON values for the library's result structs.
std::string to_json(const SampleStats& stats);
std::string to_json(const ClosureReport& report);
std::string to_json(const ConvergenceReport& report);
std::string to_json(const ConvergenceResults& results);
std::string to_json(const HistogramSnapshot& snapshot);

/// The full metrics registry as one JSON object
/// {"counters":{...},"gauges":{...},"histograms":{...}}.
std::string metrics_to_json();

/// Accumulates named sections and serializes them with the registry
/// snapshot, an ISO-8601 timestamp, and the report's own wall time.
class RunReport {
 public:
  explicit RunReport(std::string tool, std::string design = "");

  /// Attach a pre-rendered JSON value (e.g. from to_json above).
  void add(std::string key, std::string json_value);
  void add_text(std::string key, std::string_view text);
  void add_number(std::string key, double value);
  void add_number(std::string key, std::uint64_t value);

  /// Render the document; includes the current metrics snapshot.
  std::string to_json() const;
  void write(std::ostream& out) const;

 private:
  std::string tool_;
  std::string design_;
  std::string started_at_;
  std::uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> sections_;  // key, JSON
};

/// Write a RunReport for `tool` to the path in $NONMASK_REPORT_OUT, if that
/// environment variable is set; no-op otherwise. Used by the bench mains so
/// every BENCH_*.json trajectory can carry a self-describing sidecar.
void write_env_report(const char* tool);

}  // namespace nonmask::obs
