#include "obs/rss.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cstdio>

namespace nonmask::obs {

double peak_rss_mb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: KiB
}

double current_rss_mb() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0.0;
  unsigned long long vm_pages = 0, rss_pages = 0;
  const int matched = std::fscanf(f, "%llu %llu", &vm_pages, &rss_pages);
  std::fclose(f);
  if (matched != 2) return 0.0;
  const long page = ::sysconf(_SC_PAGESIZE);
  return static_cast<double>(rss_pages) *
         static_cast<double>(page > 0 ? page : 4096) / (1024.0 * 1024.0);
}

}  // namespace nonmask::obs
