// Process memory sampling, shared by the telemetry sampler, the bench
// mains, and the scale-probe CLI (which previously each carried their own
// getrusage copy).
#pragma once

namespace nonmask::obs {

/// Peak resident set size in MiB (getrusage ru_maxrss; Linux reports KiB).
double peak_rss_mb();

/// Current resident set size in MiB, read from /proc/self/statm. Returns
/// 0.0 where procfs is unavailable — callers treat 0 as "unknown".
double current_rss_mb();

}  // namespace nonmask::obs
