// Fixed-size thread pool and the chunked parallel-for primitive the
// parallel verification subsystem is built on.
//
// Determinism contract: parallel_for_chunked splits [begin, end) into
// chunks of `grain` consecutive indices, numbered 0, 1, ... in range
// order. Which worker executes a chunk (and when) is nondeterministic, but
// callers index their result slots by *chunk number*, so any reduction
// performed in chunk order is independent of the thread count and of
// scheduling. All determinism guarantees in parallel/sweep.hpp and
// parallel/campaign.hpp rest on this.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nonmask {

/// Worker count used when a pool or sweep is asked for "auto" (0) threads:
/// the NONMASK_THREADS environment variable when set to an integer >= 1,
/// else std::thread::hardware_concurrency(), else 1.
unsigned default_threads();

/// A fixed set of worker threads consuming a shared task queue. Workers are
/// spawned in the constructor and joined in the destructor (which waits for
/// every submitted task to finish).
class ThreadPool {
 public:
  /// `threads` == 0 means default_threads().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task. The task receives the executing worker's index in
  /// [0, size()) — use it to index per-worker scratch buffers.
  void submit(std::function<void(unsigned worker)> task);

  /// Block until the queue is empty and every running task has finished.
  /// Establishes happens-before with all completed tasks, so their writes
  /// are visible to the caller afterwards.
  void wait_idle();

 private:
  void worker_loop(unsigned worker);

  std::vector<std::thread> workers_;
  std::deque<std::function<void(unsigned)>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run `fn(chunk, lo, hi, worker)` over every chunk [lo, hi) of
/// [begin, end) with at most `grain` indices per chunk. Chunks are numbered
/// 0, 1, ... in range order. Blocks until every chunk has run; rethrows the
/// first exception a chunk raised (remaining chunks still run). With a
/// single-worker pool or a single chunk the chunks run inline in the
/// calling thread, in order, with worker == 0 — byte-identical behavior,
/// no synchronization.
void parallel_for_chunked(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    std::uint64_t grain,
    const std::function<void(std::size_t chunk, std::uint64_t lo,
                             std::uint64_t hi, unsigned worker)>& fn);

/// Run `fn(index, worker)` for every index in [0, count) — the grain-1
/// special case of parallel_for_chunked, for heterogeneous work items
/// (e.g. synthesis candidate evaluations) where per-index cost varies too
/// much for fixed chunking to balance. Same determinism contract: callers
/// key results by index; completion order is irrelevant.
void parallel_for_each(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t index, unsigned worker)>& fn);

}  // namespace nonmask
