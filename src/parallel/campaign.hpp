// Parallel experiment campaigns: run the trials of a ConvergenceExperiment
// across a thread pool, stream per-trial records to JSONL, and survive the
// campaign's own failures.
//
// Determinism: the per-trial seed pairs are derived up front from the
// master seed with derive_trial_seeds — the exact stream run_experiment
// consumes — and each trial is a pure function of its seeds. Results are
// therefore bit-identical to run_experiment at any thread count, and the
// JSONL stream (flushed in trial order) is byte-identical too.
//
// Resilience (src/resilience/): a per-trial watchdog deadline records
// runaway trials as timed_out instead of hanging the pool; trials that
// throw are retried with backoff and recorded as failed once retries are
// exhausted; a JSONL checkpoint journal plus `resume` replays completed
// trials bit-identically and re-runs only the remainder, so a killed
// campaign's merged stream is byte-identical to an uninterrupted run.
//
// Concurrency contract: the config's factories (make_daemon, make_start,
// make_perturb) and the design's predicates are invoked concurrently and
// must be thread-safe. All shipped protocols and daemons qualify: each
// trial gets its own daemon and Rng, and the predicates are pure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/experiment.hpp"
#include "resilience/journal.hpp"
#include "resilience/watchdog.hpp"
#include "store/config.hpp"

namespace nonmask {

struct CampaignOptions {
  /// Worker threads; 0 = NONMASK_THREADS env override, else hardware
  /// concurrency. 1 = run trials inline, serially.
  unsigned threads = 0;
  /// Optional JSONL sink: one record per trial, streamed in trial order as
  /// trials complete. The stream must outlive run_campaign.
  std::ostream* jsonl = nullptr;
  /// Per-trial watchdog deadline and retry-with-backoff policy. The
  /// default (no deadline, no retries) is byte-identical to the original
  /// runner.
  TrialPolicy policy;
  /// Path of a JSONL checkpoint journal. Completed records are written in
  /// trial order and flushed line-by-line, so a killed campaign leaves a
  /// valid prefix (plus at most one torn line). Empty = no journal.
  std::string checkpoint;
  /// Replay the valid prefix of `checkpoint` (validated against the design
  /// name and derived seeds) instead of re-running those trials; the
  /// journal is rewritten so the final file is byte-identical to an
  /// uninterrupted run's.
  bool resume = false;
  /// Backend routing: under StoreBackend::kStore the multi-threaded trial
  /// loop is dispatched through a FrontierEngine work queue (the same
  /// grain-1 dynamic schedule, shared with the store sweeps) instead of a
  /// private ThreadPool. Records, aggregates, and the JSONL stream are
  /// byte-identical either way — each trial is a pure function of its
  /// seeds, and the streamer flushes in trial order.
  store::StoreConfig store;
};

struct CampaignResults {
  /// Aggregate statistics, bit-identical to run_experiment(design, config)
  /// when no trial timed out or failed.
  ConvergenceResults aggregate;
  /// Every trial's record, in trial order.
  std::vector<TrialRecord> trials;
  std::size_t resumed_trials = 0;  ///< replayed from the checkpoint journal
  std::size_t timed_out = 0;       ///< trials that hit the watchdog deadline
  std::size_t failed = 0;          ///< trials that exhausted their retries
};

/// Run `config.trials` trials of `design` across `opts.threads` workers.
CampaignResults run_campaign(const Design& design,
                             const ConvergenceExperiment& config,
                             const CampaignOptions& opts = {});

}  // namespace nonmask
