// Parallel experiment campaigns: run the trials of a ConvergenceExperiment
// across a thread pool and stream per-trial records to JSONL.
//
// Determinism: the per-trial seed pairs are derived up front from the
// master seed with derive_trial_seeds — the exact stream run_experiment
// consumes — and each trial is a pure function of its seeds. Results are
// therefore bit-identical to run_experiment at any thread count, and the
// JSONL stream (flushed in trial order) is byte-identical too.
//
// Concurrency contract: the config's factories (make_daemon, make_start,
// make_perturb) and the design's predicates are invoked concurrently and
// must be thread-safe. All shipped protocols and daemons qualify: each
// trial gets its own daemon and Rng, and the predicates are pure.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "engine/experiment.hpp"

namespace nonmask {

struct CampaignOptions {
  /// Worker threads; 0 = NONMASK_THREADS env override, else hardware
  /// concurrency. 1 = run trials inline, serially.
  unsigned threads = 0;
  /// Optional JSONL sink: one record per trial, streamed in trial order as
  /// trials complete. The stream must outlive run_campaign.
  std::ostream* jsonl = nullptr;
};

struct TrialRecord {
  std::size_t trial = 0;
  TrialSeeds seeds;
  TrialOutcome outcome;
};

struct CampaignResults {
  /// Aggregate statistics, bit-identical to run_experiment(design, config).
  ConvergenceResults aggregate;
  /// Every trial's record, in trial order.
  std::vector<TrialRecord> trials;
};

/// One JSONL line (no trailing newline) for a trial record.
std::string to_jsonl(const std::string& design_name,
                     const TrialRecord& record);

/// Run `config.trials` trials of `design` across `opts.threads` workers.
CampaignResults run_campaign(const Design& design,
                             const ConvergenceExperiment& config,
                             const CampaignOptions& opts = {});

}  // namespace nonmask
