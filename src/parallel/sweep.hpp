// Sharded state-space sweeps: multi-threaded versions of the checker's
// exhaustive passes (closure, convergence, fault-span reachability).
//
// Sharding scheme. A StateSpace is a mixed-radix code range
// [0, space.size()), so it shards into chunks of `grain` consecutive codes
// with no coordination: every worker gets its own decoded-state scratch
// buffer and chunk results are reduced in chunk order.
//
// Determinism guarantee: every function here returns a report that is
// bit-identical to its serial counterpart in src/checker/, at any thread
// count, because
//   - closure slices reuse detail::scan_closure_range, and the serial scan
//     is the in-order concatenation of slices (the reduction replays the
//     serial early-exit at the first violating chunk);
//   - convergence parallelizes only the S/T flag evaluation and successor
//     (transition) construction — the hot ~90% — into a precomputed
//     adjacency, then runs the *same* serial DFS / SCC core over it;
//   - reachability expands each BFS level in parallel but merges per-node
//     successor lists in the serial pop order (expansion depends only on
//     the node, so the insertion sequence — and any max_states truncation —
//     is reproduced exactly).
// With resolved threads == 1 the serial checker is called directly.
//
// Concurrency contract: the predicates (S, T, start) are evaluated from
// several threads at once and must be thread-safe; every PredicateFn built
// by the core DSL and the shipped protocols is a pure function of the
// state and qualifies.
#pragma once

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"

namespace nonmask {

struct SweepOptions {
  /// Worker threads; 0 = NONMASK_THREADS env override, else hardware
  /// concurrency. 1 = run the serial checker directly.
  unsigned threads = 0;
  /// Codes per chunk. Results never depend on the grain; it only trades
  /// scheduling overhead against load balance.
  std::uint64_t grain = 1 << 14;
};

/// Parallel check_closed over the given action indices.
ClosureReport check_closed_parallel(const StateSpace& space,
                                    const PredicateFn& predicate,
                                    const std::vector<std::size_t>& actions,
                                    const SweepOptions& opts = {});

/// Parallel check_closed over all non-fault actions.
ClosureReport check_closed_parallel(const StateSpace& space,
                                    const PredicateFn& predicate,
                                    const SweepOptions& opts = {});

/// Parallel check_convergence (exact, unfair daemon). Flag evaluation and
/// transition construction are sharded; the cycle/deadlock DFS runs
/// serially over the precomputed adjacency.
ConvergenceReport check_convergence_parallel(const StateSpace& space,
                                             const PredicateFn& S,
                                             const PredicateFn& T,
                                             const SweepOptions& opts = {});

/// Parallel check_convergence_weakly_fair: sharded flags + transitions,
/// serial Tarjan SCC and fair-escape analysis.
ConvergenceReport check_convergence_weakly_fair_parallel(
    const StateSpace& space, const PredicateFn& S, const PredicateFn& T,
    const SweepOptions& opts = {});

/// Parallel compute_reachable (level-synchronous BFS, deterministic merge).
StateSet compute_reachable_parallel(const StateSpace& space,
                                    const PredicateFn& start,
                                    const std::vector<std::size_t>& actions,
                                    const FaultSpanOptions& span_opts = {},
                                    const SweepOptions& opts = {});

/// Parallel compute_fault_span: reach(S) under program + fault actions.
StateSet compute_fault_span_parallel(
    const StateSpace& space, const PredicateFn& S,
    const std::vector<std::size_t>& fault_actions,
    const FaultSpanOptions& span_opts = {}, const SweepOptions& opts = {});

}  // namespace nonmask
