#include "parallel/campaign.hpp"

#include <mutex>
#include <ostream>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"

namespace nonmask {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

/// Flushes completed trial records to the JSONL sink in trial order: each
/// completion is buffered until every earlier trial has been written.
class JsonlStreamer {
 public:
  JsonlStreamer(std::ostream* sink, const std::string& design_name,
                const std::vector<TrialRecord>* records)
      : sink_(sink), design_name_(design_name), records_(records) {
    if (sink_ != nullptr) done_.resize(records->size(), 0);
  }

  void on_complete(std::size_t trial) {
    if (sink_ == nullptr) return;
    std::lock_guard<std::mutex> lock(mutex_);
    done_[trial] = 1;
    while (cursor_ < done_.size() && done_[cursor_] != 0) {
      *sink_ << to_jsonl(design_name_, (*records_)[cursor_]) << '\n';
      ++cursor_;
    }
  }

 private:
  std::ostream* sink_;
  std::string design_name_;
  const std::vector<TrialRecord>* records_;
  std::mutex mutex_;
  std::vector<std::uint8_t> done_;
  std::size_t cursor_ = 0;
};

}  // namespace

std::string to_jsonl(const std::string& design_name,
                     const TrialRecord& record) {
  std::string out = "{\"design\":\"";
  append_escaped(out, design_name);
  out += "\",\"trial\":" + std::to_string(record.trial);
  out += ",\"daemon_seed\":" + std::to_string(record.seeds.daemon);
  out += ",\"start_seed\":" + std::to_string(record.seeds.start);
  out += record.outcome.converged ? ",\"converged\":true"
                                  : ",\"converged\":false";
  out += record.outcome.deadlocked ? ",\"deadlocked\":true"
                                   : ",\"deadlocked\":false";
  out += record.outcome.exhausted ? ",\"exhausted\":true"
                                  : ",\"exhausted\":false";
  out += ",\"steps\":" + std::to_string(record.outcome.steps);
  out += ",\"rounds\":" + std::to_string(record.outcome.rounds);
  out += ",\"moves\":" + std::to_string(record.outcome.moves);
  out += "}";
  return out;
}

CampaignResults run_campaign(const Design& design,
                             const ConvergenceExperiment& config,
                             const CampaignOptions& opts) {
  CampaignResults results;
  results.trials.resize(config.trials);
  const auto seeds = derive_trial_seeds(config.seed, config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    results.trials[i].trial = i;
    results.trials[i].seeds = seeds[i];
  }

  JsonlStreamer streamer(opts.jsonl, design.name, &results.trials);
  obs::Span campaign_span("campaign.run");
  obs::ProgressMeter meter("campaign", config.trials);
  obs::Histogram& trial_us =
      obs::Registry::instance().histogram("campaign.trial_us");
  const auto timed_trial = [&](std::size_t trial) {
    obs::Span span("campaign.trial", &trial_us);
    results.trials[trial].outcome = run_trial(design, config, seeds[trial]);
    span.end();
    streamer.on_complete(trial);
    meter.add(1);
  };

  const unsigned threads =
      opts.threads == 0 ? default_threads() : opts.threads;
  if (threads <= 1 || config.trials <= 1) {
    for (std::size_t i = 0; i < config.trials; ++i) {
      timed_trial(i);
    }
  } else {
    ThreadPool pool(threads);
    parallel_for_chunked(
        pool, 0, config.trials, 1,
        [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
            unsigned worker) {
          (void)lo;
          (void)hi;
          (void)worker;
          timed_trial(chunk);
        });
  }

  // Aggregate exactly as run_experiment does: converged trials in trial
  // order.
  std::vector<double> steps, rounds, moves;
  std::size_t converged = 0;
  for (const TrialRecord& r : results.trials) {
    if (!r.outcome.converged) continue;
    ++converged;
    steps.push_back(static_cast<double>(r.outcome.steps));
    rounds.push_back(static_cast<double>(r.outcome.rounds));
    moves.push_back(static_cast<double>(r.outcome.moves));
  }
  results.aggregate.converged_fraction =
      config.trials == 0
          ? 0.0
          : static_cast<double>(converged) / static_cast<double>(config.trials);
  results.aggregate.steps = summarize(std::move(steps));
  results.aggregate.rounds = summarize(std::move(rounds));
  results.aggregate.moves = summarize(std::move(moves));
  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("campaign.trials").add(config.trials);
    registry.counter("campaign.trials_converged").add(converged);
  }
  return results;
}

}  // namespace nonmask
