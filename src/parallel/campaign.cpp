#include "parallel/campaign.hpp"

#include <fstream>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "parallel/thread_pool.hpp"
#include "store/frontier.hpp"

namespace nonmask {

namespace {

/// Flushes completed trial records (pre-rendered JSONL lines) in trial
/// order: each completion is buffered until every earlier trial has been
/// written. Two sinks: the caller's stream, and the checkpoint journal —
/// the journal is flushed after every line so a kill loses at most the
/// torn tail of one record.
class JsonlStreamer {
 public:
  JsonlStreamer(std::ostream* sink, std::ostream* journal,
                const std::vector<std::string>* lines)
      : sink_(sink), journal_(journal), lines_(lines) {
    if (sink_ != nullptr || journal_ != nullptr) {
      done_.resize(lines->size(), 0);
    }
  }

  void on_complete(std::size_t trial) {
    if (sink_ == nullptr && journal_ == nullptr) return;
    std::lock_guard<std::mutex> lock(mutex_);
    done_[trial] = 1;
    while (cursor_ < done_.size() && done_[cursor_] != 0) {
      const std::string& line = (*lines_)[cursor_];
      if (sink_ != nullptr) *sink_ << line << '\n';
      if (journal_ != nullptr) {
        *journal_ << line << '\n';
        journal_->flush();
      }
      ++cursor_;
    }
  }

 private:
  std::ostream* sink_;
  std::ostream* journal_;
  const std::vector<std::string>* lines_;
  std::mutex mutex_;
  std::vector<std::uint8_t> done_;
  std::size_t cursor_ = 0;
};

}  // namespace

CampaignResults run_campaign(const Design& design,
                             const ConvergenceExperiment& config,
                             const CampaignOptions& opts) {
  CampaignResults results;
  results.trials.resize(config.trials);
  const auto seeds = derive_trial_seeds(config.seed, config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    results.trials[i].trial = i;
    results.trials[i].seeds = seeds[i];
  }

  // Resume: adopt the journal's valid prefix (records and verbatim lines).
  std::vector<std::string> lines(config.trials);
  std::size_t completed = 0;
  if (opts.resume && !opts.checkpoint.empty()) {
    const JournalPrefix prefix =
        load_journal_prefix(opts.checkpoint, design.name, seeds);
    completed = prefix.records.size();
    for (std::size_t i = 0; i < completed; ++i) {
      results.trials[i] = prefix.records[i];
      lines[i] = prefix.lines[i];
    }
  }
  results.resumed_trials = completed;

  // The journal is rewritten from scratch: replayed lines first (dropping
  // any torn tail the crashed run left), fresh records appended after.
  std::ofstream journal;
  if (!opts.checkpoint.empty()) {
    journal.open(opts.checkpoint, std::ios::trunc);
    if (!journal) {
      throw std::runtime_error("run_campaign: cannot open checkpoint journal " +
                               opts.checkpoint);
    }
  }

  JsonlStreamer streamer(opts.jsonl, journal.is_open() ? &journal : nullptr,
                         &lines);
  obs::Span campaign_span("campaign.run");
  obs::ProgressMeter meter("campaign", config.trials);
  obs::Histogram& trial_us =
      obs::Registry::instance().histogram("campaign.trial_us");
  for (std::size_t i = 0; i < completed; ++i) {
    streamer.on_complete(i);
    meter.add(1);
  }

  const auto timed_trial = [&](std::size_t trial) {
    obs::Span span("campaign.trial", &trial_us);
    const ResilientOutcome r =
        run_trial_resilient(design, config, seeds[trial], opts.policy);
    TrialRecord& record = results.trials[trial];
    record.outcome = r.outcome;
    record.attempts = r.attempts;
    record.error = r.error;
    span.end();
    if (obs::Telemetry::counting()) {
      auto& depth = obs::Telemetry::depth();
      depth.campaign_trials.fetch_add(1, std::memory_order_relaxed);
      if (r.attempts > 1) {
        depth.campaign_retries.fetch_add(r.attempts - 1,
                                         std::memory_order_relaxed);
      }
      if (r.outcome.timed_out) {
        depth.campaign_timeouts.fetch_add(1, std::memory_order_relaxed);
      }
    }
    lines[trial] = to_jsonl(design.name, record);
    streamer.on_complete(trial);
    meter.add(1);
  };

  const unsigned threads =
      opts.threads == 0 ? default_threads() : opts.threads;
  if (threads <= 1 || config.trials - completed <= 1) {
    for (std::size_t i = completed; i < config.trials; ++i) {
      timed_trial(i);
    }
  } else if (opts.store.backend == store::StoreBackend::kStore) {
    // Store-engine routing: same grain-1 dynamic schedule, shared engine
    // surface with the store sweeps. Trials are item-order-independent
    // (pure functions of their seeds, streamed in trial order), so this
    // keeps the byte-identity contract.
    store::StoreConfig engine_config = opts.store;
    engine_config.threads = threads;
    store::FrontierEngine engine(engine_config);
    engine.for_items(completed, config.trials,
                     [&](std::uint64_t trial, unsigned worker) {
                       (void)worker;
                       timed_trial(trial);
                     });
  } else {
    ThreadPool pool(threads);
    parallel_for_chunked(
        pool, completed, config.trials, 1,
        [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
            unsigned worker) {
          (void)chunk;
          (void)hi;
          (void)worker;
          timed_trial(lo);
        });
  }

  // Aggregate exactly as run_experiment does: converged trials in trial
  // order.
  std::vector<double> steps, rounds, moves;
  std::size_t converged = 0;
  for (const TrialRecord& r : results.trials) {
    if (r.outcome.timed_out) ++results.timed_out;
    if (r.outcome.failed) ++results.failed;
    if (!r.outcome.converged) continue;
    ++converged;
    steps.push_back(static_cast<double>(r.outcome.steps));
    rounds.push_back(static_cast<double>(r.outcome.rounds));
    moves.push_back(static_cast<double>(r.outcome.moves));
  }
  results.aggregate.converged_fraction =
      config.trials == 0
          ? 0.0
          : static_cast<double>(converged) / static_cast<double>(config.trials);
  results.aggregate.steps = summarize(std::move(steps));
  results.aggregate.rounds = summarize(std::move(rounds));
  results.aggregate.moves = summarize(std::move(moves));
  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("campaign.trials").add(config.trials);
    registry.counter("campaign.trials_converged").add(converged);
    registry.counter("campaign.trials_resumed").add(results.resumed_trials);
    registry.counter("campaign.trials_timed_out").add(results.timed_out);
    registry.counter("campaign.trials_failed").add(results.failed);
  }
  return results;
}

}  // namespace nonmask
