#include "parallel/sweep.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"

namespace nonmask {

namespace {

unsigned resolve_threads(const SweepOptions& opts) {
  return opts.threads == 0 ? default_threads() : opts.threads;
}

/// Shared duration histogram for every sweep chunk (microseconds); spans
/// feed it so chunk-size tuning shows up in the metrics snapshot.
obs::Histogram& chunk_histogram() {
  static obs::Histogram& hist =
      obs::Registry::instance().histogram("sweep.chunk_us");
  return hist;
}

std::size_t chunk_count(std::uint64_t size, std::uint64_t grain) {
  return static_cast<std::size_t>((size + grain - 1) / grain);
}

/// Sharded pass 1 of the convergence checks: same flags array and
/// states_in_S / states_in_T counts as detail::evaluate_flags.
std::vector<std::uint8_t> evaluate_flags_parallel(ThreadPool& pool,
                                                  const StateSpace& space,
                                                  const PredicateFn& S,
                                                  const PredicateFn& T,
                                                  std::uint64_t grain,
                                                  ConvergenceReport& report) {
  const Program& p = space.program();
  std::vector<std::uint8_t> flags(space.size(), 0);
  struct Counts {
    std::uint64_t in_S = 0;
    std::uint64_t in_T = 0;
  };
  std::vector<Counts> counts(chunk_count(space.size(), grain));
  std::vector<State> scratch(pool.size(), State(p.num_variables()));
  obs::ProgressMeter meter("flags", space.size());

  parallel_for_chunked(
      pool, 0, space.size(), grain,
      [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
          unsigned worker) {
        obs::Span span("sweep.flags.chunk", &chunk_histogram());
        State& s = scratch[worker];
        Counts c;
        for (std::uint64_t code = lo; code < hi; ++code) {
          space.decode_into(code, s);
          std::uint8_t f = 0;
          const bool in_T = T(s);
          if (in_T) f |= detail::kFlagT;
          if (S(s)) {
            f |= detail::kFlagS;
            if (in_T) ++c.in_S;
          }
          if (in_T) ++c.in_T;
          flags[code] = f;
        }
        counts[chunk] = c;
        meter.add(hi - lo);
      });

  for (const Counts& c : counts) {
    report.states_in_S += c.in_S;
    report.states_in_T += c.in_T;
  }
  return flags;
}

/// Precomputed region adjacency in CSR form: the sorted distinct successor
/// codes of every ¬S state, exactly as ProgramSuccessors would produce
/// them on the fly.
class CsrSuccessors final : public SuccessorSource {
 public:
  CsrSuccessors(std::vector<std::uint64_t> offsets,
                std::vector<std::uint64_t> succs)
      : offsets_(std::move(offsets)), succs_(std::move(succs)) {}

  void successors(std::uint64_t code,
                  std::vector<std::uint64_t>& out) override {
    out.assign(succs_.begin() + static_cast<std::ptrdiff_t>(offsets_[code]),
               succs_.begin() +
                   static_cast<std::ptrdiff_t>(offsets_[code + 1]));
  }

 private:
  std::vector<std::uint64_t> offsets_;  // size() + 1 entries
  std::vector<std::uint64_t> succs_;
};

/// Sharded pass 2a: build the ¬S-region adjacency. This is the hot ~90% of
/// a convergence check (decode + guard evaluation + apply + encode per
/// transition); the DFS/SCC passes then consume it serially.
CsrSuccessors build_region_adjacency(ThreadPool& pool, const StateSpace& space,
                                     const std::vector<std::uint8_t>& flags,
                                     const std::vector<std::size_t>& actions,
                                     std::uint64_t grain) {
  struct ChunkAdj {
    std::vector<std::uint32_t> degree;  // per code in the chunk
    std::vector<std::uint64_t> data;    // concatenated successor lists
  };
  std::vector<ChunkAdj> chunks(chunk_count(space.size(), grain));
  std::vector<ProgramSuccessors> sources;
  sources.reserve(pool.size());
  for (unsigned i = 0; i < pool.size(); ++i) {
    sources.emplace_back(space, actions);
  }

  obs::ProgressMeter meter("adjacency", space.size());
  parallel_for_chunked(
      pool, 0, space.size(), grain,
      [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
          unsigned worker) {
        obs::Span span("sweep.adjacency.chunk", &chunk_histogram());
        ChunkAdj& adj = chunks[chunk];
        adj.degree.reserve(static_cast<std::size_t>(hi - lo));
        std::vector<std::uint64_t> succs;
        for (std::uint64_t code = lo; code < hi; ++code) {
          if ((flags[code] & detail::kFlagS) != 0) {
            adj.degree.push_back(0);  // in S: the DFS never expands it
            continue;
          }
          sources[worker].successors(code, succs);
          adj.degree.push_back(static_cast<std::uint32_t>(succs.size()));
          adj.data.insert(adj.data.end(), succs.begin(), succs.end());
        }
        meter.add(hi - lo);
      });

  std::size_t total = 0;
  for (const ChunkAdj& adj : chunks) total += adj.data.size();
  std::vector<std::uint64_t> offsets(space.size() + 1, 0);
  std::vector<std::uint64_t> data;
  data.reserve(total);
  std::uint64_t code = 0;
  for (const ChunkAdj& adj : chunks) {
    for (std::uint32_t deg : adj.degree) {
      offsets[code + 1] = offsets[code] + deg;
      ++code;
    }
    data.insert(data.end(), adj.data.begin(), adj.data.end());
  }
  return CsrSuccessors(std::move(offsets), std::move(data));
}

}  // namespace

ClosureReport check_closed_parallel(const StateSpace& space,
                                    const PredicateFn& predicate,
                                    const std::vector<std::size_t>& actions,
                                    const SweepOptions& opts) {
  const unsigned threads = resolve_threads(opts);
  if (threads <= 1 || space.size() <= opts.grain) {
    return check_closed(space, predicate, actions);
  }
  obs::Span sweep_span("sweep.closure");
  obs::ProgressMeter meter("closure", space.size());
  ThreadPool pool(threads);
  std::vector<ClosureReport> chunks(chunk_count(space.size(), opts.grain));
  std::vector<State> scratch(pool.size(),
                             State(space.program().num_variables()));
  parallel_for_chunked(
      pool, 0, space.size(), opts.grain,
      [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
          unsigned worker) {
        obs::Span span("sweep.closure.chunk", &chunk_histogram());
        chunks[chunk] = detail::scan_closure_range(space, predicate, actions,
                                                   lo, hi, scratch[worker]);
        meter.add(hi - lo);
      });

  // In-order reduction: replay the serial scan's early exit at the first
  // violating chunk, so counts match the serial report bit-for-bit.
  ClosureReport report;
  for (ClosureReport& c : chunks) {
    report.states_checked += c.states_checked;
    report.transitions_checked += c.transitions_checked;
    if (!c.closed) {
      report.closed = false;
      report.violation = std::move(c.violation);
      detail::record_closure_metrics(report);
      return report;
    }
  }
  report.closed = true;
  detail::record_closure_metrics(report);
  return report;
}

ClosureReport check_closed_parallel(const StateSpace& space,
                                    const PredicateFn& predicate,
                                    const SweepOptions& opts) {
  return check_closed_parallel(space, predicate,
                               non_fault_actions(space.program()), opts);
}

ConvergenceReport check_convergence_parallel(const StateSpace& space,
                                             const PredicateFn& S,
                                             const PredicateFn& T,
                                             const SweepOptions& opts) {
  const unsigned threads = resolve_threads(opts);
  if (threads <= 1 || space.size() <= opts.grain) {
    return check_convergence(space, S, T);
  }
  obs::Span sweep_span("sweep.convergence");
  ThreadPool pool(threads);
  ConvergenceReport report;
  const auto flags =
      evaluate_flags_parallel(pool, space, S, T, opts.grain, report);
  CsrSuccessors succ = build_region_adjacency(
      pool, space, flags, non_fault_actions(space.program()), opts.grain);
  return detail::check_convergence_core(space, flags, succ,
                                        std::move(report));
}

ConvergenceReport check_convergence_weakly_fair_parallel(
    const StateSpace& space, const PredicateFn& S, const PredicateFn& T,
    const SweepOptions& opts) {
  const unsigned threads = resolve_threads(opts);
  if (threads <= 1 || space.size() <= opts.grain) {
    return check_convergence_weakly_fair(space, S, T);
  }
  obs::Span sweep_span("sweep.convergence");
  ThreadPool pool(threads);
  ConvergenceReport report;
  const auto flags =
      evaluate_flags_parallel(pool, space, S, T, opts.grain, report);
  const auto actions = non_fault_actions(space.program());
  CsrSuccessors succ =
      build_region_adjacency(pool, space, flags, actions, opts.grain);
  return detail::check_convergence_weakly_fair_core(space, flags, succ,
                                                    actions,
                                                    std::move(report));
}

StateSet compute_reachable_parallel(const StateSpace& space,
                                    const PredicateFn& start,
                                    const std::vector<std::size_t>& actions,
                                    const FaultSpanOptions& span_opts,
                                    const SweepOptions& opts) {
  const unsigned threads = resolve_threads(opts);
  if (threads <= 1 || space.size() <= opts.grain) {
    return compute_reachable(space, start, actions, span_opts);
  }
  obs::Span sweep_span("sweep.reach");
  ThreadPool pool(threads);
  const Program& p = space.program();
  StateSet set(space);
  const std::uint64_t cap =
      span_opts.max_states == 0 ? space.size() : span_opts.max_states;
  obs::ProgressMeter meter("reach", cap);

  // Seed scan: evaluate `start` in parallel, insert in code order.
  std::vector<std::vector<std::uint64_t>> seed_chunks(
      chunk_count(space.size(), opts.grain));
  std::vector<State> scratch(pool.size(), State(p.num_variables()));
  parallel_for_chunked(
      pool, 0, space.size(), opts.grain,
      [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
          unsigned worker) {
        obs::Span span("sweep.reach.seed", &chunk_histogram());
        State& s = scratch[worker];
        for (std::uint64_t code = lo; code < hi; ++code) {
          space.decode_into(code, s);
          if (start(s)) seed_chunks[chunk].push_back(code);
        }
      });
  std::vector<std::uint64_t> frontier;
  for (const auto& chunk : seed_chunks) {
    for (std::uint64_t code : chunk) {
      set.insert_code(code);
      frontier.push_back(code);
    }
  }

  // Level-synchronous BFS. Each level's nodes expand in parallel; the
  // per-node successor lists (which depend only on the node) merge in the
  // serial pop order, reproducing its insertion sequence and cap handling.
  struct NodeSuccs {
    std::vector<std::uint32_t> degree;  // per node in the chunk
    std::vector<std::uint64_t> data;    // concatenated, in expansion order
  };
  while (!frontier.empty() && set.size() < cap) {
    const std::uint64_t level_grain = std::max<std::uint64_t>(
        1, frontier.size() / (std::uint64_t{pool.size()} * 8));
    std::vector<NodeSuccs> level(chunk_count(frontier.size(), level_grain));
    parallel_for_chunked(
        pool, 0, frontier.size(), level_grain,
        [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
            unsigned worker) {
          obs::Span span("sweep.reach.chunk", &chunk_histogram());
          NodeSuccs& out = level[chunk];
          std::vector<std::uint64_t> succs;
          for (std::uint64_t i = lo; i < hi; ++i) {
            detail::expand_reachable(space, actions, span_opts, frontier[i],
                                     scratch[worker], succs);
            out.degree.push_back(static_cast<std::uint32_t>(succs.size()));
            out.data.insert(out.data.end(), succs.begin(), succs.end());
          }
        });

    std::vector<std::uint64_t> next;
    bool capped = false;
    for (const NodeSuccs& chunk : level) {
      std::size_t offset = 0;
      for (std::uint32_t deg : chunk.degree) {
        if (set.size() >= cap) {  // the serial loop stops popping here
          capped = true;
          break;
        }
        for (std::uint32_t k = 0; k < deg; ++k) {
          const std::uint64_t succ = chunk.data[offset + k];
          if (!set.contains_code(succ)) {
            set.insert_code(succ);
            next.push_back(succ);
          }
        }
        offset += deg;
      }
      if (capped) break;
    }
    if (capped) break;
    frontier = std::move(next);
    meter.aux("frontier", frontier.size());
    meter.add(set.size() - meter.done());
  }
  if (obs::Metrics::enabled()) {
    obs::Registry::instance().counter("checker.reach.states").add(set.size());
  }
  return set;
}

StateSet compute_fault_span_parallel(
    const StateSpace& space, const PredicateFn& S,
    const std::vector<std::size_t>& fault_actions,
    const FaultSpanOptions& span_opts, const SweepOptions& opts) {
  std::vector<std::size_t> actions = non_fault_actions(space.program());
  actions.insert(actions.end(), fault_actions.begin(), fault_actions.end());
  return compute_reachable_parallel(space, S, actions, span_opts, opts);
}

}  // namespace nonmask
