#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

#include "obs/telemetry.hpp"

namespace nonmask {

unsigned default_threads() {
  if (const char* env = std::getenv("NONMASK_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  // Unconditional (one RMW per pool lifetime) so a telemetry sampler
  // started mid-run sees a consistent live-worker count.
  obs::Telemetry::depth().workers_live.fetch_add(
      static_cast<std::int64_t>(threads), std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    stop_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
  obs::Telemetry::depth().workers_live.fetch_sub(
      static_cast<std::int64_t>(workers_.size()), std::memory_order_relaxed);
}

void ThreadPool::submit(std::function<void(unsigned)> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop(unsigned worker) {
  while (true) {
    std::function<void(unsigned)> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task(worker);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

void parallel_for_chunked(
    ThreadPool& pool, std::uint64_t begin, std::uint64_t end,
    std::uint64_t grain,
    const std::function<void(std::size_t chunk, std::uint64_t lo,
                             std::uint64_t hi, unsigned worker)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::uint64_t span = end - begin;
  const std::size_t n_chunks = static_cast<std::size_t>((span + grain - 1) / grain);

  auto run_chunk = [&](std::size_t chunk, unsigned worker) {
    const std::uint64_t lo = begin + static_cast<std::uint64_t>(chunk) * grain;
    const std::uint64_t hi = std::min(end, lo + grain);
    fn(chunk, lo, hi, worker);
  };

  if (pool.size() <= 1 || n_chunks == 1) {
    for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
      run_chunk(chunk, 0);
    }
    return;
  }

  // One driver task per worker; drivers race on an atomic cursor, so fast
  // workers take more chunks (dynamic load balancing) while results remain
  // keyed by chunk number.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto first_error = std::make_shared<std::exception_ptr>();
  auto error_mutex = std::make_shared<std::mutex>();
  const unsigned drivers = static_cast<unsigned>(
      std::min<std::size_t>(pool.size(), n_chunks));
  for (unsigned d = 0; d < drivers; ++d) {
    pool.submit([&run_chunk, next, first_error, error_mutex,
                 n_chunks](unsigned worker) {
      for (std::size_t chunk = (*next)++; chunk < n_chunks;
           chunk = (*next)++) {
        try {
          run_chunk(chunk, worker);
        } catch (...) {
          std::lock_guard<std::mutex> lock(*error_mutex);
          if (!*first_error) *first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (*first_error) std::rethrow_exception(*first_error);
}

void parallel_for_each(
    ThreadPool& pool, std::size_t count,
    const std::function<void(std::size_t index, unsigned worker)>& fn) {
  parallel_for_chunked(
      pool, 0, static_cast<std::uint64_t>(count), 1,
      [&fn](std::size_t chunk, std::uint64_t, std::uint64_t,
            unsigned worker) { fn(chunk, worker); });
}

}  // namespace nonmask
