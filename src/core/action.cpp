#include "core/action.hpp"

#include <algorithm>

namespace nonmask {

const char* to_string(ActionKind kind) noexcept {
  switch (kind) {
    case ActionKind::kClosure: return "closure";
    case ActionKind::kConvergence: return "convergence";
    case ActionKind::kFault: return "fault";
    case ActionKind::kEnvironment: return "environment";
  }
  return "unknown";
}

std::vector<VarId> Action::contract_violations(const State& s) const {
  State next = apply(s);
  std::vector<VarId> illegal;
  for (std::uint32_t i = 0; i < s.size(); ++i) {
    const VarId id(i);
    if (s.get(id) == next.get(id)) continue;
    if (std::find(writes_.begin(), writes_.end(), id) == writes_.end()) {
      illegal.push_back(id);
    }
  }
  return illegal;
}

}  // namespace nonmask
