// Candidate triples and completed designs.
//
// Section 3's design problem: given a candidate triple (p, S, T) where p
// consists solely of closure actions that preserve S and T, design
// convergence actions {ca.1..ca.n} so the augmented program is T-tolerant
// for S. CandidateTriple is the input; Design is the output — the augmented
// program together with its invariant and fault-span, which the checker and
// the theorem validators consume.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/action.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"

namespace nonmask {

/// The candidate triple (p, S, T). `program` holds the closure actions
/// (fault actions may also be attached for experimentation); `invariant`
/// holds the constraints whose conjunction with `fault_span` equals S.
struct CandidateTriple {
  Program program;
  Invariant invariant;
  PredicateFn fault_span = true_predicate();

  /// Optional explicit S. By default S = (conjunction of constraints) /\ T,
  /// per Section 3 ("their conjunction together with T equals S"). Some
  /// designs — the paper's own token ring (Section 7.1) — converge via
  /// constraints *stronger* than S (x.j = x.(j+1) rather than the second
  /// conjunct of S); such designs set S explicitly.
  PredicateFn S_override;

  /// S as a single predicate: S_override if set, else all constraints /\ T.
  PredicateFn S() const;
  /// T as a predicate.
  PredicateFn T() const { return fault_span; }

  /// Augment the candidate program with convergence actions, yielding a
  /// complete design.
  struct Design augmented(std::vector<Action> convergence_actions) const;
};

/// A completed design: the augmented program p ∪ q plus its invariant and
/// fault-span. All protocols in src/protocols/ produce a Design.
struct Design {
  std::string name;
  Program program;  ///< closure + convergence (+ optional fault) actions
  Invariant invariant;
  PredicateFn fault_span = true_predicate();
  /// See CandidateTriple::S_override.
  PredicateFn S_override;

  PredicateFn S() const;
  PredicateFn T() const { return fault_span; }

  /// The candidate triple this design augments (closure actions only).
  CandidateTriple candidate() const;

  /// True iff the design claims self-stabilization (T == true). Purely
  /// informational; set by protocol constructors.
  bool stabilizing = true;
};

}  // namespace nonmask
