#include "core/program.hpp"

#include <sstream>
#include <stdexcept>

namespace nonmask {

VarId Program::add_variable(VariableSpec spec) {
  if (variables_.size() >= 0xfffffffeu) {
    throw std::length_error("Program: too many variables");
  }
  variables_.push_back(std::move(spec));
  return VarId(static_cast<std::uint32_t>(variables_.size() - 1));
}

VarId Program::find_variable(const std::string& name) const noexcept {
  for (std::uint32_t i = 0; i < variables_.size(); ++i) {
    if (variables_[i].name == name) return VarId(i);
  }
  return VarId();
}

std::size_t Program::add_action(Action action) {
  actions_.push_back(std::move(action));
  return actions_.size() - 1;
}

std::vector<std::size_t> Program::actions_of_kind(ActionKind kind) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].kind() == kind) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Program::enabled_actions(const State& s) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < actions_.size(); ++i) {
    if (actions_[i].kind() == ActionKind::kFault) continue;
    if (actions_[i].enabled(s)) out.push_back(i);
  }
  return out;
}

bool Program::any_enabled(const State& s) const {
  for (const auto& a : actions_) {
    if (a.kind() == ActionKind::kFault) continue;
    if (a.enabled(s)) return true;
  }
  return false;
}

State Program::initial_state() const {
  State s(variables_.size());
  for (std::uint32_t i = 0; i < variables_.size(); ++i) {
    s.set(VarId(i), variables_[i].lo);
  }
  return s;
}

std::optional<std::uint64_t> Program::state_count() const noexcept {
  // Exact overflow detection: the mixed-radix product must fit uint64_t or
  // the state space has no valid code range at all (StateSpace throws
  // StateSpaceTooLarge on nullopt). The previous conservative bound
  // rejected legitimate sizes in [2^63, 2^64).
  std::uint64_t count = 1;
  for (const auto& v : variables_) {
    if (__builtin_mul_overflow(count, v.domain_size(), &count)) {
      return std::nullopt;
    }
  }
  return count;
}

State Program::random_state(Rng& rng) const {
  State s(variables_.size());
  for (std::uint32_t i = 0; i < variables_.size(); ++i) {
    const auto& v = variables_[i];
    s.set(VarId(i), static_cast<Value>(rng.range(v.lo, v.hi)));
  }
  return s;
}

bool Program::in_domain(const State& s) const noexcept {
  if (s.size() != variables_.size()) return false;
  for (std::uint32_t i = 0; i < variables_.size(); ++i) {
    if (!variables_[i].contains(s.get(VarId(i)))) return false;
  }
  return true;
}

void Program::clamp(State& s) const noexcept {
  for (std::uint32_t i = 0; i < variables_.size(); ++i) {
    s.set(VarId(i), variables_[i].clamp(s.get(VarId(i))));
  }
}

std::string Program::format_state(const State& s) const {
  std::ostringstream out;
  for (std::uint32_t i = 0; i < variables_.size(); ++i) {
    if (i != 0) out << ", ";
    out << variables_[i].name << "=" << s.get(VarId(i));
  }
  return out.str();
}

std::string Program::check_contracts(const State& s) const {
  std::ostringstream out;
  for (const auto& a : actions_) {
    if (!a.enabled(s) && a.kind() != ActionKind::kFault) continue;
    const auto illegal = a.contract_violations(s);
    for (VarId id : illegal) {
      out << "action '" << a.name() << "' wrote undeclared variable '"
          << variables_.at(id.index()).name << "'\n";
    }
  }
  return out.str();
}

}  // namespace nonmask
