// Fluent construction of programs.
//
// ProgramBuilder keeps protocol definitions close to the paper's notation:
// declare variables, then write guarded actions with explicit read/write
// sets. Convergence actions are linked to the invariant constraint they
// establish (Section 3's one-action-per-constraint recipe).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/action.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"

namespace nonmask {

class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name) : program_(std::move(name)) {}

  /// Declare an integer variable with inclusive domain [lo, hi].
  VarId var(std::string name, Value lo, Value hi,
            int process = VariableSpec::kNoProcess) {
    return program_.add_variable(
        VariableSpec(std::move(name), lo, hi, process));
  }

  /// Declare a boolean variable (domain {0, 1}).
  VarId boolean(std::string name, int process = VariableSpec::kNoProcess) {
    return var(std::move(name), 0, 1, process);
  }

  /// Add a closure action (performs the intended computation).
  ProgramBuilder& closure(std::string name, GuardFn guard,
                          StatementFn statement, std::vector<VarId> reads,
                          std::vector<VarId> writes, int process = -1) {
    program_.add_action(Action(std::move(name), ActionKind::kClosure,
                               std::move(guard), std::move(statement),
                               std::move(reads), std::move(writes), process));
    return *this;
  }

  /// Add a convergence action establishing invariant constraint
  /// `constraint_id` (index into the protocol's Invariant).
  ProgramBuilder& convergence(std::string name, GuardFn guard,
                              StatementFn statement, std::vector<VarId> reads,
                              std::vector<VarId> writes, int constraint_id,
                              int process = -1) {
    Action a(std::move(name), ActionKind::kConvergence, std::move(guard),
             std::move(statement), std::move(reads), std::move(writes),
             process);
    a.set_constraint_id(constraint_id);
    program_.add_action(std::move(a));
    return *this;
  }

  /// Add an *unchangeable environment* action: a guarded transition outside
  /// the program's control that daemons schedule and checkers explore
  /// alongside program actions, but whose written variables no closure or
  /// convergence action may write (checker/restricted.hpp validates this).
  ProgramBuilder& environment(std::string name, GuardFn guard,
                              StatementFn statement, std::vector<VarId> reads,
                              std::vector<VarId> writes, int process = -1) {
    program_.add_action(Action(std::move(name), ActionKind::kEnvironment,
                               std::move(guard), std::move(statement),
                               std::move(reads), std::move(writes), process));
    return *this;
  }

  /// Add a fault action (applied by injectors, never by daemons).
  ProgramBuilder& fault(std::string name, GuardFn guard, StatementFn statement,
                        std::vector<VarId> reads, std::vector<VarId> writes,
                        int process = -1) {
    program_.add_action(Action(std::move(name), ActionKind::kFault,
                               std::move(guard), std::move(statement),
                               std::move(reads), std::move(writes), process));
    return *this;
  }

  const Program& peek() const noexcept { return program_; }
  Program build() { return std::move(program_); }

 private:
  Program program_;
};

}  // namespace nonmask
