// Human-readable introspection of programs and designs: variable and
// action tables with derived read/write sets, constraint listings, and
// design summaries. Complements Digraph::to_dot (constraint graphs) and
// format_report (theorem verdicts) for the tooling surface.
#pragma once

#include <string>

#include "core/candidate.hpp"
#include "core/program.hpp"

namespace nonmask {

/// Variables (name, domain, process) and actions (kind, process,
/// reads/writes, constraint binding), one per line.
std::string describe_program(const Program& program);

/// describe_program plus the invariant's constraints and S/T notes.
std::string describe_design(const Design& design);

}  // namespace nonmask
