// Programs: a finite set of variables and a finite set of guarded actions
// (Section 2), plus the conveniences every other module builds on: state
// construction, enabled-action queries, domain sanitation, random states,
// and pretty printing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/state.hpp"
#include "core/variable.hpp"
#include "util/rng.hpp"

namespace nonmask {

class Program {
 public:
  Program() = default;
  explicit Program(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- variables ---------------------------------------------------------

  VarId add_variable(VariableSpec spec);
  std::size_t num_variables() const noexcept { return variables_.size(); }
  const VariableSpec& variable(VarId id) const {
    return variables_.at(id.index());
  }
  const std::vector<VariableSpec>& variables() const noexcept {
    return variables_;
  }
  /// Find a variable by name; returns an invalid VarId when absent.
  VarId find_variable(const std::string& name) const noexcept;

  // --- actions ------------------------------------------------------------

  std::size_t add_action(Action action);
  std::size_t num_actions() const noexcept { return actions_.size(); }
  const Action& action(std::size_t i) const { return actions_.at(i); }
  const std::vector<Action>& actions() const noexcept { return actions_; }

  /// Indices of actions of the given kind.
  std::vector<std::size_t> actions_of_kind(ActionKind kind) const;

  /// Indices of actions enabled at s (fault actions excluded: faults are
  /// applied by the injector, never scheduled by daemons).
  std::vector<std::size_t> enabled_actions(const State& s) const;

  /// True iff some non-fault action is enabled at s.
  bool any_enabled(const State& s) const;

  // --- states -------------------------------------------------------------

  /// The all-minimum state (every variable at its domain lower bound).
  State initial_state() const;

  /// Total number of states (product of domain sizes); nullopt iff the
  /// product overflows uint64_t (exact detection, no conservative bound).
  std::optional<std::uint64_t> state_count() const noexcept;

  /// Uniformly random state over the full domain product.
  State random_state(Rng& rng) const;

  /// True iff every variable's value lies within its declared domain.
  bool in_domain(const State& s) const noexcept;

  /// Clamp all values into their domains.
  void clamp(State& s) const noexcept;

  /// Render "name=value, ..." for diagnostics.
  std::string format_state(const State& s) const;

  /// Run the write-set contract check of every action against `s`;
  /// returns a human-readable report of violations (empty = clean).
  std::string check_contracts(const State& s) const;

 private:
  std::string name_;
  std::vector<VariableSpec> variables_;
  std::vector<Action> actions_;
};

}  // namespace nonmask
