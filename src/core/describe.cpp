#include "core/describe.hpp"

#include <sstream>

namespace nonmask {

namespace {

std::string var_list(const Program& p, const std::vector<VarId>& vars) {
  std::ostringstream out;
  out << "{";
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i != 0) out << ", ";
    out << p.variable(vars[i]).name;
  }
  out << "}";
  return out.str();
}

}  // namespace

std::string describe_program(const Program& program) {
  std::ostringstream out;
  out << "program " << program.name() << "\n";
  out << "  variables (" << program.num_variables() << "):\n";
  for (std::uint32_t i = 0; i < program.num_variables(); ++i) {
    const auto& v = program.variable(VarId(i));
    out << "    " << v.name << " : [" << v.lo << ", " << v.hi << "]";
    if (v.process != VariableSpec::kNoProcess) {
      out << " @p" << v.process;
    }
    out << "\n";
  }
  const auto count = program.state_count();
  if (count) {
    out << "  state space: " << *count << " states\n";
  } else {
    out << "  state space: > 2^63 states\n";
  }
  out << "  actions (" << program.num_actions() << "):\n";
  for (std::size_t i = 0; i < program.num_actions(); ++i) {
    const auto& a = program.action(i);
    out << "    [" << to_string(a.kind()) << "] " << a.name();
    if (a.process() >= 0) out << " @p" << a.process();
    out << "  reads " << var_list(program, a.reads()) << " writes "
        << var_list(program, a.writes());
    if (a.constraint_id() >= 0) {
      out << "  establishes #" << a.constraint_id();
    }
    out << "\n";
  }
  return out.str();
}

std::string describe_design(const Design& design) {
  std::ostringstream out;
  out << describe_program(design.program);
  out << "  constraints (" << design.invariant.size() << "):\n";
  for (std::size_t i = 0; i < design.invariant.size(); ++i) {
    const auto& c = design.invariant.at(i);
    out << "    #" << i << " " << c.name << "  over "
        << var_list(design.program, c.support) << "\n";
  }
  out << "  S: "
      << (design.S_override ? "explicit predicate"
                            : "conjunction of constraints /\\ T")
      << "\n";
  out << "  T: " << (design.stabilizing ? "true (stabilizing)" : "restricted")
      << "\n";
  return out.str();
}

}  // namespace nonmask
