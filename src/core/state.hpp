// Program states.
//
// A state assigns a value to every variable of a program (Section 2). We
// pack values into a flat vector indexed by VarId, giving value semantics,
// O(1) reads/writes, cheap copies, and a fast hash for explicit-state model
// checking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/variable.hpp"
#include "util/hash.hpp"

namespace nonmask {

class State {
 public:
  State() = default;
  explicit State(std::size_t num_vars) : values_(num_vars, 0) {}
  explicit State(std::vector<Value> values) : values_(std::move(values)) {}

  std::size_t size() const noexcept { return values_.size(); }

  Value get(VarId id) const { return values_[id.index()]; }
  void set(VarId id, Value v) { values_[id.index()] = v; }

  Value operator[](VarId id) const { return values_[id.index()]; }
  Value& operator[](VarId id) { return values_[id.index()]; }

  const std::vector<Value>& values() const noexcept { return values_; }
  std::vector<Value>& values() noexcept { return values_; }

  friend bool operator==(const State& a, const State& b) noexcept {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const State& a, const State& b) noexcept {
    return !(a == b);
  }

  /// FNV-1a fold over the packed values, finished with the splitmix64
  /// avalanche so high bits are as well-mixed as low ones (hash-sharded
  /// consumers partition by prefix; see util/hash.hpp).
  std::uint64_t hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (Value v : values_) {
      h ^= static_cast<std::uint32_t>(v);
      h *= 0x100000001b3ULL;
    }
    return avalanche64(h);
  }

 private:
  std::vector<Value> values_;
};

struct StateHash {
  std::size_t operator()(const State& s) const noexcept {
    return static_cast<std::size_t>(s.hash());
  }
};

}  // namespace nonmask
