// Guarded-command actions.
//
// Section 2: each action has the form  <guard> -> <statement>. We additionally
// record the action's *kind* (closure / convergence / fault, per the paper's
// Section 3 design method) and its declared read and write variable sets,
// which are the raw material of constraint graphs (Section 4). The engine can
// verify, by executing on a copy, that a statement writes only its declared
// variables.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/state.hpp"
#include "core/variable.hpp"

namespace nonmask {

/// Guard: boolean expression over program variables.
using GuardFn = std::function<bool(const State&)>;

/// Statement: terminating update of zero or more program variables,
/// performed in place.
using StatementFn = std::function<void(State&)>;

/// The role an action plays in the paper's design method.
enum class ActionKind {
  kClosure,      ///< performs the intended computation; preserves S and T
  kConvergence,  ///< re-establishes a violated constraint; preserves T
  kFault,        ///< models a fault as a state-changing action (Section 3)
  /// An *unchangeable environment* action (Roohitavaf–Kulkarni): a guarded
  /// transition the program can neither schedule away nor revert — its
  /// written variables must not be written by any closure or convergence
  /// action (checker/restricted.hpp validates this). Unlike kFault,
  /// environment actions are part of the transition system proper: daemons
  /// schedule them and every checker pass (closure, convergence,
  /// fault-span) explores them alongside program actions.
  kEnvironment,
};

const char* to_string(ActionKind kind) noexcept;

/// A guarded action with declared read/write sets.
class Action {
 public:
  Action() = default;
  Action(std::string name, ActionKind kind, GuardFn guard,
         StatementFn statement, std::vector<VarId> reads,
         std::vector<VarId> writes, int process = -1)
      : name_(std::move(name)),
        kind_(kind),
        guard_(std::move(guard)),
        statement_(std::move(statement)),
        reads_(std::move(reads)),
        writes_(std::move(writes)),
        process_(process) {}

  const std::string& name() const noexcept { return name_; }
  ActionKind kind() const noexcept { return kind_; }
  int process() const noexcept { return process_; }

  /// Index of the invariant constraint this convergence action establishes,
  /// or -1 when not applicable. Set by ProgramBuilder / protocol designers.
  int constraint_id() const noexcept { return constraint_id_; }
  void set_constraint_id(int id) noexcept { constraint_id_ = id; }

  const std::vector<VarId>& reads() const noexcept { return reads_; }
  const std::vector<VarId>& writes() const noexcept { return writes_; }

  bool enabled(const State& s) const { return guard_(s); }

  /// The guard itself (copyable — used by predicates derived from guards,
  /// e.g. "exactly one machine privileged").
  const GuardFn& guard() const noexcept { return guard_; }

  /// Execute the statement in place. Precondition: enabled(s) — not checked
  /// here because fault actions are applied regardless of guards by the
  /// injector, and the checker manages guards itself.
  void execute(State& s) const { statement_(s); }

  /// Execute on a copy and return the successor state.
  State apply(const State& s) const {
    State next = s;
    statement_(next);
    return next;
  }

  /// Verify the write-set contract at one state: executing the statement
  /// must change no variable outside writes(). Returns the ids of variables
  /// illegally modified (empty = contract honored at s).
  std::vector<VarId> contract_violations(const State& s) const;

 private:
  std::string name_;
  ActionKind kind_ = ActionKind::kClosure;
  GuardFn guard_;
  StatementFn statement_;
  std::vector<VarId> reads_;
  std::vector<VarId> writes_;
  int process_ = -1;
  int constraint_id_ = -1;
};

}  // namespace nonmask
