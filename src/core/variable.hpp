// Program variables with finite integer domains.
//
// The paper's model (Section 2): a program is a finite set of variables,
// each with a predefined nonempty domain. We represent every domain as a
// contiguous integer interval [lo, hi]; booleans are {0,1} and enumerations
// (e.g. the colors green/red of Section 5.1) are small integer codes. This
// uniform representation is what makes exhaustive model checking, state
// hashing, and fault injection possible with one mechanism.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace nonmask {

/// Strongly typed index of a variable within a Program.
class VarId {
 public:
  constexpr VarId() noexcept : index_(kInvalid) {}
  explicit constexpr VarId(std::uint32_t index) noexcept : index_(index) {}

  constexpr std::uint32_t index() const noexcept { return index_; }
  constexpr bool valid() const noexcept { return index_ != kInvalid; }

  friend constexpr bool operator==(VarId a, VarId b) noexcept {
    return a.index_ == b.index_;
  }
  friend constexpr bool operator!=(VarId a, VarId b) noexcept {
    return !(a == b);
  }
  friend constexpr bool operator<(VarId a, VarId b) noexcept {
    return a.index_ < b.index_;
  }

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t index_;
};

/// Value type of every variable.
using Value = std::int32_t;

/// Declaration of one variable: its name, its inclusive domain [lo, hi],
/// and the process it belongs to (kNoProcess for shared/global variables).
struct VariableSpec {
  static constexpr int kNoProcess = -1;

  std::string name;
  Value lo = 0;
  Value hi = 0;
  int process = kNoProcess;

  VariableSpec() = default;
  VariableSpec(std::string name_, Value lo_, Value hi_,
               int process_ = kNoProcess)
      : name(std::move(name_)), lo(lo_), hi(hi_), process(process_) {
    if (hi < lo) {
      throw std::invalid_argument("VariableSpec '" + name +
                                  "': empty domain (hi < lo)");
    }
  }

  /// Number of values in the domain.
  std::uint64_t domain_size() const noexcept {
    return static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) -
                                      static_cast<std::int64_t>(lo) + 1);
  }

  bool contains(Value v) const noexcept { return lo <= v && v <= hi; }

  /// Clamp an arbitrary value into the domain.
  Value clamp(Value v) const noexcept {
    return v < lo ? lo : (v > hi ? hi : v);
  }
};

}  // namespace nonmask

namespace std {
template <>
struct hash<nonmask::VarId> {
  size_t operator()(nonmask::VarId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.index());
  }
};
}  // namespace std
