// ProgramBuilder is header-only; this translation unit anchors the library.
#include "core/builder.hpp"
