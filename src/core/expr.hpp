// A small expression DSL over program variables.
//
// Protocol actions written with raw lambdas must repeat variable captures
// and can silently disagree with their declared read/write sets. The DSL
// builds guards and statements from composable expression objects that
// *track the variables they touch*, so read/write sets are derived rather
// than hand-maintained:
//
//   using namespace nonmask::dsl;
//   auto x = v(x_id), y = v(y_id);         // variable references
//   Guard g = (x + 1 == y) || (x > lit(3));
//   b.closure("step", g.fn(), assign(y, x + 1).fn(), g.reads(),
//             assign(y, x + 1).writes(), ...);
//
// or, one level higher, ProgramBuilder-compatible helpers:
//
//   add_action(b, "step", ActionKind::kClosure, g, assign(y, x + 1));
//
// The DSL is deliberately small: integer expressions, comparisons, boolean
// connectives, and multi-assignment statements — exactly the shapes the
// paper's guarded commands use.
#pragma once

#include <memory>
#include <vector>

#include "core/action.hpp"
#include "core/builder.hpp"
#include "core/predicate.hpp"

namespace nonmask::dsl {

/// An integer expression: evaluate over a state; knows its read set.
class Expr {
 public:
  using EvalFn = std::function<Value(const State&)>;

  Expr(EvalFn fn, std::vector<VarId> reads)
      : fn_(std::move(fn)), reads_(std::move(reads)) {}

  Value eval(const State& s) const { return fn_(s); }
  const std::vector<VarId>& reads() const noexcept { return reads_; }
  const EvalFn& fn() const noexcept { return fn_; }

 private:
  EvalFn fn_;
  std::vector<VarId> reads_;
};

/// A boolean expression: a guard; knows its read set.
class Guard {
 public:
  Guard(GuardFn fn, std::vector<VarId> reads)
      : fn_(std::move(fn)), reads_(std::move(reads)) {}

  bool eval(const State& s) const { return fn_(s); }
  const GuardFn& fn() const noexcept { return fn_; }
  const std::vector<VarId>& reads() const noexcept { return reads_; }

 private:
  GuardFn fn_;
  std::vector<VarId> reads_;
};

/// A statement: one or more assignments executed simultaneously
/// (right-hand sides all read the pre-state); knows reads and writes.
class Stmt {
 public:
  Stmt(StatementFn fn, std::vector<VarId> reads, std::vector<VarId> writes)
      : fn_(std::move(fn)),
        reads_(std::move(reads)),
        writes_(std::move(writes)) {}

  const StatementFn& fn() const noexcept { return fn_; }
  const std::vector<VarId>& reads() const noexcept { return reads_; }
  const std::vector<VarId>& writes() const noexcept { return writes_; }

  /// Sequential composition with simultaneous-assignment semantics is not
  /// offered on purpose; combine assignments via multi(), as the paper's
  /// statements do ("c.j, sn.j := ...").

 private:
  StatementFn fn_;
  std::vector<VarId> reads_;
  std::vector<VarId> writes_;
};

// --- constructors -----------------------------------------------------------

/// Reference a variable.
Expr v(VarId id);
/// An integer literal.
Expr lit(Value value);

// --- integer operators -------------------------------------------------------

Expr operator+(Expr a, Expr b);
Expr operator-(Expr a, Expr b);
Expr operator*(Expr a, Expr b);
/// Euclidean-style modulo (result in [0, b) for b > 0).
Expr operator%(Expr a, Expr b);
Expr min(Expr a, Expr b);
Expr max(Expr a, Expr b);
/// Conditional expression: cond ? then_e : else_e (state-dependent).
Expr ite(Guard cond, Expr then_e, Expr else_e);

// --- comparisons -------------------------------------------------------------

Guard operator==(Expr a, Expr b);
Guard operator!=(Expr a, Expr b);
Guard operator<(Expr a, Expr b);
Guard operator<=(Expr a, Expr b);
Guard operator>(Expr a, Expr b);
Guard operator>=(Expr a, Expr b);

// --- boolean connectives -----------------------------------------------------

Guard operator&&(Guard a, Guard b);
Guard operator||(Guard a, Guard b);
Guard operator!(Guard a);
/// Conjunction over a list (true for the empty list).
Guard all_of(std::vector<Guard> gs);
/// Disjunction over a list (false for the empty list).
Guard any_of(std::vector<Guard> gs);

// --- statements --------------------------------------------------------------

/// target := value.
Stmt assign(VarId target, Expr value);
/// Simultaneous multi-assignment: all right-hand sides read the pre-state.
Stmt multi(std::vector<Stmt> assignments);

// --- builder integration -----------------------------------------------------

/// Add an action whose read/write sets are derived from the DSL objects.
/// Returns the action index.
std::size_t add_action(ProgramBuilder& b, std::string name, ActionKind kind,
                       const Guard& guard, const Stmt& stmt,
                       int constraint_id = -1, int process = -1);

}  // namespace nonmask::dsl
