#include "core/candidate.hpp"

namespace nonmask {

PredicateFn CandidateTriple::S() const {
  if (S_override) return S_override;
  return p_and(invariant.as_predicate(), fault_span);
}

Design CandidateTriple::augmented(std::vector<Action> convergence_actions) const {
  Design d;
  d.name = program.name();
  d.program = program;
  d.invariant = invariant;
  d.fault_span = fault_span;
  d.S_override = S_override;
  for (auto& a : convergence_actions) {
    d.program.add_action(std::move(a));
  }
  return d;
}

PredicateFn Design::S() const {
  if (S_override) return S_override;
  return p_and(invariant.as_predicate(), fault_span);
}

CandidateTriple Design::candidate() const {
  CandidateTriple t;
  t.program = Program(program.name());
  for (const auto& v : program.variables()) t.program.add_variable(v);
  // Environment actions are outside the program's control, so a candidate
  // (closure actions awaiting synthesized convergence) must keep them: any
  // convergence layer is designed against the composed system.
  for (const auto& a : program.actions()) {
    if (a.kind() == ActionKind::kClosure ||
        a.kind() == ActionKind::kEnvironment) {
      t.program.add_action(a);
    }
  }
  t.invariant = invariant;
  t.fault_span = fault_span;
  t.S_override = S_override;
  return t;
}

}  // namespace nonmask
