// State predicates, constraints, and invariants.
//
// Section 3 of the paper: the invariant S is partitioned into a set of
// *constraints* that can each be independently checked and established by
// some program action; the conjunction of the constraints together with the
// fault-span T equals S. A Constraint here is a named predicate plus the
// set of variables it reads (its "support"), which feeds constraint-graph
// construction and reporting.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/state.hpp"
#include "core/variable.hpp"

namespace nonmask {

/// A boolean expression over program variables.
using PredicateFn = std::function<bool(const State&)>;

/// The constant-true predicate (the fault-span of a stabilizing program).
PredicateFn true_predicate();

/// The constant-false predicate.
PredicateFn false_predicate();

/// Conjunction / disjunction / negation combinators.
PredicateFn p_and(PredicateFn a, PredicateFn b);
PredicateFn p_or(PredicateFn a, PredicateFn b);
PredicateFn p_not(PredicateFn a);
PredicateFn p_all(std::vector<PredicateFn> ps);

/// A named state predicate.
struct StatePredicate {
  std::string name;
  PredicateFn fn;

  bool holds(const State& s) const { return fn(s); }
};

/// One constraint of the invariant: a named predicate plus the variables it
/// reads. The support set is used when inferring constraint graphs and when
/// reporting which constraints a fault violated.
struct Constraint {
  std::string name;
  PredicateFn fn;
  std::vector<VarId> support;

  bool holds(const State& s) const { return fn(s); }
};

/// The invariant S, represented as the conjunction of its constraints.
/// (Per the paper, S == conjunction of constraints /\ T; the fault-span T
/// is carried separately by the CandidateTriple.)
class Invariant {
 public:
  Invariant() = default;
  explicit Invariant(std::vector<Constraint> constraints)
      : constraints_(std::move(constraints)) {}

  std::size_t add(Constraint c) {
    constraints_.push_back(std::move(c));
    return constraints_.size() - 1;
  }

  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  std::size_t size() const noexcept { return constraints_.size(); }
  const Constraint& at(std::size_t i) const { return constraints_.at(i); }

  /// True iff every constraint holds at s.
  bool holds(const State& s) const {
    for (const auto& c : constraints_) {
      if (!c.fn(s)) return false;
    }
    return true;
  }

  /// Indices of the constraints violated at s.
  std::vector<std::size_t> violated(const State& s) const;

  /// Number of violated constraints at s (a natural coarse variant metric).
  std::size_t violation_count(const State& s) const;

  /// The invariant as a single predicate.
  PredicateFn as_predicate() const;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace nonmask
