#include "core/predicate.hpp"

namespace nonmask {

PredicateFn true_predicate() {
  return [](const State&) { return true; };
}

PredicateFn false_predicate() {
  return [](const State&) { return false; };
}

PredicateFn p_and(PredicateFn a, PredicateFn b) {
  return [a = std::move(a), b = std::move(b)](const State& s) {
    return a(s) && b(s);
  };
}

PredicateFn p_or(PredicateFn a, PredicateFn b) {
  return [a = std::move(a), b = std::move(b)](const State& s) {
    return a(s) || b(s);
  };
}

PredicateFn p_not(PredicateFn a) {
  return [a = std::move(a)](const State& s) { return !a(s); };
}

PredicateFn p_all(std::vector<PredicateFn> ps) {
  return [ps = std::move(ps)](const State& s) {
    for (const auto& p : ps) {
      if (!p(s)) return false;
    }
    return true;
  };
}

std::vector<std::size_t> Invariant::violated(const State& s) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (!constraints_[i].fn(s)) out.push_back(i);
  }
  return out;
}

std::size_t Invariant::violation_count(const State& s) const {
  std::size_t n = 0;
  for (const auto& c : constraints_) {
    if (!c.fn(s)) ++n;
  }
  return n;
}

PredicateFn Invariant::as_predicate() const {
  // Capture by value: the returned predicate must outlive the Invariant.
  auto constraints = constraints_;
  return [constraints = std::move(constraints)](const State& s) {
    for (const auto& c : constraints) {
      if (!c.fn(s)) return false;
    }
    return true;
  };
}

}  // namespace nonmask
