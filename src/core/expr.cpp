#include "core/expr.hpp"

#include <algorithm>

namespace nonmask::dsl {

namespace {

std::vector<VarId> merge(const std::vector<VarId>& a,
                         const std::vector<VarId>& b) {
  std::vector<VarId> out = a;
  out.insert(out.end(), b.begin(), b.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

template <typename Op>
Expr binary_expr(Expr a, Expr b, Op op) {
  auto reads = merge(a.reads(), b.reads());
  return Expr(
      [fa = a.fn(), fb = b.fn(), op](const State& s) {
        return op(fa(s), fb(s));
      },
      std::move(reads));
}

template <typename Op>
Guard compare(Expr a, Expr b, Op op) {
  auto reads = merge(a.reads(), b.reads());
  return Guard(
      [fa = a.fn(), fb = b.fn(), op](const State& s) {
        return op(fa(s), fb(s));
      },
      std::move(reads));
}

}  // namespace

Expr v(VarId id) {
  return Expr([id](const State& s) { return s.get(id); }, {id});
}

Expr lit(Value value) {
  return Expr([value](const State&) { return value; }, {});
}

Expr operator+(Expr a, Expr b) {
  return binary_expr(std::move(a), std::move(b),
                     [](Value x, Value y) { return x + y; });
}
Expr operator-(Expr a, Expr b) {
  return binary_expr(std::move(a), std::move(b),
                     [](Value x, Value y) { return x - y; });
}
Expr operator*(Expr a, Expr b) {
  return binary_expr(std::move(a), std::move(b),
                     [](Value x, Value y) { return x * y; });
}
Expr operator%(Expr a, Expr b) {
  return binary_expr(std::move(a), std::move(b), [](Value x, Value y) {
    const Value m = x % y;
    return (m < 0) == (y < 0) || m == 0 ? m : m + y;
  });
}
Expr min(Expr a, Expr b) {
  return binary_expr(std::move(a), std::move(b),
                     [](Value x, Value y) { return std::min(x, y); });
}
Expr max(Expr a, Expr b) {
  return binary_expr(std::move(a), std::move(b),
                     [](Value x, Value y) { return std::max(x, y); });
}

Expr ite(Guard cond, Expr then_e, Expr else_e) {
  auto reads = merge(cond.reads(), merge(then_e.reads(), else_e.reads()));
  return Expr(
      [fc = cond.fn(), ft = then_e.fn(), fe = else_e.fn()](const State& s) {
        return fc(s) ? ft(s) : fe(s);
      },
      std::move(reads));
}

Guard operator==(Expr a, Expr b) {
  return compare(std::move(a), std::move(b),
                 [](Value x, Value y) { return x == y; });
}
Guard operator!=(Expr a, Expr b) {
  return compare(std::move(a), std::move(b),
                 [](Value x, Value y) { return x != y; });
}
Guard operator<(Expr a, Expr b) {
  return compare(std::move(a), std::move(b),
                 [](Value x, Value y) { return x < y; });
}
Guard operator<=(Expr a, Expr b) {
  return compare(std::move(a), std::move(b),
                 [](Value x, Value y) { return x <= y; });
}
Guard operator>(Expr a, Expr b) {
  return compare(std::move(a), std::move(b),
                 [](Value x, Value y) { return x > y; });
}
Guard operator>=(Expr a, Expr b) {
  return compare(std::move(a), std::move(b),
                 [](Value x, Value y) { return x >= y; });
}

Guard operator&&(Guard a, Guard b) {
  auto reads = merge(a.reads(), b.reads());
  return Guard(
      [fa = a.fn(), fb = b.fn()](const State& s) { return fa(s) && fb(s); },
      std::move(reads));
}
Guard operator||(Guard a, Guard b) {
  auto reads = merge(a.reads(), b.reads());
  return Guard(
      [fa = a.fn(), fb = b.fn()](const State& s) { return fa(s) || fb(s); },
      std::move(reads));
}
Guard operator!(Guard a) {
  auto reads = a.reads();
  return Guard([fa = a.fn()](const State& s) { return !fa(s); },
               std::move(reads));
}

Guard all_of(std::vector<Guard> gs) {
  std::vector<VarId> reads;
  std::vector<GuardFn> fns;
  for (auto& g : gs) {
    reads = merge(reads, g.reads());
    fns.push_back(g.fn());
  }
  return Guard(
      [fns = std::move(fns)](const State& s) {
        for (const auto& f : fns) {
          if (!f(s)) return false;
        }
        return true;
      },
      std::move(reads));
}

Guard any_of(std::vector<Guard> gs) {
  std::vector<VarId> reads;
  std::vector<GuardFn> fns;
  for (auto& g : gs) {
    reads = merge(reads, g.reads());
    fns.push_back(g.fn());
  }
  return Guard(
      [fns = std::move(fns)](const State& s) {
        for (const auto& f : fns) {
          if (f(s)) return true;
        }
        return false;
      },
      std::move(reads));
}

Stmt assign(VarId target, Expr value) {
  auto reads = value.reads();
  return Stmt(
      [target, fv = value.fn()](State& s) { s.set(target, fv(s)); },
      std::move(reads), {target});
}

Stmt multi(std::vector<Stmt> assignments) {
  std::vector<VarId> reads, writes;
  for (const auto& st : assignments) {
    reads = merge(reads, st.reads());
    writes = merge(writes, st.writes());
  }
  // Simultaneous semantics: evaluate each assignment against the
  // pre-state, then merge declared writes.
  std::vector<StatementFn> fns;
  std::vector<std::vector<VarId>> write_sets;
  for (const auto& st : assignments) {
    fns.push_back(st.fn());
    write_sets.push_back(st.writes());
  }
  return Stmt(
      [fns = std::move(fns), write_sets = std::move(write_sets)](State& s) {
        const State pre = s;
        for (std::size_t i = 0; i < fns.size(); ++i) {
          State local = pre;
          fns[i](local);
          for (VarId w : write_sets[i]) s.set(w, local.get(w));
        }
      },
      std::move(reads), std::move(writes));
}

std::size_t add_action(ProgramBuilder& b, std::string name, ActionKind kind,
                       const Guard& guard, const Stmt& stmt,
                       int constraint_id, int process) {
  const std::vector<VarId> reads = merge(guard.reads(), stmt.reads());
  switch (kind) {
    case ActionKind::kClosure:
      b.closure(std::move(name), guard.fn(), stmt.fn(), reads, stmt.writes(),
                process);
      break;
    case ActionKind::kConvergence:
      b.convergence(std::move(name), guard.fn(), stmt.fn(), reads,
                    stmt.writes(), constraint_id, process);
      break;
    case ActionKind::kFault:
      b.fault(std::move(name), guard.fn(), stmt.fn(), reads, stmt.writes(),
              process);
      break;
    case ActionKind::kEnvironment:
      b.environment(std::move(name), guard.fn(), stmt.fn(), reads,
                    stmt.writes(), process);
      break;
  }
  return b.peek().num_actions() - 1;
}

}  // namespace nonmask::dsl
