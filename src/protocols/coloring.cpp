#include "protocols/coloring.hpp"

#include <string>

#include "core/builder.hpp"

namespace nonmask {

bool ColoringDesign::proper(const UndirectedGraph& g, const State& s) const {
  for (const auto& [u, v] : g.edges()) {
    if (s.get(color[static_cast<std::size_t>(u)]) ==
        s.get(color[static_cast<std::size_t>(v)])) {
      return false;
    }
  }
  return true;
}

ColoringDesign make_coloring(const UndirectedGraph& g) {
  const int n = g.size();
  const Value palette_max = static_cast<Value>(g.max_degree());

  ProgramBuilder b("stabilizing-coloring");
  ColoringDesign cd;
  for (int j = 0; j < n; ++j) {
    cd.color.push_back(b.var("color." + std::to_string(j), 0, palette_max, j));
  }
  const auto& color = cd.color;

  Invariant inv;
  for (int j = 0; j < n; ++j) {
    std::vector<VarId> lower, all_nbrs;
    for (int k : g.neighbors(j)) {
      all_nbrs.push_back(color[static_cast<std::size_t>(k)]);
      if (k < j) lower.push_back(color[static_cast<std::size_t>(k)]);
    }
    if (lower.empty()) continue;  // no obligation, no action

    const VarId cj = color[static_cast<std::size_t>(j)];
    auto ok = [cj, lower](const State& s) {
      for (VarId k : lower) {
        if (s.get(k) == s.get(cj)) return false;
      }
      return true;
    };
    std::vector<VarId> support = lower;
    support.push_back(cj);
    const auto cid = inv.add(Constraint{
        "no-conflict-below@" + std::to_string(j), ok, support});

    std::vector<VarId> reads = all_nbrs;
    reads.push_back(cj);
    const std::size_t action_index = b.peek().num_actions();
    b.convergence(
        "recolor@" + std::to_string(j),
        [ok](const State& s) { return !ok(s); },
        [cj, all_nbrs, palette_max](State& s) {
          // Smallest color unused by any neighbor; degree <= palette_max
          // guarantees one exists.
          for (Value c = 0; c <= palette_max; ++c) {
            bool used = false;
            for (VarId k : all_nbrs) {
              if (s.get(k) == c) {
                used = true;
                break;
              }
            }
            if (!used) {
              s.set(cj, c);
              return;
            }
          }
        },
        reads, {cj}, static_cast<int>(cid), j);
    cd.layers.push_back({action_index});
  }

  cd.design.name = b.peek().name();
  cd.design.program = b.build();
  cd.design.invariant = std::move(inv);
  cd.design.fault_span = true_predicate();
  cd.design.stabilizing = true;
  return cd;
}

}  // namespace nonmask
