#include "protocols/diffusing.hpp"

#include <string>

#include "core/builder.hpp"

namespace nonmask {

std::vector<std::vector<VarId>> DiffusingDesign::partition() const {
  std::vector<std::vector<VarId>> groups;
  groups.reserve(color.size());
  for (std::size_t j = 0; j < color.size(); ++j) {
    groups.push_back({color[j], session[j]});
  }
  return groups;
}

DiffusingDesign make_diffusing(const RootedTree& tree, bool combined) {
  const int n = tree.size();
  ProgramBuilder b(combined ? "diffusing-computation"
                            : "diffusing-computation-separated");

  DiffusingDesign dd;
  dd.color.reserve(static_cast<std::size_t>(n));
  dd.session.reserve(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    dd.color.push_back(
        b.var("c." + std::to_string(j), kGreen, kRed, j));
    dd.session.push_back(b.boolean("sn." + std::to_string(j), j));
  }
  const auto& c = dd.color;
  const auto& sn = dd.session;

  // Constraint R.j for each non-root j; record constraint index per node.
  Invariant inv;
  std::vector<int> constraint_of(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId cp = c[static_cast<std::size_t>(p)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    const VarId snp = sn[static_cast<std::size_t>(p)];
    auto R = [cj, cp, snj, snp](const State& s) {
      return (s.get(cj) == s.get(cp) && s.get(snj) == s.get(snp)) ||
             (s.get(cj) == kGreen && s.get(cp) == kRed);
    };
    constraint_of[static_cast<std::size_t>(j)] = static_cast<int>(inv.add(
        Constraint{"R." + std::to_string(j), R, {cj, cp, snj, snp}}));
  }

  // Closure action 1: the root initiates a new diffusing computation.
  {
    const int r = tree.root();
    const VarId cr = c[static_cast<std::size_t>(r)];
    const VarId snr = sn[static_cast<std::size_t>(r)];
    b.closure(
        "initiate@" + std::to_string(r),
        [cr](const State& s) { return s.get(cr) == kGreen; },
        [cr, snr](State& s) {
          s.set(cr, kRed);
          s.set(snr, 1 - s.get(snr));
        },
        {cr, snr}, {cr, snr}, r);
  }

  // Per non-root j: propagation (closure) and correction (convergence), or
  // the paper's combined action.
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId cp = c[static_cast<std::size_t>(p)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    const VarId snp = sn[static_cast<std::size_t>(p)];

    auto copy_parent = [cj, cp, snj, snp](State& s) {
      s.set(cj, s.get(cp));
      s.set(snj, s.get(snp));
    };
    const std::vector<VarId> reads{cj, cp, snj, snp};
    const std::vector<VarId> writes{cj, snj};

    if (combined) {
      // sn.j != sn.P.j \/ (c.j = red /\ c.P.j = green) -> copy from parent
      b.convergence(
          "propagate-or-correct@" + std::to_string(j),
          [cj, cp, snj, snp](const State& s) {
            return s.get(snj) != s.get(snp) ||
                   (s.get(cj) == kRed && s.get(cp) == kGreen);
          },
          copy_parent, reads, writes,
          constraint_of[static_cast<std::size_t>(j)], j);
    } else {
      // Closure: c.j = green /\ c.P.j = red /\ sn.j != sn.P.j -> copy.
      b.closure(
          "propagate@" + std::to_string(j),
          [cj, cp, snj, snp](const State& s) {
            return s.get(cj) == kGreen && s.get(cp) == kRed &&
                   s.get(snj) != s.get(snp);
          },
          copy_parent, reads, writes, j);
      // Convergence: ¬R.j -> copy (the paper's preferred statement).
      b.convergence(
          "correct@" + std::to_string(j),
          [cj, cp, snj, snp](const State& s) {
            const bool R =
                (s.get(cj) == s.get(cp) && s.get(snj) == s.get(snp)) ||
                (s.get(cj) == kGreen && s.get(cp) == kRed);
            return !R;
          },
          copy_parent, reads, writes,
          constraint_of[static_cast<std::size_t>(j)], j);
    }
  }

  // Closure action 3: reflection, once every child has completed.
  for (int j = 0; j < n; ++j) {
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    std::vector<VarId> reads{cj, snj};
    std::vector<VarId> child_c, child_sn;
    for (int k : tree.children(j)) {
      child_c.push_back(c[static_cast<std::size_t>(k)]);
      child_sn.push_back(sn[static_cast<std::size_t>(k)]);
      reads.push_back(child_c.back());
      reads.push_back(child_sn.back());
    }
    b.closure(
        "reflect@" + std::to_string(j),
        [cj, snj, child_c, child_sn](const State& s) {
          if (s.get(cj) != kRed) return false;
          for (std::size_t i = 0; i < child_c.size(); ++i) {
            if (s.get(child_c[i]) != kGreen ||
                s.get(child_sn[i]) != s.get(snj)) {
              return false;
            }
          }
          return true;
        },
        [cj](State& s) { s.set(cj, kGreen); }, reads, {cj}, j);
  }

  dd.design.name = b.peek().name();
  dd.design.program = b.build();
  dd.design.invariant = std::move(inv);
  dd.design.fault_span = true_predicate();
  dd.design.stabilizing = true;
  return dd;
}

}  // namespace nonmask
