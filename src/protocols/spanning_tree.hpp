// Stabilizing BFS spanning tree (extension protocol).
//
// A classic application of the paper's methodology to a protocol whose
// constraint graph is *cyclic* (every node reads all of its neighbors), yet
// which converges: the exact checker proves it on small graphs while
// Theorems 1-2 correctly refuse to apply — illustrating Section 7's remark
// that cyclic graphs need refined analysis.
//
// Per node j: dist.j in [0, n-1]. The root pins dist.r = 0; every other
// node maintains dist.j = min over neighbors (dist.k) + 1, capped at n-1.
// The unique fixpoint is the true BFS distance vector, from which parents
// (any neighbor with dist one less) form a spanning tree.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {

struct SpanningTreeDesign {
  Design design;
  std::vector<VarId> dist;
  int root = 0;

  /// Extract the parent of each node from a stabilized state (root maps to
  /// itself). Any neighbor with dist one less is a valid parent; we pick
  /// the smallest.
  std::vector<int> extract_parents(const UndirectedGraph& g,
                                   const State& s) const;
};

/// Build the design over a connected graph; `root` in [0, g.size()).
SpanningTreeDesign make_spanning_tree(const UndirectedGraph& g, int root = 0);

/// The same design composed with an *unchangeable environment*
/// (checker/restricted.hpp): a shared "env.noise" bit, appended after the
/// dist variables, that a free-running kEnvironment action toggles forever.
/// No program action writes it (the unchangeable contract), and the
/// invariant ignores it — yet unfair convergence is refuted (the
/// environment can starve every convergence action), while the weakly-fair
/// SCC escape analysis still proves convergence. The canonical demo of why
/// environment composition needs fairness-aware checking.
SpanningTreeDesign make_spanning_tree_with_environment(
    const UndirectedGraph& g, int root = 0);

}  // namespace nonmask
