// The paper's running example (Sections 4 and 6): three integer variables
// x, y, z with the invariant  S = (x != y) /\ (x <= z).
//
// Three convergence-action choices are modeled:
//   kWriteYZ    (Section 4): fix x!=y by changing y, fix x<=z by raising z.
//               Constraint graph {x}->{y}, {x}->{z} — the paper's figure,
//               an out-tree; Theorem 1 applies.
//   kWriteXBoth (Section 6, first example): both actions write x. Both
//               edges target {x}; no linear order exists (each action can
//               violate the other's constraint) and the pair can livelock.
//   kDecreaseX  (Section 6, second example): fix x!=y by *decreasing* x,
//               fix x<=z by lowering x to z. The decreasing action
//               preserves x<=z, so the order (fix-x<=z, fix-x!=y) validates
//               Theorem 2 and every computation is finite.
#pragma once

#include "core/candidate.hpp"
#include "core/variable.hpp"

namespace nonmask {

enum class RunningExampleVariant {
  kWriteYZ,     ///< Section 4: out-tree (the paper's figure)
  kWriteXBoth,  ///< Section 6: same target node, livelocks
  kDecreaseX,   ///< Section 6: same target node, linearly orderable
};

const char* to_string(RunningExampleVariant v) noexcept;

/// Build the running example over domains y,z in [lo,hi] (x gets one extra
/// value of headroom below lo so that the kDecreaseX variant can always
/// decrement). Requires hi > lo.
Design make_running_example(RunningExampleVariant variant, Value lo = 0,
                            Value hi = 7);

}  // namespace nonmask
