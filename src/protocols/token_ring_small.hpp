// Dijkstra's three-state and four-state token circulation protocols — the
// other two solutions of [9] (Dijkstra, CACM 1974), which achieve
// self-stabilization with constant-size state per machine by giving the
// two distinguished machines ("bottom" and "top") asymmetric rules.
//
// Machines 0..n-1 form a line with bottom = 0 and top = n-1; in the
// three-state solution top additionally reads bottom (Dijkstra's cyclic
// arrangement). A machine is *privileged* iff one of its guards holds;
// S = "exactly one machine is privileged". Our exact checker re-verifies
// closure and convergence of both protocols on every small n the tests
// sweep — the honest way to pin down 50-year-old rule sets.
#pragma once

#include <vector>

#include "core/candidate.hpp"

namespace nonmask {

struct SmallRingDesign {
  Design design;
  /// Variables per machine. Three-state: s.j in {0,1,2}. Four-state:
  /// x.j in {0,1} plus up.j in {0,1} (up.0 == 1 and up.(n-1) == 0 fixed).
  std::vector<VarId> primary;
  std::vector<VarId> up;  ///< empty for the three-state protocol

  /// Number of privileged machines at s (machines with an enabled rule).
  int privileges(const State& s) const;
};

/// Dijkstra's three-state solution; num_machines >= 3.
SmallRingDesign make_dijkstra_three_state(int num_machines);

/// Dijkstra's four-state solution; num_machines >= 3.
SmallRingDesign make_dijkstra_four_state(int num_machines);

}  // namespace nonmask
