// Triple modular redundancy — the paper's Section 3 *classification* made
// executable. Two designs over the same replicated-register substrate:
//
//   masking variant:    T = S = "a majority of replicas carry the reference
//                       value and the output equals it". The tolerated
//                       fault (corrupt one replica of a healthy system)
//                       never exposes a non-S state — the reader of `out`
//                       cannot observe the fault. S = T ⇒ *masking*.
//
//   nonmasking variant: faults may additionally corrupt the output;
//                       T = "a majority of replicas are correct" ⊋ S.
//                       The voter re-establishes S eventually; the reader
//                       may observe a glitch. S ⊊ T ⇒ *nonmasking*.
//
// classify_tolerance() distinguishes the two mechanically, and the tests
// sweep both — the definitional heart of the paper in ~100 lines.
#pragma once

#include <vector>

#include "core/candidate.hpp"

namespace nonmask {

struct TmrDesign {
  Design design;
  std::vector<VarId> replica;  ///< r.0, r.1, r.2
  VarId out;
  Value reference = 0;  ///< the value the system is supposed to hold
  /// Fault-action indices: [0..2] corrupt replica k (guarded to fire only
  /// from healthy states in the masking variant); last = corrupt `out`
  /// (nonmasking variant only).
  std::vector<std::size_t> fault_actions;
};

/// `masking` selects the variant; values range over [0, value_max].
TmrDesign make_tmr(bool masking, Value value_max = 3, Value reference = 2);

}  // namespace nonmask
