#include "protocols/matching.hpp"

#include <string>

#include "core/builder.hpp"

namespace nonmask {

namespace {

/// The node pointer p.j targets: adjacency index -> node id, or -1.
int target_of(const UndirectedGraph& g, Value pj, int j) {
  if (pj < 0) return -1;
  const auto& nbrs = g.neighbors(j);
  if (static_cast<std::size_t>(pj) >= nbrs.size()) return -1;
  return nbrs[static_cast<std::size_t>(pj)];
}

}  // namespace

int MatchingDesign::partner(const UndirectedGraph& g, const State& s,
                            int j) const {
  const int k = target_of(g, s.get(ptr[static_cast<std::size_t>(j)]), j);
  if (k < 0) return -1;
  if (target_of(g, s.get(ptr[static_cast<std::size_t>(k)]), k) == j) return k;
  return -1;
}

bool MatchingDesign::is_matching(const UndirectedGraph& g,
                                 const State& s) const {
  for (int j = 0; j < g.size(); ++j) {
    const int k = target_of(g, s.get(ptr[static_cast<std::size_t>(j)]), j);
    if (k < 0) continue;
    if (target_of(g, s.get(ptr[static_cast<std::size_t>(k)]), k) != j) {
      return false;
    }
  }
  return true;
}

bool MatchingDesign::is_maximal_matching(const UndirectedGraph& g,
                                         const State& s) const {
  if (!is_matching(g, s)) return false;
  for (const auto& [u, v] : g.edges()) {
    if (s.get(ptr[static_cast<std::size_t>(u)]) < 0 &&
        s.get(ptr[static_cast<std::size_t>(v)]) < 0) {
      return false;
    }
  }
  return true;
}

MatchingDesign make_matching(const UndirectedGraph& g) {
  const int n = g.size();
  ProgramBuilder b("hsu-huang-matching");
  MatchingDesign md;
  for (int j = 0; j < n; ++j) {
    md.ptr.push_back(b.var("p." + std::to_string(j), -1,
                           static_cast<Value>(g.degree(j)) - 1, j));
  }
  const auto& ptr = md.ptr;

  // All pointers of all nodes feed every rule's guard via "does anyone
  // point at j", so reads cover j's neighborhood pointers.
  for (int j = 0; j < n; ++j) {
    const VarId pj = ptr[static_cast<std::size_t>(j)];
    const auto& nbrs = g.neighbors(j);
    std::vector<VarId> reads{pj};
    for (int k : nbrs) reads.push_back(ptr[static_cast<std::size_t>(k)]);

    // Index of j within each neighbor's adjacency list (to test p.k -> j).
    std::vector<Value> back_index(nbrs.size(), -1);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const auto& kn = g.neighbors(nbrs[i]);
      for (std::size_t t = 0; t < kn.size(); ++t) {
        if (kn[t] == j) back_index[i] = static_cast<Value>(t);
      }
    }

    auto pointed_at_by = [ptr, nbrs, back_index](const State& s, int j_) {
      (void)j_;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (s.get(ptr[static_cast<std::size_t>(nbrs[i])]) == back_index[i]) {
          return static_cast<int>(i);  // adjacency index of a suitor
        }
      }
      return -1;
    };

    // accept: null and a neighbor points at me -> point back (smallest).
    b.closure(
        "accept@" + std::to_string(j),
        [pj, pointed_at_by, j](const State& s) {
          return s.get(pj) < 0 && pointed_at_by(s, j) >= 0;
        },
        [pj, pointed_at_by, j](State& s) {
          s.set(pj, static_cast<Value>(pointed_at_by(s, j)));
        },
        reads, {pj}, j);

    // propose: null, no suitors, and a null neighbor exists -> point at the
    // smallest null neighbor.
    {
      auto first_null_nbr = [ptr, nbrs](const State& s) {
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          if (s.get(ptr[static_cast<std::size_t>(nbrs[i])]) < 0) {
            return static_cast<int>(i);
          }
        }
        return -1;
      };
      b.closure(
          "propose@" + std::to_string(j),
          [pj, pointed_at_by, first_null_nbr, j](const State& s) {
            return s.get(pj) < 0 && pointed_at_by(s, j) < 0 &&
                   first_null_nbr(s) >= 0;
          },
          [pj, first_null_nbr](State& s) {
            s.set(pj, static_cast<Value>(first_null_nbr(s)));
          },
          reads, {pj}, j);
    }

    // retract: I point at k but k points at a third node -> null.
    b.closure(
        "retract@" + std::to_string(j),
        [pj, ptr, nbrs, back_index](const State& s) {
          const Value v = s.get(pj);
          if (v < 0) return false;
          const int k = nbrs[static_cast<std::size_t>(v)];
          const Value pk = s.get(ptr[static_cast<std::size_t>(k)]);
          return pk >= 0 && pk != back_index[static_cast<std::size_t>(v)];
        },
        [pj](State& s) { s.set(pj, -1); }, reads, {pj}, j);
  }

  Design& d = md.design;
  d.name = b.peek().name();
  d.program = b.build();
  d.fault_span = true_predicate();
  d.stabilizing = true;

  // S: the pointers form a maximal matching.
  {
    auto ptrs = md.ptr;
    const UndirectedGraph graph = g;  // value copy captured by the predicate
    MatchingDesign probe;
    probe.ptr = ptrs;
    d.S_override = [probe, graph](const State& s) {
      return probe.is_maximal_matching(graph, s);
    };
  }
  return md;
}

}  // namespace nonmask
