// Stabilizing tree aggregation (extension protocol; authored end-to-end
// with the core/expr DSL).
//
// Every node j owns an input in.j and an aggregate agg.j that must equal
// the maximum input in j's subtree:
//   agg.j = max(in.j, max over children k of agg.k).
// One convergence action per node re-evaluates the local equation; the
// unique fixpoint is the true subtree maxima, so the root's aggregate
// stabilizes to the global maximum — the substrate under snapshot /
// termination-detection style applications of diffusing computations
// (Section 5.1's application list).
//
// Like the BFS spanning tree, reads span all children: the inferred
// constraint graph of a non-chain tree is coarse, but the *tree* orients
// the dependencies leaf-to-root, so Theorem 2 applies whenever each node's
// support stays in two partition groups (chains), and the exact checker
// covers the rest.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {

struct AggregationDesign {
  Design design;
  std::vector<VarId> input;      ///< in.j (read-only: no action writes it)
  std::vector<VarId> aggregate;  ///< agg.j

  /// The correct aggregate of node j at state s (max over its subtree).
  Value expected(const RootedTree& tree, const State& s, int j) const;
};

/// Inputs and aggregates range over [0, max_value].
AggregationDesign make_aggregation(const RootedTree& tree, Value max_value);

}  // namespace nonmask
