// Stabilizing graph coloring (extension protocol) — the library's cleanest
// Theorem 3 showcase.
//
// Node j holds color.j in [0, max_degree]. A node is in conflict when it
// shares a color with a *lower-id* neighbor; its convergence action
// recolors to the smallest color unused by any neighbor. Constraint
//   c.j = (forall lower-id neighbors k :: color.k != color.j)
// and the per-id layering {0}, {1}, ..., {n-1} discharge Theorem 3
// mechanically: a higher-id action writes only its own color, which no
// lower layer's constraint reads.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {

struct ColoringDesign {
  Design design;
  std::vector<VarId> color;
  /// Theorem-3 layers: layer j = the single convergence action of node j
  /// (nodes with no lower-id neighbors contribute no action).
  std::vector<std::vector<std::size_t>> layers;

  /// True iff s is a proper coloring of g.
  bool proper(const UndirectedGraph& g, const State& s) const;
};

ColoringDesign make_coloring(const UndirectedGraph& g);

}  // namespace nonmask
