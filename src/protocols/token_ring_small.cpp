#include "protocols/token_ring_small.hpp"

#include <memory>
#include <set>
#include <stdexcept>
#include <string>

#include "core/builder.hpp"

namespace nonmask {

int SmallRingDesign::privileges(const State& s) const {
  std::set<int> machines;
  for (const auto& a : design.program.actions()) {
    if (a.kind() == ActionKind::kFault) continue;
    if (a.enabled(s)) machines.insert(a.process());
  }
  return static_cast<int>(machines.size());
}

namespace {

/// S for both protocols: exactly one machine is privileged.
PredicateFn one_privilege_of(const Program& program) {
  // Capture guards by value: (process, guard) pairs.
  struct Entry {
    int process;
    GuardFn guard;
  };
  auto entries = std::make_shared<std::vector<Entry>>();
  for (const auto& a : program.actions()) {
    if (a.kind() == ActionKind::kFault) continue;
    entries->push_back(Entry{a.process(), a.guard()});  // guard copied
  }
  return [entries](const State& s) {
    std::set<int> machines;
    for (const auto& e : *entries) {
      if (e.guard(s)) machines.insert(e.process);
    }
    return machines.size() == 1;
  };
}

}  // namespace

SmallRingDesign make_dijkstra_three_state(int num_machines) {
  if (num_machines < 3) throw std::invalid_argument("three-state: n < 3");
  const int n = num_machines;
  ProgramBuilder b("dijkstra-three-state");
  SmallRingDesign sr;
  for (int j = 0; j < n; ++j) {
    sr.primary.push_back(b.var("s." + std::to_string(j), 0, 2, j));
  }
  const auto& s3 = sr.primary;

  // bottom: if S+1 = R then S := S+2  (R = machine 1)
  {
    const VarId s0 = s3[0];
    const VarId s1 = s3[1];
    b.closure(
        "bottom",
        [s0, s1](const State& st) {
          return (st.get(s0) + 1) % 3 == st.get(s1);
        },
        [s0](State& st) { st.set(s0, (st.get(s0) + 2) % 3); }, {s0, s1},
        {s0}, 0);
  }
  // normal i: if S+1 = L or S+1 = R then S := S+1
  for (int i = 1; i + 1 < n; ++i) {
    const VarId si = s3[static_cast<std::size_t>(i)];
    const VarId sl = s3[static_cast<std::size_t>(i - 1)];
    const VarId sr_ = s3[static_cast<std::size_t>(i + 1)];
    b.closure(
        "normal@" + std::to_string(i),
        [si, sl, sr_](const State& st) {
          const Value next = (st.get(si) + 1) % 3;
          return next == st.get(sl) || next == st.get(sr_);
        },
        [si](State& st) { st.set(si, (st.get(si) + 1) % 3); },
        {si, sl, sr_}, {si}, i);
  }
  // top: if L = R and L+1 != S then S := L+1
  // (top's R is bottom — Dijkstra's cyclic arrangement).
  {
    const VarId st_ = s3[static_cast<std::size_t>(n - 1)];
    const VarId sl = s3[static_cast<std::size_t>(n - 2)];
    const VarId s0 = s3[0];
    b.closure(
        "top",
        [st_, sl, s0](const State& st) {
          return st.get(sl) == st.get(s0) &&
                 (st.get(sl) + 1) % 3 != st.get(st_);
        },
        [st_, sl](State& st) { st.set(st_, (st.get(sl) + 1) % 3); },
        {st_, sl, s0}, {st_}, n - 1);
  }

  sr.design.name = b.peek().name();
  sr.design.program = b.build();
  sr.design.fault_span = true_predicate();
  sr.design.stabilizing = true;
  sr.design.S_override = one_privilege_of(sr.design.program);
  return sr;
}

SmallRingDesign make_dijkstra_four_state(int num_machines) {
  if (num_machines < 3) throw std::invalid_argument("four-state: n < 3");
  const int n = num_machines;
  ProgramBuilder b("dijkstra-four-state");
  SmallRingDesign sr;
  for (int j = 0; j < n; ++j) {
    sr.primary.push_back(b.boolean("x." + std::to_string(j), j));
  }
  // up.0 == 1 and up.(n-1) == 0 are structural constants; modeling them as
  // singleton-domain variables keeps every machine uniform *and* keeps
  // them out of the corruptible state (the paper's machines hard-wire
  // them).
  for (int j = 0; j < n; ++j) {
    const Value lo = j == 0 ? 1 : 0;
    const Value hi = j == n - 1 ? 0 : 1;
    sr.up.push_back(b.var("up." + std::to_string(j), lo, hi, j));
  }
  const auto& x = sr.primary;
  const auto& up = sr.up;

  // bottom: if x0 = x1 and !up1 then x0 := !x0
  {
    const VarId x0 = x[0];
    const VarId x1 = x[1];
    const VarId up1 = up[1];
    b.closure(
        "bottom",
        [x0, x1, up1](const State& st) {
          return st.get(x0) == st.get(x1) && st.get(up1) == 0;
        },
        [x0](State& st) { st.set(x0, 1 - st.get(x0)); }, {x0, x1, up1},
        {x0}, 0);
  }
  // normal i:
  //   down-rule: if x_i != x_(i-1) then { x_i := x_(i-1); up_i := 1 }
  //   up-rule:   if x_i == x_(i+1) and up_i and !up_(i+1) then up_i := 0
  for (int i = 1; i + 1 < n; ++i) {
    const VarId xi = x[static_cast<std::size_t>(i)];
    const VarId xl = x[static_cast<std::size_t>(i - 1)];
    const VarId xr = x[static_cast<std::size_t>(i + 1)];
    const VarId ui = up[static_cast<std::size_t>(i)];
    const VarId ur = up[static_cast<std::size_t>(i + 1)];
    b.closure(
        "recv@" + std::to_string(i),
        [xi, xl](const State& st) { return st.get(xi) != st.get(xl); },
        [xi, xl, ui](State& st) {
          st.set(xi, st.get(xl));
          st.set(ui, 1);
        },
        {xi, xl}, {xi, ui}, i);
    b.closure(
        "pass-down@" + std::to_string(i),
        [xi, xr, ui, ur](const State& st) {
          return st.get(xi) == st.get(xr) && st.get(ui) == 1 &&
                 st.get(ur) == 0;
        },
        [ui](State& st) { st.set(ui, 0); }, {xi, xr, ui, ur}, {ui}, i);
  }
  // top: if x_(n-1) != x_(n-2) then x_(n-1) := x_(n-2)
  {
    const VarId xt = x[static_cast<std::size_t>(n - 1)];
    const VarId xl = x[static_cast<std::size_t>(n - 2)];
    b.closure(
        "top",
        [xt, xl](const State& st) { return st.get(xt) != st.get(xl); },
        [xt, xl](State& st) { st.set(xt, st.get(xl)); }, {xt, xl}, {xt},
        n - 1);
  }

  sr.design.name = b.peek().name();
  sr.design.program = b.build();
  sr.design.fault_span = true_predicate();
  sr.design.stabilizing = true;
  sr.design.S_override = one_privilege_of(sr.design.program);
  return sr;
}

}  // namespace nonmask
