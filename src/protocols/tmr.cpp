#include "protocols/tmr.hpp"

#include <stdexcept>
#include <string>

#include "core/builder.hpp"

namespace nonmask {

namespace {

/// Majority of three values, or -1 when all differ.
Value majority(Value a, Value b, Value c) {
  if (a == b || a == c) return a;
  if (b == c) return b;
  return -1;
}

}  // namespace

TmrDesign make_tmr(bool masking, Value value_max, Value reference) {
  if (value_max < 1 || reference < 0 || reference > value_max) {
    throw std::invalid_argument("tmr: bad domain/reference");
  }
  ProgramBuilder b(masking ? "tmr-masking" : "tmr-nonmasking");
  TmrDesign tmr;
  tmr.reference = reference;
  for (int k = 0; k < 3; ++k) {
    tmr.replica.push_back(b.var("r." + std::to_string(k), 0, value_max, k));
  }
  tmr.out = b.var("out", 0, value_max);
  const auto& r = tmr.replica;
  const VarId out = tmr.out;

  auto majority_of = [r](const State& s) {
    return majority(s.get(r[0]), s.get(r[1]), s.get(r[2]));
  };
  auto healthy = [r, reference](const State& s) {
    int good = 0;
    for (VarId v : r) {
      if (s.get(v) == reference) ++good;
    }
    return good >= 2;
  };

  Invariant inv;
  // Constraint per replica: r.k equals the majority (repairable locally).
  for (int k = 0; k < 3; ++k) {
    const VarId rk = r[static_cast<std::size_t>(k)];
    auto ok = [rk, majority_of](const State& s) {
      const Value m = majority_of(s);
      return m < 0 || s.get(rk) == m;
    };
    const auto cid = inv.add(Constraint{
        "r." + std::to_string(k) + " = majority", ok, {r[0], r[1], r[2]}});
    b.convergence(
        "repair@" + std::to_string(k),
        [ok](const State& s) { return !ok(s); },
        [rk, majority_of](State& s) { s.set(rk, majority_of(s)); },
        {r[0], r[1], r[2]}, {rk}, static_cast<int>(cid), k);
  }
  // Voter: out follows the majority.
  {
    auto ok = [out, majority_of](const State& s) {
      const Value m = majority_of(s);
      return m < 0 || s.get(out) == m;
    };
    const auto cid = inv.add(Constraint{
        "out = majority", ok, {r[0], r[1], r[2], out}});
    b.convergence(
        "vote",
        [ok](const State& s) { return !ok(s); },
        [out, majority_of](State& s) { s.set(out, majority_of(s)); },
        {r[0], r[1], r[2], out}, {out}, static_cast<int>(cid));
  }

  // Tolerated fault: corrupt one replica of a *fully repaired* system (the
  // guard encodes the fault class "at most one replica fails between
  // repairs" — corrupting a 2-of-3 system could exceed the majority
  // assumption and leave T, so it is outside the tolerated class).
  auto fully_repaired = [r, reference](const State& s) {
    for (VarId v : r) {
      if (s.get(v) != reference) return false;
    }
    return true;
  };
  for (int k = 0; k < 3; ++k) {
    const VarId rk = r[static_cast<std::size_t>(k)];
    b.fault(
        "corrupt-r" + std::to_string(k),
        [fully_repaired, out, reference, masking](const State& s) {
          if (!fully_repaired(s)) return false;
          return !masking || s.get(out) == reference;
        },
        [rk, reference, value_max](State& s) {
          s.set(rk, (reference + 1) % (value_max + 1));
        },
        {r[0], r[1], r[2], out, rk}, {rk}, k);
    tmr.fault_actions.push_back(b.peek().num_actions() - 1);
  }
  if (!masking) {
    b.fault(
        "corrupt-out", healthy,
        [out, reference, value_max](State& s) {
          s.set(out, s.get(out) == reference
                         ? (reference + 1) % (value_max + 1)
                         : reference);
        },
        {r[0], r[1], r[2], out}, {out});
    tmr.fault_actions.push_back(b.peek().num_actions() - 1);
  }

  tmr.design.name = b.peek().name();
  tmr.design.program = b.build();
  tmr.design.invariant = std::move(inv);
  tmr.design.stabilizing = false;

  // S: a majority carries the reference and out equals it.
  tmr.design.S_override = [healthy, out, reference](const State& s) {
    return healthy(s) && s.get(out) == reference;
  };
  // T: masking -> T = S; nonmasking -> majority correct, out arbitrary.
  if (masking) {
    tmr.design.fault_span = tmr.design.S_override;
  } else {
    tmr.design.fault_span = [healthy](const State& s) { return healthy(s); };
  }
  return tmr;
}

}  // namespace nonmask
