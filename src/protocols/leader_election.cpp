#include "protocols/leader_election.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/builder.hpp"

namespace nonmask {

LeaderElectionDesign make_leader_election(int num_nodes) {
  if (num_nodes < 2) throw std::invalid_argument("leader election: n < 2");
  ProgramBuilder b("ring-leader-election");
  LeaderElectionDesign le;
  for (int j = 0; j < num_nodes; ++j) {
    le.ldr.push_back(b.var("ldr." + std::to_string(j), 0,
                           static_cast<Value>(num_nodes - 1), j));
  }
  const auto& ldr = le.ldr;

  Invariant inv;
  for (int j = 0; j < num_nodes; ++j) {
    const VarId lj = ldr[static_cast<std::size_t>(j)];
    if (j == 0) {
      const auto cid = inv.add(Constraint{
          "ldr.0 = 0", [lj](const State& s) { return s.get(lj) == 0; }, {lj}});
      b.convergence(
          "claim@0", [lj](const State& s) { return s.get(lj) != 0; },
          [lj](State& s) { s.set(lj, 0); }, {lj}, {lj},
          static_cast<int>(cid), 0);
      continue;
    }
    const VarId lp = ldr[static_cast<std::size_t>(j - 1)];
    const Value id = static_cast<Value>(j);
    auto ok = [lj, lp, id](const State& s) {
      return s.get(lj) == std::min(id, s.get(lp));
    };
    const auto cid = inv.add(Constraint{
        "ldr." + std::to_string(j) + " = min(id, ldr." +
            std::to_string(j - 1) + ")",
        ok, {lj, lp}});
    b.convergence(
        "adopt@" + std::to_string(j),
        [ok](const State& s) { return !ok(s); },
        [lj, lp, id](State& s) { s.set(lj, std::min(id, s.get(lp))); },
        {lj, lp}, {lj}, static_cast<int>(cid), j);
  }

  le.design.name = b.peek().name();
  le.design.program = b.build();
  le.design.invariant = std::move(inv);
  le.design.fault_span = true_predicate();
  le.design.stabilizing = true;
  return le;
}

}  // namespace nonmask
