// Stabilizing token rings (Section 7.1).
//
// Two faithful forms are provided:
//
// 1. make_token_ring_bounded — the paper's design: N+1 nodes 0..N with
//    integer x.j, invariant
//      S = (forall j < N :: x.j >= x.(j+1)) /\ (x.0 = x.N \/ x.0 = x.N + 1)
//    layered per Section 7.1:
//      layer 0 constraints: x.j >= x.(j+1)   (convergence: x.j < x.(j+1) -> copy)
//      layer 1 constraints: x.j  = x.(j+1)   (convergence: x.j > x.(j+1) -> copy)
//    Closure actions: node 0 increments when x.0 = x.N; node j+1 copies
//    when x.j > x.(j+1). The paper uses unbounded integers; we bound the
//    domain to [0, x_max] and guard the increment with x.0 < x_max, which
//    preserves closure and convergence (every computation still reaches S;
//    token circulation simply halts at the ceiling — use the mod-K form
//    below for perpetual circulation).
//
// 2. make_dijkstra_ring — Dijkstra's executable K-state protocol (the
//    program the paper derives is due to [9] = Dijkstra 1974): arithmetic
//    mod K, perpetual token circulation. Its invariant is "exactly one
//    privilege". Stabilizes for K >= N+1 (num_nodes); bench_token_ring
//    sweeps K to locate the boundary.
#pragma once

#include <cstddef>
#include <vector>

#include "core/candidate.hpp"

namespace nonmask {

struct TokenRingDesign {
  Design design;
  std::vector<VarId> x;  ///< x.j per node
  /// Theorem-3 layers: layer 0 = the >= constraints' convergence actions,
  /// layer 1 = the == constraints' convergence actions. Only populated by
  /// make_token_ring_bounded with combined == false.
  std::vector<std::vector<std::size_t>> layers;

  /// Number of privileged nodes at s (spec requirement (i): exactly one).
  int privileges(const State& s) const;
  /// Index of the lowest privileged node, or -1.
  int first_privileged(const State& s) const;

  bool mod_k = false;  ///< true for the Dijkstra mod-K form
  int K = 0;           ///< modulus / domain size
};

/// The paper's bounded-domain design. num_nodes = N+1 >= 2. When
/// `combined`, the layer-0/layer-1 convergence actions and the copy closure
/// action merge into the paper's final x.j != x.(j+1) -> copy.
TokenRingDesign make_token_ring_bounded(int num_nodes, Value x_max,
                                        bool combined = false);

/// Dijkstra's K-state token ring (mod-K arithmetic), num_nodes >= 2,
/// K >= 2. Invariant: exactly one privilege.
TokenRingDesign make_dijkstra_ring(int num_nodes, int K);

}  // namespace nonmask
