// Stabilizing maximal independent set (extension protocol).
//
// Node j holds a bit in.j. Rules (id-priority breaks symmetry, as in the
// coloring protocol):
//   join:  in.j = 0 and no neighbor is in         -> in.j := 1
//   leave: in.j = 1 and a *lower-id* neighbor is in -> in.j := 0
// S = "the in-bits form a maximal independent set" (no two adjacent
// members, no non-member addable). Converges under any central daemon:
// node 0's membership stabilizes first, then inductively up the ids —
// the same hierarchy Theorem 3 formalizes.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {

struct IndependentSetDesign {
  Design design;
  std::vector<VarId> in;

  bool independent(const UndirectedGraph& g, const State& s) const;
  bool maximal_independent(const UndirectedGraph& g, const State& s) const;
};

IndependentSetDesign make_independent_set(const UndirectedGraph& g);

}  // namespace nonmask
