#include "protocols/spanning_tree.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/builder.hpp"

namespace nonmask {

namespace {
Value capped_min_plus_one(const State& s, const std::vector<VarId>& nbrs,
                          Value cap) {
  Value best = cap;
  for (VarId v : nbrs) best = std::min(best, s.get(v));
  return std::min<Value>(best + 1, cap);
}
}  // namespace

std::vector<int> SpanningTreeDesign::extract_parents(const UndirectedGraph& g,
                                                     const State& s) const {
  std::vector<int> parent(static_cast<std::size_t>(g.size()), -1);
  parent[static_cast<std::size_t>(root)] = root;
  for (int j = 0; j < g.size(); ++j) {
    if (j == root) continue;
    for (int k : g.neighbors(j)) {
      if (s.get(dist[static_cast<std::size_t>(k)]) + 1 ==
          s.get(dist[static_cast<std::size_t>(j)])) {
        if (parent[static_cast<std::size_t>(j)] == -1 ||
            k < parent[static_cast<std::size_t>(j)]) {
          parent[static_cast<std::size_t>(j)] = k;
        }
      }
    }
  }
  return parent;
}

SpanningTreeDesign make_spanning_tree(const UndirectedGraph& g, int root) {
  const int n = g.size();
  if (root < 0 || root >= n) {
    throw std::invalid_argument("spanning tree: bad root");
  }
  const Value cap = static_cast<Value>(n - 1);

  ProgramBuilder b("bfs-spanning-tree");
  SpanningTreeDesign st;
  st.root = root;
  for (int j = 0; j < n; ++j) {
    st.dist.push_back(b.var("dist." + std::to_string(j), 0, cap, j));
  }
  const auto& dist = st.dist;

  Invariant inv;
  for (int j = 0; j < n; ++j) {
    const VarId dj = dist[static_cast<std::size_t>(j)];
    if (j == root) {
      const auto cid = inv.add(Constraint{
          "dist." + std::to_string(j) + " = 0",
          [dj](const State& s) { return s.get(dj) == 0; },
          {dj}});
      b.convergence(
          "pin-root@" + std::to_string(j),
          [dj](const State& s) { return s.get(dj) != 0; },
          [dj](State& s) { s.set(dj, 0); }, {dj}, {dj},
          static_cast<int>(cid), j);
      continue;
    }
    std::vector<VarId> nbrs;
    for (int k : g.neighbors(j)) {
      nbrs.push_back(dist[static_cast<std::size_t>(k)]);
    }
    auto fix = [dj, nbrs, cap](const State& s) {
      return s.get(dj) == capped_min_plus_one(s, nbrs, cap);
    };
    const auto cid = inv.add(Constraint{
        "dist." + std::to_string(j) + " = min(nbr)+1", fix,
        [&] {
          std::vector<VarId> support = nbrs;
          support.push_back(dj);
          return support;
        }()});
    std::vector<VarId> reads = nbrs;
    reads.push_back(dj);
    b.convergence(
        "recompute@" + std::to_string(j),
        [fix](const State& s) { return !fix(s); },
        [dj, nbrs, cap](State& s) {
          s.set(dj, capped_min_plus_one(s, nbrs, cap));
        },
        reads, {dj}, static_cast<int>(cid), j);
  }

  st.design.name = b.peek().name();
  st.design.program = b.build();
  st.design.invariant = std::move(inv);
  st.design.fault_span = true_predicate();
  st.design.stabilizing = true;
  return st;
}

SpanningTreeDesign make_spanning_tree_with_environment(
    const UndirectedGraph& g, int root) {
  SpanningTreeDesign st = make_spanning_tree(g, root);
  Program& p = st.design.program;
  const VarId noise = p.add_variable(VariableSpec("env.noise", 0, 1));
  p.add_action(Action(
      "env.toggle-noise", ActionKind::kEnvironment,
      [](const State&) { return true; },
      [noise](State& s) { s.set(noise, s.get(noise) == 0 ? 1 : 0); }, {noise},
      {noise}));
  p.set_name("bfs-spanning-tree+env");
  st.design.name = p.name();
  return st;
}

}  // namespace nonmask
