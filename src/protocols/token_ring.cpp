#include "protocols/token_ring.hpp"

#include <stdexcept>
#include <string>

#include "core/builder.hpp"

namespace nonmask {

int TokenRingDesign::privileges(const State& s) const {
  const int n = static_cast<int>(x.size());
  int count = 0;
  if (mod_k) {
    if (s.get(x[0]) == s.get(x[static_cast<std::size_t>(n - 1)])) ++count;
    for (int j = 1; j < n; ++j) {
      if (s.get(x[static_cast<std::size_t>(j)]) !=
          s.get(x[static_cast<std::size_t>(j - 1)])) {
        ++count;
      }
    }
  } else {
    if (s.get(x[0]) == s.get(x[static_cast<std::size_t>(n - 1)])) ++count;
    for (int j = 0; j + 1 < n; ++j) {
      if (s.get(x[static_cast<std::size_t>(j)]) >
          s.get(x[static_cast<std::size_t>(j + 1)])) {
        ++count;
      }
    }
  }
  return count;
}

int TokenRingDesign::first_privileged(const State& s) const {
  const int n = static_cast<int>(x.size());
  if (mod_k) {
    if (s.get(x[0]) == s.get(x[static_cast<std::size_t>(n - 1)])) return 0;
    for (int j = 1; j < n; ++j) {
      if (s.get(x[static_cast<std::size_t>(j)]) !=
          s.get(x[static_cast<std::size_t>(j - 1)])) {
        return j;
      }
    }
  } else {
    if (s.get(x[0]) == s.get(x[static_cast<std::size_t>(n - 1)])) return 0;
    for (int j = 0; j + 1 < n; ++j) {
      if (s.get(x[static_cast<std::size_t>(j)]) >
          s.get(x[static_cast<std::size_t>(j + 1)])) {
        return j + 1;
      }
    }
  }
  return -1;
}

TokenRingDesign make_token_ring_bounded(int num_nodes, Value x_max,
                                        bool combined) {
  if (num_nodes < 2) throw std::invalid_argument("token ring: num_nodes < 2");
  if (x_max < 1) throw std::invalid_argument("token ring: x_max < 1");
  const int N = num_nodes - 1;  // nodes 0..N, paper indexing

  ProgramBuilder b(combined ? "token-ring" : "token-ring-layered");
  TokenRingDesign tr;
  tr.K = x_max + 1;
  for (int j = 0; j <= N; ++j) {
    tr.x.push_back(b.var("x." + std::to_string(j), 0, x_max, j));
  }
  const auto& x = tr.x;

  // Constraints. Layer 0: x.j >= x.(j+1); layer 1: x.j = x.(j+1), j < N.
  Invariant inv;
  std::vector<int> c_ge(static_cast<std::size_t>(N)),
      c_eq(static_cast<std::size_t>(N));
  for (int j = 0; j < N; ++j) {
    const VarId xj = x[static_cast<std::size_t>(j)];
    const VarId xj1 = x[static_cast<std::size_t>(j + 1)];
    c_ge[static_cast<std::size_t>(j)] = static_cast<int>(inv.add(Constraint{
        "x." + std::to_string(j) + " >= x." + std::to_string(j + 1),
        [xj, xj1](const State& s) { return s.get(xj) >= s.get(xj1); },
        {xj, xj1}}));
    c_eq[static_cast<std::size_t>(j)] = static_cast<int>(inv.add(Constraint{
        "x." + std::to_string(j) + " = x." + std::to_string(j + 1),
        [xj, xj1](const State& s) { return s.get(xj) == s.get(xj1); },
        {xj, xj1}}));
  }

  // The paper's S: non-increasing with x.0 = x.N or x.0 = x.N + 1.
  {
    const VarId x0 = x[0];
    const VarId xN = x[static_cast<std::size_t>(N)];
    auto xs = x;
    tr.design.S_override = [xs, x0, xN](const State& s) {
      for (std::size_t j = 0; j + 1 < xs.size(); ++j) {
        if (s.get(xs[j]) < s.get(xs[j + 1])) return false;
      }
      return s.get(x0) == s.get(xN) || s.get(x0) == s.get(xN) + 1;
    };
  }

  // Closure action at node 0: pass the token to node 1 by incrementing.
  // The x.0 < x_max guard is our bounded-domain substitution for the
  // paper's unbounded integers (see header comment).
  {
    const VarId x0 = x[0];
    const VarId xN = x[static_cast<std::size_t>(N)];
    b.closure(
        "increment@0",
        [x0, xN, x_max](const State& s) {
          return s.get(x0) == s.get(xN) && s.get(x0) < x_max;
        },
        [x0](State& s) { s.set(x0, s.get(x0) + 1); }, {x0, xN}, {x0}, 0);
  }

  for (int j = 0; j < N; ++j) {
    const VarId xj = x[static_cast<std::size_t>(j)];
    const VarId xj1 = x[static_cast<std::size_t>(j + 1)];
    auto copy = [xj, xj1](State& s) { s.set(xj1, s.get(xj)); };
    const std::vector<VarId> reads{xj, xj1};
    const std::vector<VarId> writes{xj1};
    const std::string at = "@" + std::to_string(j + 1);

    if (combined) {
      // The paper's final program: x.j != x.(j+1) -> x.(j+1) := x.j.
      b.convergence(
          "copy" + at,
          [xj, xj1](const State& s) { return s.get(xj) != s.get(xj1); },
          copy, reads, writes, c_eq[static_cast<std::size_t>(j)], j + 1);
    } else {
      // The paper notes the token-passing closure action is *identical* to
      // the layer-1 convergence action ("execution of the one has the same
      // effect as that of the other"), so the separated design carries only
      // the convergence copy — a duplicate closure copy would spuriously
      // fail Theorem 3's closure-preserves-layer-1 antecedent.
      // Layer-0 convergence: establish x.j >= x.(j+1).
      const std::size_t a0 = b.peek().num_actions();
      b.convergence(
          "raise" + at,
          [xj, xj1](const State& s) { return s.get(xj) < s.get(xj1); },
          copy, reads, writes, c_ge[static_cast<std::size_t>(j)], j + 1);
      // Layer-1 convergence: establish x.j = x.(j+1).
      const std::size_t a1 = b.peek().num_actions();
      b.convergence(
          "level" + at,
          [xj, xj1](const State& s) { return s.get(xj) > s.get(xj1); },
          copy, reads, writes, c_eq[static_cast<std::size_t>(j)], j + 1);
      if (tr.layers.empty()) tr.layers.resize(2);
      tr.layers[0].push_back(a0);
      tr.layers[1].push_back(a1);
    }
  }

  tr.design.name = b.peek().name();
  tr.design.program = b.build();
  tr.design.invariant = std::move(inv);
  tr.design.fault_span = true_predicate();
  tr.design.stabilizing = true;
  tr.mod_k = false;
  return tr;
}

TokenRingDesign make_dijkstra_ring(int num_nodes, int K) {
  if (num_nodes < 2) throw std::invalid_argument("dijkstra ring: n < 2");
  if (K < 2) throw std::invalid_argument("dijkstra ring: K < 2");

  ProgramBuilder b("dijkstra-k-state-ring");
  TokenRingDesign tr;
  tr.mod_k = true;
  tr.K = K;
  for (int j = 0; j < num_nodes; ++j) {
    tr.x.push_back(b.var("x." + std::to_string(j), 0, K - 1, j));
  }
  const auto& x = tr.x;
  const int last = num_nodes - 1;

  {
    const VarId x0 = x[0];
    const VarId xN = x[static_cast<std::size_t>(last)];
    b.closure(
        "advance@0",
        [x0, xN](const State& s) { return s.get(x0) == s.get(xN); },
        [x0, K](State& s) { s.set(x0, (s.get(x0) + 1) % K); }, {x0, xN},
        {x0}, 0);
  }
  for (int j = 1; j < num_nodes; ++j) {
    const VarId xj = x[static_cast<std::size_t>(j)];
    const VarId xp = x[static_cast<std::size_t>(j - 1)];
    b.closure(
        "adopt@" + std::to_string(j),
        [xj, xp](const State& s) { return s.get(xj) != s.get(xp); },
        [xj, xp](State& s) { s.set(xj, s.get(xp)); }, {xj, xp}, {xj}, j);
  }

  // Informational constraints (no convergence-action bindings): adversarial
  // daemons and violation timelines score states by how far the x's are
  // from agreeing.
  Invariant inv;
  for (int j = 1; j < num_nodes; ++j) {
    const VarId xj = x[static_cast<std::size_t>(j)];
    const VarId xp = x[static_cast<std::size_t>(j - 1)];
    inv.add(Constraint{
        "x." + std::to_string(j) + " = x." + std::to_string(j - 1),
        [xj, xp](const State& s) { return s.get(xj) == s.get(xp); },
        {xj, xp}});
  }
  tr.design.invariant = std::move(inv);

  tr.design.name = b.peek().name();
  tr.design.program = b.build();
  tr.design.fault_span = true_predicate();
  tr.design.stabilizing = true;

  // S: exactly one privilege.
  {
    auto xs = tr.x;
    const int n = num_nodes;
    tr.design.S_override = [xs, n](const State& s) {
      int count = 0;
      if (s.get(xs[0]) == s.get(xs[static_cast<std::size_t>(n - 1)])) ++count;
      for (int j = 1; j < n; ++j) {
        if (s.get(xs[static_cast<std::size_t>(j)]) !=
            s.get(xs[static_cast<std::size_t>(j - 1)])) {
          ++count;
        }
      }
      return count == 1;
    };
  }
  return tr;
}

}  // namespace nonmask
