// Stabilizing leader election on a unidirectional ring (extension
// protocol). Node ids are 0..n-1, so the minimum id (0) is always a real
// node and min-propagation suffices:
//   node 0:    ldr.0 != 0            -> ldr.0 := 0
//   node j>0:  ldr.j != min(j, ldr.(j-1)) -> ldr.j := min(j, ldr.(j-1))
// The unique fixpoint is ldr.j = 0 everywhere. Because the ring is
// unidirectional and node 0 reads no predecessor, the inferred constraint
// graph is a chain with a self-loop at {ldr.0} — not an out-tree (the
// self-loop disqualifies Theorem 1) but self-looping, so Theorem 2
// validates the design mechanically.
#pragma once

#include <vector>

#include "core/candidate.hpp"

namespace nonmask {

struct LeaderElectionDesign {
  Design design;
  std::vector<VarId> ldr;
};

LeaderElectionDesign make_leader_election(int num_nodes);

}  // namespace nonmask
