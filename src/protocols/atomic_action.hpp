// Nonmasking atomic actions (the third system named in the paper's
// abstract; the full version's worked example is not in the extended
// abstract, so this is our reconstruction — see DESIGN.md).
//
// It is also the library's showcase of a *non-trivial fault-span*
// (S ⊊ T ⊊ true). A coordinator holds a decision d; each participant j
// holds an applied-value f.j in {0, 1, 2}. The atomic action is "all
// participants apply d": S = (forall j :: f.j = d).
//
// The tolerated fault class flips f.j between 0 and 1 (transient
// application glitches); the fault-span is T = (forall j :: f.j != 2).
// Value 2 models un-tolerated damage: from f.j = 2 no action recovers, so
// the design is T-tolerant for S but *not* true-tolerant — the checker
// demonstrates both, making the paper's relative notion of tolerance
// concrete.
//
// The convergence actions (f.j != d, f.j != 2 -> f.j := d) form a star
// out-tree rooted at {d}: Theorem 1 applies.
#pragma once

#include <vector>

#include "core/candidate.hpp"

namespace nonmask {

struct AtomicActionDesign {
  Design design;
  VarId decision;            ///< d
  VarId work;                ///< closure-side progress counter
  std::vector<VarId> flags;  ///< f.j
  /// Indices of the per-participant flip fault actions.
  std::vector<std::size_t> fault_actions;
};

/// num_participants >= 1; work_modulus >= 2 sizes the closure counter.
AtomicActionDesign make_atomic_action(int num_participants,
                                      Value work_modulus = 4);

}  // namespace nonmask
