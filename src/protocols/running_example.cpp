#include "protocols/running_example.hpp"

#include <stdexcept>

#include "core/builder.hpp"

namespace nonmask {

const char* to_string(RunningExampleVariant v) noexcept {
  switch (v) {
    case RunningExampleVariant::kWriteYZ: return "write-y-z";
    case RunningExampleVariant::kWriteXBoth: return "write-x-both";
    case RunningExampleVariant::kDecreaseX: return "decrease-x";
  }
  return "?";
}

Design make_running_example(RunningExampleVariant variant, Value lo,
                            Value hi) {
  if (hi <= lo) throw std::invalid_argument("running example: hi <= lo");

  ProgramBuilder b(std::string("running-example-") + to_string(variant));
  // x gets one value of headroom below lo: the kDecreaseX convergence
  // action decrements x whenever x == y, and y >= lo.
  const VarId x = b.var("x", lo - 1, hi);
  const VarId y = b.var("y", lo, hi);
  const VarId z = b.var("z", lo, hi);

  Invariant inv;
  const auto c_neq = inv.add(Constraint{
      "x != y", [x, y](const State& s) { return s.get(x) != s.get(y); },
      {x, y}});
  const auto c_leq = inv.add(Constraint{
      "x <= z", [x, z](const State& s) { return s.get(x) <= s.get(z); },
      {x, z}});

  switch (variant) {
    case RunningExampleVariant::kWriteYZ:
      // Fix x != y by moving y off x; fix x <= z by raising z to x.
      b.convergence(
          "fix-neq: y := (x == lo ? hi : lo)",
          [x, y](const State& s) { return s.get(x) == s.get(y); },
          [x, y, lo, hi](State& s) { s.set(y, s.get(x) == lo ? hi : lo); },
          {x, y}, {y}, static_cast<int>(c_neq));
      b.convergence(
          "fix-leq: z := x",
          [x, z](const State& s) { return s.get(x) > s.get(z); },
          [x, z](State& s) { s.set(z, s.get(x)); }, {x, z}, {z},
          static_cast<int>(c_leq));
      break;

    case RunningExampleVariant::kWriteXBoth:
      // Fix x != y by *raising* x (wrapping), fix x <= z by x := z: each
      // can violate the other, so the pair can oscillate forever.
      b.convergence(
          "fix-neq: x := x + 1 (wrap)",
          [x, y](const State& s) { return s.get(x) == s.get(y); },
          [x, lo, hi](State& s) {
            s.set(x, s.get(x) < hi ? s.get(x) + 1 : lo - 1);
          },
          {x, y}, {x}, static_cast<int>(c_neq));
      b.convergence(
          "fix-leq: x := z",
          [x, z](const State& s) { return s.get(x) > s.get(z); },
          [x, z](State& s) { s.set(x, s.get(z)); }, {x, z}, {x},
          static_cast<int>(c_leq));
      break;

    case RunningExampleVariant::kDecreaseX:
      // Fix x != y by decreasing x (x == y >= lo, so x-1 >= lo-1 stays in
      // domain); decreasing x preserves x <= z, so the linear order
      // (fix-leq, fix-neq) discharges Theorem 2.
      b.convergence(
          "fix-neq: x := x - 1",
          [x, y](const State& s) { return s.get(x) == s.get(y); },
          [x](State& s) { s.set(x, s.get(x) - 1); }, {x, y}, {x},
          static_cast<int>(c_neq));
      b.convergence(
          "fix-leq: x := z",
          [x, z](const State& s) { return s.get(x) > s.get(z); },
          [x, z](State& s) { s.set(x, s.get(z)); }, {x, z}, {x},
          static_cast<int>(c_leq));
      break;
  }

  Design d;
  d.name = b.peek().name();
  d.program = b.build();
  d.invariant = std::move(inv);
  d.fault_span = true_predicate();
  d.stabilizing = true;
  return d;
}

}  // namespace nonmask
