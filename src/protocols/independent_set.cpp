#include "protocols/independent_set.hpp"

#include <string>

#include "core/builder.hpp"

namespace nonmask {

bool IndependentSetDesign::independent(const UndirectedGraph& g,
                                       const State& s) const {
  for (const auto& [u, v] : g.edges()) {
    if (s.get(in[static_cast<std::size_t>(u)]) == 1 &&
        s.get(in[static_cast<std::size_t>(v)]) == 1) {
      return false;
    }
  }
  return true;
}

bool IndependentSetDesign::maximal_independent(const UndirectedGraph& g,
                                               const State& s) const {
  if (!independent(g, s)) return false;
  for (int j = 0; j < g.size(); ++j) {
    if (s.get(in[static_cast<std::size_t>(j)]) == 1) continue;
    bool blocked = false;
    for (int k : g.neighbors(j)) {
      if (s.get(in[static_cast<std::size_t>(k)]) == 1) {
        blocked = true;
        break;
      }
    }
    if (!blocked) return false;  // j could join: not maximal
  }
  return true;
}

IndependentSetDesign make_independent_set(const UndirectedGraph& g) {
  const int n = g.size();
  ProgramBuilder b("maximal-independent-set");
  IndependentSetDesign is;
  for (int j = 0; j < n; ++j) {
    is.in.push_back(b.boolean("in." + std::to_string(j), j));
  }
  const auto& in = is.in;

  for (int j = 0; j < n; ++j) {
    const VarId ij = in[static_cast<std::size_t>(j)];
    std::vector<VarId> nbrs, lower;
    for (int k : g.neighbors(j)) {
      nbrs.push_back(in[static_cast<std::size_t>(k)]);
      if (k < j) lower.push_back(in[static_cast<std::size_t>(k)]);
    }
    std::vector<VarId> reads = nbrs;
    reads.push_back(ij);

    b.closure(
        "join@" + std::to_string(j),
        [ij, nbrs](const State& s) {
          if (s.get(ij) == 1) return false;
          for (VarId k : nbrs) {
            if (s.get(k) == 1) return false;
          }
          return true;
        },
        [ij](State& s) { s.set(ij, 1); }, reads, {ij}, j);
    if (!lower.empty()) {
      b.closure(
          "leave@" + std::to_string(j),
          [ij, lower](const State& s) {
            if (s.get(ij) == 0) return false;
            for (VarId k : lower) {
              if (s.get(k) == 1) return true;
            }
            return false;
          },
          [ij](State& s) { s.set(ij, 0); }, reads, {ij}, j);
    }
  }

  is.design.name = b.peek().name();
  is.design.program = b.build();
  is.design.fault_span = true_predicate();
  is.design.stabilizing = true;
  {
    IndependentSetDesign probe;
    probe.in = is.in;
    const UndirectedGraph graph = g;
    is.design.S_override = [probe, graph](const State& s) {
      return probe.maximal_independent(graph, s);
    };
  }
  return is;
}

}  // namespace nonmask
