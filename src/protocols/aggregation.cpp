#include "protocols/aggregation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/expr.hpp"

namespace nonmask {

using namespace nonmask::dsl;

Value AggregationDesign::expected(const RootedTree& tree, const State& s,
                                  int j) const {
  Value best = s.get(input[static_cast<std::size_t>(j)]);
  for (int k : tree.children(j)) {
    best = std::max(best, expected(tree, s, k));
  }
  return best;
}

AggregationDesign make_aggregation(const RootedTree& tree, Value max_value) {
  if (max_value < 1) throw std::invalid_argument("aggregation: max_value < 1");
  const int n = tree.size();
  ProgramBuilder b("tree-aggregation");

  AggregationDesign ad;
  for (int j = 0; j < n; ++j) {
    ad.input.push_back(b.var("in." + std::to_string(j), 0, max_value, j));
    ad.aggregate.push_back(
        b.var("agg." + std::to_string(j), 0, max_value, j));
  }

  Invariant inv;
  for (int j = 0; j < n; ++j) {
    // rhs = max(in.j, agg.k for children k), built with the DSL.
    Expr rhs = v(ad.input[static_cast<std::size_t>(j)]);
    for (int k : tree.children(j)) {
      rhs = max(std::move(rhs), v(ad.aggregate[static_cast<std::size_t>(k)]));
    }
    const Guard ok = v(ad.aggregate[static_cast<std::size_t>(j)]) == rhs;
    const auto cid = inv.add(Constraint{
        "agg." + std::to_string(j) + " = max(subtree)", ok.fn(), ok.reads()});
    add_action(b, "recompute@" + std::to_string(j), ActionKind::kConvergence,
               !ok, assign(ad.aggregate[static_cast<std::size_t>(j)], rhs),
               static_cast<int>(cid), j);
  }

  ad.design.name = b.peek().name();
  ad.design.program = b.build();
  ad.design.invariant = std::move(inv);
  ad.design.fault_span = true_predicate();
  ad.design.stabilizing = true;
  return ad;
}

}  // namespace nonmask
