// Stabilizing maximal matching (extension protocol), after Hsu & Huang
// (1992). Node j holds a pointer p.j — either null or (the adjacency index
// of) a neighbor. Rules, with the smallest eligible neighbor chosen:
//   accept:  p.j = null and some neighbor points at j        -> point back
//   propose: p.j = null, nobody points at j, a neighbor is null -> point at it
//   retract: p.j = k but k points at a third node             -> p.j := null
// The invariant is "the pointers form a maximal matching": pointers are
// mutual, and no two adjacent nodes are both null. Convergence under the
// central daemon is Hsu-Huang's theorem; our exact checker re-proves it on
// every small graph the tests sweep.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {

struct MatchingDesign {
  Design design;
  std::vector<VarId> ptr;  ///< p.j: -1 = null, else index into neighbors(j)

  /// The matched partner of j at s, or -1.
  int partner(const UndirectedGraph& g, const State& s, int j) const;
  /// True iff pointers at s form a matching (mutual pointers only).
  bool is_matching(const UndirectedGraph& g, const State& s) const;
  /// True iff the matching is maximal (no two adjacent unmatched nodes).
  bool is_maximal_matching(const UndirectedGraph& g, const State& s) const;
};

MatchingDesign make_matching(const UndirectedGraph& g);

}  // namespace nonmask
