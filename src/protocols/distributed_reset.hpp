// Distributed reset (the application behind Section 5.1: the paper's
// diffusing computation is "a simplified version of a program in [12]" —
// Arora & Gouda's distributed reset).
//
// Each node carries an application variable app.j that ordinary *work*
// closure actions keep changing while the node is green. The diffusing
// wave doubles as a reset wave: when the red front reaches node j, app.j
// is reset to 0; work resumes only after the node turns green again. The
// stabilization machinery (constraints R.j, correction action, Theorem 1
// out-tree) is exactly the diffusing computation's — the application layer
// rides on it without touching the convergence argument, which is the
// paper's composition story in practice.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"
#include "protocols/diffusing.hpp"

namespace nonmask {

struct DistributedResetDesign {
  Design design;
  std::vector<VarId> color;
  std::vector<VarId> session;
  std::vector<VarId> app;

  /// True iff node j is currently reset (red with app == 0).
  bool reset_at(const State& s, int j) const {
    return s.get(color[static_cast<std::size_t>(j)]) == kRed &&
           s.get(app[static_cast<std::size_t>(j)]) == 0;
  }
};

/// app domain is [0, app_values - 1]; combined selects the paper's merged
/// propagate-or-correct action (true) or the separated Theorem-1 form.
DistributedResetDesign make_distributed_reset(const RootedTree& tree,
                                              Value app_values = 4,
                                              bool combined = true);

}  // namespace nonmask
