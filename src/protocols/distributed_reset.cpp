#include "protocols/distributed_reset.hpp"

#include <stdexcept>
#include <string>

#include "core/builder.hpp"

namespace nonmask {

DistributedResetDesign make_distributed_reset(const RootedTree& tree,
                                              Value app_values,
                                              bool combined) {
  if (app_values < 2) {
    throw std::invalid_argument("distributed reset: app_values < 2");
  }
  const int n = tree.size();
  ProgramBuilder b(combined ? "distributed-reset"
                            : "distributed-reset-separated");

  DistributedResetDesign dr;
  for (int j = 0; j < n; ++j) {
    dr.color.push_back(b.var("c." + std::to_string(j), kGreen, kRed, j));
    dr.session.push_back(b.boolean("sn." + std::to_string(j), j));
    dr.app.push_back(b.var("app." + std::to_string(j), 0, app_values - 1, j));
  }
  const auto& c = dr.color;
  const auto& sn = dr.session;
  const auto& app = dr.app;

  // The diffusing computation's constraints R.j, unchanged: the reset
  // layer adds no constraints (app values are unconstrained in S).
  Invariant inv;
  std::vector<int> constraint_of(static_cast<std::size_t>(n), -1);
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId cp = c[static_cast<std::size_t>(p)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    const VarId snp = sn[static_cast<std::size_t>(p)];
    auto R = [cj, cp, snj, snp](const State& s) {
      return (s.get(cj) == s.get(cp) && s.get(snj) == s.get(snp)) ||
             (s.get(cj) == kGreen && s.get(cp) == kRed);
    };
    constraint_of[static_cast<std::size_t>(j)] = static_cast<int>(inv.add(
        Constraint{"R." + std::to_string(j), R, {cj, cp, snj, snp}}));
  }

  // Application work: a green node computes freely.
  for (int j = 0; j < n; ++j) {
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId aj = app[static_cast<std::size_t>(j)];
    b.closure(
        "work@" + std::to_string(j),
        [cj](const State& s) { return s.get(cj) == kGreen; },
        [aj, app_values](State& s) {
          s.set(aj, (s.get(aj) + 1) % app_values);
        },
        {cj, aj}, {aj}, j);
  }

  // Root initiates a reset wave: turn red, flip session, reset app.
  {
    const int r = tree.root();
    const VarId cr = c[static_cast<std::size_t>(r)];
    const VarId snr = sn[static_cast<std::size_t>(r)];
    const VarId ar = app[static_cast<std::size_t>(r)];
    b.closure(
        "initiate-reset@" + std::to_string(r),
        [cr](const State& s) { return s.get(cr) == kGreen; },
        [cr, snr, ar](State& s) {
          s.set(cr, kRed);
          s.set(snr, 1 - s.get(snr));
          s.set(ar, 0);
        },
        {cr, snr, ar}, {cr, snr, ar}, r);
  }

  // Per non-root node: wave propagation / correction. When the copied
  // color is red (the reset front arriving), reset app.j.
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId cp = c[static_cast<std::size_t>(p)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    const VarId snp = sn[static_cast<std::size_t>(p)];
    const VarId aj = app[static_cast<std::size_t>(j)];

    auto copy_and_reset = [cj, cp, snj, snp, aj](State& s) {
      s.set(cj, s.get(cp));
      s.set(snj, s.get(snp));
      if (s.get(cp) == kRed) s.set(aj, 0);
    };
    const std::vector<VarId> reads{cj, cp, snj, snp};
    const std::vector<VarId> writes{cj, snj, aj};

    if (combined) {
      b.convergence(
          "propagate-or-correct@" + std::to_string(j),
          [cj, cp, snj, snp](const State& s) {
            return s.get(snj) != s.get(snp) ||
                   (s.get(cj) == kRed && s.get(cp) == kGreen);
          },
          copy_and_reset, reads, writes,
          constraint_of[static_cast<std::size_t>(j)], j);
    } else {
      b.closure(
          "propagate@" + std::to_string(j),
          [cj, cp, snj, snp](const State& s) {
            return s.get(cj) == kGreen && s.get(cp) == kRed &&
                   s.get(snj) != s.get(snp);
          },
          copy_and_reset, reads, writes, j);
      b.convergence(
          "correct@" + std::to_string(j),
          [cj, cp, snj, snp](const State& s) {
            const bool R =
                (s.get(cj) == s.get(cp) && s.get(snj) == s.get(snp)) ||
                (s.get(cj) == kGreen && s.get(cp) == kRed);
            return !R;
          },
          copy_and_reset, reads, writes,
          constraint_of[static_cast<std::size_t>(j)], j);
    }
  }

  // Reflection, as in the diffusing computation.
  for (int j = 0; j < n; ++j) {
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    std::vector<VarId> reads{cj, snj};
    std::vector<VarId> child_c, child_sn;
    for (int k : tree.children(j)) {
      child_c.push_back(c[static_cast<std::size_t>(k)]);
      child_sn.push_back(sn[static_cast<std::size_t>(k)]);
      reads.push_back(child_c.back());
      reads.push_back(child_sn.back());
    }
    b.closure(
        "complete@" + std::to_string(j),
        [cj, snj, child_c, child_sn](const State& s) {
          if (s.get(cj) != kRed) return false;
          for (std::size_t i = 0; i < child_c.size(); ++i) {
            if (s.get(child_c[i]) != kGreen ||
                s.get(child_sn[i]) != s.get(snj)) {
              return false;
            }
          }
          return true;
        },
        [cj](State& s) { s.set(cj, kGreen); }, reads, {cj}, j);
  }

  dr.design.name = b.peek().name();
  dr.design.program = b.build();
  dr.design.invariant = std::move(inv);
  dr.design.fault_span = true_predicate();
  dr.design.stabilizing = true;
  return dr;
}

}  // namespace nonmask
