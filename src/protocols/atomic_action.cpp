#include "protocols/atomic_action.hpp"

#include <stdexcept>
#include <string>

#include "core/builder.hpp"

namespace nonmask {

AtomicActionDesign make_atomic_action(int num_participants,
                                      Value work_modulus) {
  if (num_participants < 1) {
    throw std::invalid_argument("atomic action: no participants");
  }
  if (work_modulus < 2) {
    throw std::invalid_argument("atomic action: work_modulus < 2");
  }

  ProgramBuilder b("atomic-action");
  AtomicActionDesign aa;
  aa.decision = b.boolean("d");
  aa.work = b.var("work", 0, work_modulus - 1);
  for (int j = 0; j < num_participants; ++j) {
    aa.flags.push_back(b.var("f." + std::to_string(j), 0, 2, j));
  }
  const VarId d = aa.decision;
  const VarId work = aa.work;
  const auto& flags = aa.flags;

  Invariant inv;
  for (int j = 0; j < num_participants; ++j) {
    const VarId fj = flags[static_cast<std::size_t>(j)];
    const auto cid = inv.add(Constraint{
        "f." + std::to_string(j) + " = d",
        [fj, d](const State& s) { return s.get(fj) == s.get(d); },
        {fj, d}});
    // Convergence: re-apply the decision. Enabled only inside T (f.j != 2):
    // value 2 is outside the tolerated fault class.
    b.convergence(
        "apply@" + std::to_string(j),
        [fj, d](const State& s) {
          return s.get(fj) != s.get(d) && s.get(fj) != 2;
        },
        [fj, d](State& s) { s.set(fj, s.get(d)); }, {fj, d}, {fj},
        static_cast<int>(cid), j);
    // Tolerated fault: flip an applied value between 0 and 1.
    b.fault(
        "flip@" + std::to_string(j), true_predicate(),
        [fj](State& s) {
          if (s.get(fj) != 2) s.set(fj, 1 - s.get(fj));
        },
        {fj}, {fj}, j);
    aa.fault_actions.push_back(b.peek().num_actions() - 1);
  }

  // Closure: once the atomic action has fully applied, do observable work.
  {
    auto all_applied = [flags, d](const State& s) {
      for (VarId f : flags) {
        if (s.get(f) != s.get(d)) return false;
      }
      return true;
    };
    std::vector<VarId> reads = flags;
    reads.push_back(d);
    reads.push_back(work);
    b.closure(
        "work", all_applied,
        [work, work_modulus](State& s) {
          s.set(work, (s.get(work) + 1) % work_modulus);
        },
        reads, {work});
  }

  aa.design.name = b.peek().name();
  aa.design.program = b.build();
  aa.design.invariant = std::move(inv);
  // Fault-span: no participant carries the un-tolerated value 2.
  {
    auto fs = aa.flags;
    aa.design.fault_span = [fs](const State& s) {
      for (VarId f : fs) {
        if (s.get(f) == 2) return false;
      }
      return true;
    };
  }
  aa.design.stabilizing = false;  // T != true
  return aa;
}

}  // namespace nonmask
