// Stabilizing diffusing computation (Section 5.1).
//
// A rooted tree of processes; waves of red (propagation) and green
// (reflection) sweep root->leaves->root forever. Per-node state: a color
// c.j in {green, red} and a boolean session number sn.j. The invariant is
//   S = (forall j :: R.j),
//   R.j = (c.j == c.P.j  /\  sn.j == sn.P.j)  \/  (c.j == green /\ c.P.j == red)
// (R.root is trivially true).
//
// Two design forms are produced:
//   - separated (combined == false): the design as validated by Theorem 1 —
//     closure actions {initiate, propagate, reflect} plus one convergence
//     action per non-root constraint, with guard exactly ¬R.j;
//   - combined (combined == true): the paper's final program, in which the
//     propagate closure action and the convergence action merge into
//       sn.j != sn.P.j \/ (c.j == red /\ c.P.j == green)
//           -> c.j, sn.j := c.P.j, sn.P.j.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"

namespace nonmask {

inline constexpr Value kGreen = 0;
inline constexpr Value kRed = 1;

struct DiffusingDesign {
  Design design;
  std::vector<VarId> color;    ///< c.j per node
  std::vector<VarId> session;  ///< sn.j per node

  /// The explicit constraint-graph partition the paper uses: one node per
  /// process, labeled {c.j, sn.j}.
  std::vector<std::vector<VarId>> partition() const;
};

DiffusingDesign make_diffusing(const RootedTree& tree, bool combined = true);

}  // namespace nonmask
