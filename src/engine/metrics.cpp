#include "engine/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace nonmask {

namespace {
/// Type-7 percentile: interpolate between the order statistics flanking
/// fractional rank q*(n-1). With n == 1 both flanks are the sample itself.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}
}  // namespace

SampleStats summarize(std::vector<double> samples) {
  SampleStats stats;
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.count = samples.size();
  stats.min = samples.front();
  stats.max = samples.back();
  double sum = 0.0;
  for (double v : samples) sum += v;
  stats.sum = sum;
  stats.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - stats.mean) * (v - stats.mean);
  stats.stddev = std::sqrt(sq / static_cast<double>(samples.size()));
  stats.p50 = percentile(samples, 0.50);
  stats.p95 = percentile(samples, 0.95);
  stats.p99 = percentile(samples, 0.99);
  return stats;
}

}  // namespace nonmask
