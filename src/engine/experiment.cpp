#include "engine/experiment.hpp"

#include <stdexcept>

#include "sched/daemons.hpp"

namespace nonmask {

ConvergenceResults run_experiment(const Design& design,
                                  const ConvergenceExperiment& config) {
  ConvergenceResults results;
  std::vector<double> steps, rounds, moves;
  Rng master(config.seed);

  std::size_t converged = 0;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const std::uint64_t trial_seed = master();
    DaemonPtr daemon = config.make_daemon
                           ? config.make_daemon(trial_seed)
                           : DaemonPtr(new RandomDaemon(trial_seed));
    Rng start_rng(master());
    State start = config.make_start
                      ? config.make_start(design.program, start_rng)
                      : design.program.random_state(start_rng);

    RunOptions opts;
    opts.max_steps = config.max_steps;
    if (config.make_perturb) {
      opts.perturb = config.make_perturb(design.program);
    }
    const RunResult r = converge(design, std::move(start), *daemon, opts);
    if (r.converged) {
      ++converged;
      steps.push_back(static_cast<double>(r.steps));
      rounds.push_back(static_cast<double>(r.rounds));
      moves.push_back(static_cast<double>(r.moves));
    }
  }
  results.converged_fraction =
      config.trials == 0
          ? 0.0
          : static_cast<double>(converged) / static_cast<double>(config.trials);
  results.steps = summarize(std::move(steps));
  results.rounds = summarize(std::move(rounds));
  results.moves = summarize(std::move(moves));
  return results;
}

}  // namespace nonmask
