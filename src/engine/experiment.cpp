#include "engine/experiment.hpp"

#include <stdexcept>

#include "sched/daemons.hpp"

namespace nonmask {

std::vector<TrialSeeds> derive_trial_seeds(std::uint64_t seed,
                                           std::size_t trials) {
  Rng master(seed);
  std::vector<TrialSeeds> seeds(trials);
  for (auto& s : seeds) {
    s.daemon = master();
    s.start = master();
  }
  return seeds;
}

TrialOutcome run_trial(const Design& design,
                       const ConvergenceExperiment& config, TrialSeeds seeds) {
  DaemonPtr daemon = config.make_daemon
                         ? config.make_daemon(seeds.daemon)
                         : DaemonPtr(new RandomDaemon(seeds.daemon));
  Rng start_rng(seeds.start);
  State start = config.make_start
                    ? config.make_start(design.program, start_rng)
                    : design.program.random_state(start_rng);

  RunOptions opts;
  opts.max_steps = config.max_steps;
  if (config.make_perturb) {
    opts.perturb = config.make_perturb(design.program);
  }
  const RunResult r = converge(design, std::move(start), *daemon, opts);
  TrialOutcome outcome;
  outcome.converged = r.converged;
  outcome.deadlocked = r.deadlocked;
  outcome.exhausted = r.exhausted;
  outcome.steps = r.steps;
  outcome.rounds = r.rounds;
  outcome.moves = r.moves;
  return outcome;
}

ConvergenceResults run_experiment(const Design& design,
                                  const ConvergenceExperiment& config) {
  ConvergenceResults results;
  std::vector<double> steps, rounds, moves;
  const auto seeds = derive_trial_seeds(config.seed, config.trials);

  std::size_t converged = 0;
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    const TrialOutcome r = run_trial(design, config, seeds[trial]);
    if (r.converged) {
      ++converged;
      steps.push_back(static_cast<double>(r.steps));
      rounds.push_back(static_cast<double>(r.rounds));
      moves.push_back(static_cast<double>(r.moves));
    }
  }
  results.converged_fraction =
      config.trials == 0
          ? 0.0
          : static_cast<double>(converged) / static_cast<double>(config.trials);
  results.steps = summarize(std::move(steps));
  results.rounds = summarize(std::move(rounds));
  results.moves = summarize(std::move(moves));
  return results;
}

}  // namespace nonmask
