#include "engine/trace.hpp"

#include <sstream>

namespace nonmask {

void Trace::clear() {
  steps_.clear();
  snapshots_.clear();
  violations_.clear();
}

void Trace::record_step(std::vector<std::size_t> fired) {
  steps_.push_back(StepRecord{std::move(fired)});
}

void Trace::record_snapshot(const State& s) { snapshots_.push_back(s); }

void Trace::record_violations(std::size_t count) {
  violations_.push_back(count);
}

std::string Trace::format(const Program& p, std::size_t max_lines) const {
  std::ostringstream out;
  const std::size_t n = std::min(steps_.size(), max_lines);
  for (std::size_t i = 0; i < n; ++i) {
    out << i << ": ";
    for (std::size_t k = 0; k < steps_[i].fired.size(); ++k) {
      if (k != 0) out << " + ";
      out << p.action(steps_[i].fired[k]).name();
    }
    if (i + 1 < snapshots_.size()) {
      out << "  ->  " << p.format_state(snapshots_[i + 1]);
    }
    out << '\n';
  }
  if (steps_.size() > n) {
    out << "... (" << (steps_.size() - n) << " more steps)\n";
  }
  return out.str();
}

}  // namespace nonmask
