// The simulation engine.
//
// Executes a program under a daemon per the paper's computation model
// (Section 2): a maximal sequence of steps, each firing enabled actions
// chosen by the daemon. Simultaneous firings (distributed / synchronous
// daemons) use read-from-old-state semantics with declared-write merging.
//
// The engine measures both *steps* (daemon selections), *moves* (individual
// action firings), and *asynchronous rounds* — the standard
// self-stabilization time unit: a round ends once every action that was
// enabled at the start of the round has either fired or been disabled.
#pragma once

#include <cstddef>
#include <functional>
#include <limits>

#include "core/candidate.hpp"
#include "core/predicate.hpp"
#include "core/program.hpp"
#include "engine/trace.hpp"
#include "sched/scheduler.hpp"

namespace nonmask {

struct RunOptions {
  /// Upper bound on daemon selections before the run is declared divergent.
  std::size_t max_steps = 1'000'000;

  /// Stop as soon as this predicate holds (typically the design's S). When
  /// empty, the run continues until deadlock or max_steps.
  PredicateFn stop_when;

  /// Record fired-action indices per step.
  bool record_trace = false;
  /// Record a state snapshot per step (implies record_trace bookkeeping).
  bool record_snapshots = false;
  /// Record the invariant-violation count per step (requires `invariant`).
  const Invariant* track_violations = nullptr;

  /// Verify every fired action's write-set contract (debug; slows runs).
  bool check_contracts = false;

  /// Called before each daemon selection; may mutate the state (used by
  /// fault injectors). Receives the current step index.
  std::function<void(std::size_t, State&)> perturb;
};

struct RunResult {
  bool converged = false;   ///< stop_when held at some visited state
  bool deadlocked = false;  ///< no action enabled before stop_when held
  bool exhausted = false;   ///< hit max_steps
  std::size_t steps = 0;    ///< daemon selections
  std::size_t moves = 0;    ///< individual action firings
  std::size_t rounds = 0;   ///< completed asynchronous rounds
  State final_state;
  Trace trace;
};

class Simulator {
 public:
  /// Both program and daemon are borrowed; they must outlive the Simulator.
  Simulator(const Program& program, Daemon& daemon)
      : program_(&program), daemon_(&daemon) {}

  /// Run from `start` until stop_when / deadlock / max_steps.
  ///
  /// The daemon's internal state (RNG stream, round-robin cursor, fairness
  /// bookkeeping) carries over between runs, so single-step loops remain
  /// properly randomized / fair; call daemon.reset() explicitly to replay
  /// a run.
  RunResult run(State start, const RunOptions& opts = {});

 private:
  const Program* program_;
  Daemon* daemon_;
};

/// Convenience: run `design.program` from `start` under `daemon` until the
/// design's S holds; returns the result with convergence metrics.
RunResult converge(const Design& design, State start, Daemon& daemon,
                   RunOptions opts = {});

}  // namespace nonmask
