#include "engine/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "util/logging.hpp"

namespace nonmask {

namespace {

/// Fire a set of actions simultaneously: every action reads the old state;
/// declared writes are merged (later actions win on overlap, which the
/// contract checker flags when it matters).
State fire_simultaneously(const Program& p, const State& s,
                          const std::vector<std::size_t>& chosen) {
  if (chosen.size() == 1) {
    return p.action(chosen.front()).apply(s);
  }
  State next = s;
  for (std::size_t idx : chosen) {
    const Action& a = p.action(idx);
    const State local = a.apply(s);
    for (VarId w : a.writes()) next.set(w, local.get(w));
  }
  return next;
}

}  // namespace

RunResult Simulator::run(State start, const RunOptions& opts) {
  const Program& p = *program_;
  RunResult result;
  State s = std::move(start);

  // Round accounting: the set of actions enabled at round start; a round
  // completes once each has fired or been observed disabled.
  std::unordered_set<std::size_t> round_pending;
  auto begin_round = [&](const std::vector<std::size_t>& enabled) {
    round_pending.clear();
    round_pending.insert(enabled.begin(), enabled.end());
  };

  bool round_initialized = false;
  obs::ProgressMeter meter("simulator", opts.max_steps);

  for (std::size_t step = 0; step < opts.max_steps; ++step) {
    // Batched so the per-step cost stays one mask test even when active.
    if ((step & 0x1FFF) == 0x1FFF) meter.add(0x2000);
    if (opts.perturb) opts.perturb(step, s);

    if (opts.track_violations != nullptr) {
      result.trace.record_violations(opts.track_violations->violation_count(s));
    }
    if (opts.stop_when && opts.stop_when(s)) {
      result.converged = true;
      break;
    }

    const auto enabled = p.enabled_actions(s);
    if (enabled.empty()) {
      result.deadlocked = true;
      break;
    }
    if (!round_initialized) {
      begin_round(enabled);
      round_initialized = true;
    }

    const auto chosen = daemon_->select(p, s, enabled);
    if (chosen.empty()) {
      throw std::logic_error("Daemon returned an empty selection");
    }
    if (opts.check_contracts) {
      for (std::size_t idx : chosen) {
        const auto illegal = p.action(idx).contract_violations(s);
        if (!illegal.empty()) {
          throw std::logic_error("write-set contract violated by action '" +
                                 p.action(idx).name() + "'");
        }
      }
    }

    s = fire_simultaneously(p, s, chosen);
    ++result.steps;
    result.moves += chosen.size();

    if (opts.record_trace || opts.record_snapshots) {
      result.trace.record_step(chosen);
      if (opts.record_snapshots) result.trace.record_snapshot(s);
    }

    // Round bookkeeping: fired actions and now-disabled actions retire.
    for (std::size_t idx : chosen) round_pending.erase(idx);
    if (!round_pending.empty()) {
      for (auto it = round_pending.begin(); it != round_pending.end();) {
        if (!p.action(*it).enabled(s)) {
          it = round_pending.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (round_pending.empty()) {
      ++result.rounds;
      begin_round(p.enabled_actions(s));
    }
  }

  if (!result.converged && !result.deadlocked) {
    // Either max_steps was hit, or the loop exited via stop_when on the
    // final iteration; distinguish by re-testing.
    if (opts.stop_when && opts.stop_when(s)) {
      result.converged = true;
    } else {
      result.exhausted = true;
    }
  }
  result.final_state = std::move(s);
  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("engine.sim.runs").add(1);
    registry.counter("engine.sim.steps").add(result.steps);
    registry.counter("engine.sim.moves").add(result.moves);
    registry.counter("engine.sim.rounds").add(result.rounds);
  }
  return result;
}

RunResult converge(const Design& design, State start, Daemon& daemon,
                   RunOptions opts) {
  if (!opts.stop_when) opts.stop_when = design.S();
  Simulator sim(design.program, daemon);
  return sim.run(std::move(start), opts);
}

}  // namespace nonmask
