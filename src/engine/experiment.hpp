// Convergence experiments: run many seeded trials of a design under a
// daemon and summarize steps/rounds/moves distributions. This is the
// measurement API behind the benches and EXPERIMENTS.md; exposing it lets
// downstream users reproduce the same statistics for their own designs.
#pragma once

#include <cstddef>
#include <functional>

#include "core/candidate.hpp"
#include "engine/metrics.hpp"
#include "engine/simulator.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace nonmask {

struct ConvergenceExperiment {
  /// Fresh daemon per trial (so per-trial streams are independent).
  std::function<DaemonPtr(std::uint64_t trial_seed)> make_daemon;
  /// Start-state generator; defaults to a uniformly random in-domain state.
  std::function<State(const Program&, Rng&)> make_start;
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::size_t max_steps = 1'000'000;
  /// Optional per-trial perturbation hook factory (fault injection).
  std::function<std::function<void(std::size_t, State&)>(const Program&)>
      make_perturb;
};

struct ConvergenceResults {
  double converged_fraction = 0.0;
  SampleStats steps;   ///< over converged trials only
  SampleStats rounds;  ///< over converged trials only
  SampleStats moves;   ///< over converged trials only
};

/// Run the experiment against `design` (stop predicate: the design's S).
ConvergenceResults run_experiment(const Design& design,
                                  const ConvergenceExperiment& config);

/// The two seeds a trial consumes from the master RNG stream.
struct TrialSeeds {
  std::uint64_t daemon = 0;  ///< passed to make_daemon / RandomDaemon
  std::uint64_t start = 0;   ///< seeds the start-state Rng
};

/// The per-trial seeds exactly as run_experiment draws them from the master
/// RNG seeded with `seed`. The parallel campaign runner (parallel/campaign)
/// derives seeds up front with this function and hands whole trials to
/// worker threads, so its results are bit-identical to the serial path at
/// any thread count.
std::vector<TrialSeeds> derive_trial_seeds(std::uint64_t seed,
                                           std::size_t trials);

/// Outcome of a single trial.
struct TrialOutcome {
  bool converged = false;
  bool deadlocked = false;
  bool exhausted = false;
  /// Set by the resilient campaign layer (src/resilience/watchdog.hpp),
  /// never by run_trial itself: the trial hit its watchdog deadline, or
  /// kept throwing after every allowed retry. Both leave the convergence
  /// flags above false.
  bool timed_out = false;
  bool failed = false;
  std::uint64_t steps = 0;
  std::uint64_t rounds = 0;
  std::uint64_t moves = 0;
};

/// Run one trial of `config` against `design` with explicit seeds. Pure
/// given its inputs: safe to call concurrently from several threads as long
/// as the config's factories and the design's predicates are thread-safe
/// (all shipped protocols and daemons are).
TrialOutcome run_trial(const Design& design,
                       const ConvergenceExperiment& config, TrialSeeds seeds);

}  // namespace nonmask
