// Convergence experiments: run many seeded trials of a design under a
// daemon and summarize steps/rounds/moves distributions. This is the
// measurement API behind the benches and EXPERIMENTS.md; exposing it lets
// downstream users reproduce the same statistics for their own designs.
#pragma once

#include <cstddef>
#include <functional>

#include "core/candidate.hpp"
#include "engine/metrics.hpp"
#include "engine/simulator.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"

namespace nonmask {

struct ConvergenceExperiment {
  /// Fresh daemon per trial (so per-trial streams are independent).
  std::function<DaemonPtr(std::uint64_t trial_seed)> make_daemon;
  /// Start-state generator; defaults to a uniformly random in-domain state.
  std::function<State(const Program&, Rng&)> make_start;
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::size_t max_steps = 1'000'000;
  /// Optional per-trial perturbation hook factory (fault injection).
  std::function<std::function<void(std::size_t, State&)>(const Program&)>
      make_perturb;
};

struct ConvergenceResults {
  double converged_fraction = 0.0;
  SampleStats steps;   ///< over converged trials only
  SampleStats rounds;  ///< over converged trials only
  SampleStats moves;   ///< over converged trials only
};

/// Run the experiment against `design` (stop predicate: the design's S).
ConvergenceResults run_experiment(const Design& design,
                                  const ConvergenceExperiment& config);

}  // namespace nonmask
