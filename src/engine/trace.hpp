// Execution traces: which actions fired at each step, with optional state
// snapshots and an invariant-violation timeline. Used by the examples for
// live wave/privilege displays and by tests for diagnosing counterexamples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "core/state.hpp"

namespace nonmask {

struct StepRecord {
  std::vector<std::size_t> fired;  ///< action indices fired this step
};

class Trace {
 public:
  void clear();
  void record_step(std::vector<std::size_t> fired);
  void record_snapshot(const State& s);
  void record_violations(std::size_t count);

  std::size_t num_steps() const noexcept { return steps_.size(); }
  const std::vector<StepRecord>& steps() const noexcept { return steps_; }
  const std::vector<State>& snapshots() const noexcept { return snapshots_; }
  const std::vector<std::size_t>& violation_timeline() const noexcept {
    return violations_;
  }

  /// Human-readable rendering: one line per step with the fired action
  /// names and (when snapshots were recorded) the resulting state.
  std::string format(const Program& p, std::size_t max_lines = 100) const;

 private:
  std::vector<StepRecord> steps_;
  std::vector<State> snapshots_;
  std::vector<std::size_t> violations_;
};

}  // namespace nonmask
