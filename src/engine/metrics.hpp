// Small statistics helpers for benches and experiments: mean, max,
// percentiles over convergence-time samples.
#pragma once

#include <cstddef>
#include <vector>

namespace nonmask {

struct SampleStats {
  std::size_t count = 0;
  double sum = 0.0;     ///< total over all samples
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Summary statistics of a sample vector (empty input -> zeroed stats).
SampleStats summarize(std::vector<double> samples);

}  // namespace nonmask
