// Small statistics helpers for benches and experiments: mean, max,
// percentiles over convergence-time samples.
#pragma once

#include <cstddef>
#include <vector>

namespace nonmask {

struct SampleStats {
  std::size_t count = 0;
  double sum = 0.0;     ///< total over all samples
  double mean = 0.0;
  double stddev = 0.0;  ///< population standard deviation
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Summary statistics of a sample vector.
///
/// Percentile rule: linear interpolation between the order statistics at
/// fractional rank q*(count-1) — the "type 7" estimator NumPy and R default
/// to. Small-count behavior is pinned down (and tested) explicitly:
///   - summarize({})    -> every field zero, count == 0;
///   - summarize({x})   -> min = max = mean = p50 = p95 = p99 = x,
///                         stddev = 0 (rank 0 is the only order statistic);
///   - summarize({a,b}) -> p50 is the midpoint and p95/p99 interpolate
///                         toward max, e.g. p95 = a + 0.95*(b-a) for a <= b.
/// Percentiles are therefore never outside [min, max].
SampleStats summarize(std::vector<double> samples);

}  // namespace nonmask
