// Composable fault schedules.
//
// Where FaultInjector decides *when* to strike with one stateful policy
// (one-shot / periodic / Bernoulli), a FaultSchedule is an explicit finite
// plan: a sorted sequence of (step, model) strikes that can be composed —
// bursts, sustained barrages, unions, and sequenced phases. Explicit plans
// are what the adversarial search in src/resilience/ manipulates: a plan is
// a value, so it can be mutated, replayed bit-identically, and serialized
// into a worst-trace artifact.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/program.hpp"
#include "core/state.hpp"
#include "faults/fault.hpp"
#include "util/rng.hpp"

namespace nonmask {

class FaultSchedule {
 public:
  struct Strike {
    std::size_t step = 0;
    FaultModelPtr model;
  };

  FaultSchedule() = default;

  /// One strike of `model` at `step`.
  static FaultSchedule at(FaultModelPtr model, std::size_t step);
  /// `count` strikes on consecutive steps `start, start+1, ...`.
  static FaultSchedule burst(FaultModelPtr model, std::size_t start,
                             std::size_t count);
  /// `count` strikes every `period` steps starting at `start` (period 0 is
  /// treated as 1).
  static FaultSchedule sustained(FaultModelPtr model, std::size_t start,
                                 std::size_t period, std::size_t count);
  /// A *persistent actor*: `model` strikes at every step of the run, before
  /// any step-scheduled strike of that step. This is how a ByzantineModel
  /// rides a schedule — permanently adversarial, not a finite plan entry.
  /// Persistent actors are unaffected by then()'s shifting and survive
  /// composition (actors of all parts are concatenated in order).
  static FaultSchedule persistent(FaultModelPtr model);

  /// Union of schedules; strikes landing on the same step apply in the
  /// order given (composition order is preserved).
  static FaultSchedule compose(std::vector<FaultSchedule> parts);

  /// Sequencing: `next` shifted so its *first* strike lands exactly `gap`
  /// steps after this schedule's last strike, then merged (a `next` whose
  /// plan already starts at a nonzero step is not double-shifted). An empty
  /// receiver returns `next` unshifted; persistent actors of both sides are
  /// kept as-is.
  FaultSchedule then(const FaultSchedule& next, std::size_t gap = 1) const;

  const std::vector<Strike>& strikes() const noexcept { return strikes_; }
  const std::vector<FaultModelPtr>& persistent_actors() const noexcept {
    return persistent_;
  }
  bool empty() const noexcept {
    return strikes_.empty() && persistent_.empty();
  }
  std::size_t size() const noexcept { return strikes_.size(); }
  /// Step of the first strike; 0 when empty.
  std::size_t first_step() const noexcept {
    return strikes_.empty() ? 0 : strikes_.front().step;
  }
  /// Step of the final strike; 0 when empty.
  std::size_t last_step() const noexcept {
    return strikes_.empty() ? 0 : strikes_.back().step;
  }

  /// Apply every persistent actor, then every strike scheduled at `step`.
  void apply(std::size_t step, const Program& p, State& s, Rng& rng) const;

  /// Bind to a program, yielding a RunOptions::perturb hook. The hook owns
  /// a copy of the schedule (and thus the models) plus its own cursor and
  /// RNG, so it is safe to outlive the schedule and deterministic per
  /// `seed`; only the program is borrowed and must outlive the hook.
  std::function<void(std::size_t, State&)> hook(const Program& p,
                                                std::uint64_t seed) const;

 private:
  std::vector<Strike> strikes_;  // sorted by step (stable order within one)
  std::vector<FaultModelPtr> persistent_;  // strike every step, in order
};

}  // namespace nonmask
