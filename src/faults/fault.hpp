// Fault models.
//
// Section 3 of the paper adopts the view that "all classes of faults can be
// represented as actions that change the program state". A FaultModel is a
// state transformer applied by an injector during simulation; every model
// keeps values inside variable domains (the fault-span of a stabilizing
// program is `true` over the domain product).
#pragma once

#include <memory>
#include <vector>

#include "core/program.hpp"
#include "core/state.hpp"
#include "util/rng.hpp"

namespace nonmask {

class FaultModel {
 public:
  virtual ~FaultModel() = default;
  virtual const char* name() const noexcept = 0;
  /// Apply one fault occurrence to s.
  virtual void strike(const Program& p, State& s, Rng& rng) = 0;
};

using FaultModelPtr = std::shared_ptr<FaultModel>;

/// Corrupt exactly k distinct variables, each to a uniformly random
/// in-domain value.
///
/// k == 0 is rejected at construction (a fault model that never faults is a
/// configuration error, mirroring the bernoulli p-validation in
/// FaultInjector). The two-argument constructor clamps k to the program's
/// variable count once, so `k` thereafter states exactly how many variables
/// each strike corrupts; the one-argument form clamps per strike instead
/// (the program is not known yet).
class CorruptKVariables final : public FaultModel {
 public:
  explicit CorruptKVariables(std::size_t k);
  CorruptKVariables(std::size_t k, const Program& p);
  const char* name() const noexcept override { return "corrupt-k-variables"; }
  void strike(const Program& p, State& s, Rng& rng) override;

 private:
  std::size_t k_;
};

/// Corrupt every variable belonging to each of k distinct processes
/// (the paper's "arbitrarily corrupt the state of any number of nodes").
///
/// k == 0 is rejected at construction; the two-argument constructor clamps
/// k to the program's process count once (one-argument form clamps per
/// strike). Programs without process structure fall back to corrupting k
/// variables.
class CorruptKProcesses final : public FaultModel {
 public:
  explicit CorruptKProcesses(std::size_t k);
  CorruptKProcesses(std::size_t k, const Program& p);
  const char* name() const noexcept override { return "corrupt-k-processes"; }
  void strike(const Program& p, State& s, Rng& rng) override;

 private:
  std::size_t k_;
};

/// Each variable is independently corrupted with probability p.
class CorruptFraction final : public FaultModel {
 public:
  explicit CorruptFraction(double p) : p_(p) {}
  const char* name() const noexcept override { return "corrupt-fraction"; }
  void strike(const Program& p, State& s, Rng& rng) override;

 private:
  double p_;
};

/// Set specific variables to specific values (clamped into domain).
class TargetedCorruption final : public FaultModel {
 public:
  TargetedCorruption(std::vector<VarId> targets, std::vector<Value> values);
  const char* name() const noexcept override { return "targeted"; }
  void strike(const Program& p, State& s, Rng& rng) override;

 private:
  std::vector<VarId> targets_;
  std::vector<Value> values_;
};

}  // namespace nonmask
