// Byzantine fault actor.
//
// Dubois–Masuzawa–Tixeuil study self-stabilization despite *permanently*
// malicious nodes: a fixed set of processes whose state may be rewritten
// arbitrarily at every step, forever. Unlike the transient models in
// fault.hpp (strike once, then let convergence run unopposed), a
// ByzantineModel is meant to be installed as a *persistent* actor — see
// FaultSchedule::persistent and FaultInjector::persistent — so its policy
// interleaves with every program step of a simulation.
//
// The model-checking counterpart is compose_byzantine (checker/restricted.hpp),
// which turns the same process set into explicit kEnvironment actions so the
// exhaustive passes explore *all* adversarial choices, not one sampled policy.
#pragma once

#include <vector>

#include "faults/fault.hpp"

namespace nonmask {

class ByzantineModel final : public FaultModel {
 public:
  /// How the adversary rewrites the variables it controls on each strike.
  enum class Policy {
    kRandom,    ///< independent uniform in-domain value per variable
    kExtremes,  ///< domain endpoint per variable (coin-flip lo/hi) — the
                ///< classic "lie as loudly as possible" adversary
  };

  /// Marks `byzantine` processes of `p` as adversarial. Resolves the owned
  /// variable set once at construction. Throws std::invalid_argument when
  /// the set is empty, contains a duplicate, or names a process owning no
  /// variables (likely a typo'd id).
  ByzantineModel(const Program& p, std::vector<int> byzantine,
                 Policy policy = Policy::kRandom);

  const char* name() const noexcept override { return "byzantine"; }
  void strike(const Program& p, State& s, Rng& rng) override;

  const std::vector<int>& processes() const noexcept { return byzantine_; }
  const std::vector<VarId>& variables() const noexcept { return vars_; }
  Policy policy() const noexcept { return policy_; }

 private:
  std::vector<int> byzantine_;
  std::vector<VarId> vars_;
  Policy policy_;
};

}  // namespace nonmask
