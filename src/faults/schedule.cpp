#include "faults/schedule.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace nonmask {

FaultSchedule FaultSchedule::at(FaultModelPtr model, std::size_t step) {
  FaultSchedule s;
  s.strikes_.push_back({step, std::move(model)});
  return s;
}

FaultSchedule FaultSchedule::burst(FaultModelPtr model, std::size_t start,
                                   std::size_t count) {
  FaultSchedule s;
  s.strikes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    s.strikes_.push_back({start + i, model});
  }
  return s;
}

FaultSchedule FaultSchedule::sustained(FaultModelPtr model, std::size_t start,
                                       std::size_t period, std::size_t count) {
  if (period == 0) period = 1;
  FaultSchedule s;
  s.strikes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    s.strikes_.push_back({start + i * period, model});
  }
  return s;
}

FaultSchedule FaultSchedule::persistent(FaultModelPtr model) {
  FaultSchedule s;
  s.persistent_.push_back(std::move(model));
  return s;
}

FaultSchedule FaultSchedule::compose(std::vector<FaultSchedule> parts) {
  FaultSchedule merged;
  for (auto& part : parts) {
    merged.strikes_.insert(merged.strikes_.end(),
                           std::make_move_iterator(part.strikes_.begin()),
                           std::make_move_iterator(part.strikes_.end()));
    merged.persistent_.insert(merged.persistent_.end(),
                              std::make_move_iterator(part.persistent_.begin()),
                              std::make_move_iterator(part.persistent_.end()));
  }
  std::stable_sort(merged.strikes_.begin(), merged.strikes_.end(),
                   [](const Strike& a, const Strike& b) {
                     return a.step < b.step;
                   });
  return merged;
}

FaultSchedule FaultSchedule::then(const FaultSchedule& next,
                                  std::size_t gap) const {
  if (strikes_.empty()) return compose({*this, next});
  FaultSchedule shifted = next;
  // Land next's *first* strike exactly gap after our last one. Subtracting
  // next.first_step() is what makes chained placements at nonzero steps
  // compose: a plan already starting at step 5 is not pushed 5 steps late.
  const std::size_t target = last_step() + gap;
  const std::size_t first = next.first_step();
  for (auto& strike : shifted.strikes_) {
    strike.step = strike.step - first + target;
  }
  return compose({*this, std::move(shifted)});
}

void FaultSchedule::apply(std::size_t step, const Program& p, State& s,
                          Rng& rng) const {
  for (const auto& actor : persistent_) actor->strike(p, s, rng);
  const auto lo = std::lower_bound(
      strikes_.begin(), strikes_.end(), step,
      [](const Strike& a, std::size_t b) { return a.step < b; });
  for (auto it = lo; it != strikes_.end() && it->step == step; ++it) {
    it->model->strike(p, s, rng);
  }
}

std::function<void(std::size_t, State&)> FaultSchedule::hook(
    const Program& p, std::uint64_t seed) const {
  struct Cursor {
    std::vector<Strike> strikes;
    std::vector<FaultModelPtr> persistent;
    std::size_t next = 0;
    Rng rng;
    Cursor(std::vector<Strike> s, std::vector<FaultModelPtr> actors,
           std::uint64_t seed_)
        : strikes(std::move(s)), persistent(std::move(actors)), rng(seed_) {}
  };
  auto cursor = std::make_shared<Cursor>(strikes_, persistent_, seed);
  return [cursor, &p](std::size_t step, State& s) {
    auto& c = *cursor;
    for (const auto& actor : c.persistent) actor->strike(p, s, c.rng);
    // Steps arrive in nondecreasing order from the engine; strikes whose
    // step has passed (a run shorter than the plan, then a fresh run of the
    // same hook) are skipped, not replayed late.
    while (c.next < c.strikes.size() && c.strikes[c.next].step < step) {
      ++c.next;
    }
    while (c.next < c.strikes.size() && c.strikes[c.next].step == step) {
      c.strikes[c.next].model->strike(p, s, c.rng);
      ++c.next;
    }
  };
}

}  // namespace nonmask
