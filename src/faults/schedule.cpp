#include "faults/schedule.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace nonmask {

FaultSchedule FaultSchedule::at(FaultModelPtr model, std::size_t step) {
  FaultSchedule s;
  s.strikes_.push_back({step, std::move(model)});
  return s;
}

FaultSchedule FaultSchedule::burst(FaultModelPtr model, std::size_t start,
                                   std::size_t count) {
  FaultSchedule s;
  s.strikes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    s.strikes_.push_back({start + i, model});
  }
  return s;
}

FaultSchedule FaultSchedule::sustained(FaultModelPtr model, std::size_t start,
                                       std::size_t period, std::size_t count) {
  if (period == 0) period = 1;
  FaultSchedule s;
  s.strikes_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    s.strikes_.push_back({start + i * period, model});
  }
  return s;
}

FaultSchedule FaultSchedule::compose(std::vector<FaultSchedule> parts) {
  FaultSchedule merged;
  for (auto& part : parts) {
    merged.strikes_.insert(merged.strikes_.end(),
                           std::make_move_iterator(part.strikes_.begin()),
                           std::make_move_iterator(part.strikes_.end()));
  }
  std::stable_sort(merged.strikes_.begin(), merged.strikes_.end(),
                   [](const Strike& a, const Strike& b) {
                     return a.step < b.step;
                   });
  return merged;
}

FaultSchedule FaultSchedule::then(const FaultSchedule& next,
                                  std::size_t gap) const {
  if (strikes_.empty()) return next;
  FaultSchedule shifted = next;
  const std::size_t offset = last_step() + gap;
  for (auto& strike : shifted.strikes_) strike.step += offset;
  return compose({*this, std::move(shifted)});
}

void FaultSchedule::apply(std::size_t step, const Program& p, State& s,
                          Rng& rng) const {
  const auto lo = std::lower_bound(
      strikes_.begin(), strikes_.end(), step,
      [](const Strike& a, std::size_t b) { return a.step < b; });
  for (auto it = lo; it != strikes_.end() && it->step == step; ++it) {
    it->model->strike(p, s, rng);
  }
}

std::function<void(std::size_t, State&)> FaultSchedule::hook(
    const Program& p, std::uint64_t seed) const {
  struct Cursor {
    std::vector<Strike> strikes;
    std::size_t next = 0;
    Rng rng;
    Cursor(std::vector<Strike> s, std::uint64_t seed_)
        : strikes(std::move(s)), rng(seed_) {}
  };
  auto cursor = std::make_shared<Cursor>(strikes_, seed);
  return [cursor, &p](std::size_t step, State& s) {
    auto& c = *cursor;
    // Steps arrive in nondecreasing order from the engine; strikes whose
    // step has passed (a run shorter than the plan, then a fresh run of the
    // same hook) are skipped, not replayed late.
    while (c.next < c.strikes.size() && c.strikes[c.next].step < step) {
      ++c.next;
    }
    while (c.next < c.strikes.size() && c.strikes[c.next].step == step) {
      c.strikes[c.next].model->strike(p, s, c.rng);
      ++c.next;
    }
  };
}

}  // namespace nonmask
