#include "faults/fault.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace nonmask {

namespace {
void corrupt_one(const Program& p, State& s, VarId id, Rng& rng) {
  const auto& spec = p.variable(id);
  s.set(id, static_cast<Value>(rng.range(spec.lo, spec.hi)));
}

std::size_t require_nonzero(std::size_t k, const char* who) {
  if (k == 0) {
    throw std::invalid_argument(std::string(who) +
                                ": k must be >= 1 (a fault model that never "
                                "corrupts anything is a configuration error)");
  }
  return k;
}

std::size_t count_processes(const Program& p) {
  std::unordered_set<int> processes;
  for (const auto& v : p.variables()) {
    if (v.process != VariableSpec::kNoProcess) processes.insert(v.process);
  }
  return processes.size();
}
}  // namespace

CorruptKVariables::CorruptKVariables(std::size_t k)
    : k_(require_nonzero(k, "CorruptKVariables")) {}

CorruptKVariables::CorruptKVariables(std::size_t k, const Program& p)
    : k_(std::min(require_nonzero(k, "CorruptKVariables"),
                  p.num_variables())) {}

CorruptKProcesses::CorruptKProcesses(std::size_t k)
    : k_(require_nonzero(k, "CorruptKProcesses")) {}

CorruptKProcesses::CorruptKProcesses(std::size_t k, const Program& p)
    : k_(std::max<std::size_t>(
          1, std::min(require_nonzero(k, "CorruptKProcesses"),
                      count_processes(p)))) {}

void CorruptKVariables::strike(const Program& p, State& s, Rng& rng) {
  const std::size_t n = p.num_variables();
  const std::size_t k = std::min(k_, n);
  std::unordered_set<std::uint32_t> picked;
  while (picked.size() < k) {
    picked.insert(static_cast<std::uint32_t>(rng.below(n)));
  }
  for (std::uint32_t i : picked) corrupt_one(p, s, VarId(i), rng);
}

void CorruptKProcesses::strike(const Program& p, State& s, Rng& rng) {
  std::unordered_set<int> processes;
  for (const auto& v : p.variables()) {
    if (v.process != VariableSpec::kNoProcess) processes.insert(v.process);
  }
  if (processes.empty()) {
    // No process structure: fall back to corrupting k variables.
    CorruptKVariables(k_).strike(p, s, rng);
    return;
  }
  std::vector<int> all(processes.begin(), processes.end());
  const std::size_t k = std::min(k_, all.size());
  // Partial Fisher-Yates over the process list.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.below(all.size() - i);
    std::swap(all[i], all[j]);
  }
  std::unordered_set<int> victims(all.begin(),
                                  all.begin() + static_cast<long>(k));
  for (std::uint32_t i = 0; i < p.num_variables(); ++i) {
    if (victims.count(p.variable(VarId(i)).process) != 0) {
      corrupt_one(p, s, VarId(i), rng);
    }
  }
}

void CorruptFraction::strike(const Program& p, State& s, Rng& rng) {
  for (std::uint32_t i = 0; i < p.num_variables(); ++i) {
    if (rng.chance(p_)) corrupt_one(p, s, VarId(i), rng);
  }
}

TargetedCorruption::TargetedCorruption(std::vector<VarId> targets,
                                       std::vector<Value> values)
    : targets_(std::move(targets)), values_(std::move(values)) {
  if (targets_.size() != values_.size()) {
    throw std::invalid_argument("TargetedCorruption: size mismatch");
  }
}

void TargetedCorruption::strike(const Program& p, State& s, Rng& rng) {
  (void)rng;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    s.set(targets_[i], p.variable(targets_[i]).clamp(values_[i]));
  }
}

}  // namespace nonmask
