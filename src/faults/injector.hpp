// Fault injectors: decide *when* a fault model strikes during a run.
// An injector plugs into RunOptions::perturb. Deterministic given its seed.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <limits>
#include <memory>

#include "engine/simulator.hpp"
#include "faults/fault.hpp"

namespace nonmask {

class FaultInjector {
 public:
  /// Strike once at `at_step`.
  static FaultInjector one_shot(FaultModelPtr model, std::size_t at_step,
                                std::uint64_t seed);
  /// Strike every `period` steps, at most `max_faults` times.
  static FaultInjector periodic(FaultModelPtr model, std::size_t period,
                                std::size_t max_faults, std::uint64_t seed);
  /// Strike each step with probability `p`, at most `max_faults` times.
  /// Throws std::invalid_argument unless p ∈ [0, 1].
  static FaultInjector bernoulli(FaultModelPtr model, double p,
                                 std::size_t max_faults, std::uint64_t seed);
  /// Strike at *every* step, without limit — the persistent-actor policy a
  /// ByzantineModel needs: the adversary re-corrupts its variables
  /// interleaved with every program step, forever.
  static FaultInjector persistent(FaultModelPtr model, std::uint64_t seed);

  /// Apply to a state; called by the engine before each daemon selection.
  void operator()(std::size_t step, const Program& p, State& s);

  std::size_t faults_injected() const noexcept { return injected_; }
  void reset() noexcept {
    injected_ = 0;
    rng_ = Rng(seed_);
  }

  /// Bind to a program, yielding a RunOptions::perturb hook. The injector
  /// and program must outlive the returned function (debug builds assert
  /// the injector is still alive on every call; prefer the owning overload
  /// below when lifetimes are not obvious).
  std::function<void(std::size_t, State&)> hook(const Program& p) {
#ifndef NDEBUG
    std::weak_ptr<const char> canary = liveness_;
    return [this, &p, canary](std::size_t step, State& s) {
      assert(!canary.expired() &&
             "FaultInjector destroyed (or moved from) before its hook; use "
             "FaultInjector::hook(std::shared_ptr<FaultInjector>, ...)");
      (*this)(step, p, s);
    };
#else
    return [this, &p](std::size_t step, State& s) { (*this)(step, p, s); };
#endif
  }

  /// Owning overload: the hook keeps the injector alive, so only the
  /// program's lifetime is the caller's concern.
  static std::function<void(std::size_t, State&)> hook(
      std::shared_ptr<FaultInjector> injector, const Program& p) {
    return [inj = std::move(injector), &p](std::size_t step, State& s) {
      (*inj)(step, p, s);
    };
  }

 private:
  enum class Mode { kOneShot, kPeriodic, kBernoulli, kPersistent };

  FaultInjector(Mode mode, FaultModelPtr model, std::uint64_t seed)
      : mode_(mode), model_(std::move(model)), seed_(seed), rng_(seed) {}

  Mode mode_;
  FaultModelPtr model_;
  std::uint64_t seed_;
  Rng rng_;
  std::size_t at_step_ = 0;
  std::size_t period_ = 1;
  double probability_ = 0.0;
  std::size_t max_faults_ = std::numeric_limits<std::size_t>::max();
  std::size_t injected_ = 0;
  /// Liveness token watched by debug hooks. Moves travel with the object
  /// (hooks bound to a moved-from injector assert), and copies would share
  /// it, so hooks are bound to `this` only after the injector has settled.
  std::shared_ptr<const char> liveness_ = std::make_shared<const char>('\0');
};

}  // namespace nonmask
