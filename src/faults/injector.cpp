#include "faults/injector.hpp"

#include <stdexcept>
#include <string>

namespace nonmask {

FaultInjector FaultInjector::one_shot(FaultModelPtr model, std::size_t at_step,
                                      std::uint64_t seed) {
  FaultInjector inj(Mode::kOneShot, std::move(model), seed);
  inj.at_step_ = at_step;
  inj.max_faults_ = 1;
  return inj;
}

FaultInjector FaultInjector::periodic(FaultModelPtr model, std::size_t period,
                                      std::size_t max_faults,
                                      std::uint64_t seed) {
  FaultInjector inj(Mode::kPeriodic, std::move(model), seed);
  inj.period_ = period == 0 ? 1 : period;
  inj.max_faults_ = max_faults;
  return inj;
}

FaultInjector FaultInjector::bernoulli(FaultModelPtr model, double p,
                                       std::size_t max_faults,
                                       std::uint64_t seed) {
  if (!(p >= 0.0 && p <= 1.0)) {  // negated so NaN is rejected too
    throw std::invalid_argument(
        "FaultInjector::bernoulli: probability must be in [0, 1], got " +
        std::to_string(p));
  }
  FaultInjector inj(Mode::kBernoulli, std::move(model), seed);
  inj.probability_ = p;
  inj.max_faults_ = max_faults;
  return inj;
}

FaultInjector FaultInjector::persistent(FaultModelPtr model,
                                        std::uint64_t seed) {
  return FaultInjector(Mode::kPersistent, std::move(model), seed);
}

void FaultInjector::operator()(std::size_t step, const Program& p, State& s) {
  if (injected_ >= max_faults_) return;
  bool strike = false;
  switch (mode_) {
    case Mode::kOneShot:
      strike = step == at_step_;
      break;
    case Mode::kPeriodic:
      strike = step % period_ == 0 && step > 0;
      break;
    case Mode::kBernoulli:
      strike = rng_.chance(probability_);
      break;
    case Mode::kPersistent:
      strike = true;
      break;
  }
  if (strike) {
    model_->strike(p, s, rng_);
    ++injected_;
  }
}

}  // namespace nonmask
