#include "faults/byzantine.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace nonmask {

ByzantineModel::ByzantineModel(const Program& p, std::vector<int> byzantine,
                               Policy policy)
    : byzantine_(std::move(byzantine)), policy_(policy) {
  if (byzantine_.empty()) {
    throw std::invalid_argument(
        "ByzantineModel: empty process set (use a transient model instead)");
  }
  std::vector<int> sorted = byzantine_;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("ByzantineModel: duplicate process id");
  }
  for (int b : byzantine_) {
    bool owns = false;
    for (std::uint32_t i = 0; i < p.num_variables(); ++i) {
      if (p.variable(VarId(i)).process == b) {
        vars_.push_back(VarId(i));
        owns = true;
      }
    }
    if (!owns) {
      throw std::invalid_argument("ByzantineModel: process " +
                                  std::to_string(b) + " owns no variables");
    }
  }
  std::sort(vars_.begin(), vars_.end());
}

void ByzantineModel::strike(const Program& p, State& s, Rng& rng) {
  for (VarId v : vars_) {
    const VariableSpec& spec = p.variable(v);
    switch (policy_) {
      case Policy::kRandom:
        s.set(v, static_cast<Value>(rng.range(spec.lo, spec.hi)));
        break;
      case Policy::kExtremes:
        s.set(v, rng.chance(0.5) ? spec.hi : spec.lo);
        break;
    }
  }
}

}  // namespace nonmask
