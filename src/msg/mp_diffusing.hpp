// Low-atomicity refinement of the diffusing computation (Section 8 points
// to this refinement; the companion paper [6] develops it — this is our
// reconstruction).
//
// The unrefined reflect action atomically reads a node and *all* its
// children. Here every action reads its own node plus at most one
// neighbor: each parent j keeps a bit seen.j.k per child k, set by a
// collect action (reads child k only), cleared by an unsee convergence
// action when it contradicts the child's state, and consumed by reflect
// (reads own state only).
//
// The invariant adds, to each tree constraint R.j, the bit constraints
//   seen.j.k = 1  =>  c.j = red /\ c.k = green /\ sn.k == sn.j,
// and the exact checker verifies closure and convergence on small trees.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "graphlib/topology.hpp"
#include "protocols/diffusing.hpp"

namespace nonmask {

struct MpDiffusingDesign {
  Design design;
  std::vector<VarId> color;
  std::vector<VarId> session;
  /// seen[j] lists (child, bit-variable) pairs for node j's children.
  std::vector<std::vector<std::pair<int, VarId>>> seen;
};

MpDiffusingDesign make_mp_diffusing(const RootedTree& tree);

}  // namespace nonmask
