// Channel is header-only; this translation unit anchors the library.
#include "msg/channel.hpp"
