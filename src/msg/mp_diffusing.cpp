#include "msg/mp_diffusing.hpp"

#include <string>

#include "core/builder.hpp"

namespace nonmask {

MpDiffusingDesign make_mp_diffusing(const RootedTree& tree) {
  const int n = tree.size();
  ProgramBuilder b("mp-diffusing-computation");

  MpDiffusingDesign md;
  for (int j = 0; j < n; ++j) {
    md.color.push_back(b.var("c." + std::to_string(j), kGreen, kRed, j));
    md.session.push_back(b.boolean("sn." + std::to_string(j), j));
  }
  md.seen.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    for (int k : tree.children(j)) {
      md.seen[static_cast<std::size_t>(j)].emplace_back(
          k, b.boolean("seen." + std::to_string(j) + "." + std::to_string(k),
                       j));
    }
  }
  const auto& c = md.color;
  const auto& sn = md.session;

  Invariant inv;
  std::vector<int> constraint_of(static_cast<std::size_t>(n), -1);
  // Tree constraints R.j (as in the unrefined protocol).
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId cp = c[static_cast<std::size_t>(p)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    const VarId snp = sn[static_cast<std::size_t>(p)];
    auto R = [cj, cp, snj, snp](const State& s) {
      return (s.get(cj) == s.get(cp) && s.get(snj) == s.get(snp)) ||
             (s.get(cj) == kGreen && s.get(cp) == kRed);
    };
    constraint_of[static_cast<std::size_t>(j)] = static_cast<int>(inv.add(
        Constraint{"R." + std::to_string(j), R, {cj, cp, snj, snp}}));
  }
  // Bit constraints B.j.k, with one unsee convergence action each.
  for (int j = 0; j < n; ++j) {
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    for (const auto& [k, bit] : md.seen[static_cast<std::size_t>(j)]) {
      const VarId ck = c[static_cast<std::size_t>(k)];
      const VarId snk = sn[static_cast<std::size_t>(k)];
      auto B = [bit, cj, ck, snj, snk](const State& s) {
        return s.get(bit) == 0 ||
               (s.get(cj) == kRed && s.get(ck) == kGreen &&
                s.get(snk) == s.get(snj));
      };
      const auto cid = inv.add(Constraint{
          "B." + std::to_string(j) + "." + std::to_string(k), B,
          {bit, cj, ck, snj, snk}});
      b.convergence(
          "unsee@" + std::to_string(j) + "." + std::to_string(k),
          [B](const State& s) { return !B(s); },
          [bit](State& s) { s.set(bit, 0); }, {bit, cj, ck, snj, snk},
          {bit}, static_cast<int>(cid), j);
    }
  }

  // initiate@root.
  {
    const int r = tree.root();
    const VarId cr = c[static_cast<std::size_t>(r)];
    const VarId snr = sn[static_cast<std::size_t>(r)];
    b.closure(
        "initiate@" + std::to_string(r),
        [cr](const State& s) { return s.get(cr) == kGreen; },
        [cr, snr](State& s) {
          s.set(cr, kRed);
          s.set(snr, 1 - s.get(snr));
        },
        {cr, snr}, {cr, snr}, r);
  }

  // propagate-or-correct@j (combined, as in the paper's final program).
  for (int j = 0; j < n; ++j) {
    if (tree.is_root(j)) continue;
    const int p = tree.parent(j);
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId cp = c[static_cast<std::size_t>(p)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    const VarId snp = sn[static_cast<std::size_t>(p)];
    b.convergence(
        "propagate-or-correct@" + std::to_string(j),
        [cj, cp, snj, snp](const State& s) {
          return s.get(snj) != s.get(snp) ||
                 (s.get(cj) == kRed && s.get(cp) == kGreen);
        },
        [cj, cp, snj, snp](State& s) {
          s.set(cj, s.get(cp));
          s.set(snj, s.get(snp));
        },
        {cj, cp, snj, snp}, {cj, snj},
        constraint_of[static_cast<std::size_t>(j)], j);
  }

  // collect@j.k: observe one child's completion.
  for (int j = 0; j < n; ++j) {
    const VarId cj = c[static_cast<std::size_t>(j)];
    const VarId snj = sn[static_cast<std::size_t>(j)];
    for (const auto& [k, bit] : md.seen[static_cast<std::size_t>(j)]) {
      const VarId ck = c[static_cast<std::size_t>(k)];
      const VarId snk = sn[static_cast<std::size_t>(k)];
      b.closure(
          "collect@" + std::to_string(j) + "." + std::to_string(k),
          [bit, cj, ck, snj, snk](const State& s) {
            return s.get(cj) == kRed && s.get(bit) == 0 &&
                   s.get(ck) == kGreen && s.get(snk) == s.get(snj);
          },
          [bit](State& s) { s.set(bit, 1); }, {bit, cj, ck, snj, snk},
          {bit}, j);
    }
  }

  // reflect@j: consume the bits; reads own state only.
  for (int j = 0; j < n; ++j) {
    const VarId cj = c[static_cast<std::size_t>(j)];
    std::vector<VarId> bits;
    for (const auto& [k, bit] : md.seen[static_cast<std::size_t>(j)]) {
      (void)k;
      bits.push_back(bit);
    }
    std::vector<VarId> reads{cj};
    reads.insert(reads.end(), bits.begin(), bits.end());
    std::vector<VarId> writes{cj};
    writes.insert(writes.end(), bits.begin(), bits.end());
    b.closure(
        "reflect@" + std::to_string(j),
        [cj, bits](const State& s) {
          if (s.get(cj) != kRed) return false;
          for (VarId bit : bits) {
            if (s.get(bit) == 0) return false;
          }
          return true;
        },
        [cj, bits](State& s) {
          s.set(cj, kGreen);
          for (VarId bit : bits) s.set(bit, 0);
        },
        reads, writes, j);
  }

  md.design.name = b.peek().name();
  md.design.program = b.build();
  md.design.invariant = std::move(inv);
  md.design.fault_span = true_predicate();
  md.design.stabilizing = true;
  return md;
}

}  // namespace nonmask
