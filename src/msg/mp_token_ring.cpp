#include "msg/mp_token_ring.hpp"

#include <stdexcept>
#include <string>

namespace nonmask {

MpTokenRingDesign make_mp_token_ring(int num_nodes, int K) {
  if (num_nodes < 2) throw std::invalid_argument("mp ring: n < 2");
  if (K < 2) throw std::invalid_argument("mp ring: K < 2");

  ProgramBuilder b("mp-token-ring");
  MpTokenRingDesign mp;
  mp.K = K;
  for (int j = 0; j < num_nodes; ++j) {
    mp.x.push_back(b.var("x." + std::to_string(j), 0, K - 1, j));
  }
  for (int j = 0; j < num_nodes; ++j) {
    mp.channel.push_back(Channel::declare(
        b, "ch." + std::to_string(j), static_cast<Value>(K - 1), j));
  }
  const auto& x = mp.x;
  const auto& ch = mp.channel;
  const int last = num_nodes - 1;

  // send@j: re-send the local value whenever the outgoing channel is empty.
  for (int j = 0; j < num_nodes; ++j) {
    const VarId xj = x[static_cast<std::size_t>(j)];
    const VarId slot = ch[static_cast<std::size_t>(j)].slot;
    b.closure(
        "send@" + std::to_string(j),
        [slot](const State& s) { return s.get(slot) == Channel::kEmpty; },
        [slot, xj](State& s) { s.set(slot, s.get(xj)); }, {slot, xj}, {slot},
        j);
  }

  // recv@0 from ch.last: advance on match, always consume.
  {
    const VarId x0 = x[0];
    const VarId slot = ch[static_cast<std::size_t>(last)].slot;
    b.closure(
        "recv@0",
        [slot](const State& s) { return s.get(slot) != Channel::kEmpty; },
        [slot, x0, K](State& s) {
          if (s.get(slot) == s.get(x0)) s.set(x0, (s.get(x0) + 1) % K);
          s.set(slot, Channel::kEmpty);
        },
        {slot, x0}, {slot, x0}, 0);
  }
  // recv@j from ch.(j-1): adopt on mismatch, always consume.
  for (int j = 1; j < num_nodes; ++j) {
    const VarId xj = x[static_cast<std::size_t>(j)];
    const VarId slot = ch[static_cast<std::size_t>(j - 1)].slot;
    b.closure(
        "recv@" + std::to_string(j),
        [slot](const State& s) { return s.get(slot) != Channel::kEmpty; },
        [slot, xj](State& s) {
          if (s.get(slot) != s.get(xj)) s.set(xj, s.get(slot));
          s.set(slot, Channel::kEmpty);
        },
        {slot, xj}, {slot, xj}, j);
  }

  // Channel faults.
  for (int j = 0; j < num_nodes; ++j) {
    ch[static_cast<std::size_t>(j)].add_loss_fault(
        b, "lose@ch." + std::to_string(j));
    mp.loss_faults.push_back(b.peek().num_actions() - 1);
    ch[static_cast<std::size_t>(j)].add_corruption_fault(
        b, "corrupt@ch." + std::to_string(j));
    mp.corruption_faults.push_back(b.peek().num_actions() - 1);
  }

  mp.design.name = b.peek().name();
  mp.design.program = b.build();
  mp.design.fault_span = true_predicate();
  mp.design.stabilizing = true;

  // S: exactly one privilege over the *extended* ring of 2n positions
  // w = (x.0, ch.0, x.1, ch.1, ..., x.(n-1), ch.(n-1)), where an empty
  // channel inherits its sender's value. A stale in-flight message is a
  // latent second token, so x-values alone cannot characterize legitimacy;
  // this extended sequence makes S closed under send/recv (verified by the
  // exact checker in the tests).
  {
    auto xs = mp.x;
    std::vector<VarId> slots;
    for (const auto& c : mp.channel) slots.push_back(c.slot);
    const int n = num_nodes;
    mp.design.S_override = [xs, slots, n](const State& s) {
      std::vector<Value> w(static_cast<std::size_t>(2 * n));
      for (int j = 0; j < n; ++j) {
        const Value xv = s.get(xs[static_cast<std::size_t>(j)]);
        const Value cv = s.get(slots[static_cast<std::size_t>(j)]);
        w[static_cast<std::size_t>(2 * j)] = xv;
        w[static_cast<std::size_t>(2 * j + 1)] =
            cv == Channel::kEmpty ? xv : cv;
      }
      int count = 0;
      if (w.back() == w.front()) ++count;  // privilege at position 0
      for (std::size_t i = 1; i < w.size(); ++i) {
        if (w[i] != w[i - 1]) ++count;
      }
      return count == 1;
    };
  }
  return mp;
}

}  // namespace nonmask
