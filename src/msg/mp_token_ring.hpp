// Message-passing refinement of the token ring (the exercise the paper
// leaves to the reader in Section 7.1).
//
// Each node j keeps x.j in [0, K-1] and owns a capacity-1 channel ch.j to
// its successor. Nodes perpetually re-send their current x into an empty
// outgoing channel (the keep-alive abstraction of a timeout); receivers
// consume and adopt per Dijkstra's rules:
//   send@j:  ch.j empty                 -> ch.j := x.j
//   recv@0:  ch.N full                  -> if payload = x.0 then advance;
//                                          consume
//   recv@j:  ch.(j-1) full, j > 0       -> if payload != x.j then adopt;
//                                          consume
//
// Convergence requires (weak) fairness: an unfair daemon can spin a single
// send/consume pair forever — the exact checker exhibits that cycle, and
// bench_msg_ring measures convergence under fair daemons with message loss
// and corruption faults. This connects directly to the paper's Section 8
// discussion of when fairness is dispensable: for this refinement it is not.
#pragma once

#include <vector>

#include "core/candidate.hpp"
#include "msg/channel.hpp"

namespace nonmask {

struct MpTokenRingDesign {
  Design design;
  std::vector<VarId> x;
  std::vector<Channel> channel;  ///< channel[j]: j -> (j+1) mod n
  int K = 0;

  /// Loss / corruption fault action indices (one per channel, in order).
  std::vector<std::size_t> loss_faults;
  std::vector<std::size_t> corruption_faults;
};

/// num_nodes >= 2, K >= 2. S: exactly one privilege, where in-flight
/// messages count as the value of the sending side (a node is privileged
/// by the same x-comparisons as the shared-memory ring).
MpTokenRingDesign make_mp_token_ring(int num_nodes, int K);

}  // namespace nonmask
