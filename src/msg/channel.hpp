// Bounded channels as program variables.
//
// The paper's programs are shared-memory guarded commands; Section 7.1
// leaves "refinement into message passing" as an exercise and Section 8
// points to low-atomicity refinements. We model a capacity-1 channel as one
// variable whose domain is {empty} ∪ payload-domain, so the *same* engine,
// daemons, fault injectors and exact checker apply unchanged to
// message-passing protocols. Channel faults (loss, corruption) are ordinary
// fault actions on the channel variable.
#pragma once

#include <string>

#include "core/builder.hpp"
#include "core/program.hpp"

namespace nonmask {

/// A capacity-1 unidirectional channel carrying values in [0, payload_max].
/// Encoding: -1 = empty, v >= 0 = message v in flight.
struct Channel {
  VarId slot;
  Value payload_max = 0;

  static constexpr Value kEmpty = -1;

  bool empty(const State& s) const { return s.get(slot) == kEmpty; }
  Value payload(const State& s) const { return s.get(slot); }

  /// Declare the channel variable on a builder.
  static Channel declare(ProgramBuilder& b, const std::string& name,
                         Value payload_max, int process = -1) {
    Channel ch;
    ch.payload_max = payload_max;
    ch.slot = b.var(name, kEmpty, payload_max, process);
    return ch;
  }

  /// Add a message-loss fault action: drop any in-flight message.
  void add_loss_fault(ProgramBuilder& b, const std::string& name) const {
    const VarId slot_ = slot;
    b.fault(
        name, [slot_](const State& s) { return s.get(slot_) != kEmpty; },
        [slot_](State& s) { s.set(slot_, kEmpty); }, {slot_}, {slot_});
  }

  /// Add a message-corruption fault action: replace any in-flight message
  /// by an arbitrary payload (here: payload+1 wrapping, which suffices to
  /// reach every corrupt value across repeated strikes).
  void add_corruption_fault(ProgramBuilder& b, const std::string& name) const {
    const VarId slot_ = slot;
    const Value max = payload_max;
    b.fault(
        name, [slot_](const State& s) { return s.get(slot_) != kEmpty; },
        [slot_, max](State& s) {
          s.set(slot_, (s.get(slot_) + 1) % (max + 1));
        },
        {slot_}, {slot_});
  }
};

}  // namespace nonmask
