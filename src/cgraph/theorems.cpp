#include "cgraph/theorems.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "graphlib/analysis.hpp"

namespace nonmask {

namespace {

PreservesOptions to_preserves_options(const ValidationOptions& opts,
                                      PredicateFn context = {}) {
  PreservesOptions po;
  po.space = opts.space;
  po.samples = opts.samples;
  po.seed = opts.seed;
  po.context = std::move(context);
  return po;
}

/// Run one preserves-obligation and append it to the report. Returns the
/// obligation's outcome.
bool discharge(TheoremReport& report, const Design& design,
               const Action& action, const PredicateFn& predicate,
               std::string description, const PreservesOptions& po) {
  const PreservesReport pr =
      check_preserves(design.program, action, predicate, po);
  Obligation ob;
  ob.description = std::move(description);
  ob.passed = pr.preserves;
  ob.exhaustive = pr.exhaustive;
  ob.checked = pr.checked;
  ob.counterexample = pr.counterexample;
  report.obligations.push_back(std::move(ob));
  if (!pr.preserves && report.failure.empty()) {
    report.failure = report.obligations.back().description;
  }
  return pr.preserves;
}

/// The constraint a convergence action establishes, or nullptr when the
/// action has no constraint binding.
const Constraint* constraint_of(const Design& design, std::size_t action_idx) {
  const int id = design.program.action(action_idx).constraint_id();
  if (id < 0 || static_cast<std::size_t>(id) >= design.invariant.size()) {
    return nullptr;
  }
  return &design.invariant.at(static_cast<std::size_t>(id));
}

/// Universal per-state check: `test` must hold at every state satisfying
/// the hypothesis baked into it. Exhaustive over opts.space or sampled.
template <typename TestFn>
bool discharge_universal(TheoremReport& report, const Design& design,
                         TestFn test, std::string description,
                         const ValidationOptions& opts) {
  Obligation ob;
  ob.description = std::move(description);
  ob.passed = true;
  if (opts.space != nullptr) {
    ob.exhaustive = true;
    State s(design.program.num_variables());
    for (std::uint64_t code = 0; code < opts.space->size(); ++code) {
      opts.space->decode_into(code, s);
      ++ob.checked;
      if (!test(s)) {
        ob.passed = false;
        ob.counterexample = s;
        break;
      }
    }
  } else {
    Rng rng(opts.seed);
    for (std::uint64_t i = 0; i < opts.samples; ++i) {
      const State s = design.program.random_state(rng);
      ++ob.checked;
      if (!test(s)) {
        ob.passed = false;
        ob.counterexample = s;
        break;
      }
    }
  }
  const bool passed = ob.passed;
  if (!passed && report.failure.empty()) report.failure = ob.description;
  report.obligations.push_back(std::move(ob));
  return passed;
}

/// Section 3 form obligations for the given convergence actions: the guard
/// implies the bound constraint is violated, and execution establishes it.
/// Both are checked within the fault-span T.
bool form_obligations(TheoremReport& report, const Design& design,
                      const std::vector<std::size_t>& conv_actions,
                      const ValidationOptions& opts) {
  if (!opts.check_convergence_action_form) return true;
  bool all = true;
  for (std::size_t idx : conv_actions) {
    const Action& a = design.program.action(idx);
    const Constraint* c = constraint_of(design, idx);
    if (c == nullptr) {
      Obligation ob;
      ob.description = "convergence action '" + a.name() +
                       "' has a constraint binding";
      ob.passed = false;
      if (report.failure.empty()) report.failure = ob.description;
      report.obligations.push_back(std::move(ob));
      all = false;
      continue;
    }
    const PredicateFn T = design.fault_span;
    const PredicateFn cf = c->fn;
    all &= discharge_universal(
        report, design,
        [&a, T, cf](const State& s) {
          return !(T(s) && a.enabled(s)) || !cf(s);
        },
        "convergence action '" + a.name() +
            "' is enabled only when constraint '" + c->name + "' is violated",
        opts);
    all &= discharge_universal(
        report, design,
        [&a, T, cf](const State& s) {
          return !(T(s) && a.enabled(s)) || cf(a.apply(s));
        },
        "convergence action '" + a.name() + "' establishes constraint '" +
            c->name + "'",
        opts);
  }
  return all;
}

/// All convergence-action indices of a design.
std::vector<std::size_t> convergence_actions_of(const Design& design) {
  return design.program.actions_of_kind(ActionKind::kConvergence);
}

/// The method's premise (Section 3): the constraints are chosen so that
/// their conjunction together with T equals S (we check the ⇒ direction,
/// which is what the theorems' conclusions need), and every constraint has
/// a convergence action to establish it. Designs that merely *annotate*
/// constraints (or none at all) while overriding S must not vacuously pass.
bool premise_obligations(TheoremReport& report, const Design& design,
                         const ValidationOptions& opts) {
  bool all = true;

  // (i) Every constraint is bound to at least one convergence action.
  std::vector<bool> covered(design.invariant.size(), false);
  for (std::size_t ai = 0; ai < design.program.num_actions(); ++ai) {
    const Action& a = design.program.action(ai);
    if (a.kind() != ActionKind::kConvergence) continue;
    const int id = a.constraint_id();
    if (id >= 0 && static_cast<std::size_t>(id) < covered.size()) {
      covered[static_cast<std::size_t>(id)] = true;
    }
  }
  for (std::size_t ci = 0; ci < covered.size(); ++ci) {
    Obligation ob;
    ob.description = "constraint '" + design.invariant.at(ci).name +
                     "' has a convergence action";
    ob.passed = covered[ci];
    if (!ob.passed && report.failure.empty()) report.failure = ob.description;
    all &= ob.passed;
    report.obligations.push_back(std::move(ob));
  }

  // (ii) constraints /\ T => S. Trivial when S is the default conjunction;
  // checked by enumeration/sampling when the design overrides S.
  if (design.S_override) {
    const PredicateFn constraints = design.invariant.as_predicate();
    const PredicateFn T = design.fault_span;
    const PredicateFn S = design.S();
    all &= discharge_universal(
        report, design,
        [constraints, T, S](const State& s) {
          return !(constraints(s) && T(s)) || S(s);
        },
        "the constraints' conjunction together with T implies S", opts);
  }
  return all;
}

/// Closure obligations shared by all three theorems: every closure action
/// preserves each constraint (optionally under a context hypothesis, and
/// optionally restricted to a subset of constraints).
bool closure_obligations(TheoremReport& report, const Design& design,
                         const std::vector<std::size_t>& constraint_ids,
                         const ValidationOptions& opts,
                         const PredicateFn& context, const char* suffix) {
  bool all = true;
  // All obligations are hypotheses within the fault-span T.
  const PredicateFn ctx =
      context ? p_and(design.fault_span, context) : design.fault_span;
  const auto po = to_preserves_options(opts, ctx);
  for (std::size_t ai = 0; ai < design.program.num_actions(); ++ai) {
    const Action& a = design.program.action(ai);
    if (a.kind() != ActionKind::kClosure) continue;
    for (std::size_t ci : constraint_ids) {
      const Constraint& c = design.invariant.at(ci);
      all &= discharge(report, design, a, c.fn,
                       "closure action '" + a.name() +
                           "' preserves constraint '" + c.name + "'" + suffix,
                       po);
    }
  }
  return all;
}

/// Design obligations: every convergence action preserves the fault-span T.
bool fault_span_obligations(TheoremReport& report, const Design& design,
                            const ValidationOptions& opts) {
  if (!opts.check_fault_span_preserved) return true;
  bool all = true;
  const auto po = to_preserves_options(opts);
  for (std::size_t ai = 0; ai < design.program.num_actions(); ++ai) {
    const Action& a = design.program.action(ai);
    if (a.kind() == ActionKind::kFault) continue;
    all &= discharge(report, design, a, design.fault_span,
                     "action '" + a.name() + "' preserves fault-span T", po);
  }
  return all;
}

/// Solve the linear-order antecedent for the in-edge actions of one node:
/// build the must-precede relation (x before y whenever x does not preserve
/// y's constraint) and topologically sort it. Obligations for the pairwise
/// preserves checks are recorded. Returns nullopt when no order exists.
std::optional<std::vector<std::size_t>> solve_node_order(
    TheoremReport& report, const Design& design,
    const std::vector<std::size_t>& in_actions, const ValidationOptions& opts,
    const PredicateFn& context) {
  const std::size_t k = in_actions.size();
  if (k <= 1) return std::vector<std::size_t>(in_actions);

  const PredicateFn ctx =
      context ? p_and(design.fault_span, context) : design.fault_span;
  const auto po = to_preserves_options(opts, ctx);
  // preserves[i][j]: does action i preserve the constraint of action j?
  std::vector<std::vector<bool>> preserves(k, std::vector<bool>(k, true));
  for (std::size_t i = 0; i < k; ++i) {
    const Action& ai = design.program.action(in_actions[i]);
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const Constraint* cj = constraint_of(design, in_actions[j]);
      if (cj == nullptr) {
        report.failure = "convergence action '" +
                         design.program.action(in_actions[j]).name() +
                         "' has no constraint binding";
        return std::nullopt;
      }
      const PreservesReport pr =
          check_preserves(design.program, ai, cj->fn, po);
      preserves[i][j] = pr.preserves;
    }
  }

  // Kahn's algorithm on must-precede edges i -> j (i before j) whenever
  // !preserves[i][j].
  std::vector<int> indegree(k, 0);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i != j && !preserves[i][j]) ++indegree[j];
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t j = 0; j < k; ++j) {
    if (indegree[j] == 0) ready.push_back(j);
  }
  std::vector<std::size_t> order;
  while (!ready.empty()) {
    // Deterministic: lowest index first.
    std::sort(ready.begin(), ready.end(), std::greater<>());
    const std::size_t i = ready.back();
    ready.pop_back();
    order.push_back(in_actions[i]);
    for (std::size_t j = 0; j < k; ++j) {
      if (j != i && !preserves[i][j]) {
        if (--indegree[j] == 0) ready.push_back(j);
      }
    }
  }
  if (order.size() != k) return std::nullopt;

  // Record the order's pairwise obligations (all pass by construction).
  for (std::size_t b = 1; b < k; ++b) {
    for (std::size_t a = 0; a < b; ++a) {
      // later action order[b] preserves constraint of earlier order[a]
      std::size_t ia = 0, ib = 0;
      for (std::size_t t = 0; t < k; ++t) {
        if (in_actions[t] == order[a]) ia = t;
        if (in_actions[t] == order[b]) ib = t;
      }
      Obligation ob;
      ob.description = "convergence action '" +
                       design.program.action(order[b]).name() +
                       "' preserves constraint of preceding '" +
                       design.program.action(order[a]).name() + "'";
      ob.passed = preserves[ib][ia];
      report.obligations.push_back(std::move(ob));
    }
  }
  return order;
}

}  // namespace

TheoremReport validate_theorem1(const Design& design,
                                const ConstraintGraph& cg,
                                const ValidationOptions& opts) {
  TheoremReport report;
  report.theorem = "Theorem 1 (out-tree constraint graph)";
  report.shape = classify(cg);

  std::vector<std::size_t> all_constraints(design.invariant.size());
  for (std::size_t i = 0; i < all_constraints.size(); ++i) {
    all_constraints[i] = i;
  }
  bool ok = closure_obligations(report, design, all_constraints, opts, {}, "");
  ok &= fault_span_obligations(report, design, opts);
  ok &= form_obligations(report, design, convergence_actions_of(design), opts);
  ok &= premise_obligations(report, design, opts);

  if (report.shape != GraphShape::kOutTree) {
    report.failure = std::string("constraint graph is ") +
                     to_string(report.shape) + ", not an out-tree";
    ok = false;
  } else {
    if (auto ranks = constraint_graph_ranks(cg)) report.ranks = *ranks;
  }
  report.applies = ok;
  return report;
}

TheoremReport validate_theorem2(const Design& design,
                                const ConstraintGraph& cg,
                                const ValidationOptions& opts) {
  TheoremReport report;
  report.theorem = "Theorem 2 (self-looping constraint graph)";
  report.shape = classify(cg);

  std::vector<std::size_t> all_constraints(design.invariant.size());
  for (std::size_t i = 0; i < all_constraints.size(); ++i) {
    all_constraints[i] = i;
  }
  bool ok = closure_obligations(report, design, all_constraints, opts, {}, "");
  ok &= fault_span_obligations(report, design, opts);
  ok &= form_obligations(report, design, convergence_actions_of(design), opts);
  ok &= premise_obligations(report, design, opts);

  if (report.shape == GraphShape::kCyclic) {
    report.failure = "constraint graph has a cycle of length > 1";
    report.applies = false;
    return report;
  }
  if (auto ranks = constraint_graph_ranks(cg)) report.ranks = *ranks;

  // Per-node linear order of in-edge actions.
  report.node_orders.resize(
      static_cast<std::size_t>(cg.graph.num_nodes()));
  for (int node = 0; node < cg.graph.num_nodes(); ++node) {
    std::vector<std::size_t> in_actions;
    for (int e : cg.graph.in_edges(node)) {
      in_actions.push_back(static_cast<std::size_t>(cg.graph.edge(e).payload));
    }
    auto order = solve_node_order(report, design, in_actions, opts, {});
    if (!order) {
      if (report.failure.empty()) {
        report.failure = "no valid linear order of convergence actions at "
                         "constraint-graph node " +
                         std::to_string(node);
      }
      ok = false;
      continue;
    }
    report.node_orders[static_cast<std::size_t>(node)] = std::move(*order);
  }
  report.applies = ok;
  return report;
}

TheoremReport validate_theorem3(
    const Design& design, const std::vector<std::vector<std::size_t>>& layers,
    const ValidationOptions& opts) {
  TheoremReport report;
  report.theorem = "Theorem 3 (layered constraint graphs)";
  report.layers = layers;

  bool ok = fault_span_obligations(report, design, opts);
  {
    std::vector<std::size_t> all_conv;
    for (const auto& layer : layers) {
      all_conv.insert(all_conv.end(), layer.begin(), layer.end());
    }
    ok &= form_obligations(report, design, all_conv, opts);
  }
  ok &= premise_obligations(report, design, opts);

  // Constraints of each layer (via the actions' constraint bindings).
  std::vector<std::vector<std::size_t>> layer_constraints(layers.size());
  for (std::size_t l = 0; l < layers.size(); ++l) {
    for (std::size_t ai : layers[l]) {
      const Constraint* c = constraint_of(design, ai);
      if (c == nullptr) {
        report.failure = "convergence action '" +
                         design.program.action(ai).name() +
                         "' has no constraint binding";
        report.applies = false;
        return report;
      }
      layer_constraints[l].push_back(
          static_cast<std::size_t>(design.program.action(ai).constraint_id()));
    }
    std::sort(layer_constraints[l].begin(), layer_constraints[l].end());
    layer_constraints[l].erase(
        std::unique(layer_constraints[l].begin(), layer_constraints[l].end()),
        layer_constraints[l].end());
  }

  // Context of layer l: all constraints in lower layers hold, and S does
  // not yet hold. The ¬S refinement is the paper's own Section 7.1 note —
  // "the first closure action is not enabled when the first conjunct holds
  // but the second does not": preservation of a layer's constraints by
  // closure actions is only needed *during convergence*; once S holds, the
  // candidate triple's closure of S takes over.
  const PredicateFn not_S = p_not(design.S());
  auto context_of = [&](std::size_t l) -> PredicateFn {
    std::vector<PredicateFn> lower{not_S};
    for (std::size_t k = 0; k < l; ++k) {
      for (std::size_t ci : layer_constraints[k]) {
        lower.push_back(design.invariant.at(ci).fn);
      }
    }
    return p_all(std::move(lower));
  };

  for (std::size_t l = 0; l < layers.size(); ++l) {
    const PredicateFn context = context_of(l);
    const std::string suffix =
        l == 0 ? std::string{}
               : " (given layers 0.." + std::to_string(l - 1) + ")";

    // (a) closure actions preserve this layer's constraints under context.
    ok &= closure_obligations(report, design, layer_constraints[l], opts,
                              context, suffix.c_str());

    // (b) convergence actions of higher layers preserve this layer's
    // constraints under context.
    const auto po = to_preserves_options(opts, context);
    for (std::size_t h = l + 1; h < layers.size(); ++h) {
      for (std::size_t ai : layers[h]) {
        const Action& a = design.program.action(ai);
        for (std::size_t ci : layer_constraints[l]) {
          const Constraint& c = design.invariant.at(ci);
          ok &= discharge(report, design, a, c.fn,
                          "layer-" + std::to_string(h) +
                              " convergence action '" + a.name() +
                              "' preserves layer-" + std::to_string(l) +
                              " constraint '" + c.name + "'" + suffix,
                          po);
        }
      }
    }

    // (c) the layer's constraint graph is self-looping.
    const auto cg = infer_constraint_graph(design.program, layers[l]);
    if (!cg.ok) {
      report.failure = "layer " + std::to_string(l) +
                       ": constraint graph construction failed: " + cg.error;
      ok = false;
      continue;
    }
    const GraphShape shape = classify(cg.graph);
    if (shape == GraphShape::kCyclic) {
      report.failure = "layer " + std::to_string(l) +
                       ": constraint graph has a cycle of length > 1";
      ok = false;
      continue;
    }

    // (d) per-node linear orders within the layer, under context.
    for (int node = 0; node < cg.graph.graph.num_nodes(); ++node) {
      std::vector<std::size_t> in_actions;
      for (int e : cg.graph.graph.in_edges(node)) {
        in_actions.push_back(
            static_cast<std::size_t>(cg.graph.graph.edge(e).payload));
      }
      auto order =
          solve_node_order(report, design, in_actions, opts, context);
      if (!order) {
        if (report.failure.empty()) {
          report.failure = "layer " + std::to_string(l) +
                           ": no valid linear order at node " +
                           std::to_string(node);
        }
        ok = false;
        continue;
      }
      report.node_orders.push_back(std::move(*order));
    }
  }

  report.applies = ok;
  return report;
}

TheoremReport validate_design(const Design& design,
                              const ValidationOptions& opts) {
  const auto cg = infer_constraint_graph(design.program);
  if (!cg.ok) {
    TheoremReport report;
    report.theorem = "(constraint graph construction)";
    report.failure = cg.error;
    return report;
  }
  TheoremReport t1 = validate_theorem1(design, cg.graph, opts);
  if (t1.applies) return t1;
  TheoremReport t2 = validate_theorem2(design, cg.graph, opts);
  return t2;
}

std::string format_report(const TheoremReport& report) {
  std::ostringstream out;
  out << report.theorem << ": "
      << (report.applies ? "APPLIES" : "DOES NOT APPLY") << "\n";
  if (!report.failure.empty()) out << "  failure: " << report.failure << "\n";
  out << "  constraint graph shape: " << to_string(report.shape) << "\n";
  std::size_t passed = 0;
  for (const auto& ob : report.obligations) {
    if (ob.passed) ++passed;
  }
  out << "  obligations: " << passed << "/" << report.obligations.size()
      << " discharged\n";
  for (const auto& ob : report.obligations) {
    if (!ob.passed) out << "    FAILED: " << ob.description << "\n";
  }
  if (!report.ranks.empty()) {
    out << "  node ranks:";
    for (std::size_t i = 0; i < report.ranks.size(); ++i) {
      out << " n" << i << "=" << report.ranks[i];
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace nonmask
