// Mechanical validators for the paper's Theorems 1-3.
//
// Each theorem is a bundle of sufficient conditions ("antecedents") for the
// convergence of a design's convergence actions. We discharge every
// antecedent mechanically:
//   - "action a preserves constraint c [whenever H holds]" obligations run
//     through checker/preserves (exhaustive over a StateSpace, or sampled);
//   - graph-shape antecedents run through cgraph/classify;
//   - linear-order antecedents are solved by topological sorting of the
//     "must-precede" relation (x must precede y whenever x does not
//     preserve y's constraint).
// A passing report carries the certificate (node ranks, per-node linear
// orders, layer structure) that the paper's proofs would use.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cgraph/classify.hpp"
#include "cgraph/constraint_graph.hpp"
#include "checker/preserves.hpp"
#include "core/candidate.hpp"

namespace nonmask {

struct Obligation {
  std::string description;
  bool passed = false;
  bool exhaustive = false;
  std::uint64_t checked = 0;
  std::optional<State> counterexample;
};

struct TheoremReport {
  std::string theorem;
  bool applies = false;
  std::string failure;  ///< first failing antecedent (empty when applies)
  std::vector<Obligation> obligations;
  GraphShape shape = GraphShape::kCyclic;  ///< observed shape (thms 1-2)

  /// Certificates.
  std::vector<int> ranks;  ///< constraint-graph node ranks (thms 1-2)
  /// Per-node linear order of in-edge convergence actions (thm 2 / thm 3).
  std::vector<std::vector<std::size_t>> node_orders;
  /// The layer partition the report was validated against (thm 3 only):
  /// layers[l] lists convergence-action indices into design.program. Part
  /// of the certificate — audit_certificate re-checks it independently.
  std::vector<std::vector<std::size_t>> layers;
};

struct ValidationOptions {
  /// Exhaustive obligation checking when set; sampled otherwise.
  const StateSpace* space = nullptr;
  std::uint64_t samples = 20'000;
  std::uint64_t seed = 0x5eedULL;
  /// Also discharge the design obligations of the method itself: closure
  /// actions preserve T, convergence actions preserve T.
  bool check_fault_span_preserved = true;
  /// Also discharge the convergence-action *form* obligations of Section 3
  /// (¬c -> "establish c while preserving T"): each convergence action's
  /// guard implies its constraint is violated, and executing the action
  /// establishes the constraint. The paper's *combined* programs (e.g. the
  /// diffusing propagate-or-correct action) deliberately break the first
  /// half — the theorems are applied to the separated designs before
  /// combining — so validating a combined program correctly fails here.
  bool check_convergence_action_form = true;
};

/// Theorem 1 (Section 5): closure actions preserve each constraint; the
/// constraint graph is an out-tree.
TheoremReport validate_theorem1(const Design& design,
                                const ConstraintGraph& cg,
                                const ValidationOptions& opts = {});

/// Theorem 2 (Section 6): closure actions preserve each constraint; the
/// constraint graph is self-looping; in-edge actions at each node admit a
/// linear order where each preserves its predecessors' constraints.
TheoremReport validate_theorem2(const Design& design,
                                const ConstraintGraph& cg,
                                const ValidationOptions& opts = {});

/// Theorem 3 (Section 7): convergence actions are partitioned into layers
/// 0..M-1 (given as lists of action indices into design.program); each
/// layer's antecedents are discharged under the hypothesis that all lower
/// layers' constraints hold.
TheoremReport validate_theorem3(
    const Design& design, const std::vector<std::vector<std::size_t>>& layers,
    const ValidationOptions& opts = {});

/// Try Theorem 1, then Theorem 2, on the design's inferred constraint
/// graph; returns the first report that applies, else the Theorem 2 report
/// (whose failure explains what layering would have to fix).
TheoremReport validate_design(const Design& design,
                              const ValidationOptions& opts = {});

/// Human-readable rendering of a report.
std::string format_report(const TheoremReport& report);

}  // namespace nonmask
