#include "cgraph/certify.hpp"

#include <algorithm>

#include "checker/preserves.hpp"

namespace nonmask {

std::vector<std::string> audit_certificate(const Design& design,
                                           const ConstraintGraph& cg,
                                           const TheoremReport& report,
                                           const ValidationOptions& opts) {
  std::vector<std::string> problems;
  if (!report.applies) return problems;

  // 1. Every recorded obligation must claim success.
  for (const auto& ob : report.obligations) {
    if (!ob.passed) {
      problems.push_back("applies=true but obligation failed: " +
                         ob.description);
    }
  }

  // 2. Ranks: rank(j) = 1 + max{rank(k) | edge k->j, k != j} (empty -> 0).
  if (!report.ranks.empty()) {
    if (static_cast<int>(report.ranks.size()) != cg.graph.num_nodes()) {
      problems.push_back("rank vector size mismatch");
    } else {
      for (int j = 0; j < cg.graph.num_nodes(); ++j) {
        int best = 0;
        for (int e : cg.graph.in_edges(j)) {
          const int k = cg.graph.edge(e).from;
          if (k == j) continue;
          best = std::max(best, report.ranks[static_cast<std::size_t>(k)]);
        }
        if (report.ranks[static_cast<std::size_t>(j)] != 1 + best) {
          problems.push_back("rank recurrence violated at node " +
                             std::to_string(j));
        }
      }
    }
  }

  // 3. Per-node orders: permutations of the node's in-edge actions whose
  // pairwise preserves-obligations re-verify.
  if (!report.node_orders.empty() &&
      static_cast<int>(report.node_orders.size()) == cg.graph.num_nodes()) {
    PreservesOptions po;
    po.space = opts.space;
    po.samples = opts.samples;
    po.seed = opts.seed ^ 0xa0d17ULL;  // independent sampling stream
    po.context = design.fault_span;
    for (int j = 0; j < cg.graph.num_nodes(); ++j) {
      std::vector<std::size_t> expected;
      for (int e : cg.graph.in_edges(j)) {
        expected.push_back(
            static_cast<std::size_t>(cg.graph.edge(e).payload));
      }
      std::vector<std::size_t> got =
          report.node_orders[static_cast<std::size_t>(j)];
      auto sorted_expected = expected;
      auto sorted_got = got;
      std::sort(sorted_expected.begin(), sorted_expected.end());
      std::sort(sorted_got.begin(), sorted_got.end());
      if (sorted_expected != sorted_got) {
        problems.push_back("order at node " + std::to_string(j) +
                           " is not a permutation of its in-edge actions");
        continue;
      }
      for (std::size_t b = 1; b < got.size(); ++b) {
        for (std::size_t a = 0; a < b; ++a) {
          const int cid = design.program.action(got[a]).constraint_id();
          if (cid < 0 ||
              static_cast<std::size_t>(cid) >= design.invariant.size()) {
            problems.push_back("order references unbound action");
            continue;
          }
          const auto& c = design.invariant.at(static_cast<std::size_t>(cid));
          const auto pr = check_preserves(
              design.program, design.program.action(got[b]), c.fn, po);
          if (!pr.preserves) {
            problems.push_back(
                "order at node " + std::to_string(j) + ": action '" +
                design.program.action(got[b]).name() +
                "' does not preserve preceding constraint '" + c.name + "'");
          }
        }
      }
    }
  }
  return problems;
}

}  // namespace nonmask
