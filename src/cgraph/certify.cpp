#include "cgraph/certify.hpp"

#include <algorithm>
#include <string>

#include "cgraph/classify.hpp"
#include "checker/preserves.hpp"

namespace nonmask {

namespace {

/// Re-check a Theorem-3 layer certificate independently of the validator:
/// the layers must partition the design's convergence actions into bound
/// actions, each layer's own constraint graph must have no cycle of length
/// > 1, and the cross-layer preserves-obligations must re-verify under the
/// layer context (lower layers' constraints hold, S does not yet hold,
/// within the fault-span).
void audit_layers(const Design& design, const TheoremReport& report,
                  const ValidationOptions& opts,
                  std::vector<std::string>& problems) {
  const auto conv = design.program.actions_of_kind(ActionKind::kConvergence);
  std::vector<std::size_t> listed;
  for (const auto& layer : report.layers) {
    listed.insert(listed.end(), layer.begin(), layer.end());
  }
  auto sorted_conv = conv;
  auto sorted_listed = listed;
  std::sort(sorted_conv.begin(), sorted_conv.end());
  std::sort(sorted_listed.begin(), sorted_listed.end());
  if (sorted_listed != sorted_conv) {
    problems.push_back(
        "layers are not a partition of the convergence actions");
    return;
  }

  // Constraints established by each layer.
  std::vector<std::vector<const Constraint*>> layer_constraints;
  for (const auto& layer : report.layers) {
    std::vector<const Constraint*> cs;
    for (std::size_t ai : layer) {
      const int cid = design.program.action(ai).constraint_id();
      if (cid < 0 ||
          static_cast<std::size_t>(cid) >= design.invariant.size()) {
        problems.push_back("layered action '" +
                           design.program.action(ai).name() +
                           "' has no constraint binding");
        return;
      }
      cs.push_back(&design.invariant.at(static_cast<std::size_t>(cid)));
    }
    layer_constraints.push_back(std::move(cs));
  }

  PreservesOptions po;
  po.space = opts.space;
  po.samples = opts.samples;
  po.seed = opts.seed ^ 0x1a7e5ULL;  // independent sampling stream
  const PredicateFn not_S = p_not(design.S());

  for (std::size_t l = 0; l < report.layers.size(); ++l) {
    // Shape: the layer's own constraint graph admits no cycle of length
    // > 1 (the Theorem 2 antecedent each layer must satisfy).
    const auto cg_l = infer_constraint_graph(design.program, report.layers[l]);
    if (!cg_l.ok) {
      problems.push_back("layer " + std::to_string(l) +
                         ": constraint graph construction failed");
      continue;
    }
    if (classify(cg_l.graph) == GraphShape::kCyclic) {
      problems.push_back("layer " + std::to_string(l) +
                         ": constraint graph has a cycle of length > 1");
    }

    // Context of layer l: lower layers' constraints hold, ¬S, within T.
    std::vector<PredicateFn> ctx{design.fault_span, not_S};
    for (std::size_t k = 0; k < l; ++k) {
      for (const Constraint* c : layer_constraints[k]) ctx.push_back(c->fn);
    }
    po.context = p_all(ctx);

    // Closure actions preserve this layer's constraints under context.
    for (std::size_t ai = 0; ai < design.program.num_actions(); ++ai) {
      const Action& a = design.program.action(ai);
      if (a.kind() != ActionKind::kClosure) continue;
      for (const Constraint* c : layer_constraints[l]) {
        if (!check_preserves(design.program, a, c->fn, po).preserves) {
          problems.push_back("layer " + std::to_string(l) +
                             ": closure action '" + a.name() +
                             "' does not preserve constraint '" + c->name +
                             "' under the layer context");
        }
      }
    }
    // Higher-layer convergence actions preserve this layer's constraints.
    for (std::size_t h = l + 1; h < report.layers.size(); ++h) {
      for (std::size_t ai : report.layers[h]) {
        const Action& a = design.program.action(ai);
        for (const Constraint* c : layer_constraints[l]) {
          if (!check_preserves(design.program, a, c->fn, po).preserves) {
            problems.push_back(
                "layer " + std::to_string(h) + " action '" + a.name() +
                "' does not preserve layer-" + std::to_string(l) +
                " constraint '" + c->name + "' under the layer context");
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<std::string> audit_certificate(const Design& design,
                                           const ConstraintGraph& cg,
                                           const TheoremReport& report,
                                           const ValidationOptions& opts) {
  std::vector<std::string> problems;
  if (!report.applies) return problems;

  // 1. Every recorded obligation must claim success.
  for (const auto& ob : report.obligations) {
    if (!ob.passed) {
      problems.push_back("applies=true but obligation failed: " +
                         ob.description);
    }
  }

  // 2. Ranks: rank(j) = 1 + max{rank(k) | edge k->j, k != j} (empty -> 0).
  if (!report.ranks.empty()) {
    if (static_cast<int>(report.ranks.size()) != cg.graph.num_nodes()) {
      problems.push_back("rank vector size mismatch");
    } else {
      for (int j = 0; j < cg.graph.num_nodes(); ++j) {
        int best = 0;
        for (int e : cg.graph.in_edges(j)) {
          const int k = cg.graph.edge(e).from;
          if (k == j) continue;
          best = std::max(best, report.ranks[static_cast<std::size_t>(k)]);
        }
        if (report.ranks[static_cast<std::size_t>(j)] != 1 + best) {
          problems.push_back("rank recurrence violated at node " +
                             std::to_string(j));
        }
      }
    }
  }

  // 3. Layered (Theorem 3) certificates: re-check the layer structure.
  // The per-node orders of a layered report live inside layer-local
  // constraint graphs, not `cg`, so the node-order audit below does not
  // apply to them.
  if (!report.layers.empty()) {
    audit_layers(design, report, opts, problems);
    return problems;
  }

  // 4. Per-node orders: permutations of the node's in-edge actions whose
  // pairwise preserves-obligations re-verify.
  if (!report.node_orders.empty() &&
      static_cast<int>(report.node_orders.size()) == cg.graph.num_nodes()) {
    PreservesOptions po;
    po.space = opts.space;
    po.samples = opts.samples;
    po.seed = opts.seed ^ 0xa0d17ULL;  // independent sampling stream
    po.context = design.fault_span;
    for (int j = 0; j < cg.graph.num_nodes(); ++j) {
      std::vector<std::size_t> expected;
      for (int e : cg.graph.in_edges(j)) {
        expected.push_back(
            static_cast<std::size_t>(cg.graph.edge(e).payload));
      }
      std::vector<std::size_t> got =
          report.node_orders[static_cast<std::size_t>(j)];
      auto sorted_expected = expected;
      auto sorted_got = got;
      std::sort(sorted_expected.begin(), sorted_expected.end());
      std::sort(sorted_got.begin(), sorted_got.end());
      if (sorted_expected != sorted_got) {
        problems.push_back("order at node " + std::to_string(j) +
                           " is not a permutation of its in-edge actions");
        continue;
      }
      for (std::size_t b = 1; b < got.size(); ++b) {
        for (std::size_t a = 0; a < b; ++a) {
          const int cid = design.program.action(got[a]).constraint_id();
          if (cid < 0 ||
              static_cast<std::size_t>(cid) >= design.invariant.size()) {
            problems.push_back("order references unbound action");
            continue;
          }
          const auto& c = design.invariant.at(static_cast<std::size_t>(cid));
          const auto pr = check_preserves(
              design.program, design.program.action(got[b]), c.fn, po);
          if (!pr.preserves) {
            problems.push_back(
                "order at node " + std::to_string(j) + ": action '" +
                design.program.action(got[b]).name() +
                "' does not preserve preceding constraint '" + c.name + "'");
          }
        }
      }
    }
  }
  return problems;
}

}  // namespace nonmask
