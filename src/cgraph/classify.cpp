#include "cgraph/classify.hpp"

#include "graphlib/analysis.hpp"

namespace nonmask {

const char* to_string(GraphShape shape) noexcept {
  switch (shape) {
    case GraphShape::kOutTree: return "out-tree";
    case GraphShape::kSelfLooping: return "self-looping";
    case GraphShape::kCyclic: return "cyclic";
  }
  return "?";
}

GraphShape classify(const ConstraintGraph& cg) {
  if (is_out_tree(cg.graph)) return GraphShape::kOutTree;
  if (is_self_looping(cg.graph)) return GraphShape::kSelfLooping;
  return GraphShape::kCyclic;
}

std::optional<std::vector<int>> constraint_graph_ranks(
    const ConstraintGraph& cg) {
  return node_ranks(cg.graph);
}

}  // namespace nonmask
