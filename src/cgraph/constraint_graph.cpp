#include "cgraph/constraint_graph.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_set>

namespace nonmask {

namespace {

/// Union-find over variable indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// The variables an action touches.
std::vector<VarId> touched(const Action& a) {
  std::vector<VarId> out = a.reads();
  out.insert(out.end(), a.writes().begin(), a.writes().end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

ConstraintGraphResult finish_build(const Program& program,
                                   const std::vector<std::size_t>& actions,
                                   std::vector<int> var_node, int num_nodes) {
  ConstraintGraphResult result;
  ConstraintGraph& cg = result.graph;
  cg.var_node = std::move(var_node);
  cg.node_vars.assign(static_cast<std::size_t>(num_nodes), {});
  for (std::uint32_t v = 0; v < program.num_variables(); ++v) {
    const int node = cg.var_node[v];
    if (node >= 0) cg.node_vars[static_cast<std::size_t>(node)].push_back(VarId(v));
  }
  cg.graph.resize(num_nodes);
  cg.actions = actions;

  for (std::size_t idx : actions) {
    const Action& a = program.action(idx);
    if (a.writes().empty()) {
      result.error = "action '" + a.name() + "' writes no variables";
      return result;
    }
    // Target node w: the unique node containing all writes.
    const int w = cg.var_node[a.writes().front().index()];
    for (VarId wr : a.writes()) {
      if (cg.var_node[wr.index()] != w) {
        result.error = "action '" + a.name() +
                       "' writes variables in two different nodes";
        return result;
      }
    }
    // Source node v: the node of the reads outside w (or w for self-loops).
    int v = w;
    for (VarId rd : a.reads()) {
      const int node = cg.var_node[rd.index()];
      if (node == w) continue;
      if (v != w && node != v) {
        result.error = "action '" + a.name() +
                       "' reads variables from more than two nodes";
        return result;
      }
      v = node;
    }
    cg.graph.add_edge(v, w, static_cast<int>(idx));
  }

  // Set dot labels for diagnostics.
  for (int n = 0; n < num_nodes; ++n) {
    cg.graph.set_node_label(n, cg.describe_node(program, n));
  }
  result.ok = true;
  return result;
}

}  // namespace

std::string ConstraintGraph::describe_node(const Program& p, int node) const {
  std::ostringstream out;
  out << "{";
  const auto& vars = node_vars.at(static_cast<std::size_t>(node));
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i != 0) out << ", ";
    out << p.variable(vars[i]).name;
  }
  out << "}";
  return out.str();
}

ConstraintGraphResult build_constraint_graph(
    const Program& program, const std::vector<std::size_t>& actions,
    const std::vector<std::vector<VarId>>& partition) {
  ConstraintGraphResult result;
  std::vector<int> var_node(program.num_variables(), -1);
  for (std::size_t n = 0; n < partition.size(); ++n) {
    for (VarId v : partition[n]) {
      if (v.index() >= program.num_variables()) {
        result.error = "partition names an unknown variable";
        return result;
      }
      if (var_node[v.index()] != -1) {
        result.error = "variable '" + program.variable(v).name +
                       "' appears in two partition groups";
        return result;
      }
      var_node[v.index()] = static_cast<int>(n);
    }
  }
  for (std::size_t idx : actions) {
    for (VarId v : touched(program.action(idx))) {
      if (var_node[v.index()] == -1) {
        result.error = "variable '" + program.variable(v).name +
                       "' used by action '" + program.action(idx).name() +
                       "' is not covered by the partition";
        return result;
      }
    }
  }
  return finish_build(program, actions, std::move(var_node),
                      static_cast<int>(partition.size()));
}

ConstraintGraphResult infer_constraint_graph(
    const Program& program, const std::vector<std::size_t>& actions) {
  UnionFind uf(program.num_variables());

  // Merge each action's write set.
  for (std::size_t idx : actions) {
    const Action& a = program.action(idx);
    for (std::size_t i = 1; i < a.writes().size(); ++i) {
      uf.unite(a.writes()[0].index(), a.writes()[i].index());
    }
  }
  // Merge each action's residual read set (reads outside the write node)
  // until fixpoint: later write-merges can change residuals.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t idx : actions) {
      const Action& a = program.action(idx);
      if (a.writes().empty()) continue;
      const std::size_t wroot = uf.find(a.writes()[0].index());
      std::size_t first_residual = static_cast<std::size_t>(-1);
      for (VarId rd : a.reads()) {
        const std::size_t r = uf.find(rd.index());
        if (r == wroot) continue;
        if (first_residual == static_cast<std::size_t>(-1)) {
          first_residual = r;
        } else if (r != first_residual) {
          uf.unite(r, first_residual);
          changed = true;
        }
      }
    }
  }

  // Number the nodes: only variables touched by some action get a node.
  std::vector<bool> used(program.num_variables(), false);
  for (std::size_t idx : actions) {
    for (VarId v : touched(program.action(idx))) used[v.index()] = true;
  }
  std::vector<int> var_node(program.num_variables(), -1);
  std::vector<int> root_node(program.num_variables(), -1);
  int num_nodes = 0;
  for (std::uint32_t v = 0; v < program.num_variables(); ++v) {
    if (!used[v]) continue;
    const std::size_t root = uf.find(v);
    if (root_node[root] == -1) root_node[root] = num_nodes++;
    var_node[v] = root_node[root];
  }
  return finish_build(program, actions, std::move(var_node), num_nodes);
}

ConstraintGraphResult infer_constraint_graph(const Program& program) {
  return infer_constraint_graph(
      program, program.actions_of_kind(ActionKind::kConvergence));
}

}  // namespace nonmask
