// Constraint-graph shape classification, driving which theorem applies:
//   out-tree      -> Theorem 1 (Section 5)
//   self-looping  -> Theorem 2 (Section 6)
//   cyclic        -> Theorem 3 via layering (Section 7)
#pragma once

#include <optional>
#include <vector>

#include "cgraph/constraint_graph.hpp"

namespace nonmask {

enum class GraphShape {
  kOutTree,      ///< weakly connected, unique root, in-degree one elsewhere
  kSelfLooping,  ///< no cycle of length > 1 (out-trees excluded)
  kCyclic,       ///< has a cycle of length > 1
};

const char* to_string(GraphShape shape) noexcept;

/// The strongest shape the graph satisfies.
GraphShape classify(const ConstraintGraph& cg);

/// Node ranks per the proofs of Theorems 1-2 (nullopt when cyclic).
std::optional<std::vector<int>> constraint_graph_ranks(
    const ConstraintGraph& cg);

}  // namespace nonmask
