// Certificate auditing.
//
// The theorem validators emit certificates (node ranks, per-node linear
// orders) alongside their verdicts. A skeptical consumer can re-check a
// certificate *independently of the validator's code path*: ranks must
// satisfy the defining recurrence over the graph's edges, orders must be
// permutations of each node's in-edge actions whose pairwise preserves
// obligations re-verify. This is the classic checker-of-the-checker layer:
// a bug in the validators cannot silently certify a design without also
// forging a self-consistent certificate.
#pragma once

#include <string>
#include <vector>

#include "cgraph/constraint_graph.hpp"
#include "cgraph/theorems.hpp"

namespace nonmask {

/// Audit a report produced by validate_theorem1/2/3 against the constraint
/// graph it was computed from. Returns human-readable problems (empty =
/// certificate verifies). Reports that do not apply audit trivially.
///
/// Layered (Theorem 3) reports carry their layer partition in
/// report.layers; for those the audit re-checks the layer structure
/// instead of the per-node order mapping: the layers must partition the
/// design's convergence actions, every per-layer constraint graph must be
/// free of cycles of length > 1, and the preserves-obligations between
/// layers (closure actions and higher-layer convergence actions preserve
/// lower-layer constraints under the layer context) must re-verify on an
/// independent sampling stream.
std::vector<std::string> audit_certificate(const Design& design,
                                           const ConstraintGraph& cg,
                                           const TheoremReport& report,
                                           const ValidationOptions& opts = {});

}  // namespace nonmask
