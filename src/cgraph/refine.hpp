// Refined constraint graphs (Section 7).
//
// The paper observes the constraint-graph definition is sometimes coarser
// than need be, and lists refinements for cyclic graphs:
//   (1) restrict to a subset of states R — an edge whose constraint is
//       true at every state in R can be ignored when reasoning about R;
//   (2) partition the convergence actions hierarchically (Theorem 3).
// This module implements both directions mechanically:
//   - restrict_constraint_graph drops the edges of constraints that hold
//     throughout R (checked exhaustively or by sampling), re-classifying
//     the remainder;
//   - suggest_layers searches for a Theorem-3 layering automatically, by
//     topologically ordering the inter-constraint "breaks" relation.
#pragma once

#include <optional>
#include <vector>

#include "cgraph/constraint_graph.hpp"
#include "cgraph/theorems.hpp"
#include "core/candidate.hpp"

namespace nonmask {

struct RestrictedGraph {
  ConstraintGraph graph;            ///< same nodes; surviving edges only
  std::vector<std::size_t> dropped;  ///< action indices whose edges vanished
};

/// Drop the edges of convergence actions whose constraint holds at every
/// state of R (within the fault-span if the design has one). The surviving
/// graph is what the paper's Section 7 "restriction to R" reasons about.
RestrictedGraph restrict_constraint_graph(const Design& design,
                                          const ConstraintGraph& cg,
                                          const PredicateFn& R,
                                          const ValidationOptions& opts = {});

/// Heuristic Theorem-3 layering: compute, for each pair of convergence
/// actions (a, b) with distinct constraints, whether a can violate b's
/// constraint ("a breaks b"); condense the breaks-digraph into strongly
/// connected components and emit them in reverse topological order, so
/// that later layers never break earlier ones. Returns nullopt when any
/// within-component pair breaks each other across different target nodes
/// (no hierarchy exists under this heuristic).
std::optional<std::vector<std::vector<std::size_t>>> suggest_layers(
    const Design& design, const ValidationOptions& opts = {});

}  // namespace nonmask
