// Constraint graphs (Section 4).
//
// A constraint graph of a set q of convergence actions is a directed graph
// with one edge per action, where
//   (i)  nodes are labeled with mutually exclusive variable sets, and
//   (ii) the edge of action ac runs v -> w with writes(ac) ⊆ label(w) and
//        reads(ac) ⊆ label(v) ∪ label(w).
// Because constraints and convergence actions are in bijection, the edge of
// an action is also "the edge of its constraint".
//
// Construction modes:
//   - explicit: the designer declares the node partition (the paper's
//     usage), and we verify conditions (i)/(ii);
//   - inferred: union-find merges each action's write set into one node and
//     each action's residual read set into one node, yielding the finest
//     partition our rules can justify. Inference can be coarser than a
//     hand-chosen partition but never unsound.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/program.hpp"
#include "graphlib/digraph.hpp"

namespace nonmask {

struct ConstraintGraph {
  /// node -> the variables labeling it.
  std::vector<std::vector<VarId>> node_vars;
  /// VarId index -> node (or -1 when the variable appears in no action).
  std::vector<int> var_node;
  /// The graph; edge payload = action index into the program.
  Digraph graph;
  /// The convergence action indices, in edge order (edge i <-> actions[i]).
  std::vector<std::size_t> actions;

  int node_of(VarId v) const { return var_node.at(v.index()); }

  /// Pretty node label like "{x, y}".
  std::string describe_node(const Program& p, int node) const;
};

struct ConstraintGraphResult {
  bool ok = false;
  ConstraintGraph graph;
  std::string error;
};

/// Build a constraint graph for the given convergence actions with an
/// explicit node partition (list of variable groups; groups must be
/// disjoint and cover every variable read or written by the actions).
ConstraintGraphResult build_constraint_graph(
    const Program& program, const std::vector<std::size_t>& actions,
    const std::vector<std::vector<VarId>>& partition);

/// Infer a node partition from the actions' declared read/write sets and
/// build the graph. Fails only when an action writes no variables.
ConstraintGraphResult infer_constraint_graph(
    const Program& program, const std::vector<std::size_t>& actions);

/// Convenience: all convergence actions of the program.
ConstraintGraphResult infer_constraint_graph(const Program& program);

}  // namespace nonmask
