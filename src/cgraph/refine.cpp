#include "cgraph/refine.hpp"

#include <algorithm>

#include "checker/preserves.hpp"
#include "graphlib/analysis.hpp"
#include "util/rng.hpp"

namespace nonmask {

namespace {

/// Does `test` hold at every state (exhaustive over opts.space, else
/// sampled)?
template <typename TestFn>
bool holds_universally(const Design& design, TestFn test,
                       const ValidationOptions& opts) {
  if (opts.space != nullptr) {
    State s(design.program.num_variables());
    for (std::uint64_t code = 0; code < opts.space->size(); ++code) {
      opts.space->decode_into(code, s);
      if (!test(s)) return false;
    }
    return true;
  }
  Rng rng(opts.seed);
  for (std::uint64_t i = 0; i < opts.samples; ++i) {
    const State s = design.program.random_state(rng);
    if (!test(s)) return false;
  }
  return true;
}

}  // namespace

RestrictedGraph restrict_constraint_graph(const Design& design,
                                          const ConstraintGraph& cg,
                                          const PredicateFn& R,
                                          const ValidationOptions& opts) {
  RestrictedGraph out;
  out.graph.node_vars = cg.node_vars;
  out.graph.var_node = cg.var_node;
  out.graph.graph.resize(cg.graph.num_nodes());
  for (int n = 0; n < cg.graph.num_nodes(); ++n) {
    out.graph.graph.set_node_label(n, cg.graph.node_label(n));
  }

  const PredicateFn T = design.fault_span;
  for (int e = 0; e < cg.graph.num_edges(); ++e) {
    const auto& edge = cg.graph.edge(e);
    const auto idx = static_cast<std::size_t>(edge.payload);
    const int cid = design.program.action(idx).constraint_id();
    bool always_holds = false;
    if (cid >= 0 && static_cast<std::size_t>(cid) < design.invariant.size()) {
      const PredicateFn c = design.invariant.at(
          static_cast<std::size_t>(cid)).fn;
      always_holds = holds_universally(
          design,
          [&R, &T, &c](const State& s) { return !(R(s) && T(s)) || c(s); },
          opts);
    }
    if (always_holds) {
      out.dropped.push_back(idx);
    } else {
      out.graph.graph.add_edge(edge.from, edge.to, edge.payload);
      out.graph.actions.push_back(idx);
    }
  }
  return out;
}

std::optional<std::vector<std::vector<std::size_t>>> suggest_layers(
    const Design& design, const ValidationOptions& opts) {
  const auto conv =
      design.program.actions_of_kind(ActionKind::kConvergence);
  const std::size_t k = conv.size();
  if (k == 0) return std::nullopt;

  PreservesOptions po;
  po.space = opts.space;
  po.samples = opts.samples;
  po.seed = opts.seed;
  po.context = design.fault_span;

  // breaks[i][j]: action conv[i] can violate conv[j]'s constraint.
  std::vector<std::vector<bool>> breaks(k, std::vector<bool>(k, false));
  for (std::size_t i = 0; i < k; ++i) {
    const Action& a = design.program.action(conv[i]);
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const int cid = design.program.action(conv[j]).constraint_id();
      if (cid < 0 ||
          static_cast<std::size_t>(cid) >= design.invariant.size()) {
        return std::nullopt;  // unbound action: no layering derivable
      }
      const auto& c = design.invariant.at(static_cast<std::size_t>(cid));
      breaks[i][j] =
          !check_preserves(design.program, a, c.fn, po).preserves;
    }
  }

  // SCC condensation of the breaks digraph (edge i -> j when i breaks j,
  // i.e. layer(i) <= layer(j)); components in topological order are the
  // layers.
  Digraph g(static_cast<int>(k));
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (breaks[i][j]) g.add_edge(static_cast<int>(i), static_cast<int>(j));
    }
  }
  const auto scc = tarjan_scc(g);

  // Within one component, mutual breaking across *different* target nodes
  // cannot be fixed by per-node linear orders: no layering exists here.
  const auto cg = infer_constraint_graph(design.program, conv);
  if (!cg.ok) return std::nullopt;
  auto target_node = [&](std::size_t i) {
    return cg.graph.node_of(design.program.action(conv[i]).writes().front());
  };
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      if (scc.component[i] == scc.component[j] && breaks[i][j] &&
          target_node(i) != target_node(j)) {
        return std::nullopt;
      }
    }
  }

  // Tarjan emits components in reverse topological order of the
  // condensation; reversing gives sources (breakers) first = lowest layers.
  std::vector<std::vector<std::size_t>> layers(
      static_cast<std::size_t>(scc.num_components));
  for (std::size_t i = 0; i < k; ++i) {
    const auto comp = static_cast<std::size_t>(
        scc.num_components - 1 - scc.component[i]);
    layers[comp].push_back(conv[i]);
  }
  return layers;
}

}  // namespace nonmask
