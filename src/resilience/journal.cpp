#include "resilience/journal.hpp"

#include <cstdint>
#include <fstream>

#include "obs/json.hpp"

namespace nonmask {

namespace {

void append_bool(std::string& out, const char* key, bool value) {
  out += ",\"";
  out += key;
  out += value ? "\":true" : "\":false";
}

/// Locate `"key":` in `line` and parse the unsigned integer after it.
bool find_u64(const std::string& line, const char* key, std::uint64_t* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  std::uint64_t v = 0;
  for (; i < line.size() && line[i] >= '0' && line[i] <= '9'; ++i) {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
  }
  *out = v;
  return true;
}

bool find_bool(const std::string& line, const char* key, bool* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  if (line.compare(pos + needle.size(), 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (line.compare(pos + needle.size(), 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

/// Parse the JSON string value after `"key":"`, undoing json_escape. Only
/// the escapes our writer emits (\" \\ \n \r \t \uXXXX controls) appear.
bool find_string(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  out->clear();
  for (std::size_t i = pos + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= line.size()) return false;
    switch (line[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (i + 4 >= line.size()) return false;
        unsigned code = 0;
        for (int d = 0; d < 4; ++d) {
          const char h = line[i + 1 + static_cast<std::size_t>(d)];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        out->push_back(static_cast<char>(code));
        i += 4;
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated string: torn line
}

}  // namespace

std::string to_jsonl(const std::string& design_name,
                     const TrialRecord& record) {
  std::string out = "{\"design\":\"";
  out += obs::json_escape(design_name);
  out += "\",\"trial\":" + std::to_string(record.trial);
  out += ",\"daemon_seed\":" + std::to_string(record.seeds.daemon);
  out += ",\"start_seed\":" + std::to_string(record.seeds.start);
  append_bool(out, "converged", record.outcome.converged);
  append_bool(out, "deadlocked", record.outcome.deadlocked);
  append_bool(out, "exhausted", record.outcome.exhausted);
  append_bool(out, "timed_out", record.outcome.timed_out);
  append_bool(out, "failed", record.outcome.failed);
  out += ",\"attempts\":" + std::to_string(record.attempts);
  out += ",\"steps\":" + std::to_string(record.outcome.steps);
  out += ",\"rounds\":" + std::to_string(record.outcome.rounds);
  out += ",\"moves\":" + std::to_string(record.outcome.moves);
  if (!record.error.empty()) {
    out += ",\"error\":\"";
    out += obs::json_escape(record.error);
    out += "\"";
  }
  out += "}";
  return out;
}

std::optional<TrialRecord> parse_trial_jsonl(const std::string& line,
                                             std::string* design_name) {
  // A complete line is one JSON object; a torn tail from a killed process
  // fails the brace test or one of the required-field lookups below.
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  TrialRecord record;
  std::string design;
  std::uint64_t trial = 0, attempts = 0;
  if (!find_string(line, "design", &design)) return std::nullopt;
  if (!find_u64(line, "trial", &trial)) return std::nullopt;
  if (!find_u64(line, "daemon_seed", &record.seeds.daemon)) return std::nullopt;
  if (!find_u64(line, "start_seed", &record.seeds.start)) return std::nullopt;
  if (!find_bool(line, "converged", &record.outcome.converged)) return std::nullopt;
  if (!find_bool(line, "deadlocked", &record.outcome.deadlocked)) return std::nullopt;
  if (!find_bool(line, "exhausted", &record.outcome.exhausted)) return std::nullopt;
  if (!find_bool(line, "timed_out", &record.outcome.timed_out)) return std::nullopt;
  if (!find_bool(line, "failed", &record.outcome.failed)) return std::nullopt;
  if (!find_u64(line, "attempts", &attempts)) return std::nullopt;
  if (!find_u64(line, "steps", &record.outcome.steps)) return std::nullopt;
  if (!find_u64(line, "rounds", &record.outcome.rounds)) return std::nullopt;
  if (!find_u64(line, "moves", &record.outcome.moves)) return std::nullopt;
  find_string(line, "error", &record.error);  // optional
  record.trial = static_cast<std::size_t>(trial);
  record.attempts = static_cast<std::size_t>(attempts);
  if (design_name != nullptr) *design_name = std::move(design);
  return record;
}

JournalPrefix load_journal_prefix(const std::string& path,
                                  const std::string& design_name,
                                  const std::vector<TrialSeeds>&
                                      expected_seeds) {
  JournalPrefix prefix;
  std::ifstream in(path);
  if (!in) return prefix;
  std::string line;
  while (prefix.records.size() < expected_seeds.size() &&
         std::getline(in, line)) {
    std::string design;
    const auto record = parse_trial_jsonl(line, &design);
    if (!record) break;
    const std::size_t i = prefix.records.size();
    if (design != design_name || record->trial != i ||
        record->seeds.daemon != expected_seeds[i].daemon ||
        record->seeds.start != expected_seeds[i].start) {
      break;
    }
    prefix.records.push_back(*record);
    prefix.lines.push_back(line);
  }
  return prefix;
}

}  // namespace nonmask
