// Resilient trial execution: cooperative watchdog deadlines and bounded
// retry-with-backoff around run_trial.
//
// The watchdog is cooperative: the deadline is checked between engine steps
// (piggybacked on the perturb hook, every 128 steps), so a runaway trial is
// interrupted at the next step boundary — never mid-action — and the worker
// thread moves straight on to the next trial instead of hanging the pool. A
// trial stuck *inside* one predicate or action evaluation cannot be
// interrupted; the shipped protocols are all bounded per step.
#pragma once

#include <chrono>
#include <stdexcept>
#include <string>

#include "engine/experiment.hpp"

namespace nonmask {

/// Thrown by the watchdog-wrapped perturb hook when a trial exceeds its
/// deadline; callers of run_trial_resilient never see it.
class TrialDeadlineExceeded : public std::runtime_error {
 public:
  explicit TrialDeadlineExceeded(std::chrono::milliseconds deadline)
      : std::runtime_error("trial exceeded watchdog deadline of " +
                           std::to_string(deadline.count()) + " ms") {}
};

struct TrialPolicy {
  /// Wall-clock budget per attempt; zero = no watchdog.
  std::chrono::milliseconds deadline{0};
  /// Retries for trials that throw (factories, predicates, allocation). A
  /// deadline hit is *not* retried: a timed-out attempt is deterministic
  /// given its seeds and would time out again.
  std::size_t max_retries = 0;
  /// Sleep before retry r (0-based) is backoff << min(r, 10).
  std::chrono::milliseconds backoff{0};
};

struct ResilientOutcome {
  TrialOutcome outcome;
  std::size_t attempts = 1;  ///< 1 + retries consumed
  std::string error;         ///< last failure message, when any attempt failed
};

/// run_trial with `policy` applied. Never lets a trial failure escape: a
/// deadline hit yields outcome.timed_out, exhausted retries yield
/// outcome.failed (both with the convergence flags false and the error
/// message captured). Same purity contract as run_trial otherwise.
ResilientOutcome run_trial_resilient(const Design& design,
                                     const ConvergenceExperiment& config,
                                     TrialSeeds seeds,
                                     const TrialPolicy& policy = {});

}  // namespace nonmask
