// Campaign checkpoint journal.
//
// The per-trial JSONL stream doubles as a durable checkpoint: records are
// written in trial order and flushed line-by-line, so a campaign killed at
// any moment leaves a valid prefix plus at most one torn final line. Resume
// loads the longest prefix whose lines parse, carry consecutive trial
// numbers, and match the expected design name and derived seed stream —
// anything else (truncation, a journal from a different seed) simply
// shortens the replayed prefix, never corrupts it.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "engine/experiment.hpp"

namespace nonmask {

/// One campaign trial: its index, the seeds it consumed, its outcome, and
/// the resilience bookkeeping (attempts consumed, last error message).
struct TrialRecord {
  std::size_t trial = 0;
  TrialSeeds seeds;
  TrialOutcome outcome;
  std::size_t attempts = 1;  ///< 1 + retries consumed
  std::string error;         ///< last failure message when timed_out/failed
};

/// One JSONL line (no trailing newline) for a trial record.
std::string to_jsonl(const std::string& design_name,
                     const TrialRecord& record);

/// Parse a line produced by to_jsonl; `design_name` (optional out) receives
/// the record's design field. Returns nullopt for malformed or torn lines.
std::optional<TrialRecord> parse_trial_jsonl(const std::string& line,
                                             std::string* design_name =
                                                 nullptr);

struct JournalPrefix {
  std::vector<TrialRecord> records;  ///< trials 0..k-1, in order
  std::vector<std::string> lines;    ///< the same records, verbatim bytes
};

/// Longest valid prefix of the journal at `path`: line i must parse, carry
/// trial == i, and match `design_name` and `expected_seeds[i]`. A missing
/// file yields an empty prefix.
JournalPrefix load_journal_prefix(const std::string& path,
                                  const std::string& design_name,
                                  const std::vector<TrialSeeds>&
                                      expected_seeds);

}  // namespace nonmask
