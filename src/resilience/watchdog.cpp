#include "resilience/watchdog.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"

namespace nonmask {

namespace {

/// `config` with the perturb factory wrapped so every produced hook also
/// polls the wall clock and throws TrialDeadlineExceeded past `deadline`.
/// The deadline clock starts when the hook is built, i.e. per attempt.
ConvergenceExperiment with_deadline(const ConvergenceExperiment& config,
                                    std::chrono::milliseconds deadline) {
  ConvergenceExperiment guarded = config;
  const auto user = config.make_perturb;
  guarded.make_perturb = [user, deadline](const Program& p) {
    std::function<void(std::size_t, State&)> inner;
    if (user) inner = user(p);
    const auto expires = std::chrono::steady_clock::now() + deadline;
    return [inner, expires, deadline](std::size_t step, State& s) {
      if (inner) inner(step, s);
      if ((step & 127) == 0 &&
          std::chrono::steady_clock::now() >= expires) {
        throw TrialDeadlineExceeded(deadline);
      }
    };
  };
  return guarded;
}

}  // namespace

ResilientOutcome run_trial_resilient(const Design& design,
                                     const ConvergenceExperiment& config,
                                     TrialSeeds seeds,
                                     const TrialPolicy& policy) {
  const ConvergenceExperiment* cfg = &config;
  ConvergenceExperiment guarded;
  if (policy.deadline.count() > 0) {
    guarded = with_deadline(config, policy.deadline);
    cfg = &guarded;
  }

  ResilientOutcome result;
  for (std::size_t attempt = 0;; ++attempt) {
    result.attempts = attempt + 1;
    try {
      result.outcome = run_trial(design, *cfg, seeds);
      result.error.clear();
      return result;
    } catch (const TrialDeadlineExceeded& e) {
      result.outcome = TrialOutcome{};
      result.outcome.timed_out = true;
      result.error = e.what();
      if (obs::Metrics::enabled()) {
        obs::Registry::instance().counter("resilience.trial_timeouts").add(1);
      }
      return result;
    } catch (const std::exception& e) {
      result.error = e.what();
    } catch (...) {
      result.error = "unknown exception";
    }
    if (obs::Metrics::enabled()) {
      obs::Registry::instance().counter("resilience.trial_errors").add(1);
    }
    if (attempt >= policy.max_retries) {
      result.outcome = TrialOutcome{};
      result.outcome.failed = true;
      return result;
    }
    if (policy.backoff.count() > 0) {
      const auto shift = std::min<std::size_t>(attempt, 10);
      std::this_thread::sleep_for(policy.backoff * (1u << shift));
    }
  }
}

}  // namespace nonmask
