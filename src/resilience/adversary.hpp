// Adversarial fault-placement search.
//
// The paper's central claim is that convergence from T to S holds under
// *any* finite fault pattern; the benign random schedules in src/faults/
// only sample typical patterns. The adversary actively hunts the placement
// (which variables, which values) that maximizes convergence time:
//
//   * Exhaustive mode (state space within budget): a greedy
//     reachability-guided search. The checker's successor primitives
//     (StateSpace + ProgramSuccessors) drive a lazy longest-path-to-S
//     evaluation over the ¬S region — exactly the worst-case central-daemon
//     convergence time from each state — and the adversary greedily applies
//     the single-variable corruption with the largest such distance, up to
//     its budget of k corruptions.
//
//   * Hill-climb mode (space too large, or forced): a seeded random-restart
//     hill-climber over placements, scoring each candidate by simulating
//     the design under a fixed-seed RandomDaemon. Non-convergence within
//     max_steps scores above every converging run.
//
// Both modes are deterministic per seed, and both report the worst trace
// found as a JSON artifact (worst_trace_json, rendered with obs::JsonWriter).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "checker/containment.hpp"
#include "core/candidate.hpp"
#include "core/state.hpp"
#include "engine/experiment.hpp"
#include "faults/schedule.hpp"

namespace nonmask {

/// A concrete fault placement: set `targets[i] := values[i]` at `at_step`.
struct FaultPlacement {
  std::vector<VarId> targets;
  std::vector<Value> values;
  std::size_t at_step = 0;

  /// The placement as a fault model / one-strike schedule.
  FaultModelPtr model() const;
  FaultSchedule schedule() const;
};

struct AdversaryOptions {
  /// Max number of variables the adversary may corrupt (clamped to the
  /// program's variable count; 0 means "all variables").
  std::size_t budget_k = 1;
  std::uint64_t seed = 1;
  /// Hill-climb shape: `restarts` random starting placements, each refined
  /// for `iterations` single-mutation steps.
  std::size_t restarts = 6;
  std::size_t iterations = 48;
  /// Simulation cap per evaluation (hill-climb mode and observed replays).
  std::size_t max_steps = 200'000;
  /// Exhaustive mode is used when the state space fits this many states.
  std::uint64_t exhaustive_budget = 1u << 20;
  /// Force the hill-climber even on small spaces (tests, comparisons).
  bool force_hill_climb = false;
};

struct AdversaryResult {
  FaultPlacement placement;
  /// Exhaustive mode: the longest-path-to-S distance of the placed state —
  /// the exact worst-case central-daemon convergence time. Hill-climb mode:
  /// the best simulated objective found.
  std::uint64_t worst_case_steps = 0;
  /// The adversary found a placement from which some computation never
  /// reaches S (a ¬S cycle or deadlock); worst_case_steps is then a lower
  /// bound (hill-climb) or meaningless (exhaustive).
  bool divergence_found = false;
  /// Deterministic replay of the placement under RandomDaemon.
  TrialOutcome observed;
  bool exhaustive = false;         ///< which engine produced the result
  std::uint64_t evaluations = 0;   ///< candidate placements scored
  /// Exhaustive mode: the worst-case trace (placed state following max-
  /// distance successors down to S, capped). Hill-climb mode: empty.
  std::vector<State> worst_trace;
};

/// The legitimate state faults are placed on: the program's initial state
/// if it satisfies S, else the result of converging from it under
/// RandomDaemon (deterministic per seed).
State legitimate_state(const Design& design, const AdversaryOptions& opts);

/// Search for the fault placement maximizing convergence time.
AdversaryResult find_worst_placement(const Design& design,
                                     const AdversaryOptions& opts = {});

/// Benign baseline for comparison: convergence steps of `trials` runs, each
/// corrupting a uniformly random placement of budget_k variables at step 0
/// (non-convergence records max_steps + 1). Deterministic per seed.
std::vector<std::uint64_t> random_placement_baseline(
    const Design& design, const AdversaryOptions& opts, std::size_t trials);

/// The worst trace found, as one self-describing JSON document.
std::string worst_trace_json(const Design& design, const AdversaryResult& r);

// --- Byzantine placement search --------------------------------------------
//
// Transient adversaries hunt the corruption maximizing convergence *time*;
// a Byzantine adversary never stops, so the prize is the process set
// maximizing the containment *radius* (or abolishing containment outright).

struct ByzantinePlacementOptions {
  /// Number of Byzantine processes to place (clamped to the process count
  /// minus one — an all-Byzantine system has nothing left to contain).
  std::size_t num_byzantine = 1;
  std::uint64_t seed = 1;
  /// Exhaustive subset enumeration runs when the composed state space fits
  /// this budget and the subset count fits `exhaustive_subsets`.
  std::uint64_t exhaustive_budget = 1u << 20;
  std::uint64_t exhaustive_subsets = 4096;
  bool force_hill_climb = false;
  /// Hill-climb shape (large spaces): `restarts` random sets, each mutated
  /// `iterations` times, scored by a seeded simulation of `sim_steps` steps
  /// under a persistent ByzantineModel.
  std::size_t restarts = 4;
  std::size_t iterations = 16;
  std::size_t sim_steps = 2000;
  /// Passed through to measure_containment for exact scoring / the final
  /// report (its config picks the store backend and thread count).
  ContainmentOptions containment;
};

struct ByzantinePlacementResult {
  std::vector<int> byzantine;  ///< worst placement found (sorted)
  /// Exact containment analysis of that placement. Valid when
  /// `report_exact`; hill-climb runs on spaces past the budget leave it
  /// default-initialized except for `byzantine`.
  ContainmentReport report;
  bool report_exact = false;
  bool exhaustive = false;  ///< exhaustive subset enumeration used
  std::uint64_t evaluations = 0;
  /// Damage reaches the farthest correct process (radius == horizon): the
  /// protocol cannot contain this adversary at all.
  bool convergence_destroyed = false;
};

/// Hunt the Byzantine process set maximizing the containment radius.
/// Exhaustive on small spaces (every size-m subset, scored by
/// measure_containment; deterministic), seeded hill-climb otherwise
/// (simulation-scored; deterministic per seed). Throws
/// std::invalid_argument when the program has fewer than two processes.
ByzantinePlacementResult find_worst_byzantine_placement(
    const Design& design, const ByzantinePlacementOptions& opts = {});

/// The placement search outcome as one self-describing JSON document (the
/// containment-report artifact embeds containment_to_json when exact).
std::string byzantine_placement_json(const Design& design,
                                     const ByzantinePlacementResult& r);

}  // namespace nonmask
