#include "resilience/adversary.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "engine/simulator.hpp"
#include "faults/byzantine.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sched/daemons.hpp"
#include "store/bitset.hpp"
#include "store/facade.hpp"

namespace nonmask {

namespace {

/// Lazy longest-path-to-S over the transition graph (central daemon: every
/// enabled action is a successor). dist(s) = 0 when S holds, else
/// 1 + max over successors; a ¬S deadlock or a ¬S cycle yields kDiverges
/// (some maximal computation never reaches S). Memoized per code; finite
/// memo values are safe because any cycle through a state is discovered
/// while that state is still on the DFS stack.
class WorstCaseDistance {
 public:
  static constexpr std::uint64_t kDiverges = ~std::uint64_t{0};

  WorstCaseDistance(const StateSpace& space, PredicateFn S)
      : space_(&space),
        S_(std::move(S)),
        succ_(space, non_fault_actions(space.program())),
        dist_(space.size(), kUnset),
        on_stack_(space.size()),
        scratch_(space.program().num_variables()) {}

  std::uint64_t eval(std::uint64_t root) {
    if (dist_[root] != kUnset) return dist_[root];
    struct Frame {
      std::uint64_t code;
      std::vector<std::uint64_t> succs;
      std::size_t next = 0;
      std::uint64_t best = 0;  // max resolved successor distance
    };
    std::vector<Frame> stack;
    push(stack, root);
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (dist_[f.code] != kUnset) {  // resolved as an S state on push
        stack.pop_back();
        continue;
      }
      if (f.next < f.succs.size()) {
        const std::uint64_t child = f.succs[f.next++];
        if (dist_[child] != kUnset) {
          f.best = std::max(f.best, dist_[child]);
        } else if (on_stack_[child] != 0) {
          f.best = kDiverges;  // back edge: a ¬S cycle through child
        } else {
          push(stack, child);
        }
        continue;
      }
      // All children resolved: a ¬S deadlock (no successors) diverges,
      // otherwise 1 + the worst child (saturating at kDiverges).
      dist_[f.code] = f.succs.empty() || f.best == kDiverges
                          ? kDiverges
                          : f.best + 1;
      on_stack_.set(f.code, 0);
      stack.pop_back();
      if (!stack.empty()) {
        Frame& parent = stack.back();
        parent.best = std::max(parent.best, dist_[f.code]);
      }
    }
    return dist_[root];
  }

  /// First successor (in the checker's sorted order) attaining the max
  /// distance; returns false at S states and dead ends.
  bool worst_successor(std::uint64_t code, std::uint64_t* out) {
    std::vector<std::uint64_t> succs;
    succ_.successors(code, succs);
    bool found = false;
    std::uint64_t best = 0;
    for (std::uint64_t child : succs) {
      const std::uint64_t d = eval(child);
      if (!found || d > best) {
        found = true;
        best = d;
        *out = child;
      }
    }
    return found;
  }

 private:
  static constexpr std::uint64_t kUnset = ~std::uint64_t{0} - 1;

  template <typename Stack>
  void push(Stack& stack, std::uint64_t code) {
    space_->decode_into(code, scratch_);
    if (S_(scratch_)) {
      dist_[code] = 0;
      return;
    }
    stack.push_back({code, {}, 0, 0});
    succ_.successors(code, stack.back().succs);
    on_stack_.set(code, 1);
  }

  const StateSpace* space_;
  PredicateFn S_;
  // Successor enumeration goes through the store facade's source (same
  // sorted-distinct contract as ProgramSuccessors) and the on-stack marks
  // live at 2 bits/state, so the memo's footprint is dominated by dist_
  // alone even at large exhaustive budgets.
  store::StoreBackedSuccessors succ_;
  std::vector<std::uint64_t> dist_;
  store::TwoBitArray on_stack_;
  State scratch_;
};

std::uint64_t derived_seed(std::uint64_t seed, std::uint64_t salt) {
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (salt + 1)));
  return sm.next();
}

TrialOutcome replay_placement(const Design& design, const State& base,
                              const FaultPlacement& placement,
                              const AdversaryOptions& opts) {
  State start = base;
  for (std::size_t i = 0; i < placement.targets.size(); ++i) {
    start.set(placement.targets[i],
              design.program.variable(placement.targets[i])
                  .clamp(placement.values[i]));
  }
  RandomDaemon daemon(derived_seed(opts.seed, 1));
  RunOptions run_opts;
  run_opts.max_steps = opts.max_steps;
  const RunResult r = converge(design, std::move(start), daemon, run_opts);
  TrialOutcome outcome;
  outcome.converged = r.converged;
  outcome.deadlocked = r.deadlocked;
  outcome.exhausted = r.exhausted;
  outcome.steps = r.steps;
  outcome.rounds = r.rounds;
  outcome.moves = r.moves;
  return outcome;
}

/// Hill-climb objective: convergence steps, with non-convergence scoring
/// above every converging run.
std::uint64_t objective(const TrialOutcome& o, std::size_t max_steps) {
  return o.converged ? o.steps : static_cast<std::uint64_t>(max_steps) + 1;
}

std::size_t resolve_budget(const Design& design, const AdversaryOptions& opts) {
  const std::size_t n = design.program.num_variables();
  if (opts.budget_k == 0) return n;
  return std::min(opts.budget_k, n);
}

FaultPlacement random_placement(const Design& design, std::size_t k,
                                Rng& rng) {
  const std::size_t n = design.program.num_variables();
  std::vector<std::uint32_t> vars(n);
  for (std::uint32_t i = 0; i < n; ++i) vars[i] = i;
  // Partial Fisher-Yates: the first k entries are the victims.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.below(n - i);
    std::swap(vars[i], vars[j]);
  }
  FaultPlacement placement;
  for (std::size_t i = 0; i < k; ++i) {
    const VarId id(vars[i]);
    const auto& spec = design.program.variable(id);
    placement.targets.push_back(id);
    placement.values.push_back(
        static_cast<Value>(rng.range(spec.lo, spec.hi)));
  }
  return placement;
}

AdversaryResult greedy_adversary(const Design& design,
                                 const AdversaryOptions& opts,
                                 std::size_t k) {
  StateSpace space(design.program, opts.exhaustive_budget);
  WorstCaseDistance wc(space, design.S());
  AdversaryResult result;
  result.exhaustive = true;
  result.placement.at_step = 0;

  State cur = legitimate_state(design, opts);
  std::uint64_t cur_dist = wc.eval(space.encode(cur));
  for (std::size_t round = 0; round < k; ++round) {
    bool improved = false;
    VarId best_var;
    Value best_val = 0;
    std::uint64_t best_dist = cur_dist;
    for (std::uint32_t v = 0; v < design.program.num_variables(); ++v) {
      const VarId id(v);
      const auto& spec = design.program.variable(id);
      const Value old = cur.get(id);
      for (Value val = spec.lo; val <= spec.hi; ++val) {
        if (val == old) continue;
        cur.set(id, val);
        const std::uint64_t d = wc.eval(space.encode(cur));
        ++result.evaluations;
        // Strict improvement with first-wins ties keeps the search
        // deterministic and stops it from burning budget on no-ops.
        if (d > best_dist && best_dist != WorstCaseDistance::kDiverges) {
          improved = true;
          best_var = id;
          best_val = val;
          best_dist = d;
        }
      }
      cur.set(id, old);
    }
    if (!improved) break;
    cur.set(best_var, best_val);
    cur_dist = best_dist;
    result.placement.targets.push_back(best_var);
    result.placement.values.push_back(best_val);
    if (cur_dist == WorstCaseDistance::kDiverges) break;
  }

  if (cur_dist == WorstCaseDistance::kDiverges) {
    result.divergence_found = true;
    result.worst_case_steps = 0;
  } else {
    result.worst_case_steps = cur_dist;
  }

  // Extract the worst trace: follow max-distance successors down to S.
  constexpr std::size_t kTraceCap = 4096;
  std::uint64_t code = space.encode(cur);
  State walker(design.program.num_variables());
  const auto S = design.S();
  for (std::size_t i = 0; i <= kTraceCap; ++i) {
    space.decode_into(code, walker);
    result.worst_trace.push_back(walker);
    if (S(walker)) break;
    std::uint64_t next = 0;
    if (!wc.worst_successor(code, &next)) break;  // ¬S deadlock
    code = next;
  }

  result.observed = replay_placement(design, legitimate_state(design, opts),
                                     result.placement, opts);
  return result;
}

AdversaryResult hill_climb_adversary(const Design& design,
                                     const AdversaryOptions& opts,
                                     std::size_t k) {
  AdversaryResult result;
  result.exhaustive = false;
  const State base = legitimate_state(design, opts);
  Rng rng(derived_seed(opts.seed, 2));

  const auto score = [&](const FaultPlacement& placement) {
    ++result.evaluations;
    return objective(replay_placement(design, base, placement, opts),
                     opts.max_steps);
  };

  FaultPlacement best;
  std::uint64_t best_score = 0;
  bool have_best = false;
  for (std::size_t restart = 0; restart < opts.restarts; ++restart) {
    FaultPlacement local = random_placement(design, k, rng);
    std::uint64_t local_score = score(local);
    for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
      FaultPlacement candidate = local;
      const std::size_t slot = rng.below(k);
      const auto& spec =
          design.program.variable(candidate.targets[slot]);
      if (k < design.program.num_variables() && rng.chance(0.3)) {
        // Re-target the slot to a variable not currently corrupted.
        VarId fresh;
        do {
          fresh = VarId(static_cast<std::uint32_t>(
              rng.below(design.program.num_variables())));
        } while (std::find(candidate.targets.begin(), candidate.targets.end(),
                           fresh) != candidate.targets.end());
        const auto& fresh_spec = design.program.variable(fresh);
        candidate.targets[slot] = fresh;
        candidate.values[slot] =
            static_cast<Value>(rng.range(fresh_spec.lo, fresh_spec.hi));
      } else {
        candidate.values[slot] =
            static_cast<Value>(rng.range(spec.lo, spec.hi));
      }
      const std::uint64_t s = score(candidate);
      if (s > local_score) {
        local = std::move(candidate);
        local_score = s;
      }
    }
    if (!have_best || local_score > best_score) {
      have_best = true;
      best = std::move(local);
      best_score = local_score;
    }
  }

  result.placement = std::move(best);
  result.placement.at_step = 0;
  result.worst_case_steps = best_score;
  result.divergence_found =
      best_score > static_cast<std::uint64_t>(opts.max_steps);
  result.observed = replay_placement(design, base, result.placement, opts);
  return result;
}

void write_state_values(obs::JsonWriter& w, const State& s) {
  w.begin_array();
  for (std::uint32_t i = 0; i < s.size(); ++i) {
    w.value(static_cast<std::int64_t>(s.get(VarId(i))));
  }
  w.end_array();
}

}  // namespace

FaultModelPtr FaultPlacement::model() const {
  return std::make_shared<TargetedCorruption>(targets, values);
}

FaultSchedule FaultPlacement::schedule() const {
  return FaultSchedule::at(model(), at_step);
}

State legitimate_state(const Design& design, const AdversaryOptions& opts) {
  State s = design.program.initial_state();
  if (design.S()(s)) return s;
  RandomDaemon daemon(derived_seed(opts.seed, 0));
  RunOptions run_opts;
  run_opts.max_steps = opts.max_steps;
  return converge(design, std::move(s), daemon, run_opts).final_state;
}

AdversaryResult find_worst_placement(const Design& design,
                                     const AdversaryOptions& opts) {
  const std::size_t k = resolve_budget(design, opts);
  const bool exhaustive =
      !opts.force_hill_climb &&
      fits_in_budget(design.program, opts.exhaustive_budget);
  AdversaryResult result = exhaustive
                               ? greedy_adversary(design, opts, k)
                               : hill_climb_adversary(design, opts, k);
  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("resilience.adversary.searches").add(1);
    registry.counter("resilience.adversary.evaluations")
        .add(result.evaluations);
  }
  return result;
}

std::vector<std::uint64_t> random_placement_baseline(
    const Design& design, const AdversaryOptions& opts, std::size_t trials) {
  const std::size_t k = resolve_budget(design, opts);
  const State base = legitimate_state(design, opts);
  Rng master(derived_seed(opts.seed, 3));
  std::vector<std::uint64_t> steps;
  steps.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    Rng placement_rng(master());
    const std::uint64_t daemon_seed = master();
    const FaultPlacement placement =
        random_placement(design, k, placement_rng);
    State start = base;
    for (std::size_t i = 0; i < placement.targets.size(); ++i) {
      start.set(placement.targets[i], placement.values[i]);
    }
    RandomDaemon daemon(daemon_seed);
    RunOptions run_opts;
    run_opts.max_steps = opts.max_steps;
    const RunResult r = converge(design, std::move(start), daemon, run_opts);
    steps.push_back(r.converged
                        ? r.steps
                        : static_cast<std::uint64_t>(opts.max_steps) + 1);
  }
  return steps;
}

namespace {

/// Score a placement by exact containment analysis: worse = containment
/// lost outright, then larger radius, then larger adversarial region; total
/// order completed by the (sorted) placement itself so ties resolve
/// deterministically.
bool containment_worse(const ContainmentReport& a, const ContainmentReport& b) {
  if (a.contained != b.contained) return !a.contained;
  if (a.radius != b.radius) return a.radius > b.radius;
  if (a.reachable_states != b.reachable_states) {
    return a.reachable_states > b.reachable_states;
  }
  return a.byzantine < b.byzantine;
}

/// Hill-climb score: sampled damage radius plus dirty-process count from a
/// seeded simulation under a persistent ByzantineModel.
struct SimScore {
  int radius = 0;
  std::uint64_t dirty = 0;
};

bool sim_worse(const SimScore& a, const SimScore& b) {
  if (a.radius != b.radius) return a.radius > b.radius;
  return a.dirty > b.dirty;
}

SimScore simulate_byzantine(const Design& design, const std::vector<int>& byz,
                            const State& reference,
                            const ByzantinePlacementOptions& opts,
                            std::uint64_t salt) {
  auto model = std::make_shared<ByzantineModel>(design.program, byz);
  const std::vector<int> dist =
      distances_from(communication_graph(design.program), byz);
  std::vector<std::uint8_t> byz_var(design.program.num_variables(), 0);
  for (VarId v : model->variables()) byz_var[v.index()] = 1;

  SimScore score;
  std::vector<std::uint8_t> dirty(dist.size(), 0);
  Rng strike_rng(derived_seed(opts.seed, salt));
  RandomDaemon daemon(derived_seed(opts.seed, salt + 1));
  RunOptions run_opts;
  run_opts.max_steps = opts.sim_steps;
  run_opts.perturb = [&](std::size_t, State& s) {
    // Account the damage the *previous* program step left behind, then let
    // the adversary strike again.
    for (std::uint32_t v = 0; v < design.program.num_variables(); ++v) {
      if (byz_var[v] != 0) continue;
      const int p = design.program.variable(VarId(v)).process;
      if (p < 0 || dirty[static_cast<std::size_t>(p)] != 0) continue;
      if (s.get(VarId(v)) != reference.get(VarId(v))) {
        dirty[static_cast<std::size_t>(p)] = 1;
        ++score.dirty;
        const int d = dist[static_cast<std::size_t>(p)];
        if (d > score.radius) score.radius = d;
      }
    }
    model->strike(design.program, s, strike_rng);
  };
  Simulator sim(design.program, daemon);
  sim.run(reference, run_opts);
  return score;
}

std::vector<int> random_subset(int num_procs, std::size_t m, Rng& rng) {
  std::vector<int> procs(static_cast<std::size_t>(num_procs));
  for (int i = 0; i < num_procs; ++i) procs[static_cast<std::size_t>(i)] = i;
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t j = i + rng.below(procs.size() - i);
    std::swap(procs[i], procs[j]);
  }
  std::vector<int> out(procs.begin(), procs.begin() + static_cast<long>(m));
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t subset_count(int n, std::size_t m, std::uint64_t cap) {
  std::uint64_t count = 1;
  for (std::size_t i = 0; i < m; ++i) {
    count = count * static_cast<std::uint64_t>(n - static_cast<int>(i)) /
            (i + 1);
    if (count > cap) return cap + 1;
  }
  return count;
}

}  // namespace

ByzantinePlacementResult find_worst_byzantine_placement(
    const Design& design, const ByzantinePlacementOptions& opts) {
  const UndirectedGraph comm = communication_graph(design.program);
  const int num_procs = comm.size();
  if (num_procs < 2) {
    throw std::invalid_argument(
        "find_worst_byzantine_placement: need >= 2 processes");
  }
  const std::size_t m = std::min<std::size_t>(
      std::max<std::size_t>(opts.num_byzantine, 1),
      static_cast<std::size_t>(num_procs - 1));

  ByzantinePlacementResult result;
  const bool exhaustive =
      !opts.force_hill_climb &&
      fits_in_budget(design.program, opts.exhaustive_budget) &&
      subset_count(num_procs, m, opts.exhaustive_subsets) <=
          opts.exhaustive_subsets;

  AdversaryOptions leg_opts;
  leg_opts.seed = opts.seed;
  const State legitimate = legitimate_state(design, leg_opts);

  if (exhaustive) {
    result.exhaustive = true;
    // Lexicographic enumeration of all size-m process subsets.
    std::vector<int> subset(m);
    for (std::size_t i = 0; i < m; ++i) subset[i] = static_cast<int>(i);
    bool have_best = false;
    while (true) {
      // Skip subsets containing a process that owns no variables (the
      // composition rejects them — nothing to corrupt).
      bool placeable = true;
      for (int p : subset) {
        bool owns = false;
        for (const auto& v : design.program.variables()) {
          if (v.process == p) {
            owns = true;
            break;
          }
        }
        if (!owns) {
          placeable = false;
          break;
        }
      }
      if (placeable) {
        ContainmentOptions copts = opts.containment;
        copts.state_budget = opts.exhaustive_budget;
        const ContainmentReport rep =
            measure_containment(design.program, subset, legitimate, copts);
        ++result.evaluations;
        if (!have_best || containment_worse(rep, result.report)) {
          have_best = true;
          result.report = rep;
          result.byzantine = rep.byzantine;
          result.report_exact = true;
        }
      }
      // Advance to the next combination.
      std::size_t i = m;
      while (i > 0 &&
             subset[i - 1] == num_procs - static_cast<int>(m - i) - 1) {
        --i;
      }
      if (i == 0) break;
      ++subset[i - 1];
      for (std::size_t j = i; j < m; ++j) subset[j] = subset[j - 1] + 1;
    }
    if (!have_best) {
      throw std::invalid_argument(
          "find_worst_byzantine_placement: no size-" + std::to_string(m) +
          " subset of processes owns variables");
    }
  } else {
    Rng rng(derived_seed(opts.seed, 4));
    std::vector<int> best;
    SimScore best_score;
    bool have_best = false;
    std::uint64_t salt = 8;
    const auto placeable = [&](const std::vector<int>& byz) {
      for (int p : byz) {
        bool owns = false;
        for (const auto& v : design.program.variables()) {
          if (v.process == p) {
            owns = true;
            break;
          }
        }
        if (!owns) return false;
      }
      return true;
    };
    for (std::size_t restart = 0; restart < opts.restarts; ++restart) {
      std::vector<int> local = random_subset(num_procs, m, rng);
      while (!placeable(local)) local = random_subset(num_procs, m, rng);
      SimScore local_score =
          simulate_byzantine(design, local, legitimate, opts, salt += 2);
      ++result.evaluations;
      for (std::size_t iter = 0; iter < opts.iterations; ++iter) {
        // Swap one member for a random outsider.
        std::vector<int> candidate = local;
        const std::size_t slot = rng.below(m);
        int fresh;
        do {
          fresh = static_cast<int>(rng.below(static_cast<std::size_t>(
              num_procs)));
        } while (std::find(candidate.begin(), candidate.end(), fresh) !=
                 candidate.end());
        candidate[slot] = fresh;
        std::sort(candidate.begin(), candidate.end());
        if (!placeable(candidate)) continue;
        const SimScore s =
            simulate_byzantine(design, candidate, legitimate, opts, salt += 2);
        ++result.evaluations;
        if (sim_worse(s, local_score)) {
          local = std::move(candidate);
          local_score = s;
        }
      }
      if (!have_best || sim_worse(local_score, best_score) ||
          (!sim_worse(best_score, local_score) && local < best)) {
        have_best = true;
        best = local;
        best_score = local_score;
      }
    }
    result.byzantine = std::move(best);
    result.report.byzantine = result.byzantine;
    result.report.radius = best_score.radius;
    // Exact containment for the winning placement when the space allows.
    try {
      result.report = measure_containment(design.program, result.byzantine,
                                          legitimate, opts.containment);
      result.report_exact = true;
    } catch (const StateSpaceTooLarge&) {
      result.report_exact = false;
    }
  }

  result.convergence_destroyed =
      result.report_exact && !result.report.contained;
  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("resilience.adversary.byzantine_searches").add(1);
    registry.counter("resilience.adversary.byzantine_evaluations")
        .add(result.evaluations);
  }
  return result;
}

std::string byzantine_placement_json(const Design& design,
                                     const ByzantinePlacementResult& r) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("design");
  w.value(design.name);
  w.key("mode");
  w.value(r.exhaustive ? "exhaustive-subsets" : "hill-climb");
  w.key("byzantine");
  w.begin_array();
  for (int p : r.byzantine) w.value(p);
  w.end_array();
  w.key("evaluations");
  w.value(r.evaluations);
  w.key("convergence_destroyed");
  w.value(r.convergence_destroyed);
  w.key("containment");
  if (r.report_exact) {
    w.raw(containment_to_json(design.program, r.report));
  } else {
    w.null();
  }
  w.end_object();
  return out;
}

std::string worst_trace_json(const Design& design, const AdversaryResult& r) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("design");
  w.value(design.name);
  w.key("mode");
  w.value(r.exhaustive ? "exhaustive-greedy" : "hill-climb");
  w.key("worst_case_steps");
  w.value(r.worst_case_steps);
  w.key("divergence_found");
  w.value(r.divergence_found);
  w.key("evaluations");
  w.value(r.evaluations);
  w.key("observed");
  w.begin_object();
  w.key("converged");
  w.value(r.observed.converged);
  w.key("steps");
  w.value(r.observed.steps);
  w.key("rounds");
  w.value(r.observed.rounds);
  w.key("moves");
  w.value(r.observed.moves);
  w.end_object();
  w.key("placement");
  w.begin_object();
  w.key("at_step");
  w.value(static_cast<std::uint64_t>(r.placement.at_step));
  w.key("targets");
  w.begin_array();
  for (VarId id : r.placement.targets) {
    w.value(design.program.variable(id).name);
  }
  w.end_array();
  w.key("values");
  w.begin_array();
  for (Value v : r.placement.values) w.value(static_cast<std::int64_t>(v));
  w.end_array();
  w.end_object();
  w.key("variables");
  w.begin_array();
  for (std::uint32_t i = 0; i < design.program.num_variables(); ++i) {
    w.value(design.program.variable(VarId(i)).name);
  }
  w.end_array();
  w.key("worst_trace");
  w.begin_array();
  for (const State& s : r.worst_trace) write_state_values(w, s);
  w.end_array();
  w.end_object();
  return out;
}

}  // namespace nonmask
