// Graceful degradation for exhaustive verification.
//
// The exhaustive checkers refuse state spaces beyond their budget by
// throwing StateSpaceTooLarge. verify_resilient catches exactly that and
// falls back to a documented sampling mode: seeded convergence trials from
// uniformly random domain-product states (an over-approximation of any
// fault-span T), with the truncation — requested size, budget, trial count
// — recorded in the result and in the run report. The contract: the
// exhaustive verdict is authoritative when `exhaustive` is set; a degraded
// result is statistical evidence only and says so in every artifact.
#pragma once

#include <cstdint>
#include <string>

#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "core/candidate.hpp"
#include "engine/experiment.hpp"
#include "obs/report.hpp"

namespace nonmask {

struct DegradeOptions {
  /// State budget for the exhaustive attempt.
  std::uint64_t state_budget = StateSpace::kDefaultBudget;
  /// Sampling fallback shape.
  std::size_t sample_trials = 256;
  std::uint64_t seed = 1;
  std::size_t max_steps = 200'000;
};

struct ResilientVerification {
  bool exhaustive = false;  ///< the full ToleranceReport below is valid
  bool degraded = false;    ///< sampling fallback was used
  /// Truncation record, from the StateSpaceTooLarge exception.
  std::uint64_t requested_states = 0;
  std::uint64_t state_budget = 0;
  ToleranceReport tolerance;   ///< exhaustive mode
  ConvergenceResults sampled;  ///< degraded mode
  std::size_t sampled_trials = 0;

  /// Exhaustive: tolerant. Degraded: every sampled trial converged (a
  /// necessary condition only — documented in DESIGN.md §9).
  bool ok() const noexcept {
    return exhaustive ? tolerance.tolerant()
                      : sampled.converged_fraction == 1.0;
  }
};

/// Exhaustive T-tolerance verification when the space fits the budget;
/// sampled convergence evidence otherwise.
ResilientVerification verify_resilient(const Design& design,
                                       const DegradeOptions& opts = {});

/// The verification result as one JSON value (degradation record included).
std::string to_json(const ResilientVerification& v);

/// Attach the verification (and its truncation record, when degraded) to a
/// run report under the "verification" / "degradation" keys.
void record_verification(obs::RunReport& report,
                         const ResilientVerification& v);

}  // namespace nonmask
