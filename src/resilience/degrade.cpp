#include "resilience/degrade.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace nonmask {

ResilientVerification verify_resilient(const Design& design,
                                       const DegradeOptions& opts) {
  ResilientVerification v;
  v.state_budget = opts.state_budget;
  try {
    StateSpace space(design.program, opts.state_budget);
    v.requested_states = space.size();
    v.tolerance = verify_tolerance(space, design);
    v.exhaustive = true;
    return v;
  } catch (const StateSpaceTooLarge& e) {
    v.requested_states = e.requested();
    v.state_budget = e.budget();
  }
  v.degraded = true;
  if (obs::Metrics::enabled()) {
    obs::Registry::instance().counter("resilience.degraded_sweeps").add(1);
  }
  ConvergenceExperiment config;
  config.trials = opts.sample_trials;
  config.seed = opts.seed;
  config.max_steps = opts.max_steps;
  // Default make_start: uniformly random in-domain states — samples the
  // whole domain product, which contains any fault-span T.
  v.sampled = run_experiment(design, config);
  v.sampled_trials = opts.sample_trials;
  return v;
}

std::string to_json(const ResilientVerification& v) {
  std::string out;
  obs::JsonWriter w(&out);
  w.begin_object();
  w.key("exhaustive");
  w.value(v.exhaustive);
  w.key("degraded");
  w.value(v.degraded);
  w.key("ok");
  w.value(v.ok());
  w.key("requested_states");
  w.value(v.requested_states);
  w.key("state_budget");
  w.value(v.state_budget);
  if (v.exhaustive) {
    w.key("S_closed");
    w.value(v.tolerance.S_closed);
    w.key("T_closed");
    w.value(v.tolerance.T_closed);
    w.key("convergence");
    w.raw(obs::to_json(v.tolerance.convergence));
  }
  if (v.degraded) {
    w.key("sampled_trials");
    w.value(static_cast<std::uint64_t>(v.sampled_trials));
    w.key("sampled");
    w.raw(obs::to_json(v.sampled));
  }
  w.end_object();
  return out;
}

void record_verification(obs::RunReport& report,
                         const ResilientVerification& v) {
  report.add("verification", to_json(v));
  if (v.degraded) {
    std::string out;
    obs::JsonWriter w(&out);
    w.begin_object();
    w.key("reason");
    w.value("StateSpaceTooLarge");
    w.key("requested_states");
    w.value(v.requested_states);
    w.key("state_budget");
    w.value(v.state_budget);
    w.key("fallback");
    w.value("sampled-convergence");
    w.key("sampled_trials");
    w.value(static_cast<std::uint64_t>(v.sampled_trials));
    w.end_object();
    report.add("degradation", out);
  }
}

}  // namespace nonmask
