#include "store/facade.hpp"

#include <algorithm>

#include "core/candidate.hpp"
#include "parallel/sweep.hpp"
#include "store/store_check.hpp"

namespace nonmask::store {

namespace {

SweepOptions sweep_options(const StoreConfig& config) {
  SweepOptions opts;
  opts.threads = config.threads;
  opts.grain = config.grain;
  return opts;
}

}  // namespace

StoreBackedSuccessors::StoreBackedSuccessors(const StateSpace& space,
                                             std::vector<std::size_t> actions)
    : space_(&space),
      actions_(std::move(actions)),
      scratch_(space.program().num_variables()) {}

void StoreBackedSuccessors::successors(std::uint64_t code,
                                       std::vector<std::uint64_t>& out) {
  const Program& p = space_->program();
  out.clear();
  space_->decode_into(code, scratch_);
  for (std::size_t idx : actions_) {
    const Action& a = p.action(idx);
    if (!a.enabled(scratch_)) continue;
    out.push_back(space_->encode(a.apply(scratch_)));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  ++expansions_;
}

ClosureReport check_closed_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& predicate,
                               const std::vector<std::size_t>& actions) {
  if (config.backend == StoreBackend::kStore) {
    return check_closed_store(space, predicate, actions, config);
  }
  return check_closed_parallel(space, predicate, actions,
                               sweep_options(config));
}

ClosureReport check_closed_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& predicate) {
  return check_closed_via(config, space, predicate,
                          non_fault_actions(space.program()));
}

ConvergenceReport check_convergence_via(const StoreConfig& config,
                                        const StateSpace& space,
                                        const PredicateFn& S,
                                        const PredicateFn& T) {
  if (config.backend == StoreBackend::kStore) {
    return check_convergence_store(space, S, T, config);
  }
  return check_convergence_parallel(space, S, T, sweep_options(config));
}

ConvergenceReport check_convergence_weakly_fair_via(const StoreConfig& config,
                                                    const StateSpace& space,
                                                    const PredicateFn& S,
                                                    const PredicateFn& T) {
  if (config.backend == StoreBackend::kStore &&
      !backend_fallback_reason(config, space)) {
    return check_convergence_weakly_fair_store(space, S, T, config);
  }
  return check_convergence_weakly_fair_parallel(space, S, T,
                                                sweep_options(config));
}

std::optional<VariantFunction> compute_variant_via(const StoreConfig& config,
                                                   const StateSpace& space,
                                                   const PredicateFn& S) {
  if (config.backend == StoreBackend::kStore &&
      !backend_fallback_reason(config, space)) {
    return compute_variant_store(space, S, config);
  }
  return compute_variant(space, S);
}

std::optional<std::string> backend_fallback_reason_for_size(
    const StoreConfig& config, std::uint64_t states) {
  if (config.backend != StoreBackend::kStore) return std::nullopt;
  // The compact Tarjan/DFS bookkeeping assigns each visited state a dense
  // u32 visit id, reserving 0xFFFFFFFF as the "unvisited" stamp.
  constexpr std::uint64_t kMaxCompactStates = 0xFFFFFFFFull;
  if (states >= kMaxCompactStates) {
    return "state space of " + std::to_string(states) +
           " codes exceeds the u32 dense visit-id range of the compact "
           "bookkeeping (max " +
           std::to_string(kMaxCompactStates - 1) + "); dense path used";
  }
  return std::nullopt;
}

std::optional<std::string> backend_fallback_reason(const StoreConfig& config,
                                                   const StateSpace& space) {
  return backend_fallback_reason_for_size(config, space.size());
}

StateSet compute_reachable_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& start,
                               const std::vector<std::size_t>& actions,
                               const FaultSpanOptions& opts) {
  if (config.backend == StoreBackend::kStore) {
    return compute_reachable_store(space, start, actions, config, opts);
  }
  return compute_reachable_parallel(space, start, actions, opts,
                                    sweep_options(config));
}

StateSet compute_fault_span_via(const StoreConfig& config,
                                const StateSpace& space, const PredicateFn& S,
                                const std::vector<std::size_t>& fault_actions,
                                const FaultSpanOptions& opts) {
  std::vector<std::size_t> actions = non_fault_actions(space.program());
  actions.insert(actions.end(), fault_actions.begin(), fault_actions.end());
  return compute_reachable_via(config, space, S, actions, opts);
}

ToleranceReport verify_tolerance_via(const StoreConfig& config,
                                     const StateSpace& space,
                                     const Design& design) {
  ToleranceReport report;
  report.S_closed = check_closed_via(config, space, design.S()).closed;
  report.T_closed = check_closed_via(config, space, design.T()).closed;
  report.convergence = check_convergence_via(config, space, design.S(),
                                             design.T());
  return report;
}

}  // namespace nonmask::store
