// Sharded concurrent hash set of packed states.
//
// The visited-set is the scaling bottleneck of every frontier search: at
// 10^8 states a std::unordered_set<State> costs ~100 bytes/state and a
// global lock serializes the workers. This set shards the key space into a
// power-of-two number of independent open-addressing tables (shard chosen
// by the *high* bits of a seeded mixing-finalizer hash, probe position by
// the low bits), each guarded by its own mutex and interning records into
// its own arena — workers contend only when they hash into the same shard.
//
// insert() returns a stable id composed as (local_id << shard_bits) |
// shard, so with one shard (shard_bits = 0) ids are dense 0, 1, ... — the
// form the serial falsification probe uses to index sidecar arrays.
//
// get() returns arena pointers that never move; calling it concurrently
// with inserts into the same shard requires no synchronization *after* the
// inserting thread has been joined or otherwise synchronized-with (the
// frontier engine only reads between parallel phases).
//
// Shards materialize on first touch, not in the constructor: the worker
// that first inserts into (or explicitly touch()es) a shard allocates its
// table and arena, so under a first-touch NUMA policy the shard's pages
// land on that worker's node. Per-worker shard affinity then keeps the hot
// tables local: give each worker a contiguous shard range to pre-touch
// (worker w of n owns shards [w*count/n, (w+1)*count/n)) before a parallel
// insert phase, as bench_store does. Creation races are resolved with one
// compare-exchange per shard; losers free their candidate.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "obs/telemetry.hpp"
#include "store/arena.hpp"
#include "store/packed.hpp"

namespace nonmask::store {

/// Registers with obs::Telemetry for its lifetime: the background sampler
/// reads per-shard occupancy, probe depth, and arena bytes through
/// sample_set_telemetry(), and the destructor folds a final sample into
/// the retired-set aggregate the run reports print. Registration is a
/// registry mutex hop at construction/destruction — never on the insert
/// path; the gated depth counters there cost one relaxed load when off.
class ConcurrentPackedSet final : public obs::SetTelemetrySource {
 public:
  /// 2^shard_bits shards; `expected` sizes each shard's table for
  /// expected/2^shard_bits entries at materialization (they still grow on
  /// demand).
  ConcurrentPackedSet(const PackedLayout& layout, unsigned shard_bits,
                      std::uint64_t seed, std::uint64_t expected = 0);
  ~ConcurrentPackedSet() override;

  ConcurrentPackedSet(const ConcurrentPackedSet&) = delete;
  ConcurrentPackedSet& operator=(const ConcurrentPackedSet&) = delete;

  /// Intern `words`; returns (id, true) on first insertion and the
  /// existing (id, false) thereafter. Thread-safe.
  std::pair<std::uint64_t, bool> insert(const std::uint64_t* words);

  /// Id of `words` if present. Thread-safe.
  std::optional<std::uint64_t> find(const std::uint64_t* words) const;

  bool contains(const std::uint64_t* words) const {
    return find(words).has_value();
  }

  /// Materialize shard `index` from the calling thread (first-touch page
  /// placement). Thread-safe, idempotent, never blocks behind an existing
  /// shard's lock.
  void touch(unsigned index);

  /// Stable pointer to the packed words of `id` (see header comment for
  /// the synchronization contract). `id` must come from insert()/find(),
  /// so its shard exists.
  const std::uint64_t* get(std::uint64_t id) const {
    return slots_[id & shard_mask_].load(std::memory_order_acquire)
        ->arena.get(id >> shard_bits_);
  }

  /// Total interned states (takes every materialized shard's lock).
  std::uint64_t size() const;

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(slots_.size());
  }

  struct ShardStats {
    std::uint64_t size = 0;
    std::uint64_t capacity = 0;
    std::uint64_t max_probe = 0;  ///< longest insert probe sequence
    std::uint64_t bytes = 0;      ///< arena slab bytes
  };
  /// Per-shard occupancy, for the bench's shard-balance report; untouched
  /// shards report all-zero.
  std::vector<ShardStats> shard_stats() const;

  /// The telemetry sampler's view (obs/telemetry.hpp): totals plus the
  /// per-shard occupancy vector behind the dashboard's shard heatmap.
  obs::SetSample sample_set_telemetry() const override;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<std::uint64_t> table;  ///< 0 = empty, else local_id + 1
    std::uint64_t entries = 0;
    std::uint64_t max_probe = 0;  ///< maintained under mutex, always on
    PackedStateStore arena;

    explicit Shard(std::size_t record_words, std::size_t capacity)
        : table(capacity, 0), arena(record_words) {}
  };

  std::uint64_t shard_of(std::uint64_t hash) const noexcept {
    return shard_bits_ == 0 ? 0 : hash >> (64 - shard_bits_);
  }
  /// The shard at `index`, materializing it on first touch.
  Shard& shard_at(std::uint64_t index);
  /// The shard at `index`, or nullptr if never touched.
  const Shard* shard_if(std::uint64_t index) const {
    return slots_[index].load(std::memory_order_acquire);
  }
  void grow(Shard& shard) const;

  const PackedLayout* layout_;
  unsigned shard_bits_;
  std::uint64_t shard_mask_;
  std::uint64_t seed_;
  std::size_t initial_capacity_;
  // Raw Shard pointers behind atomics: Shard owns a mutex (immovable), and
  // a slot flips nullptr → pointer exactly once, published with acq_rel so
  // the winning toucher's construction happens-before every use.
  std::vector<std::atomic<Shard*>> slots_;
};

}  // namespace nonmask::store
