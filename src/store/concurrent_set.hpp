// Sharded concurrent hash set of packed states.
//
// The visited-set is the scaling bottleneck of every frontier search: at
// 10^8 states a std::unordered_set<State> costs ~100 bytes/state and a
// global lock serializes the workers. This set shards the key space into a
// power-of-two number of independent open-addressing tables (shard chosen
// by the *high* bits of a seeded mixing-finalizer hash, probe position by
// the low bits), each guarded by its own mutex and interning records into
// its own arena — workers contend only when they hash into the same shard.
//
// insert() returns a stable id composed as (local_id << shard_bits) |
// shard, so with one shard (shard_bits = 0) ids are dense 0, 1, ... — the
// form the serial falsification probe uses to index sidecar arrays.
//
// get() returns arena pointers that never move; calling it concurrently
// with inserts into the same shard requires no synchronization *after* the
// inserting thread has been joined or otherwise synchronized-with (the
// frontier engine only reads between parallel phases).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "store/arena.hpp"
#include "store/packed.hpp"

namespace nonmask::store {

class ConcurrentPackedSet {
 public:
  /// 2^shard_bits shards; `expected` pre-sizes each shard's table for
  /// expected/2^shard_bits entries (they still grow on demand).
  ConcurrentPackedSet(const PackedLayout& layout, unsigned shard_bits,
                      std::uint64_t seed, std::uint64_t expected = 0);

  /// Intern `words`; returns (id, true) on first insertion and the
  /// existing (id, false) thereafter. Thread-safe.
  std::pair<std::uint64_t, bool> insert(const std::uint64_t* words);

  /// Id of `words` if present. Thread-safe.
  std::optional<std::uint64_t> find(const std::uint64_t* words) const;

  bool contains(const std::uint64_t* words) const {
    return find(words).has_value();
  }

  /// Stable pointer to the packed words of `id` (see header comment for
  /// the synchronization contract).
  const std::uint64_t* get(std::uint64_t id) const {
    return shards_[id & shard_mask_]->arena.get(id >> shard_bits_);
  }

  /// Total interned states (takes every shard lock).
  std::uint64_t size() const;

  unsigned shard_count() const noexcept {
    return static_cast<unsigned>(shards_.size());
  }

  struct ShardStats {
    std::uint64_t size = 0;
    std::uint64_t capacity = 0;
  };
  /// Per-shard occupancy, for the bench's shard-balance report.
  std::vector<ShardStats> shard_stats() const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::vector<std::uint64_t> table;  ///< 0 = empty, else local_id + 1
    std::uint64_t entries = 0;
    PackedStateStore arena;

    explicit Shard(std::size_t record_words, std::size_t capacity)
        : table(capacity, 0), arena(record_words) {}
  };

  std::uint64_t shard_of(std::uint64_t hash) const noexcept {
    return shard_bits_ == 0 ? 0 : hash >> (64 - shard_bits_);
  }
  void grow(Shard& shard) const;

  const PackedLayout* layout_;
  unsigned shard_bits_;
  std::uint64_t shard_mask_;
  std::uint64_t seed_;
  // unique_ptr because Shard owns a mutex (immovable) and arena pointers
  // must stay stable while other shards are appended during construction.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace nonmask::store
