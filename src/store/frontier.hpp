// Chunked parallel frontier engine.
//
// Forward mode (`reachable`) is the store backend for fault-span /
// reachability: a level-synchronous BFS whose frontier chunks are consumed
// from the thread pool's shared queue (idle workers steal the next chunk),
// each worker expanding into its own output buffer, with the buffers merged
// serially in chunk order. The merge replays the serial BFS's insertion
// sequence exactly — same StateSet, same max_states truncation — which is
// the determinism contract the legacy parallel sweep established
// (parallel/sweep.hpp); the engine adds a visited pre-filter (safe: it only
// drops successors the merge would skip anyway) and an optional disk spill
// so frontiers larger than RAM stream through a temp file instead of
// failing.
//
// Backward mode (`backward_distances`) computes min-steps-to-target for
// every code without materializing a predecessor graph: each round scans
// the unresolved codes in parallel and resolves those with a successor
// resolved in an earlier round — the round number *is* the distance. The
// distances land in a generation-stamped array, so repeated calls (e.g.
// per fault placement) reuse one allocation with an O(1) reset.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "checker/fault_span.hpp"
#include "checker/state_space.hpp"
#include "parallel/thread_pool.hpp"
#include "store/bitset.hpp"
#include "store/config.hpp"

namespace nonmask::store {

/// A code buffer that transparently spills to a temp file past a
/// threshold. Append happens serially (during the merge phase); ranged
/// reads are thread-safe (pread) and serve the parallel expansion phase.
class SpillableFrontier {
 public:
  /// threshold 0 = never spill. `dir` empty = system temp directory.
  SpillableFrontier(std::uint64_t threshold, const std::string& dir);
  ~SpillableFrontier();
  SpillableFrontier(const SpillableFrontier&) = delete;
  SpillableFrontier& operator=(const SpillableFrontier&) = delete;

  void append(std::uint64_t code);
  std::uint64_t size() const noexcept { return spilled_ + mem_.size(); }
  bool spilled() const noexcept { return spilled_ > 0; }

  /// Copy codes [lo, hi) into `out` (cleared first). Thread-safe against
  /// other reads; must not run concurrently with append().
  void read(std::uint64_t lo, std::uint64_t hi,
            std::vector<std::uint64_t>& out) const;

  void clear();

 private:
  void flush_mem();

  std::uint64_t threshold_;
  std::string dir_;
  std::vector<std::uint64_t> mem_;
  std::uint64_t spilled_ = 0;  ///< codes already written to the file
  int fd_ = -1;
};

struct FrontierStats {
  std::uint64_t levels = 0;     ///< BFS levels (== rounds for backward)
  std::uint64_t expanded = 0;   ///< frontier nodes expanded
  std::uint64_t spills = 0;     ///< levels that overflowed to disk
};

class FrontierEngine {
 public:
  FrontierEngine(const StateSpace& space, const StoreConfig& config);

  /// Work-distribution-only engine: owns the pool but no state space.
  /// for_items works; reachable/backward_distances throw. This is the
  /// engine the campaign runner routes its trial loop through, so trials
  /// and store sweeps share one pool shape and config surface.
  explicit FrontierEngine(const StoreConfig& config);

  /// Dispatch items [begin, end) one at a time onto the pool's shared
  /// queue (idle workers steal the next item — the same grain-1 dynamic
  /// schedule the campaign trial loop has always used, so any
  /// item-order-independent caller keeps byte-identical output). Blocks
  /// until every item has run. `fn(item, worker)` may run concurrently
  /// with itself on distinct items.
  void for_items(std::uint64_t begin, std::uint64_t end,
                 const std::function<void(std::uint64_t, unsigned)>& fn);

  /// Store-backed compute_reachable: BFS closure of `start` under
  /// `actions`, byte-identical to the serial checker's StateSet.
  StateSet reachable(const PredicateFn& start,
                     const std::vector<std::size_t>& actions,
                     const FaultSpanOptions& opts = {});

  /// Min-steps-to-target distances for every code (backward BFS by
  /// forward scans; see header comment). Returns the number of resolved
  /// codes; unresolved codes keep StampedDistanceArray::kUnset. Rounds
  /// stop at `max_rounds` (0 = no cap).
  std::uint64_t backward_distances(const PredicateFn& target,
                                   const std::vector<std::size_t>& actions,
                                   StampedDistanceArray& dist,
                                   std::uint32_t max_rounds = 0);

  const FrontierStats& stats() const noexcept { return stats_; }
  unsigned threads() const noexcept { return pool_.size(); }

 private:
  const StateSpace* space_;
  StoreConfig config_;
  ThreadPool pool_;
  FrontierStats stats_;
};

}  // namespace nonmask::store
