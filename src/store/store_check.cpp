#include "store/store_check.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <unordered_map>

#include "checker/convergence_core.hpp"
#include "checker/scc_core.hpp"
#include "core/candidate.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "parallel/thread_pool.hpp"
#include "store/bitset.hpp"
#include "store/facade.hpp"
#include "store/frontier.hpp"
#include "store/odometer.hpp"

namespace nonmask::store {

namespace {

std::size_t chunk_count(std::uint64_t range, std::uint64_t grain) {
  return static_cast<std::size_t>((range + grain - 1) / grain);
}

/// Chunk grain rounded up to a multiple of 32, so parallel chunks never
/// share a TwoBitArray word (32 2-bit entries per 64-bit word).
std::uint64_t aligned_grain(const StoreConfig& config) {
  return (std::max<std::uint64_t>(config.grain, 32) + 31) & ~std::uint64_t{31};
}

/// scan_closure_range with the decode replaced by an odometer ripple;
/// counts, early exit, and the violation triple are exactly the serial
/// scan's.
ClosureReport scan_closure_range_odometer(
    const StateSpace& space, const PredicateFn& predicate,
    const std::vector<std::size_t>& actions, std::uint64_t begin,
    std::uint64_t end) {
  const Program& p = space.program();
  ClosureReport report;
  OdometerCursor cur(space, begin);
  for (std::uint64_t code = begin; code < end; ++code) {
    const State& s = cur.state();
    if (predicate(s)) {
      ++report.states_checked;
      for (std::size_t idx : actions) {
        const Action& a = p.action(idx);
        if (!a.enabled(s)) continue;
        ++report.transitions_checked;
        State next = a.apply(s);
        if (!predicate(next)) {
          report.closed = false;
          report.violation = ClosureViolation{s, idx, std::move(next)};
          return report;
        }
      }
    }
    if (code + 1 < end) cur.advance();
  }
  report.closed = true;
  return report;
}

/// evaluate_flags into a TwoBitArray (2 bits/state instead of a byte),
/// chunk-parallel with in-order count reduction — same counts as
/// detail::evaluate_flags / evaluate_flags_parallel.
TwoBitArray evaluate_flags_store(ThreadPool& pool, const StateSpace& space,
                                 const PredicateFn& S, const PredicateFn& T,
                                 std::uint64_t grain,
                                 ConvergenceReport& report) {
  obs::Span span("store.flags");
  obs::ProgressMeter meter("flags", space.size());
  TwoBitArray flags(space.size());
  struct Counts {
    std::uint64_t in_S = 0;
    std::uint64_t in_T = 0;
  };
  std::vector<Counts> counts(chunk_count(space.size(), grain));
  parallel_for_chunked(
      pool, 0, space.size(), grain,
      [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
          unsigned worker) {
        (void)worker;
        OdometerCursor cur(space, lo);
        Counts c;
        for (std::uint64_t code = lo; code < hi; ++code) {
          const State& s = cur.state();
          std::uint8_t f = 0;
          const bool in_T = T(s);
          if (in_T) f |= detail::kFlagT;
          if (S(s)) {
            f |= detail::kFlagS;
            if (in_T) ++c.in_S;
          }
          if (in_T) ++c.in_T;
          flags.set(code, f);
          if (code + 1 < hi) cur.advance();
        }
        counts[chunk] = c;
        meter.add(hi - lo);
      });
  for (const Counts& c : counts) {
    report.states_in_S += c.in_S;
    report.states_in_T += c.in_T;
  }
  return flags;
}

/// Thrown by the u16 bookkeeping when a convergence distance exceeds its
/// width; the caller restarts the identical traversal with u32 distances.
struct DistanceOverflow {};

template <typename DistT>
struct CompactDfsBookkeeping {
  explicit CompactDfsBookkeeping(std::uint64_t size)
      : color_(size), dist_(size, 0) {}

  std::uint8_t color(std::uint64_t code) const { return color_[code]; }
  void set_color(std::uint64_t code, std::uint8_t c) { color_.set(code, c); }
  std::uint32_t dist(std::uint64_t code) const { return dist_[code]; }
  void set_dist(std::uint64_t code, std::uint32_t d) {
    if (d > std::numeric_limits<DistT>::max()) throw DistanceOverflow{};
    dist_[code] = static_cast<DistT>(d);
  }
  std::int64_t stack_pos(std::uint64_t code) const {
    const auto it = stack_pos_.find(code);
    return it == stack_pos_.end() ? -1 : it->second;
  }
  void set_stack_pos(std::uint64_t code, std::int64_t pos) {
    if (pos < 0) {
      stack_pos_.erase(code);
    } else {
      stack_pos_[code] = pos;
    }
  }

  TwoBitArray color_;
  std::vector<DistT> dist_;
  /// Only DFS-path states have a position — path depth, not range, sized.
  std::unordered_map<std::uint64_t, std::int64_t> stack_pos_;
};

/// Store-native Tarjan bookkeeping (checker/scc_core.hpp contract). The
/// per-code state is a stamped u32 visit index (kUnset = unvisited,
/// reusable across runs without an O(n) clear) plus one on-stack bit;
/// visit ids are dense, so lowlinks are indexed by id in fixed-size slabs
/// appended as the traversal grows — 4 bytes per *visited* state with no
/// realloc-copy spike at 2× peak, instead of 4 bytes per code up front.
/// The legacy component array (4 bytes/code) is replaced by sorted member
/// snapshots of the sealed (nontrivial) SCCs: membership queries only
/// ever name sealed components, and states outside them answer false
/// exactly like a component-id mismatch would.
class CompactTarjanBookkeeping {
 public:
  explicit CompactTarjanBookkeeping(std::uint64_t size)
      : index_(size), on_stack_((size + 63) / 64, 0) {}

  bool visited(std::uint64_t code) const { return index_.known(code); }
  std::uint32_t index(std::uint64_t code) const { return index_.get(code); }
  void set_index(std::uint64_t code, std::uint32_t v) { index_.set(code, v); }
  std::uint32_t lowlink(std::uint64_t code) const {
    return slab_get(index_.get(code));
  }
  void set_lowlink(std::uint64_t code, std::uint32_t v) {
    slab_set(index_.get(code), v);
  }
  bool on_stack(std::uint64_t code) const {
    return (on_stack_[code >> 6] >> (code & 63)) & 1;
  }
  void set_on_stack(std::uint64_t code, bool b) {
    const std::uint64_t mask = std::uint64_t{1} << (code & 63);
    if (b) {
      on_stack_[code >> 6] |= mask;
    } else {
      on_stack_[code >> 6] &= ~mask;
    }
  }
  void mark_component(std::uint64_t, std::int32_t) {}
  void seal_component(std::int32_t comp,
                      const std::vector<std::uint64_t>& scc) {
    std::vector<std::uint64_t> sorted = scc;
    std::sort(sorted.begin(), sorted.end());
    sealed_.emplace(comp, std::move(sorted));
  }
  bool in_component(std::uint64_t code, std::int32_t comp) const {
    const auto it = sealed_.find(comp);
    return it != sealed_.end() &&
           std::binary_search(it->second.begin(), it->second.end(), code);
  }

 private:
  static constexpr std::uint32_t kSlabBits = 20;  // 1M ids / 4 MB per slab
  static constexpr std::uint32_t kSlabMask = (1u << kSlabBits) - 1;

  std::uint32_t slab_get(std::uint32_t id) const {
    return slabs_[id >> kSlabBits][id & kSlabMask];
  }
  void slab_set(std::uint32_t id, std::uint32_t v) {
    const std::uint32_t slab = id >> kSlabBits;
    // Visit ids are assigned in push order, so at most one new slab at a
    // time; the loop only guards the first touch.
    while (slabs_.size() <= slab) {
      slabs_.push_back(
          std::make_unique<std::uint32_t[]>(std::size_t{1} << kSlabBits));
    }
    slabs_[slab][id & kSlabMask] = v;
  }

  StampedDistanceArray index_;
  std::vector<std::unique_ptr<std::uint32_t[]>> slabs_;
  std::vector<std::uint64_t> on_stack_;
  std::unordered_map<std::int32_t, std::vector<std::uint64_t>> sealed_;
};

}  // namespace

ClosureReport check_closed_store(const StateSpace& space,
                                 const PredicateFn& predicate,
                                 const std::vector<std::size_t>& actions,
                                 const StoreConfig& config) {
  obs::Span span("store.closure");
  obs::ProgressMeter meter("closure", space.size());
  ThreadPool pool(config.threads);
  const std::uint64_t grain = aligned_grain(config);
  std::vector<ClosureReport> chunks(chunk_count(space.size(), grain));
  parallel_for_chunked(
      pool, 0, space.size(), grain,
      [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
          unsigned worker) {
        (void)worker;
        chunks[chunk] =
            scan_closure_range_odometer(space, predicate, actions, lo, hi);
        meter.add(hi - lo);
      });

  // In-order reduction replaying the serial scan's early exit (the same
  // reduction as the parallel sweep's).
  ClosureReport report;
  for (ClosureReport& c : chunks) {
    report.states_checked += c.states_checked;
    report.transitions_checked += c.transitions_checked;
    if (!c.closed) {
      report.closed = false;
      report.violation = std::move(c.violation);
      detail::record_closure_metrics(report);
      return report;
    }
  }
  report.closed = true;
  detail::record_closure_metrics(report);
  return report;
}

ClosureReport check_closed_store(const StateSpace& space,
                                 const PredicateFn& predicate,
                                 const StoreConfig& config) {
  return check_closed_store(space, predicate,
                            non_fault_actions(space.program()), config);
}

ConvergenceReport check_convergence_store(const StateSpace& space,
                                          const PredicateFn& S,
                                          const PredicateFn& T,
                                          const StoreConfig& config) {
  obs::Span span("store.convergence");
  ThreadPool pool(config.threads);
  ConvergenceReport report;
  const TwoBitArray flags =
      evaluate_flags_store(pool, space, S, T, aligned_grain(config), report);
  const std::vector<std::size_t> actions = non_fault_actions(space.program());

  // First pass with 16-bit distances (~5 bytes/state total). Convergence
  // spans beyond 65535 steps are possible in principle, so on overflow the
  // identical traversal restarts from the post-flags report with 32-bit
  // distances — flags are reused, bookkeeping and successor state are
  // rebuilt fresh.
  {
    ConvergenceReport attempt = report;
    CompactDfsBookkeeping<std::uint16_t> bk(space.size());
    StoreBackedSuccessors succ(space, actions);
    try {
      return detail::check_convergence_core_impl(space, flags, succ,
                                                 std::move(attempt), bk);
    } catch (const DistanceOverflow&) {
    }
  }
  CompactDfsBookkeeping<std::uint32_t> bk(space.size());
  StoreBackedSuccessors succ(space, actions);
  return detail::check_convergence_core_impl(space, flags, succ,
                                             std::move(report), bk);
}

ConvergenceReport check_convergence_weakly_fair_store(
    const StateSpace& space, const PredicateFn& S, const PredicateFn& T,
    const StoreConfig& config) {
  obs::Span span("store.convergence_fair");
  ThreadPool pool(config.threads);
  ConvergenceReport report;
  const TwoBitArray flags =
      evaluate_flags_store(pool, space, S, T, aligned_grain(config), report);
  const std::vector<std::size_t> actions = non_fault_actions(space.program());
  StoreBackedSuccessors succ(space, actions);
  CompactTarjanBookkeeping bk(space.size());
  return detail::check_convergence_weakly_fair_core_impl(
      space, flags, succ, actions, std::move(report), bk);
}

std::optional<VariantFunction> compute_variant_store(const StateSpace& space,
                                                     const PredicateFn& S,
                                                     const StoreConfig& config) {
  obs::Span span("store.variant");
  ThreadPool pool(config.threads);
  ConvergenceReport report;
  const TwoBitArray flags = evaluate_flags_store(
      pool, space, S, true_predicate(), aligned_grain(config), report);
  const std::vector<std::size_t> actions = non_fault_actions(space.program());
  StoreBackedSuccessors succ(space, actions);
  // u32 distances directly: the dist vector doubles as the variant values,
  // so the u16 first-attempt trick would force a copy-widen on success.
  CompactDfsBookkeeping<std::uint32_t> bk(space.size());
  report = detail::check_convergence_core_impl(space, flags, succ,
                                               std::move(report), bk);
  if (report.verdict != ConvergenceVerdict::kConverges) return std::nullopt;
  return VariantFunction(space, std::move(bk.dist_));
}

StateSet compute_reachable_store(const StateSpace& space,
                                 const PredicateFn& start,
                                 const std::vector<std::size_t>& actions,
                                 const StoreConfig& config,
                                 const FaultSpanOptions& opts) {
  FrontierEngine engine(space, config);
  return engine.reachable(start, actions, opts);
}

StateSet compute_fault_span_store(const StateSpace& space,
                                  const PredicateFn& S,
                                  const std::vector<std::size_t>& fault_actions,
                                  const StoreConfig& config,
                                  const FaultSpanOptions& opts) {
  std::vector<std::size_t> actions = non_fault_actions(space.program());
  actions.insert(actions.end(), fault_actions.begin(), fault_actions.end());
  return compute_reachable_store(space, S, actions, config, opts);
}

}  // namespace nonmask::store
