#include "store/odometer.hpp"

#include "core/program.hpp"

namespace nonmask::store {

OdometerCursor::OdometerCursor(const StateSpace& space, std::uint64_t code)
    : space_(&space),
      code_(code),
      state_(space.program().num_variables()) {
  const Program& p = space.program();
  lo_.reserve(p.num_variables());
  hi_.reserve(p.num_variables());
  for (std::uint32_t i = 0; i < p.num_variables(); ++i) {
    lo_.push_back(p.variable(VarId(i)).lo);
    hi_.push_back(p.variable(VarId(i)).hi);
  }
  if (code < space.size()) space.decode_into(code, state_);
}

void OdometerCursor::advance() {
  ++code_;
  // Variable 0 has stride 1 in the mixed-radix code, so the decoded state
  // increments like an odometer with the lowest digit first.
  for (std::size_t i = 0; i < lo_.size(); ++i) {
    const VarId id(static_cast<std::uint32_t>(i));
    const Value v = state_.get(id);
    if (v < hi_[i]) {
      state_.set(id, v + 1);
      return;
    }
    state_.set(id, lo_[i]);
  }
}

}  // namespace nonmask::store
