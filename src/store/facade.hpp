// Backend-dispatch facade: every verification entry point in one place,
// switched by StoreConfig::backend.
//
//   kLegacyDense — the original dense-array checkers (serial, or the
//     parallel sweep when threads allow); memory O(bytes per state), the
//     configuration every result before the store existed was produced
//     with.
//   kStore       — the compact store pipeline (store_check.hpp /
//     frontier.hpp); bits per state, viable at 10^8 codes.
//
// The two backends are contractually byte-identical: same report structs,
// same counts, same counterexamples, at any thread count. scripts/check.sh
// and CI diff them on every protocol in the suite. Callers (examples,
// resilience, synthesis) go through *_via and never pick a backend
// themselves — NONMASK_STORE_BACKEND / NONMASK_STATE_BUDGET select it at
// run time via StoreConfig::from_env().
//
// Known scope limit: the weakly-fair check needs Tarjan index/lowlink
// arrays over the full code range, which the compact layout does not yet
// cover; check_convergence_weakly_fair_via therefore runs the legacy
// (sweep) path under both backends.
#pragma once

#include <cstdint>
#include <vector>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "store/config.hpp"

namespace nonmask::store {

/// The SuccessorSource every store-backed traversal uses: semantics
/// identical to ProgramSuccessors (sorted distinct successor codes under
/// the given actions), plus an expansion counter for throughput reporting.
class StoreBackedSuccessors final : public SuccessorSource {
 public:
  StoreBackedSuccessors(const StateSpace& space,
                        std::vector<std::size_t> actions);

  void successors(std::uint64_t code,
                  std::vector<std::uint64_t>& out) override;

  /// States expanded so far (one per successors() call).
  std::uint64_t expansions() const noexcept { return expansions_; }

 private:
  const StateSpace* space_;
  std::vector<std::size_t> actions_;
  State scratch_;
  std::uint64_t expansions_ = 0;
};

ClosureReport check_closed_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& predicate,
                               const std::vector<std::size_t>& actions);

ClosureReport check_closed_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& predicate);

ConvergenceReport check_convergence_via(const StoreConfig& config,
                                        const StateSpace& space,
                                        const PredicateFn& S,
                                        const PredicateFn& T);

ConvergenceReport check_convergence_weakly_fair_via(const StoreConfig& config,
                                                    const StateSpace& space,
                                                    const PredicateFn& S,
                                                    const PredicateFn& T);

StateSet compute_reachable_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& start,
                               const std::vector<std::size_t>& actions,
                               const FaultSpanOptions& opts = {});

StateSet compute_fault_span_via(const StoreConfig& config,
                                const StateSpace& space, const PredicateFn& S,
                                const std::vector<std::size_t>& fault_actions,
                                const FaultSpanOptions& opts = {});

/// verify_tolerance (closure of S and T + convergence) through the
/// selected backend.
ToleranceReport verify_tolerance_via(const StoreConfig& config,
                                     const StateSpace& space,
                                     const Design& design);

}  // namespace nonmask::store
