// Backend-dispatch facade: every verification entry point in one place,
// switched by StoreConfig::backend.
//
//   kLegacyDense — the original dense-array checkers (serial, or the
//     parallel sweep when threads allow); memory O(bytes per state), the
//     configuration every result before the store existed was produced
//     with.
//   kStore       — the compact store pipeline (store_check.hpp /
//     frontier.hpp); bits per state, viable at 10^8 codes.
//
// The two backends are contractually byte-identical: same report structs,
// same counts, same counterexamples, at any thread count. scripts/check.sh
// and CI diff them on every protocol in the suite. Callers (examples,
// resilience, synthesis) go through *_via and never pick a backend
// themselves — NONMASK_STORE_BACKEND / NONMASK_STATE_BUDGET select it at
// run time via StoreConfig::from_env().
//
// Every checker path — closure, convergence (unfair and weakly-fair SCC),
// reachability/fault-span, and variant extraction — runs store-native
// under kStore. The one residual fallback (state spaces whose code range
// exceeds the u32 dense visit-id space of the compact Tarjan bookkeeping)
// is no longer silent: backend_fallback_reason() names it, and run-report
// writers record it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/variant.hpp"
#include "store/config.hpp"

namespace nonmask::store {

/// The SuccessorSource every store-backed traversal uses: semantics
/// identical to ProgramSuccessors (sorted distinct successor codes under
/// the given actions), plus an expansion counter for throughput reporting.
class StoreBackedSuccessors final : public SuccessorSource {
 public:
  StoreBackedSuccessors(const StateSpace& space,
                        std::vector<std::size_t> actions);

  void successors(std::uint64_t code,
                  std::vector<std::uint64_t>& out) override;

  /// States expanded so far (one per successors() call).
  std::uint64_t expansions() const noexcept { return expansions_; }

 private:
  const StateSpace* space_;
  std::vector<std::size_t> actions_;
  State scratch_;
  std::uint64_t expansions_ = 0;
};

ClosureReport check_closed_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& predicate,
                               const std::vector<std::size_t>& actions);

ClosureReport check_closed_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& predicate);

ConvergenceReport check_convergence_via(const StoreConfig& config,
                                        const StateSpace& space,
                                        const PredicateFn& S,
                                        const PredicateFn& T);

ConvergenceReport check_convergence_weakly_fair_via(const StoreConfig& config,
                                                    const StateSpace& space,
                                                    const PredicateFn& S,
                                                    const PredicateFn& T);

/// compute_variant through the selected backend (store-native single
/// traversal under kStore; the legacy double traversal otherwise).
std::optional<VariantFunction> compute_variant_via(const StoreConfig& config,
                                                   const StateSpace& space,
                                                   const PredicateFn& S);

/// Why the compact backend cannot serve this state-space size, or nullopt
/// when it can (or when the config never asked for it). Currently the one
/// reason is a code range at or beyond 2^32-1, which would overflow the
/// u32 dense visit ids of the compact Tarjan/DFS bookkeeping. Run-report
/// writers surface this as `backend_fallback_reason` instead of silently
/// checking on the dense path.
std::optional<std::string> backend_fallback_reason_for_size(
    const StoreConfig& config, std::uint64_t states);

/// backend_fallback_reason_for_size over a built state space.
std::optional<std::string> backend_fallback_reason(const StoreConfig& config,
                                                   const StateSpace& space);

StateSet compute_reachable_via(const StoreConfig& config,
                               const StateSpace& space,
                               const PredicateFn& start,
                               const std::vector<std::size_t>& actions,
                               const FaultSpanOptions& opts = {});

StateSet compute_fault_span_via(const StoreConfig& config,
                                const StateSpace& space, const PredicateFn& S,
                                const std::vector<std::size_t>& fault_actions,
                                const FaultSpanOptions& opts = {});

/// verify_tolerance (closure of S and T + convergence) through the
/// selected backend.
ToleranceReport verify_tolerance_via(const StoreConfig& config,
                                     const StateSpace& space,
                                     const Design& design);

}  // namespace nonmask::store
