// Bit-packed state representation.
//
// A State stores one 32-bit Value per variable; at 10^8+ states that is
// both too big to intern and too slow to hash. PackedLayout assigns every
// variable ceil(log2(domain)) bits (offset from its domain lower bound), so
// a whole state packs into ceil(total_bits / 64) machine words — e.g. the
// 9-node Dijkstra ring with K=12 packs 9 x 4 bits into one word instead of
// 36 bytes. The packed form is the unit the arena store, the concurrent
// set, and the frontier engine all operate on.
//
// The companion OdometerCursor (store/odometer.hpp) removes the other
// per-state cost of the legacy scans: decoding a mixed-radix code takes one
// div+mod per variable, but consecutive codes differ like an odometer, so a
// full-range scan can ripple-increment the decoded state in O(1) amortized
// instead.
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"
#include "core/state.hpp"

namespace nonmask::store {

/// Per-variable bit-field layout over a Program's variables.
class PackedLayout {
 public:
  explicit PackedLayout(const Program& program);

  const Program& program() const noexcept { return *program_; }
  /// Words per packed state (>= 1 even for zero-bit layouts).
  std::size_t words() const noexcept { return words_; }
  std::size_t total_bits() const noexcept { return total_bits_; }
  /// Bits assigned to variable i (0 when its domain has a single value).
  unsigned width(std::size_t i) const { return fields_[i].width; }

  /// Pack `s` (must be in-domain) into `out[0 .. words())`.
  void pack(const State& s, std::uint64_t* out) const;
  /// Unpack into an existing state (sized for the program).
  void unpack(const std::uint64_t* words, State& s) const;

  /// Seeded mixing-finalizer hash over the packed words: FNV-1a fold of
  /// the words followed by a splitmix64 avalanche, so every output bit
  /// depends on every input bit — shard selection uses the *high* bits and
  /// open-addressing probes the low bits, both of which need avalanche
  /// that plain FNV-1a does not provide.
  std::uint64_t hash(const std::uint64_t* words,
                     std::uint64_t seed) const noexcept;

  friend bool equal(const PackedLayout& layout, const std::uint64_t* a,
                    const std::uint64_t* b) noexcept {
    for (std::size_t w = 0; w < layout.words_; ++w) {
      if (a[w] != b[w]) return false;
    }
    return true;
  }

 private:
  struct Field {
    std::uint32_t word;    ///< index of the (first) word holding the field
    unsigned shift;        ///< bit offset within that word
    unsigned width;        ///< bits (fields never straddle a word boundary)
    Value lo;              ///< domain lower bound (packed value = v - lo)
  };

  const Program* program_;
  std::vector<Field> fields_;
  std::size_t words_ = 1;
  std::size_t total_bits_ = 0;
};

}  // namespace nonmask::store
