#include "store/arena.hpp"

#include "obs/telemetry.hpp"

namespace nonmask::store {

PackedStateStore::PackedStateStore(std::size_t record_words,
                                   std::size_t slab_records)
    : record_words_(record_words == 0 ? 1 : record_words),
      slab_records_(slab_records == 0 ? 1 : slab_records) {}

std::uint64_t PackedStateStore::intern(const std::uint64_t* words) {
  const std::uint64_t id = size_;
  const std::size_t slab = static_cast<std::size_t>(id / slab_records_);
  if (slab == slabs_.size()) {
    const std::size_t slab_words = slab_records_ * record_words_;
    slabs_.emplace_back(static_cast<std::uint64_t*>(
        ::operator new[](slab_words * sizeof(std::uint64_t),
                         std::align_val_t{64})));
    if (obs::Telemetry::counting()) {
      auto& depth = obs::Telemetry::depth();
      depth.arena_slab_allocs.fetch_add(1, std::memory_order_relaxed);
      depth.arena_slab_bytes.fetch_add(slab_words * sizeof(std::uint64_t),
                                       std::memory_order_relaxed);
    }
  }
  std::uint64_t* out = slabs_[slab].get() +
                       (id % slab_records_) * record_words_;
  for (std::size_t w = 0; w < record_words_; ++w) out[w] = words[w];
  ++size_;
  return id;
}

}  // namespace nonmask::store
