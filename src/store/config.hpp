// Configuration switch for the compact parallel state store.
//
// Every checker entry point that the store subsystem re-implements is
// dispatched through a StoreConfig: `backend` selects between the legacy
// dense-array path (src/checker/, per-state bookkeeping sized by the full
// code range) and the store path (src/store/, packed bitmaps + interned
// frontiers). The two backends are contractually byte-identical on every
// report they produce — the store backend exists to lift the *state budget*
// (from ~32M to 10^8-10^9 states), not to change any answer.
#pragma once

#include <cstdint>
#include <string>

namespace nonmask::store {

enum class StoreBackend {
  kLegacyDense,  ///< src/checker/ dense arrays (the seed implementation)
  kStore,        ///< src/store/ packed bitmaps + frontier engine
};

const char* to_string(StoreBackend b) noexcept;

struct StoreConfig {
  StoreBackend backend = StoreBackend::kLegacyDense;

  /// State budget passed to StateSpace construction. The legacy default
  /// (32M) matches StateSpace::kDefaultBudget; the store backend is
  /// routinely run two to three orders of magnitude higher.
  std::uint64_t budget = 32'000'000;

  /// Worker threads for the store sweeps; 0 = NONMASK_THREADS env, else
  /// hardware concurrency (same resolution as the parallel sweeps).
  unsigned threads = 0;

  /// Codes per scan chunk. Results never depend on it.
  std::uint64_t grain = 1 << 16;

  /// log2 of the concurrent-set shard count (power-of-two shards).
  unsigned shard_bits = 6;

  /// Seed for the set's mixing-finalizer hash (any value works; fixed by
  /// default so shard occupancy is reproducible).
  std::uint64_t hash_seed = 0x5307e5eedULL;

  /// Frontier codes kept in memory per BFS level before spilling the level
  /// to a temp file; 0 disables spilling.
  std::uint64_t spill_threshold = 0;
  /// Directory for spill files; empty = $TMPDIR, else /tmp.
  std::string spill_dir;

  /// Environment-driven default:
  ///   NONMASK_STORE_BACKEND = "store" | "dense"  (default dense)
  ///   NONMASK_STATE_BUDGET  = max states for StateSpace construction
  ///   NONMASK_THREADS       = resolved by the pool as usual
  static StoreConfig from_env();
};

}  // namespace nonmask::store
