// Incremental mixed-radix decoding for full-range scans.
//
// StateSpace::decode_into costs one div+mod per variable per code; at 10^8
// states times several sweeps that dominates scan time. Consecutive codes
// differ like an odometer (variable 0 has stride 1), so a cursor walking a
// contiguous range can ripple-increment the decoded state in O(1)
// amortized. Every store-side scan (flags, closure, seed, backward rounds)
// iterates through this instead of decoding.
#pragma once

#include <cstdint>
#include <vector>

#include "checker/state_space.hpp"
#include "core/state.hpp"

namespace nonmask::store {

/// Forward iteration over a contiguous code range [code, end) with the
/// decoded state maintained incrementally. `state()` is the decoded form
/// of `code()`; `advance()` steps both in O(1) amortized.
class OdometerCursor {
 public:
  OdometerCursor(const StateSpace& space, std::uint64_t code);

  std::uint64_t code() const noexcept { return code_; }
  const State& state() const noexcept { return state_; }

  void advance();

 private:
  const StateSpace* space_;
  std::uint64_t code_;
  State state_;
  std::vector<Value> lo_;  ///< per-variable domain lower bound
  std::vector<Value> hi_;  ///< per-variable domain upper bound
};

}  // namespace nonmask::store
