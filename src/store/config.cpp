#include "store/config.hpp"

#include <cstdlib>
#include <cstring>

namespace nonmask::store {

const char* to_string(StoreBackend b) noexcept {
  switch (b) {
    case StoreBackend::kLegacyDense: return "dense";
    case StoreBackend::kStore: return "store";
  }
  return "?";
}

StoreConfig StoreConfig::from_env() {
  StoreConfig config;
  if (const char* backend = std::getenv("NONMASK_STORE_BACKEND")) {
    if (std::strcmp(backend, "store") == 0) {
      config.backend = StoreBackend::kStore;
    }
  }
  if (const char* budget = std::getenv("NONMASK_STATE_BUDGET")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(budget, &end, 10);
    if (end != budget && parsed > 0) config.budget = parsed;
  }
  return config;
}

}  // namespace nonmask::store
