#include "store/config.hpp"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "util/logging.hpp"

namespace nonmask::store {

const char* to_string(StoreBackend b) noexcept {
  switch (b) {
    case StoreBackend::kLegacyDense: return "dense";
    case StoreBackend::kStore: return "store";
  }
  return "?";
}

StoreConfig StoreConfig::from_env() {
  StoreConfig config;
  if (const char* backend = std::getenv("NONMASK_STORE_BACKEND")) {
    if (std::strcmp(backend, "store") == 0) {
      config.backend = StoreBackend::kStore;
    } else if (std::strcmp(backend, "dense") == 0 ||
               std::strcmp(backend, "") == 0) {
      config.backend = StoreBackend::kLegacyDense;
    } else {
      // A typo ("Store", "compact", ...) silently running the dense
      // backend is exactly the failure a budget-motivated user won't
      // notice until the run OOMs. Warn once per process.
      static std::once_flag warned;
      std::call_once(warned, [backend] {
        NONMASK_WARN() << "NONMASK_STORE_BACKEND='" << backend
                       << "' is not a backend (want 'dense' or 'store'); "
                          "using dense";
      });
    }
  }
  if (const char* budget = std::getenv("NONMASK_STATE_BUDGET")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(budget, &end, 10);
    if (end != budget && parsed > 0) config.budget = parsed;
  }
  return config;
}

}  // namespace nonmask::store
