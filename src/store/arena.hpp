// Arena-backed interning store for packed states.
//
// Fixed-width records (layout.words() machine words each) are appended into
// cache-line-aligned slabs; a record never moves once written, so pointers
// returned by get() stay valid for the store's lifetime and interning never
// triggers a reallocation-and-copy of previously interned states (the
// failure mode of a growing std::vector at 10^8 records). Ids are dense:
// the n-th intern() returns id n.
//
// The store is single-writer; the concurrent set shards the space and owns
// one store per shard, which is how parallel interning scales without any
// synchronization on the arena itself.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace nonmask::store {

class PackedStateStore {
 public:
  /// `record_words` per state; `slab_records` states per slab (the default
  /// slab is 64 KiB of words for single-word records).
  explicit PackedStateStore(std::size_t record_words,
                            std::size_t slab_records = 8192);

  std::size_t record_words() const noexcept { return record_words_; }
  std::uint64_t size() const noexcept { return size_; }

  /// Append a record; returns its dense id (== size() before the call).
  std::uint64_t intern(const std::uint64_t* words);

  /// Stable pointer to record `id`'s words.
  const std::uint64_t* get(std::uint64_t id) const {
    return slabs_[id / slab_records_].get() +
           (id % slab_records_) * record_words_;
  }

  /// Total heap bytes held by the slabs (for bench reporting).
  std::uint64_t bytes() const noexcept {
    return static_cast<std::uint64_t>(slabs_.size()) * slab_records_ *
           record_words_ * sizeof(std::uint64_t);
  }

 private:
  struct AlignedDelete {
    void operator()(std::uint64_t* p) const noexcept {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  using Slab = std::unique_ptr<std::uint64_t[], AlignedDelete>;

  std::size_t record_words_;
  std::size_t slab_records_;
  std::uint64_t size_ = 0;
  std::vector<Slab> slabs_;
};

}  // namespace nonmask::store
