// Store-backed exhaustive checks.
//
// Same reports as the legacy checker (closure_check.hpp,
// convergence_check.hpp, fault_span.hpp) with the per-state footprint cut
// from bytes to bits: predicate flags and DFS colors live in 2-bit arrays,
// convergence distances start at 16 bits (widened transparently if a run
// actually exceeds 65535 steps), scans ripple-decode with OdometerCursor
// instead of per-code div/mod, and reachability runs through the
// FrontierEngine with optional disk spill. Every function here is bound by
// the byte-identity contract: for the same inputs it returns the same
// report bytes as the serial checker and the parallel sweep, at any thread
// count (see DESIGN.md §11).
#pragma once

#include <optional>

#include "checker/closure_check.hpp"
#include "checker/convergence_check.hpp"
#include "checker/fault_span.hpp"
#include "checker/variant.hpp"
#include "store/config.hpp"

namespace nonmask::store {

/// check_closed over the given action indices, chunk-parallel with
/// odometer scans.
ClosureReport check_closed_store(const StateSpace& space,
                                 const PredicateFn& predicate,
                                 const std::vector<std::size_t>& actions,
                                 const StoreConfig& config);

/// Closure under all non-fault actions.
ClosureReport check_closed_store(const StateSpace& space,
                                 const PredicateFn& predicate,
                                 const StoreConfig& config);

/// Unfair-daemon convergence with compact bookkeeping (~5 bytes/state
/// instead of ~13): parallel flag sweep into a TwoBitArray, then the shared
/// DFS core (checker/convergence_core.hpp) over 2-bit colors, narrow
/// distances, and a sparse on-stack map.
ConvergenceReport check_convergence_store(const StateSpace& space,
                                          const PredicateFn& S,
                                          const PredicateFn& T,
                                          const StoreConfig& config);

/// Weakly-fair convergence (Tarjan/SCC + fair-escape analysis) with
/// store-native bookkeeping: the visit index lives in a stamped u32 array
/// over the code range, lowlinks in slab-grown arenas indexed by dense
/// visit id, on-stack marks in one bit per state, and SCC membership in
/// sorted snapshots of the nontrivial components only — never the legacy
/// ~17-bytes/state int32 arrays. Reports are byte-identical to
/// check_convergence_weakly_fair at any thread count.
ConvergenceReport check_convergence_weakly_fair_store(
    const StateSpace& space, const PredicateFn& S, const PredicateFn& T,
    const StoreConfig& config);

/// compute_variant on the compact backend: one shared-core DFS with u32
/// distances (parallel flag sweep, 2-bit colors) materializes the
/// longest-path-to-S vector directly, instead of the legacy path's
/// check-then-recompute double traversal. Same dist vector byte-for-byte.
std::optional<VariantFunction> compute_variant_store(const StateSpace& space,
                                                     const PredicateFn& S,
                                                     const StoreConfig& config);

/// compute_reachable through the FrontierEngine.
StateSet compute_reachable_store(const StateSpace& space,
                                 const PredicateFn& start,
                                 const std::vector<std::size_t>& actions,
                                 const StoreConfig& config,
                                 const FaultSpanOptions& opts = {});

/// compute_fault_span (program actions + fault actions) through the
/// FrontierEngine.
StateSet compute_fault_span_store(const StateSpace& space,
                                  const PredicateFn& S,
                                  const std::vector<std::size_t>& fault_actions,
                                  const StoreConfig& config,
                                  const FaultSpanOptions& opts = {});

}  // namespace nonmask::store
