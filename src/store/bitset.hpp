// Compact per-state bookkeeping arrays.
//
// The legacy checker allocates a byte (or more) per code for flags, DFS
// colors, and visited marks — 100+ MB per array at 10^8 states, which is
// what capped exhaustive checking at ~32M. These containers pack the same
// information at 1-2 bits per state:
//
//   AtomicBitSet          1 bit,  concurrent test_and_set (frontier dedup)
//   TwoBitArray           2 bits, serial (S/T flags, DFS colors)
//   StampedDistanceArray  stamped distances — reusable across BFS
//                         generations without an O(n) clear
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace nonmask::store {

/// Fixed-size bit set with lock-free concurrent insertion.
class AtomicBitSet {
 public:
  explicit AtomicBitSet(std::uint64_t bits)
      : words_((bits + 63) / 64) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Set bit i; returns true iff this call changed it (i.e. first setter).
  bool test_and_set(std::uint64_t i) noexcept {
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (prev & mask) == 0;
  }

  bool test(std::uint64_t i) const noexcept {
    return (words_[i >> 6].load(std::memory_order_acquire) &
            (std::uint64_t{1} << (i & 63))) != 0;
  }

 private:
  std::vector<std::atomic<std::uint64_t>> words_;
};

/// Packed 2-bit-per-entry array (values 0..3). Not thread-safe for
/// overlapping words; the store sweeps write it from disjoint chunks of
/// >= 32 entries aligned to the chunk grain, or serially.
class TwoBitArray {
 public:
  TwoBitArray() = default;
  explicit TwoBitArray(std::uint64_t entries)
      : words_((entries * 2 + 63) / 64, 0) {}

  std::uint8_t operator[](std::uint64_t i) const noexcept {
    return static_cast<std::uint8_t>(
        (words_[i >> 5] >> ((i & 31) * 2)) & 3);
  }

  void set(std::uint64_t i, std::uint8_t v) noexcept {
    std::uint64_t& w = words_[i >> 5];
    const unsigned shift = (i & 31) * 2;
    w = (w & ~(std::uint64_t{3} << shift)) |
        (static_cast<std::uint64_t>(v & 3) << shift);
  }

  std::uint64_t bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  std::vector<std::uint64_t> words_;
};

/// Distance array with a generation stamp per entry: advancing the
/// generation invalidates every entry in O(1), so one allocation serves
/// many BFS runs (the frontier engine reuses it across backward-BFS
/// generations; the resilience adversary re-evaluates per placement).
class StampedDistanceArray {
 public:
  static constexpr std::uint32_t kUnset = ~std::uint32_t{0};

  explicit StampedDistanceArray(std::uint64_t entries)
      : stamp_(entries, 0), dist_(entries, 0) {}

  /// Invalidate every entry (lazily, via the generation counter).
  void next_generation() noexcept { ++generation_; }

  std::uint32_t get(std::uint64_t i) const noexcept {
    return stamp_[i] == generation_ ? dist_[i] : kUnset;
  }

  void set(std::uint64_t i, std::uint32_t d) noexcept {
    stamp_[i] = generation_;
    dist_[i] = d;
  }

  bool known(std::uint64_t i) const noexcept {
    return stamp_[i] == generation_;
  }

 private:
  std::uint32_t generation_ = 1;
  std::vector<std::uint32_t> stamp_;
  std::vector<std::uint32_t> dist_;
};

}  // namespace nonmask::store
