#include "store/packed.hpp"

#include "util/hash.hpp"

namespace nonmask::store {

namespace {

unsigned bits_for_domain(std::uint64_t domain_size) {
  // Smallest w with 2^w >= domain_size; 0 for singleton domains.
  unsigned w = 0;
  while (w < 64 && (std::uint64_t{1} << w) < domain_size) ++w;
  return w;
}

}  // namespace

PackedLayout::PackedLayout(const Program& program) : program_(&program) {
  fields_.reserve(program.num_variables());
  std::uint32_t word = 0;
  unsigned shift = 0;
  for (std::uint32_t i = 0; i < program.num_variables(); ++i) {
    const auto& spec = program.variable(VarId(i));
    const unsigned width = bits_for_domain(spec.domain_size());
    // Fields never straddle a word boundary: pad to the next word instead,
    // so pack/unpack are single shift+mask operations.
    if (shift + width > 64) {
      ++word;
      shift = 0;
    }
    fields_.push_back(Field{word, shift, width, spec.lo});
    shift += width;
    total_bits_ += width;
  }
  words_ = static_cast<std::size_t>(word) + 1;
}

void PackedLayout::pack(const State& s, std::uint64_t* out) const {
  for (std::size_t w = 0; w < words_; ++w) out[w] = 0;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    if (f.width == 0) continue;
    const std::uint64_t raw = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(s.get(VarId(static_cast<std::uint32_t>(i)))) -
        static_cast<std::int64_t>(f.lo));
    out[f.word] |= raw << f.shift;
  }
}

void PackedLayout::unpack(const std::uint64_t* words, State& s) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    const Field& f = fields_[i];
    const std::uint64_t mask =
        f.width == 64 ? ~std::uint64_t{0}
                      : ((std::uint64_t{1} << f.width) - 1);
    const std::uint64_t raw = (words[f.word] >> f.shift) & mask;
    s.set(VarId(static_cast<std::uint32_t>(i)),
          static_cast<Value>(static_cast<std::int64_t>(raw) +
                             static_cast<std::int64_t>(f.lo)));
  }
}

std::uint64_t PackedLayout::hash(const std::uint64_t* words,
                                 std::uint64_t seed) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (std::size_t w = 0; w < words_; ++w) {
    h ^= words[w];
    h *= 0x100000001b3ULL;
  }
  return avalanche64(h);
}

}  // namespace nonmask::store
