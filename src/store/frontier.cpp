#include "store/frontier.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "store/odometer.hpp"

namespace nonmask::store {

namespace {

std::size_t chunk_count(std::uint64_t range, std::uint64_t grain) {
  return static_cast<std::size_t>((range + grain - 1) / grain);
}

std::string spill_directory(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* env = std::getenv("TMPDIR"); env != nullptr && *env != '\0') {
    return env;
  }
  return "/tmp";
}

}  // namespace

SpillableFrontier::SpillableFrontier(std::uint64_t threshold,
                                     const std::string& dir)
    : threshold_(threshold), dir_(spill_directory(dir)) {}

SpillableFrontier::~SpillableFrontier() {
  if (fd_ >= 0) ::close(fd_);
}

void SpillableFrontier::flush_mem() {
  if (mem_.empty()) return;
  if (fd_ < 0) {
    std::string tmpl = dir_ + "/nonmask-frontier-XXXXXX";
    std::vector<char> path(tmpl.begin(), tmpl.end());
    path.push_back('\0');
    fd_ = ::mkstemp(path.data());
    if (fd_ < 0) {
      throw std::runtime_error(std::string("frontier spill: mkstemp in ") +
                               dir_ + " failed: " + std::strerror(errno));
    }
    ::unlink(path.data());  // anonymous: reclaimed on close even if we crash
  }
  const char* bytes = reinterpret_cast<const char*>(mem_.data());
  std::size_t remaining = mem_.size() * sizeof(std::uint64_t);
  std::uint64_t offset = spilled_ * sizeof(std::uint64_t);
  while (remaining > 0) {
    const ssize_t n =
        ::pwrite(fd_, bytes, remaining, static_cast<off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("frontier spill: pwrite failed: ") +
                               std::strerror(errno));
    }
    bytes += n;
    offset += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
  if (obs::Telemetry::counting()) {
    auto& depth = obs::Telemetry::depth();
    depth.frontier_spill_flushes.fetch_add(1, std::memory_order_relaxed);
    depth.frontier_spill_bytes.fetch_add(mem_.size() * sizeof(std::uint64_t),
                                         std::memory_order_relaxed);
  }
  spilled_ += mem_.size();
  mem_.clear();
}

void SpillableFrontier::append(std::uint64_t code) {
  mem_.push_back(code);
  if (threshold_ != 0 && mem_.size() >= threshold_) flush_mem();
}

void SpillableFrontier::read(std::uint64_t lo, std::uint64_t hi,
                             std::vector<std::uint64_t>& out) const {
  out.clear();
  if (hi <= lo) return;
  out.resize(hi - lo);
  std::size_t filled = 0;
  if (lo < spilled_) {
    const std::uint64_t file_hi = std::min(hi, spilled_);
    char* bytes = reinterpret_cast<char*>(out.data());
    std::size_t remaining = (file_hi - lo) * sizeof(std::uint64_t);
    std::uint64_t offset = lo * sizeof(std::uint64_t);
    while (remaining > 0) {
      const ssize_t n =
          ::pread(fd_, bytes, remaining, static_cast<off_t>(offset));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("frontier spill: pread failed: ") +
                                 std::strerror(errno));
      }
      if (n == 0) {
        throw std::runtime_error("frontier spill: unexpected EOF");
      }
      bytes += n;
      offset += static_cast<std::uint64_t>(n);
      remaining -= static_cast<std::size_t>(n);
    }
    filled = static_cast<std::size_t>(file_hi - lo);
  }
  for (std::uint64_t i = std::max(lo, spilled_); i < hi; ++i) {
    out[filled++] = mem_[static_cast<std::size_t>(i - spilled_)];
  }
}

void SpillableFrontier::clear() {
  mem_.clear();
  if (spilled_ > 0 && fd_ >= 0) ::ftruncate(fd_, 0);
  spilled_ = 0;
}

FrontierEngine::FrontierEngine(const StateSpace& space,
                               const StoreConfig& config)
    : space_(&space), config_(config), pool_(config.threads) {}

FrontierEngine::FrontierEngine(const StoreConfig& config)
    : space_(nullptr), config_(config), pool_(config.threads) {}

void FrontierEngine::for_items(
    std::uint64_t begin, std::uint64_t end,
    const std::function<void(std::uint64_t, unsigned)>& fn) {
  obs::Span span("store.for_items");
  parallel_for_chunked(pool_, begin, end, /*grain=*/1,
                       [&](std::size_t chunk, std::uint64_t lo,
                           std::uint64_t hi, unsigned worker) {
                         (void)chunk;
                         (void)hi;  // grain 1: [lo, hi) is a single item
                         fn(lo, worker);
                       });
}

StateSet FrontierEngine::reachable(const PredicateFn& start,
                                   const std::vector<std::size_t>& actions,
                                   const FaultSpanOptions& opts) {
  obs::Span span("store.reach");
  if (space_ == nullptr) {
    throw std::logic_error(
        "FrontierEngine: reachable() needs the state-space constructor");
  }
  stats_ = {};
  const StateSpace& space = *space_;
  const Program& p = space.program();
  StateSet set(space);
  const std::uint64_t cap =
      opts.max_states == 0 ? space.size() : opts.max_states;
  obs::ProgressMeter meter("store-reach", cap);

  const std::uint64_t spill = config_.spill_threshold;
  const std::string& dir = config_.spill_dir;
  std::vector<State> scratch(pool_.size(), State(p.num_variables()));

  // Seed scan: evaluate `start` over the full range with odometer cursors
  // (no per-code div/mod), then insert in code order — the serial seeding
  // sequence.
  auto frontier = std::make_unique<SpillableFrontier>(spill, dir);
  {
    std::vector<std::vector<std::uint64_t>> seed_chunks(
        chunk_count(space.size(), config_.grain));
    parallel_for_chunked(
        pool_, 0, space.size(), config_.grain,
        [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
            unsigned worker) {
          (void)worker;
          OdometerCursor cur(space, lo);
          auto& out = seed_chunks[chunk];
          for (std::uint64_t code = lo; code < hi; ++code) {
            if (start(cur.state())) out.push_back(code);
            if (code + 1 < hi) cur.advance();
          }
        });
    for (const auto& chunk : seed_chunks) {
      for (std::uint64_t code : chunk) {
        set.insert_code(code);
        frontier->append(code);
      }
    }
  }

  // Level-synchronous BFS with the sweep's merge-in-pop-order contract
  // (parallel/sweep.cpp): per-node successor lists depend only on the node,
  // and the serial merge replays the serial BFS's insertion sequence and
  // max_states truncation. Expansion additionally drops successors that
  // were already in `set` when the level started — the merge would skip
  // them anyway, so the result is unchanged but the per-level buffers stay
  // proportional to the *new* states, not the total degree.
  struct NodeSuccs {
    std::vector<std::uint32_t> degree;  // kept successors per node
    std::vector<std::uint64_t> data;    // concatenated, in expansion order
  };
  while (frontier->size() != 0 && set.size() < cap) {
    const std::uint64_t fsize = frontier->size();
    ++stats_.levels;
    if (obs::Telemetry::counting()) {
      obs::Telemetry::depth().frontier_levels.fetch_add(
          1, std::memory_order_relaxed);
    }
    if (frontier->spilled()) ++stats_.spills;
    const std::uint64_t level_grain = std::min<std::uint64_t>(
        config_.grain,
        std::max<std::uint64_t>(
            1, fsize / (std::uint64_t{pool_.size()} * 8)));
    std::vector<NodeSuccs> level(chunk_count(fsize, level_grain));
    parallel_for_chunked(
        pool_, 0, fsize, level_grain,
        [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
            unsigned worker) {
          NodeSuccs& out = level[chunk];
          std::vector<std::uint64_t> codes;
          frontier->read(lo, hi, codes);
          std::vector<std::uint64_t> succs;
          for (std::uint64_t code : codes) {
            detail::expand_reachable(space, actions, opts, code,
                                     scratch[worker], succs);
            std::uint32_t kept = 0;
            for (std::uint64_t succ : succs) {
              if (set.contains_code(succ)) continue;  // pre-filter (see above)
              out.data.push_back(succ);
              ++kept;
            }
            out.degree.push_back(kept);
          }
        });

    auto next = std::make_unique<SpillableFrontier>(spill, dir);
    bool capped = false;
    for (const NodeSuccs& chunk : level) {
      std::size_t offset = 0;
      for (std::uint32_t deg : chunk.degree) {
        if (set.size() >= cap) {  // the serial loop stops popping here
          capped = true;
          break;
        }
        ++stats_.expanded;
        for (std::uint32_t k = 0; k < deg; ++k) {
          const std::uint64_t succ = chunk.data[offset + k];
          if (!set.contains_code(succ)) {
            set.insert_code(succ);
            next->append(succ);
          }
        }
        offset += deg;
      }
      if (capped) break;
    }
    if (capped) break;
    frontier = std::move(next);
    meter.aux("frontier", frontier->size());
    meter.add(set.size() - meter.done());
  }

  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("store.reach.expanded").add(stats_.expanded);
    registry.counter("store.reach.states").add(set.size());
    registry.counter("store.reach.spilled_levels").add(stats_.spills);
  }
  return set;
}

std::uint64_t FrontierEngine::backward_distances(
    const PredicateFn& target, const std::vector<std::size_t>& actions,
    StampedDistanceArray& dist, std::uint32_t max_rounds) {
  obs::Span span("store.backward");
  if (space_ == nullptr) {
    throw std::logic_error(
        "FrontierEngine: backward_distances() needs the state-space "
        "constructor");
  }
  stats_ = {};
  const StateSpace& space = *space_;
  const Program& p = space.program();
  dist.next_generation();
  obs::ProgressMeter meter("store-backward", space.size());

  // Round r resolves every code whose first known successor appeared in
  // round r-1, i.e. whose min successor distance is exactly r-1 — so the
  // round number is the min-steps-to-target distance. Commits are deferred
  // to a serial phase per round, so the parallel scan only ever reads
  // distances from completed rounds (deterministic and race-free).
  std::uint64_t resolved = 0;
  std::uint32_t round = 0;
  while (max_rounds == 0 || round <= max_rounds) {
    std::vector<std::vector<std::uint64_t>> hits(
        chunk_count(space.size(), config_.grain));
    parallel_for_chunked(
        pool_, 0, space.size(), config_.grain,
        [&](std::size_t chunk, std::uint64_t lo, std::uint64_t hi,
            unsigned worker) {
          (void)worker;
          OdometerCursor cur(space, lo);
          auto& out = hits[chunk];
          for (std::uint64_t code = lo; code < hi; ++code) {
            if (round == 0) {
              if (target(cur.state())) out.push_back(code);
            } else if (!dist.known(code)) {
              const State& s = cur.state();
              for (std::size_t idx : actions) {
                const Action& a = p.action(idx);
                if (!a.enabled(s)) continue;
                if (dist.known(space.encode(a.apply(s)))) {
                  out.push_back(code);
                  break;
                }
              }
            }
            if (code + 1 < hi) cur.advance();
          }
        });

    std::uint64_t new_this_round = 0;
    for (const auto& chunk : hits) {
      for (std::uint64_t code : chunk) {
        dist.set(code, round);
        ++new_this_round;
      }
    }
    resolved += new_this_round;
    meter.add(new_this_round);
    if (obs::Telemetry::counting()) {
      obs::Telemetry::depth().frontier_merge_rounds.fetch_add(
          1, std::memory_order_relaxed);
    }
    if (new_this_round == 0) break;
    ++stats_.levels;
    stats_.expanded += new_this_round;
    ++round;
  }

  if (obs::Metrics::enabled()) {
    auto& registry = obs::Registry::instance();
    registry.counter("store.backward.rounds").add(stats_.levels);
    registry.counter("store.backward.resolved").add(resolved);
  }
  return resolved;
}

}  // namespace nonmask::store
