#include "store/concurrent_set.hpp"

namespace nonmask::store {

namespace {

std::size_t round_up_pow2(std::uint64_t n) {
  std::size_t cap = 64;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

ConcurrentPackedSet::ConcurrentPackedSet(const PackedLayout& layout,
                                         unsigned shard_bits,
                                         std::uint64_t seed,
                                         std::uint64_t expected)
    : layout_(&layout),
      shard_bits_(shard_bits),
      shard_mask_((std::uint64_t{1} << shard_bits) - 1),
      seed_(seed),
      slots_(std::size_t{1} << shard_bits) {
  const std::size_t count = std::size_t{1} << shard_bits;
  // Size each table so the expected load sits under the 0.7 growth
  // threshold from materialization.
  initial_capacity_ =
      round_up_pow2(expected == 0 ? 64 : (expected / count) * 2 + 64);
  for (auto& slot : slots_) slot.store(nullptr, std::memory_order_relaxed);
  obs::Telemetry::register_set(this);
}

ConcurrentPackedSet::~ConcurrentPackedSet() {
  // Unregister first (folds a final sample into the retired aggregate and
  // waits out any in-flight sampler pass), then tear the shards down.
  obs::Telemetry::unregister_set(this);
  for (auto& slot : slots_) delete slot.load(std::memory_order_acquire);
}

ConcurrentPackedSet::Shard& ConcurrentPackedSet::shard_at(
    std::uint64_t index) {
  Shard* existing = slots_[index].load(std::memory_order_acquire);
  if (existing != nullptr) return *existing;
  // First touch: this thread allocates the table and arena, so their pages
  // fault in on its NUMA node. On a lost race the winner's shard is kept
  // (its pages are already placed) and our candidate is freed.
  auto fresh = std::make_unique<Shard>(layout_->words(), initial_capacity_);
  Shard* expected = nullptr;
  if (slots_[index].compare_exchange_strong(expected, fresh.get(),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    return *fresh.release();
  }
  if (obs::Telemetry::counting()) {
    obs::Telemetry::depth().set_cas_retries.fetch_add(
        1, std::memory_order_relaxed);
  }
  return *expected;
}

void ConcurrentPackedSet::touch(unsigned index) { shard_at(index); }

void ConcurrentPackedSet::grow(Shard& shard) const {
  std::vector<std::uint64_t> table(shard.table.size() * 2, 0);
  const std::uint64_t mask = table.size() - 1;
  for (std::uint64_t slot : shard.table) {
    if (slot == 0) continue;
    std::uint64_t pos = layout_->hash(shard.arena.get(slot - 1), seed_) & mask;
    while (table[pos] != 0) pos = (pos + 1) & mask;
    table[pos] = slot;
  }
  shard.table = std::move(table);
}

std::pair<std::uint64_t, bool> ConcurrentPackedSet::insert(
    const std::uint64_t* words) {
  const std::uint64_t h = layout_->hash(words, seed_);
  const std::uint64_t shard_idx = shard_of(h);
  Shard& shard = shard_at(shard_idx);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if ((shard.entries + 1) * 10 > shard.table.size() * 7) {
    grow(shard);
    if (obs::Telemetry::counting()) {
      obs::Telemetry::depth().set_grows.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
  }
  const std::uint64_t mask = shard.table.size() - 1;
  std::uint64_t pos = h & mask;
  // Probe depth is tracked per shard unconditionally (a register increment
  // and one compare under a mutex already held); the process-wide counter
  // is the gated one.
  std::uint64_t probes = 1;
  while (true) {
    const std::uint64_t slot = shard.table[pos];
    if (slot == 0) {
      const std::uint64_t local = shard.arena.intern(words);
      shard.table[pos] = local + 1;
      ++shard.entries;
      if (probes > shard.max_probe) shard.max_probe = probes;
      if (obs::Telemetry::counting()) {
        obs::Telemetry::depth().set_probes.fetch_add(
            probes, std::memory_order_relaxed);
      }
      return {(local << shard_bits_) | shard_idx, true};
    }
    if (equal(*layout_, shard.arena.get(slot - 1), words)) {
      if (probes > shard.max_probe) shard.max_probe = probes;
      if (obs::Telemetry::counting()) {
        obs::Telemetry::depth().set_probes.fetch_add(
            probes, std::memory_order_relaxed);
      }
      return {((slot - 1) << shard_bits_) | shard_idx, false};
    }
    pos = (pos + 1) & mask;
    ++probes;
  }
}

std::optional<std::uint64_t> ConcurrentPackedSet::find(
    const std::uint64_t* words) const {
  const std::uint64_t h = layout_->hash(words, seed_);
  const std::uint64_t shard_idx = shard_of(h);
  const Shard* shard_ptr = shard_if(shard_idx);
  if (shard_ptr == nullptr) return std::nullopt;  // never touched: empty
  const Shard& shard = *shard_ptr;
  std::lock_guard<std::mutex> lock(shard.mutex);
  const std::uint64_t mask = shard.table.size() - 1;
  std::uint64_t pos = h & mask;
  while (true) {
    const std::uint64_t slot = shard.table[pos];
    if (slot == 0) return std::nullopt;
    if (equal(*layout_, shard.arena.get(slot - 1), words)) {
      return ((slot - 1) << shard_bits_) | shard_idx;
    }
    pos = (pos + 1) & mask;
  }
}

std::uint64_t ConcurrentPackedSet::size() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Shard* shard = shard_if(i);
    if (shard == nullptr) continue;
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->entries;
  }
  return total;
}

std::vector<ConcurrentPackedSet::ShardStats> ConcurrentPackedSet::shard_stats()
    const {
  std::vector<ShardStats> stats;
  stats.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Shard* shard = shard_if(i);
    if (shard == nullptr) {
      stats.push_back({});
      continue;
    }
    std::lock_guard<std::mutex> lock(shard->mutex);
    stats.push_back({shard->entries, shard->table.size(), shard->max_probe,
                     shard->arena.bytes()});
  }
  return stats;
}

obs::SetSample ConcurrentPackedSet::sample_set_telemetry() const {
  obs::SetSample sample;
  sample.shards = slots_.size();
  sample.shard_entries.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Shard* shard = shard_if(i);
    if (shard == nullptr) {
      sample.shard_entries.push_back(0);
      continue;
    }
    std::lock_guard<std::mutex> lock(shard->mutex);
    ++sample.materialized;
    sample.entries += shard->entries;
    sample.capacity += shard->table.size();
    if (shard->max_probe > sample.max_probe) {
      sample.max_probe = shard->max_probe;
    }
    sample.arena_bytes += shard->arena.bytes();
    sample.shard_entries.push_back(shard->entries);
  }
  return sample;
}

}  // namespace nonmask::store
