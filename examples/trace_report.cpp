// Observability demo CLI: run the parallel sweeps (closure, convergence,
// reachability) and a small trial campaign for one shipped design with the
// telemetry subsystem switched on, then export what was recorded —
//   --trace-out    Chrome trace-event JSON (open in chrome://tracing or
//                  https://ui.perfetto.dev); contains one "sweep.*.chunk"
//                  span per worker chunk, so worker parallelism is visible
//   --metrics-out  the metrics-registry snapshot as JSON
//   --report-out   a self-describing RunReport JSON (checker reports,
//                  campaign SampleStats, metrics snapshot, wall time)
//   --progress     live rate-limited progress lines on stderr
//
// Usage:  trace_report [--design=NAME] [--threads=N] [--grain=N]
//                      [--trials=N] [--trace-out=PATH] [--metrics-out=PATH]
//                      [--report-out=PATH] [--progress]
//   design  diffusing | chain | dijkstra | bounded | coloring
//           (default: dijkstra — a 6-node, K=6 ring, 46656 states)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "checker/fault_span.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "parallel/campaign.hpp"
#include "parallel/sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/token_ring.hpp"
#include "util/rng.hpp"

using namespace nonmask;

namespace {

void print_usage(std::ostream& out) {
  out << "usage: trace_report [--design=NAME] [--threads=N] [--grain=N]\n"
         "                    [--trials=N] [--trace-out=PATH]\n"
         "                    [--metrics-out=PATH] [--report-out=PATH]\n"
         "                    [--progress] [--help]\n"
         "  --design       diffusing | chain | dijkstra | bounded | coloring"
         " (default dijkstra)\n"
         "  --threads      worker threads; 0 = NONMASK_THREADS / hardware"
         " (default 0)\n"
         "  --grain        sweep chunk size in state codes (default 16384)\n"
         "  --trials       campaign trials (default 16)\n"
         "  --trace-out    write Chrome trace-event JSON here\n"
         "  --metrics-out  write the metrics snapshot JSON here\n"
         "  --report-out   write the full run report JSON here\n"
         "  --progress     print progress lines to stderr\n";
}

/// Exhaustively checkable instances — smaller than parallel_campaign's
/// simulation-only instances because the sweeps enumerate every state.
Design make_design(const std::string& name) {
  if (name == "diffusing") {
    return make_diffusing(RootedTree::balanced(7, 2), true).design;
  }
  if (name == "chain") {
    return make_diffusing(RootedTree::chain(8), true).design;
  }
  if (name == "dijkstra") {
    return make_dijkstra_ring(6, 6).design;  // 6^6 = 46656 states
  }
  if (name == "bounded") {
    return make_token_ring_bounded(5, 4, true).design;
  }
  if (name == "coloring") {
    Rng rng(7);
    return make_coloring(UndirectedGraph::random_connected(8, 12, rng)).design;
  }
  std::cerr << "unknown design '" << name
            << "' (want diffusing | chain | dijkstra | bounded | coloring)\n";
  std::exit(2);
}

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string design_name = "dijkstra";
  std::string trace_out, metrics_out, report_out;
  unsigned threads = 0;
  std::uint64_t grain = 1 << 14;
  std::size_t trials = 16;
  bool progress = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      print_usage(std::cout);
      return 0;
    } else if (arg == "--progress") {
      progress = true;
    } else if (flag_value(arg, "--design", &value)) {
      design_name = value;
    } else if (flag_value(arg, "--threads", &value)) {
      threads = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (flag_value(arg, "--grain", &value)) {
      grain = static_cast<std::uint64_t>(std::atoll(value.c_str()));
    } else if (flag_value(arg, "--trials", &value)) {
      trials = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (flag_value(arg, "--trace-out", &value)) {
      trace_out = value;
    } else if (flag_value(arg, "--metrics-out", &value)) {
      metrics_out = value;
    } else if (flag_value(arg, "--report-out", &value)) {
      report_out = value;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      print_usage(std::cerr);
      return 2;
    }
  }

  obs::Metrics::set_enabled(true);
  if (!trace_out.empty()) obs::Trace::set_enabled(true);
  if (progress) obs::Progress::enable(&std::cerr);

  const Design design = make_design(design_name);
  const StateSpace space(design.program);
  SweepOptions sweep;
  sweep.threads = threads;
  sweep.grain = grain;
  const unsigned resolved = threads == 0 ? default_threads() : threads;
  std::cout << "trace_report: " << design.name << ", " << space.size()
            << " states, " << resolved << " thread(s), grain " << grain
            << "\n";

  obs::RunReport report("trace_report", design.name);
  report.add_number("states", space.size());
  report.add_number("threads", std::uint64_t{resolved});

  const auto closure = check_closed_parallel(space, design.S(), sweep);
  std::cout << "closure(S): " << (closure.closed ? "closed" : "NOT closed")
            << " (" << closure.transitions_checked << " transitions)\n";
  report.add("closure_S", obs::to_json(closure));

  const auto convergence =
      check_convergence_parallel(space, design.S(), design.T(), sweep);
  std::cout << "convergence(S,T): " << to_string(convergence.verdict) << " ("
            << convergence.region_states << " region states, worst case "
            << convergence.max_steps_to_S << " steps)\n";
  report.add("convergence", obs::to_json(convergence));

  const auto reach = compute_reachable_parallel(
      space, design.S(), non_fault_actions(design.program), {}, sweep);
  std::cout << "reach(S): " << reach.size() << " states\n";
  report.add_number("reach_S_states", reach.size());

  ConvergenceExperiment config;
  config.trials = trials;
  config.seed = 1;
  CampaignOptions copts;
  copts.threads = threads;
  const auto campaign = run_campaign(design, config, copts);
  std::cout << "campaign: " << trials << " trials, "
            << 100.0 * campaign.aggregate.converged_fraction
            << "% converged\n";
  report.add("campaign", obs::to_json(campaign.aggregate));

  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "cannot open " << trace_out << " for writing\n";
      return 2;
    }
    obs::Trace::write_chrome_trace(out);
    std::cout << obs::Trace::event_count() << " trace events written to "
              << trace_out << "\n";
    obs::Trace::write_flame_summary(std::cout);
  }
  if (!metrics_out.empty()) {
    std::ofstream out(metrics_out);
    if (!out) {
      std::cerr << "cannot open " << metrics_out << " for writing\n";
      return 2;
    }
    out << obs::metrics_to_json() << "\n";
    std::cout << "metrics snapshot written to " << metrics_out << "\n";
  }
  if (!report_out.empty()) {
    std::ofstream out(report_out);
    if (!out) {
      std::cerr << "cannot open " << report_out << " for writing\n";
      return 2;
    }
    report.write(out);
    std::cout << "run report written to " << report_out << "\n";
  }
  if (progress) obs::Progress::disable();
  return 0;
}
