// The verification job server: a long-running HTTP service that accepts
// spec documents, shards them across a campaign worker pool, and persists
// every artifact so a killed server resumes its in-flight campaigns.
//
// Usage: nonmask_serve --state-dir=DIR [flags]
//   --state-dir=DIR     job persistence root (required)
//   --port=N            listen port on 127.0.0.1 (default 0 = ephemeral)
//   --workers=N         concurrent jobs (default 2)
//   --max-queue=N       queued jobs before 429 (default 64)
//   --deadline-ms=N     default per-trial watchdog deadline for campaigns
//   --retries=N         default per-trial retries for campaigns
//   --telemetry-ms=N    start the heartbeat sampler at this interval
//
// Prints "listening on 127.0.0.1:PORT" (stdout, flushed) once ready.
// SIGTERM / SIGINT drain gracefully: stop accepting, finish queued and
// running jobs, then exit 0.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/telemetry.hpp"
#include "serve/http.hpp"
#include "serve/jobs.hpp"
#include "serve/server.hpp"

using namespace nonmask;

namespace {

serve::HttpServer* g_server = nullptr;

void handle_signal(int) {
  if (g_server != nullptr) g_server->shutdown();
}

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServeOptions opts;
  int port = 0;
  long long telemetry_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: nonmask_serve --state-dir=DIR [--port=N] "
                   "[--workers=N] [--max-queue=N]\n"
                   "       [--deadline-ms=N] [--retries=N] "
                   "[--telemetry-ms=N]\n";
      return 0;
    } else if (flag_value(arg, "--state-dir", &value)) {
      opts.state_dir = value;
    } else if (flag_value(arg, "--port", &value)) {
      port = std::atoi(value.c_str());
    } else if (flag_value(arg, "--workers", &value)) {
      opts.workers = static_cast<unsigned>(std::atoi(value.c_str()));
    } else if (flag_value(arg, "--max-queue", &value)) {
      opts.max_queue = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (flag_value(arg, "--deadline-ms", &value)) {
      opts.default_deadline_ms = std::atoll(value.c_str());
    } else if (flag_value(arg, "--retries", &value)) {
      opts.default_retries = static_cast<std::size_t>(std::atoll(value.c_str()));
    } else if (flag_value(arg, "--telemetry-ms", &value)) {
      telemetry_ms = std::atoll(value.c_str());
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return 2;
    }
  }
  if (opts.state_dir.empty()) {
    std::cerr << "--state-dir=DIR is required\n";
    return 2;
  }

  if (telemetry_ms > 0) {
    obs::TelemetryOptions topts;
    topts.interval_ms = static_cast<unsigned>(telemetry_ms);
    obs::Telemetry::start(topts);
  }

  try {
    serve::JobManager manager(opts);
    const std::size_t recovered = manager.recover();
    if (recovered > 0) {
      std::cerr << "recovered " << recovered
                << " unfinished job(s) from " << opts.state_dir << "\n";
    }

    serve::HttpServer server(port);
    g_server = &server;
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);

    std::cout << "listening on 127.0.0.1:" << server.port() << std::endl;
    server.serve_forever(serve::make_handler(manager));

    std::cerr << "draining " << manager.pending() << " pending job(s)...\n";
    manager.drain();
  } catch (const std::exception& e) {
    std::cerr << "fatal: " << e.what() << "\n";
    return 1;
  }
  if (telemetry_ms > 0) obs::Telemetry::stop();
  return 0;
}
