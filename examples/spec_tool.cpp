// Spec DSL command-line tool: validate, emit, and run spec documents
// without the job server.
//
// Usage:
//   spec_tool validate <spec.json>          parse + compile; report errors
//   spec_tool emit <protocol>               print a built-in as a spec
//   spec_tool list                          list the built-in protocols
//   spec_tool run <spec.json> [flags]       run the spec's job
//   spec_tool run --builtin <protocol> [flags]
//
// Run flags:
//   --job=JSON            merge/override the spec's "job" object, e.g.
//                         --job='{"type":"campaign","trials":100}'
//   --report-out=PATH     write the RunReport document (default: stdout)
//   --checkpoint=PATH     campaign checkpoint journal
//   --resume              replay the journal's valid prefix
//   --jsonl=PATH          per-trial JSONL stream (campaign)
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "spec/compile.hpp"
#include "spec/emit.hpp"
#include "spec/job.hpp"
#include "spec/registry.hpp"
#include "spec/spec.hpp"
#include "util/json.hpp"

using namespace nonmask;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool flag_value(const std::string& arg, const char* name, std::string* out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = arg.substr(prefix.size());
  return true;
}

/// Merge `overrides` (a JSON object text) into the document's "job"
/// member, overriding members with the same key. Returns the new document
/// text.
std::string merge_job(const std::string& spec_text,
                      const std::string& overrides) {
  util::JsonValue doc = util::parse_json(spec_text);
  const util::JsonValue patch = util::parse_json(overrides);
  if (!doc.is_object() || !patch.is_object()) {
    throw std::runtime_error("--job must be a JSON object");
  }
  util::JsonValue* job = nullptr;
  for (auto& [key, value] : doc.object) {
    if (key == "job") job = &value;
  }
  if (job == nullptr) {
    doc.add("job", util::jobj());
    job = &doc.object.back().second;
  }
  for (const auto& [key, value] : patch.object) {
    bool replaced = false;
    for (auto& [jkey, jvalue] : job->object) {
      if (jkey == key) {
        jvalue = value;
        replaced = true;
        break;
      }
    }
    if (!replaced) job->add(key, value);
  }
  return util::dump_json(doc);
}

int usage() {
  std::cerr << "usage: spec_tool validate <spec.json>\n"
               "       spec_tool emit <protocol>\n"
               "       spec_tool list\n"
               "       spec_tool run (<spec.json> | --builtin <protocol>) "
               "[--job=JSON] [--report-out=PATH]\n"
               "                [--checkpoint=PATH] [--resume] "
               "[--jsonl=PATH]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];

  if (cmd == "list") {
    for (const auto& entry : spec::registry()) {
      std::cout << entry.name << "\t" << entry.description << "\n";
    }
    return 0;
  }

  if (cmd == "emit") {
    if (argc < 3) return usage();
    try {
      std::cout << spec::emit_builtin_spec(argv[2]);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    return 0;
  }

  if (cmd == "validate") {
    if (argc < 3) return usage();
    const std::string text = read_file(argv[2]);
    try {
      const spec::CompiledSpec compiled = spec::compile_spec_text(text);
      std::cout << "OK: " << compiled.design.name << " ("
                << compiled.design.program.num_variables() << " variables, "
                << compiled.design.program.num_actions() << " actions, "
                << compiled.design.invariant.size() << " constraints)\n";
      return 0;
    } catch (const std::exception& e) {
      std::cerr << "INVALID: " << e.what() << "\n";
      return 1;
    }
  }

  if (cmd == "run") {
    std::string spec_text, job_patch, report_out, checkpoint, jsonl_path;
    bool resume = false;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      std::string value;
      if (arg == "--builtin") {
        if (i + 1 >= argc) return usage();
        try {
          spec_text = spec::emit_builtin_spec(argv[++i]);
        } catch (const std::exception& e) {
          std::cerr << e.what() << "\n";
          return 2;
        }
      } else if (flag_value(arg, "--job", &value)) {
        job_patch = value;
      } else if (flag_value(arg, "--report-out", &value)) {
        report_out = value;
      } else if (flag_value(arg, "--checkpoint", &value)) {
        checkpoint = value;
      } else if (arg == "--resume") {
        resume = true;
      } else if (flag_value(arg, "--jsonl", &value)) {
        jsonl_path = value;
      } else if (!arg.empty() && arg[0] != '-' && spec_text.empty()) {
        spec_text = read_file(arg);
      } else {
        std::cerr << "unknown argument: " << arg << "\n";
        return usage();
      }
    }
    if (spec_text.empty()) return usage();

    try {
      if (!job_patch.empty()) spec_text = merge_job(spec_text, job_patch);
      const spec::CompiledSpec compiled = spec::compile_spec_text(spec_text);

      spec::JobOptions jopts;
      jopts.checkpoint = checkpoint;
      jopts.resume = resume;
      std::ofstream jsonl_file;
      if (!jsonl_path.empty()) {
        jsonl_file.open(jsonl_path);
        if (!jsonl_file) {
          std::cerr << "cannot open " << jsonl_path << " for writing\n";
          return 2;
        }
        jopts.jsonl = &jsonl_file;
      }

      const spec::JobResult result = spec::run_spec_job(compiled, jopts);
      std::cerr << result.summary << "\n";
      if (report_out.empty()) {
        std::cout << result.report_json;
      } else {
        std::ofstream out(report_out);
        if (!out) {
          std::cerr << "cannot open " << report_out << " for writing\n";
          return 2;
        }
        out << result.report_json;
      }
      return result.ok ? 0 : 1;
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 2;
    }
  }

  return usage();
}
