// The methodology as a tool: feed every shipped design through the
// pipeline the paper prescribes —
//   constraint graph -> classify -> Theorem 1 / Theorem 2 (/ Theorem 3
//   where the protocol supplies layers) -> exact model checker as ground
//   truth — and print a one-screen verdict table.
//
// Run:  ./build/examples/design_workbench
#include <iomanip>
#include <iostream>
#include <vector>

#include "cgraph/theorems.hpp"
#include "checker/convergence_check.hpp"
#include "checker/state_space.hpp"
#include "msg/mp_diffusing.hpp"
#include "msg/mp_token_ring.hpp"
#include "protocols/atomic_action.hpp"
#include "protocols/coloring.hpp"
#include "protocols/diffusing.hpp"
#include "protocols/leader_election.hpp"
#include "protocols/matching.hpp"
#include "protocols/running_example.hpp"
#include "protocols/aggregation.hpp"
#include "protocols/distributed_reset.hpp"
#include "protocols/independent_set.hpp"
#include "protocols/spanning_tree.hpp"
#include "protocols/tmr.hpp"
#include "protocols/token_ring.hpp"
#include "protocols/token_ring_small.hpp"

using namespace nonmask;

namespace {

struct Entry {
  Design design;
  std::vector<std::vector<std::size_t>> layers;  // optional, for Theorem 3
};

void report_row(const Entry& e) {
  const Design& d = e.design;
  StateSpace space(d.program);
  ValidationOptions opts;
  opts.space = &space;

  std::string verdict = "—";
  std::string via = "—";
  const auto cg = infer_constraint_graph(d.program);
  if (cg.ok) {
    via = to_string(classify(cg.graph));
    auto r = validate_design(d, opts);
    if (!r.applies && !e.layers.empty()) {
      r = validate_theorem3(d, e.layers, opts);
      if (r.applies) via += " + layers";
    }
    verdict = r.applies ? r.theorem.substr(0, 9) : "none apply";
  } else {
    verdict = "graph: " + cg.error;
  }

  const auto exact = check_convergence(space, d.S(), d.T());
  std::cout << std::left << std::setw(34) << d.name << std::setw(23) << via
            << std::setw(14) << verdict << std::setw(11)
            << to_string(exact.verdict);
  if (exact.verdict == ConvergenceVerdict::kConverges) {
    std::cout << "worst " << exact.max_steps_to_S << " steps";
  } else if (exact.cycle) {
    std::cout << "cycle of " << exact.cycle->size();
    // The paper's computations are fair; check whether fairness rescues it.
    const auto fair = check_convergence_weakly_fair(space, d.S(), d.T());
    std::cout << "; weakly-fair: " << to_string(fair.verdict);
  } else if (exact.deadlock) {
    std::cout << "deadlock";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  std::cout << "design workbench — theorem validation vs exact checking\n\n"
            << std::left << std::setw(34) << "design" << std::setw(23)
            << "graph shape" << std::setw(14) << "validated by"
            << std::setw(11) << "checker" << "detail\n"
            << std::string(96, '-') << "\n";

  std::vector<Entry> entries;
  entries.push_back(
      {make_running_example(RunningExampleVariant::kWriteYZ), {}});
  entries.push_back(
      {make_running_example(RunningExampleVariant::kWriteXBoth), {}});
  entries.push_back(
      {make_running_example(RunningExampleVariant::kDecreaseX), {}});
  entries.push_back({make_diffusing(RootedTree::balanced(5, 2), false).design,
                     {}});
  entries.push_back({make_diffusing(RootedTree::balanced(5, 2), true).design,
                     {}});
  {
    auto tr = make_token_ring_bounded(3, 3, false);
    entries.push_back({tr.design, tr.layers});
  }
  entries.push_back({make_dijkstra_ring(4, 5).design, {}});
  entries.push_back({make_dijkstra_three_state(4).design, {}});
  entries.push_back({make_dijkstra_four_state(4).design, {}});
  entries.push_back(
      {make_distributed_reset(RootedTree::chain(3), 2, false).design, {}});
  {
    auto cd = make_coloring(UndirectedGraph::cycle(4));
    entries.push_back({cd.design, cd.layers});
  }
  entries.push_back({make_leader_election(4).design, {}});
  entries.push_back(
      {make_spanning_tree(UndirectedGraph::cycle(4)).design, {}});
  entries.push_back({make_matching(UndirectedGraph::path(4)).design, {}});
  entries.push_back(
      {make_independent_set(UndirectedGraph::cycle(5)).design, {}});
  entries.push_back({make_aggregation(RootedTree::chain(4), 2).design, {}});
  entries.push_back({make_atomic_action(2).design, {}});
  entries.push_back({make_mp_token_ring(2, 3).design, {}});
  entries.push_back({make_mp_diffusing(RootedTree::chain(3)).design, {}});

  for (const auto& e : entries) report_row(e);

  // Section 3's classification, applied mechanically.
  std::cout << "\nmasking vs nonmasking (Section 3 classification):\n";
  for (Design d : {make_tmr(true).design, make_tmr(false).design,
                   make_atomic_action(2).design}) {
    StateSpace space(d.program);
    std::cout << "  " << std::left << std::setw(20) << d.name << " -> "
              << to_string(classify_tolerance(space, d)) << "\n";
  }

  std::cout << "\nreading the table: 'none apply' + checker 'converges' "
               "marks the\nsufficient-condition gap the paper's Section 7 "
               "discusses. 'violated'\nrows are deliberately broken or "
               "fairness-needing designs; for those,\nthe weakly-fair verdict "
               "shows whether the paper's fair computation\nmodel (which the "
               "theorem validators assume) restores convergence —\nit does "
               "for distributed reset, not for the broken running example.\n";
  return 0;
}
